// k-NN classification on synthetic Gaussian clusters using the p-batched
// k-d tree (Section 6): build the index write-efficiently, classify the
// whole test set with one batched k-NN call (parallel fan-out over queries,
// each neighbor list written once into its pre-claimed slice), and report
// accuracy plus the query-cost statistics the paper's ANN analysis is about.
//
//   ./examples/nn_classifier [train_n] [test_n]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/kdtree/pbatched.h"
#include "src/primitives/random.h"

using namespace weg;

namespace {

// Box-Muller standard normal.
double gaussian(primitives::Rng& rng) {
  double u1 = rng.next_double() + 1e-12, u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

constexpr int kClasses = 4;
const double kCenters[kClasses][2] = {
    {0.25, 0.25}, {0.75, 0.25}, {0.25, 0.75}, {0.75, 0.75}};

geom::Point2 sample(primitives::Rng& rng, int cls, double sigma) {
  geom::Point2 p;
  p[0] = kCenters[cls][0] + gaussian(rng) * sigma;
  p[1] = kCenters[cls][1] + gaussian(rng) * sigma;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  size_t train_n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200000;
  size_t test_n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;
  double sigma = 0.12;  // clusters overlap: the task is nontrivial
  primitives::Rng rng(99);

  std::vector<geom::Point2> train(train_n);
  std::vector<int> labels(train_n);
  for (size_t i = 0; i < train_n; ++i) {
    labels[i] = int(rng.next_bounded(kClasses));
    train[i] = sample(rng, labels[i], sigma);
  }

  kdtree::BuildStats bs;
  auto index = kdtree::PBatchedBuilder<2>::build(train, 0, 8, &bs);
  std::printf("index: %zu points, height %zu, %.1f writes/point "
              "(p-batched, Theorem 6.1)\n",
              train_n, bs.height, double(bs.cost.writes) / double(train_n));

  // The batch APIs return neighbor *points*; recover each point's label by
  // coordinate lookup. (Points are continuous doubles: exact matches
  // identify originals.)
  std::vector<std::pair<geom::Point2, int>> keyed(train_n);
  for (size_t i = 0; i < train_n; ++i) keyed[i] = {train[i], labels[i]};
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    return a.first[0] < b.first[0] ||
           (a.first[0] == b.first[0] && a.first[1] < b.first[1]);
  });
  auto label_of = [&](const geom::Point2& p) {
    auto it = std::lower_bound(
        keyed.begin(), keyed.end(), p,
        [](const std::pair<geom::Point2, int>& a, const geom::Point2& b) {
          return a.first[0] < b[0] ||
                 (a.first[0] == b[0] && a.first[1] < b[1]);
        });
    return it->second;
  };

  // Classify the whole test set with one batched k-NN call: the flat result
  // holds test point t's neighbors in slice t, written in parallel into
  // pre-claimed ranges (the two-phase count+scan+report plan).
  const size_t k = 9;
  std::vector<geom::Point2> tests(test_n);
  std::vector<int> test_cls(test_n);
  for (size_t t = 0; t < test_n; ++t) {
    test_cls[t] = int(rng.next_bounded(kClasses));
    tests[t] = sample(rng, test_cls[t], sigma);
  }
  auto nn = index.knn_batch(tests, k);
  size_t correct = 0;
  for (size_t t = 0; t < test_n; ++t) {
    int votes[kClasses] = {0, 0, 0, 0};
    for (const geom::Point2* it = nn.begin(t); it != nn.end(t); ++it) {
      votes[label_of(*it)]++;
    }
    int best = 0;
    for (int c = 1; c < kClasses; ++c) {
      if (votes[c] > votes[best]) best = c;
    }
    correct += (best == test_cls[t]) ? 1 : 0;
  }
  std::printf("k-NN (k=%zu): accuracy %.1f%% on %zu batched test points\n", k,
              100.0 * double(correct) / double(test_n), test_n);
  // Per-query cost statistics come from a serial sample (QueryStats
  // accumulation is a serial-path feature).
  kdtree::QueryStats qs;
  size_t sample_n = std::min<size_t>(test_n, 200);
  for (size_t t = 0; t < sample_n; ++t) {
    index.knn(tests[t], k, kdtree::QueryOptions{&qs});
  }
  std::printf("avg query cost: %.1f nodes visited, %.1f points scanned\n",
              double(qs.nodes_visited) / double(sample_n),
              double(qs.points_scanned) / double(sample_n));

  // ANN speed/quality trade-off: exact and approximate neighbors for the
  // same 500 queries, each side one batched call.
  std::vector<geom::Point2> aq_pts(500);
  {
    primitives::Rng arng(7);
    for (auto& q : aq_pts) {
      q = sample(arng, int(arng.next_bounded(kClasses)), sigma);
    }
  }
  auto exact = index.ann_batch(aq_pts, 0.0);
  size_t ann_sample = std::min<size_t>(aq_pts.size(), 100);
  for (double eps : {0.0, 0.5, 2.0}) {
    auto approx = eps == 0.0 ? exact : index.ann_batch(aq_pts, eps);
    size_t agree = 0;
    kdtree::QueryStats aq;
    for (size_t t = 0; t < aq_pts.size(); ++t) {
      agree += (exact[t] && approx[t] &&
                label_of(*exact[t]) == label_of(*approx[t]))
                   ? 1
                   : 0;
    }
    for (size_t t = 0; t < ann_sample; ++t) {
      index.ann(aq_pts[t], eps, kdtree::QueryOptions{&aq});
    }
    std::printf("ANN eps=%.1f: %.1f nodes/query, label agreement with exact "
                "NN %.1f%%\n",
                eps, double(aq.nodes_visited) / double(ann_sample),
                100.0 * double(agree) / double(aq_pts.size()));
  }
  return 0;
}
