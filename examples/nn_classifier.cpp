// k-NN classification on synthetic Gaussian clusters using the p-batched
// k-d tree (Section 6): build the index write-efficiently, classify test
// points with k-NN majority vote, and report accuracy plus the query-cost
// statistics the paper's ANN analysis is about.
//
//   ./examples/nn_classifier [train_n] [test_n]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/kdtree/pbatched.h"
#include "src/primitives/random.h"

using namespace weg;

namespace {

// Box-Muller standard normal.
double gaussian(primitives::Rng& rng) {
  double u1 = rng.next_double() + 1e-12, u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

constexpr int kClasses = 4;
const double kCenters[kClasses][2] = {
    {0.25, 0.25}, {0.75, 0.25}, {0.25, 0.75}, {0.75, 0.75}};

geom::Point2 sample(primitives::Rng& rng, int cls, double sigma) {
  geom::Point2 p;
  p[0] = kCenters[cls][0] + gaussian(rng) * sigma;
  p[1] = kCenters[cls][1] + gaussian(rng) * sigma;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  size_t train_n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200000;
  size_t test_n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;
  double sigma = 0.12;  // clusters overlap: the task is nontrivial
  primitives::Rng rng(99);

  std::vector<geom::Point2> train(train_n);
  std::vector<int> labels(train_n);
  for (size_t i = 0; i < train_n; ++i) {
    labels[i] = int(rng.next_bounded(kClasses));
    train[i] = sample(rng, labels[i], sigma);
  }

  kdtree::BuildStats bs;
  auto index = kdtree::PBatchedBuilder<2>::build(train, 0, 8, &bs);
  std::printf("index: %zu points, height %zu, %.1f writes/point "
              "(p-batched, Theorem 6.1)\n",
              train_n, bs.height, double(bs.cost.writes) / double(train_n));

  // The tree reorders points; recover labels by position lookup.
  // (Points are continuous doubles: exact matches identify originals.)
  std::vector<int> tree_labels(train_n);
  {
    // Build a map via sorted order of (x, y) - both arrays hold the same
    // multiset, so sort indices of each by coordinates and align.
    auto order_of = [](const std::vector<geom::Point2>& pts) {
      std::vector<uint32_t> idx(pts.size());
      for (uint32_t i = 0; i < pts.size(); ++i) idx[i] = i;
      std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
        return pts[a][0] < pts[b][0] ||
               (pts[a][0] == pts[b][0] && pts[a][1] < pts[b][1]);
      });
      return idx;
    };
    auto oi = order_of(train), ot = order_of(index.points());
    for (size_t i = 0; i < train_n; ++i) tree_labels[ot[i]] = labels[oi[i]];
  }

  size_t correct = 0;
  kdtree::QueryStats qs;
  const size_t k = 9;
  for (size_t t = 0; t < test_n; ++t) {
    int cls = int(rng.next_bounded(kClasses));
    auto q = sample(rng, cls, sigma);
    auto nn = index.knn(q, k, &qs);
    int votes[kClasses] = {0, 0, 0, 0};
    for (size_t idx : nn) votes[tree_labels[idx]]++;
    int best = 0;
    for (int c = 1; c < kClasses; ++c) {
      if (votes[c] > votes[best]) best = c;
    }
    correct += (best == cls) ? 1 : 0;
  }
  std::printf("k-NN (k=%zu): accuracy %.1f%% on %zu test points\n", k,
              100.0 * double(correct) / double(test_n), test_n);
  std::printf("avg query cost: %.1f nodes visited, %.1f points scanned\n",
              double(qs.nodes_visited) / double(test_n),
              double(qs.points_scanned) / double(test_n));

  // ANN speed/quality trade-off.
  for (double eps : {0.0, 0.5, 2.0}) {
    kdtree::QueryStats aq;
    size_t agree = 0;
    primitives::Rng arng(7);
    for (size_t t = 0; t < 500; ++t) {
      auto q = sample(arng, int(arng.next_bounded(kClasses)), sigma);
      size_t exact = index.ann(q, 0.0);
      size_t approx = index.ann(q, eps, &aq);
      agree += (tree_labels[exact] == tree_labels[approx]) ? 1 : 0;
    }
    std::printf("ANN eps=%.1f: %.1f nodes/query, label agreement with exact "
                "NN %.1f%%\n",
                eps, double(aq.nodes_visited) / 500.0,
                100.0 * double(agree) / 500.0);
  }
  return 0;
}
