// Quickstart: build each major structure on a small point set and print the
// measured large-memory traffic, demonstrating the write-efficient vs
// classic construction gap that the library exists to provide.
//
//   ./examples/quickstart [n]
#include <cstdio>
#include <cstdlib>

#include "src/augtree/interval_tree.h"
#include "src/augtree/priority_tree.h"
#include "src/augtree/range_tree.h"
#include "src/delaunay/delaunay.h"
#include "src/hull/hull.h"
#include "src/kdtree/kdtree.h"
#include "src/kdtree/pbatched.h"
#include "src/primitives/random.h"
#include "src/sort/incremental_sort.h"

using namespace weg;

int main(int argc, char** argv) {
  size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100000;
  std::printf("wegeom quickstart, n = %zu (omega = write cost; work = reads + omega*writes)\n\n", n);

  primitives::Rng rng(42);
  std::vector<geom::Point2> pts(n);
  for (auto& p : pts) {
    p[0] = rng.next_double();
    p[1] = rng.next_double();
  }

  auto row = [](const char* name, const asym::Counts& classic,
                const asym::Counts& we) {
    std::printf("%-18s classic: %9llu writes | write-efficient: %9llu writes"
                "  (%.1fx fewer; at omega=10 work ratio %.2fx)\n",
                name, (unsigned long long)classic.writes,
                (unsigned long long)we.writes,
                double(classic.writes) / double(we.writes),
                classic.work(10) / we.work(10));
  };

  {  // comparison sort (Section 4)
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng.next();
    sort::SortStats sc, sw;
    sort::incremental_sort_classic(keys, &sc);
    sort::incremental_sort_we(keys, &sw);
    row("sort", sc.cost, sw.cost);
  }

  {  // Delaunay triangulation (Section 5)
    delaunay::DTStats sb, sw;
    auto m1 = delaunay::triangulate(pts, delaunay::Mode::kBaseline, &sb);
    auto m2 = delaunay::triangulate(pts, delaunay::Mode::kWriteEfficient, &sw);
    row("delaunay", sb.cost, sw.cost);
    std::printf("%-18s  -> %zu triangles, mesh valid: %s\n", "",
                m2->alive_triangles().size(),
                m2->validate(false) ? "yes" : "NO");
  }

  {  // k-d tree (Section 6)
    kdtree::BuildStats sc, sp;
    auto t1 = kdtree::KdTree<2>::build_classic(pts, 8, &sc);
    auto t2 = kdtree::PBatchedBuilder<2>::build(pts, 0, 8, &sp);
    row("kd-tree", sc.cost, sp.cost);
    geom::Box2 q;
    q.lo[0] = q.lo[1] = 0.4;
    q.hi[0] = q.hi[1] = 0.6;
    std::printf("%-18s  -> heights %zu vs %zu; range[0.4,0.6]^2 count: %zu\n",
                "", sc.height, sp.height, t2.range_count(q));
  }

  {  // interval tree (Section 7)
    std::vector<augtree::Interval> ivs(n);
    for (size_t i = 0; i < n; ++i) {
      double a = rng.next_double();
      ivs[i] = augtree::Interval{a, a + rng.next_double() * 0.05, (uint32_t)i};
    }
    augtree::StaticIntervalTree::Stats sc, sp;
    augtree::StaticIntervalTree::build_classic(ivs, &sc);
    auto t = augtree::StaticIntervalTree::build_postsorted(ivs, &sp);
    row("interval tree", sc.cost, sp.cost);
    std::printf("%-18s  -> stab(0.5) hits %zu intervals\n", "",
                t.stab_count(0.5));
  }

  {  // priority search tree (Section 7)
    std::vector<augtree::PPoint> pp(n);
    for (size_t i = 0; i < n; ++i) {
      pp[i] = augtree::PPoint{pts[i][0], pts[i][1], (uint32_t)i};
    }
    augtree::StaticPriorityTree::Stats sc, sp;
    augtree::StaticPriorityTree::build_classic(pp, &sc);
    auto t = augtree::StaticPriorityTree::build_postsorted(pp, &sp);
    row("priority tree", sc.cost, sp.cost);
    std::printf("%-18s  -> 3-sided [0.2,0.8] x [y>=0.99]: %zu points\n", "",
                t.query_count(0.2, 0.8, 0.99));
  }

  {  // convex hull (Section 2.2)
    hull::HullStats sc, sw;
    hull::convex_hull(pts, hull::SortMode::kClassic, &sc);
    auto h = hull::convex_hull(pts, hull::SortMode::kWriteEfficient, &sw);
    row("convex hull", sc.cost, sw.cost);
    std::printf("%-18s  -> hull size %zu\n", "", h.size());
  }

  return 0;
}
