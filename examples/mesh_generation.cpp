// Mesh generation: triangulate a synthetic terrain (adaptive point density
// around ridges) with the write-efficient Delaunay algorithm, then report
// mesh quality statistics. This is the workload class (unstructured meshing)
// that motivates write-efficient DT: the mesh is built once and the writes
// are the dominant NVM cost.
//
//   ./examples/mesh_generation [n]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/delaunay/delaunay.h"
#include "src/primitives/random.h"

using namespace weg;

namespace {

double terrain_height(double x, double y) {
  return 0.4 * std::sin(6.0 * x) * std::cos(4.0 * y) +
         0.2 * std::sin(17.0 * x * y);
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200000;
  primitives::Rng rng(7);

  // Adaptive sampling: denser near steep terrain (rejection sampling on the
  // gradient magnitude).
  std::vector<geom::Point2> pts;
  pts.reserve(n);
  while (pts.size() < n) {
    double x = rng.next_double(), y = rng.next_double();
    double eps = 1e-3;
    double gx = (terrain_height(x + eps, y) - terrain_height(x - eps, y)) / (2 * eps);
    double gy = (terrain_height(x, y + eps) - terrain_height(x, y - eps)) / (2 * eps);
    double steep = std::sqrt(gx * gx + gy * gy);
    if (rng.next_double() < 0.15 + std::min(steep / 4.0, 0.85)) {
      geom::Point2 p;
      p[0] = x;
      p[1] = y;
      pts.push_back(p);
    }
  }

  delaunay::DTStats st;
  auto mesh = delaunay::triangulate(pts, delaunay::Mode::kWriteEfficient, &st);

  // Mesh statistics over interior triangles: area and aspect-ratio proxy.
  const auto& verts = mesh->vertices();
  uint32_t bound_lo = uint32_t(verts.size() - 3);
  size_t interior = 0;
  double min_area = 1e300, max_area = 0, sum_area = 0;
  for (uint32_t t : mesh->alive_triangles()) {
    const auto& tr = mesh->tri(t);
    if (tr.v[0] >= bound_lo || tr.v[1] >= bound_lo || tr.v[2] >= bound_lo) {
      continue;
    }
    const auto &a = verts[tr.v[0]], &b = verts[tr.v[1]], &c = verts[tr.v[2]];
    double area = 0.5 * std::abs(double(b.x - a.x) * double(c.y - a.y) -
                                 double(b.y - a.y) * double(c.x - a.x));
    min_area = std::min(min_area, area);
    max_area = std::max(max_area, area);
    sum_area += area;
    ++interior;
  }

  std::printf("terrain mesh: %zu points (%zu duplicate samples dropped)\n",
              st.points_inserted, st.duplicates_dropped);
  std::printf("  triangles: %zu alive (%zu interior), %zu created in history\n",
              mesh->alive_triangles().size(), interior, st.triangles_created);
  std::printf("  build: %llu reads, %llu writes (%.1f writes/point)\n",
              (unsigned long long)st.cost.reads,
              (unsigned long long)st.cost.writes,
              double(st.cost.writes) / double(st.points_inserted));
  std::printf("  prefix rounds: %zu, reservation sub-rounds: %zu, retries: %zu\n",
              st.prefix_rounds, st.sub_rounds, st.retries);
  std::printf("  interior triangle areas (grid units^2): min %.3g avg %.3g max %.3g\n",
              min_area, sum_area / double(interior ? interior : 1), max_area);
  std::printf("  mesh valid: %s\n", mesh->validate(false) ? "yes" : "NO");
  return 0;
}
