// Spatial event database: a simulated stream of events, each with a time
// span, a 2D location, and a severity. Three augmented trees index the same
// stream:
//   * dynamic interval tree over time spans  -> "which events were active at
//     time t?" (1D stabbing),
//   * alpha range tree over locations        -> "which events happened in
//     this rectangle?" (2D range),
//   * dynamic priority search tree (x=time, y=severity) -> "most severe
//     events in a time window above a threshold" (3-sided).
// All three run with alpha tuned to an update-heavy workload, demonstrating
// the write-cost knob of Section 7.3 end to end.
//
//   ./examples/spatial_database [events]
#include <cstdio>
#include <cstdlib>

#include "src/augtree/interval_tree.h"
#include "src/augtree/priority_tree.h"
#include "src/augtree/range_tree.h"
#include "src/primitives/random.h"

using namespace weg;
using namespace weg::augtree;

struct Event {
  double t_start, t_end;  // active time span
  double x, y;            // location
  double severity;
};

int main(int argc, char** argv) {
  size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100000;
  primitives::Rng rng(2026);

  // alpha tuned for updates >> queries: with omega ~ 10 and r ~ 10,
  // alpha* = min(2 + omega/r, omega) = 3; we use 4 (power of two).
  const uint64_t alpha = 4;
  DynamicIntervalTree by_time(alpha);
  AlphaRangeTree by_location(alpha);
  DynamicPriorityTree by_severity(alpha);

  std::vector<Event> events;
  events.reserve(n);
  asym::Region ingest;
  for (size_t i = 0; i < n; ++i) {
    uint32_t id = static_cast<uint32_t>(i);
    Event e;
    e.t_start = rng.next_double() * 1000.0;
    e.t_end = e.t_start + rng.next_double() * 5.0;
    e.x = rng.next_double();
    e.y = rng.next_double();
    e.severity = rng.next_double() * 10.0;
    events.push_back(e);
    by_time.insert(Interval{e.t_start, e.t_end, id});
    by_location.insert(PPoint{e.x, e.y, id});
    by_severity.insert(PPoint{e.t_start, e.severity, id});
  }
  auto ic = ingest.delta();
  std::printf("ingested %zu events: %llu reads, %llu writes (%.1f writes/event"
              " across all three indexes)\n",
              n, (unsigned long long)ic.reads, (unsigned long long)ic.writes,
              double(ic.writes) / double(n));

  // Query mix, served through the batched query engine: each batch fans its
  // queries out in parallel, and a count pass + exclusive scan pre-claims
  // every query's slice of one flat output array, so each result is written
  // exactly once (and totals are deterministic at any worker count).
  asym::Region queries;
  std::vector<double> stab_times(100);
  for (double& t : stab_times) t = rng.next_double() * 1000.0;
  auto active = by_time.stab_count_batch(stab_times);
  size_t active_total = 0;
  for (size_t c : active) active_total += c;
  std::printf("avg events active at a random time: %.1f (batch of %zu stabs)\n",
              double(active_total) / double(stab_times.size()),
              stab_times.size());

  std::vector<RangeQuery2D> rects(64);
  rects[0] = RangeQuery2D{0.25, 0.35, 0.25, 0.35};
  for (size_t i = 1; i < rects.size(); ++i) {
    double x = rng.next_double() * 0.9, y = rng.next_double() * 0.9;
    rects[i] = RangeQuery2D{x, x + 0.1, y, y + 0.1};
  }
  auto region_hits = by_location.query_batch(rects);
  std::printf("events in [0.25,0.35]^2: %zu (batch of %zu rectangles, "
              "%zu hits total)\n",
              region_hits.count(0), rects.size(), region_hits.total());

  std::vector<Query3Sided> windows(64);
  windows[0] = Query3Sided{100.0, 200.0, 9.5};
  for (size_t i = 1; i < windows.size(); ++i) {
    double t0 = rng.next_double() * 900.0;
    windows[i] = Query3Sided{t0, t0 + 100.0, 9.5};
  }
  auto severe_batch = by_severity.query_batch(windows);
  auto severe = severe_batch.result(0);
  std::printf("severity >= 9.5 in time [100,200]: %zu events "
              "(batch of %zu windows)\n",
              severe.size(), windows.size());
  for (size_t i = 0; i < std::min<size_t>(severe.size(), 3); ++i) {
    const Event& e = events[severe[i]];
    std::printf("  event %u: t=[%.2f,%.2f] at (%.3f,%.3f) severity %.2f\n",
                severe[i], e.t_start, e.t_end, e.x, e.y, e.severity);
  }
  auto qc = queries.delta();
  std::printf("query phase (%zu batched queries): %llu reads, %llu writes\n",
              stab_times.size() + rects.size() + windows.size(),
              (unsigned long long)qc.reads, (unsigned long long)qc.writes);

  // Retention: expire the first half of the events.
  asym::Region expiry;
  for (size_t i = 0; i < n / 2; ++i) {
    uint32_t id = static_cast<uint32_t>(i);
    const Event& e = events[i];
    by_time.erase(Interval{e.t_start, e.t_end, id});
    by_location.erase(PPoint{e.x, e.y, id});
    by_severity.erase(PPoint{e.t_start, e.severity, id});
  }
  auto ec = expiry.delta();
  std::printf("expired %zu events: %.1f writes/event; live: %zu/%zu/%zu\n",
              n / 2, double(ec.writes) / double(n / 2), by_time.size(),
              by_location.size(), by_severity.size());
  std::printf("indexes consistent: %s\n",
              (by_time.validate() && by_location.validate() &&
               by_severity.validate())
                  ? "yes"
                  : "NO");
  return 0;
}
