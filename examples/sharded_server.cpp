// Pipelined serving demo: open-loop traffic through the asynchronous serving
// engine (src/serve/engine.h) over the sharded epoch layer.
//
// Earlier revisions of this example ran the serving loop synchronously —
// stage a write batch, answer queries, commit, repeat — so updates and reads
// took turns. The engine pipelines them: producers push requests into
// bounded admission queues and move on (open loop — the offered load does
// not wait for completions); a batcher thread flushes size- or
// deadline-triggered batches; query batches run against the immutable
// epoch-N read replica while a committer thread applies epoch N+1 to the
// double-buffered twin. Every request completes through its own
// std::future<weg::Expected<T>>, so one bad request fails alone.
//
// Three sections:
//   1. Live serving: `rounds` rounds of mixed traffic (fresh events in,
//      oldest events out, a fixed stabbing-query mix) submitted open-loop
//      from concurrent producers; per-round rows show completions, served
//      versions, and wall time, then the engine's own stats summarize
//      batching triggers and commit/query overlap.
//   2. Per-request isolation (deterministic trace replay): malformed
//      updates — non-finite endpoint, inverted interval, an id duplicated
//      within the epoch — are screened out and fail with their own
//      InvalidArgument Status while their well-formed batch-mates commit.
//   3. Fault retry (only when WEG_FAULT_INJECTION is on): an armed
//      shard_apply fault makes the epoch's commit fail after the engine's
//      retry budget; every request in the epoch reports the fault, the
//      served version never moves, and resubmitting after disarm succeeds.
//
// The routing argument picks the shard policy: "range" (default) gives the
// shard-pruning planner contiguous per-shard key ranges; "hash" spreads
// records uniformly and broadcasts query batches.
//
//   ./examples/sharded_server [events] [fanout] [rounds] [range|hash]
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "src/augtree/interval_tree.h"
#include "src/parallel/fault.h"
#include "src/serve/engine.h"
#include "src/primitives/random.h"

using namespace weg;
using augtree::DynamicIntervalTree;
using augtree::Interval;
using parallel::Routing;

using IntervalEngine = serve::Engine<DynamicIntervalTree>;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [events] [fanout] [rounds] [range|hash]\n"
               "  events >= 1, fanout in [1, 64], rounds >= 1\n",
               prog);
  return 2;
}

// Strict decimal parse: rejects empty strings, signs, trailing junk, and
// out-of-range values instead of silently truncating them to 0.
bool parse_size(const char* s, size_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 100000, fanout = 4, rounds = 6;
  if (argc > 1 && (!parse_size(argv[1], &n) || n == 0)) return usage(argv[0]);
  if (argc > 2 && (!parse_size(argv[2], &fanout) || fanout == 0 ||
                   fanout > 64)) {
    return usage(argv[0]);
  }
  if (argc > 3 && (!parse_size(argv[3], &rounds) || rounds == 0)) {
    return usage(argv[0]);
  }
  Routing routing = Routing::kRange;
  if (argc > 4) {
    if (std::strcmp(argv[4], "hash") == 0) {
      routing = Routing::kHash;
    } else if (std::strcmp(argv[4], "range") != 0) {
      return usage(argv[0]);
    }
  }
  primitives::Rng rng(2026);

  uint32_t next_id = 0;
  auto make_span = [&] {
    double t0 = rng.next_double() * 1000.0;
    return Interval{t0, t0 + rng.next_double() * 5.0, next_id++};
  };

  // Small batches and a short deadline so even the smoke-test input
  // (2000 events) exercises both flush triggers and the epoch pipeline.
  serve::Config cfg;
  cfg.max_batch = 128;
  cfg.max_delay_us = 300;
  IntervalEngine engine(cfg, routing, fanout, /*alpha=*/4);

  // Initial load: half the stream in one bulk epoch on both replicas.
  std::vector<Interval> live;
  live.reserve(n);
  for (size_t i = 0; i < n / 2; ++i) live.push_back(make_span());
  if (Status s = engine.bulk_load(live); !s.ok()) {
    std::fprintf(stderr, "initial load failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("loaded %zu events into %zu %s-routed shards x 2 replicas "
              "(version %llu)\n",
              live.size(), fanout,
              routing == Routing::kRange ? "range" : "hash",
              (unsigned long long)engine.version());

  // Fixed query mix, reused every round so the rows are comparable.
  std::vector<double> stabs(128);
  for (double& t : stabs) t = rng.next_double() * 1000.0;

  // --- 1. live open-loop serving ----------------------------------------
  engine.start();
  size_t batch = n / (2 * rounds) + 1;
  for (size_t round = 0; round < rounds; ++round) {
    auto t0 = std::chrono::steady_clock::now();

    // Updates: the oldest quarter of the live set out, `batch` fresh
    // events in. Submitted open-loop — futures are collected, not awaited,
    // until the whole round's traffic is in flight.
    std::vector<std::future<Expected<uint64_t>>> ups;
    size_t expire = live.size() / 4;
    for (size_t i = 0; i < expire; ++i) {
      ups.push_back(engine.submit_erase(live[i]));
    }
    std::vector<Interval> fresh;
    for (size_t i = 0; i < batch; ++i) {
      fresh.push_back(make_span());
      ups.push_back(engine.submit_insert(fresh.back()));
    }

    // Queries: two concurrent producers, half the mix each.
    std::vector<std::future<Expected<IntervalEngine::QueryReply>>> qfs(
        stabs.size());
    auto producer = [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) qfs[i] = engine.submit_query(stabs[i]);
    };
    std::thread qa(producer, 0, stabs.size() / 2);
    std::thread qb(producer, stabs.size() / 2, stabs.size());
    qa.join();
    qb.join();

    size_t ok_updates = 0, ok_queries = 0, failed = 0, items = 0;
    uint64_t vmin = ~uint64_t{0}, vmax = 0;
    for (auto& f : ups) {
      f.get().ok() ? ++ok_updates : ++failed;
    }
    for (auto& f : qfs) {
      auto r = f.get();
      if (!r.ok()) {
        ++failed;
        continue;
      }
      ++ok_queries;
      items += r.value().items.size();
      vmin = std::min(vmin, r.value().version);
      vmax = std::max(vmax, r.value().version);
    }
    live.erase(live.begin(), live.begin() + (long)expire);
    live.insert(live.end(), fresh.begin(), fresh.end());
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    std::printf("round %zu: +%zu/-%zu events, %zu ok updates, %zu ok queries "
                "(%zu hits, versions %llu..%llu), %zu failed, %.1f ms\n",
                round, batch, expire, ok_updates, ok_queries, items,
                (unsigned long long)vmin, (unsigned long long)vmax, failed,
                ms);
    if (failed != 0) {
      std::fprintf(stderr, "round %zu: unexpected failures\n", round);
      return 1;
    }
  }
  engine.stop();
  if (engine.size() != live.size()) {
    std::printf("SIZE MISMATCH: %zu vs %zu\n", live.size(), engine.size());
    return 1;
  }
  serve::Stats st = engine.stats();
  std::printf(
      "served %llu queries / %llu updates in %llu query batches + %llu "
      "epochs | flushes: %llu size, %llu deadline, %llu drain | overlap "
      "%.2f (version %llu)\n",
      (unsigned long long)st.queries_admitted,
      (unsigned long long)st.updates_admitted,
      (unsigned long long)st.query_batches,
      (unsigned long long)st.epochs_committed,
      (unsigned long long)st.size_flushes,
      (unsigned long long)st.deadline_flushes,
      (unsigned long long)st.drain_flushes, st.epoch_overlap_ratio(),
      (unsigned long long)engine.version());

  // --- 2. per-request isolation (deterministic trace replay) ------------
  {
    serve::Config tiny;
    tiny.max_batch = 16;
    tiny.max_delay_us = 100;
    IntervalEngine iso(tiny, Routing::kRange, 2, /*alpha=*/4);
    using Ev = IntervalEngine::Event;
    std::vector<Ev> trace;
    auto ins = [&](uint64_t at, Interval r) {
      trace.push_back(Ev{serve::RequestKind::kInsert, at, 0.0, r});
    };
    ins(0, Interval{1.0, 2.0, 900});
    ins(1, Interval{std::nan(""), 2.0, 901});  // non-finite endpoint
    ins(2, Interval{5.0, 3.0, 902});           // inverted interval
    ins(3, Interval{4.0, 6.0, 903});
    ins(4, Interval{7.0, 8.0, 903});           // id duplicated within epoch
    trace.push_back(Ev{serve::RequestKind::kQuery, 500, 1.5, Interval{}});
    auto out = iso.run_trace(trace);
    size_t rejected = 0;
    for (size_t i = 0; i < 5; ++i) {
      if (out[i].status.code() == StatusCode::kInvalidArgument) ++rejected;
    }
    if (rejected != 3 || !out[0].status.ok() || !out[3].status.ok() ||
        !out[5].status.ok() || out[5].items.size() != 1) {
      std::fprintf(stderr, "isolation demo: contract violated\n");
      return 1;
    }
    std::printf("isolation demo: 3 malformed updates failed alone "
                "[e.g. %s], 2 batch-mates committed version %llu, query "
                "served %zu hit at version %llu\n",
                out[1].status.to_string().c_str(),
                (unsigned long long)out[0].version, out[5].items.size(),
                (unsigned long long)out[5].version);
  }

#if WEG_FAULT_INJECTION
  // --- 3. fault retry: a failed epoch fails its requests, not the engine.
  // Armed shard_apply on shard 0: the commit fails after the engine's retry
  // budget, every request in the epoch carries the fault Status, and the
  // served version does not move. Disarming and resubmitting the identical
  // records commits them — the failed epoch left nothing staged behind.
  if (!fault::armed()) {
    engine.start();
    std::vector<Interval> retry;
    // One span below every existing left endpoint pins part of the batch
    // to shard 0, the armed shard, under range routing.
    retry.push_back(Interval{-1.0, 0.5, next_id++});
    for (size_t i = 0; i < 31; ++i) retry.push_back(make_span());
    uint64_t v0 = engine.version();
    size_t faulted = 0;
    {
      fault::ScopedFault guard("shard_apply", /*seed=*/0, /*nth=*/0);
      std::vector<std::future<Expected<uint64_t>>> fs;
      for (const Interval& r : retry) fs.push_back(engine.submit_insert(r));
      for (auto& f : fs) {
        if (f.get().status().code() == StatusCode::kFaultInjected) ++faulted;
      }
    }
    if (faulted == retry.size()) {
      std::vector<std::future<Expected<uint64_t>>> fs;
      for (const Interval& r : retry) fs.push_back(engine.submit_insert(r));
      uint64_t committed = 0;
      for (auto& f : fs) {
        auto r = f.get();
        if (!r.ok()) {
          std::fprintf(stderr, "fault demo: retry after disarm failed\n");
          return 1;
        }
        committed = r.value();
      }
      engine.stop();
      serve::Stats fst = engine.stats();
      if (engine.degraded() || committed <= v0 ||
          fst.commit_retries < (uint64_t)cfg.commit_retries) {
        std::fprintf(stderr, "fault demo: contract violated\n");
        return 1;
      }
      for (const Interval& r : retry) live.push_back(r);
      std::printf("fault demo: epoch failed after %llu commit retries "
                  "(version held at %llu), disarmed resubmit committed "
                  "version %llu (+%zu events)\n",
                  (unsigned long long)fst.commit_retries,
                  (unsigned long long)v0, (unsigned long long)committed,
                  retry.size());
    } else {
      // Hash routing can keep the whole batch off the armed shard; the
      // demo only asserts the contract when the fault actually fired.
      engine.stop();
      std::printf("fault demo: batch missed the armed shard "
                  "(%zu/%zu faulted), skipping retry leg\n",
                  faulted, retry.size());
    }
  }
#endif

  std::printf("final version %llu across %zu shards, %zu live events\n",
              (unsigned long long)engine.version(), fanout, live.size());
  return 0;
}
