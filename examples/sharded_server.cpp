// Sharded serving loop: a spatial event store under continuous load, split
// across S shards per index (src/parallel/sharded.h), serving interleaved
// write batches and query batches through the epoch API.
//
// Two sharded indexes cover the same event stream:
//   * Sharded<DynamicIntervalTree> over time spans -> "which events were
//     active at time t?" (1D stabbing),
//   * Sharded<LogForest<2>>        over locations  -> rectangle reports and
//     k-nearest-event queries.
// Each serving epoch stages a write batch (new events + expirations of the
// oldest ones), answers query batches against the last committed version
// while the writes are still staged, then commits — every shard applies its
// share via bulk_insert/bulk_erase in parallel — and serves the same query
// batches against the new version. No locks anywhere: shards are
// independent, queries are read-only against the committed snapshot, and
// staged updates are invisible until their commit.
//
// The routing argument picks the policy for both indexes: "range" (the
// default) partitions each key space into contiguous per-shard ranges and
// lets the shard-pruning query planner route every query only to the shards
// whose bounds can answer it (commit() rebalances skewed ranges); "hash"
// spreads records uniformly and broadcasts every query batch to all shards.
// The per-epoch rows print shards-visited-per-query so the two policies are
// directly comparable; the results are bitwise-identical either way.
//
// After the serving loop, a fault-injection demo (compiled only when
// WEG_FAULT_INJECTION is on) arms a shard_apply fault, attempts a commit,
// and shows the transactional contract: the commit fails, the version does
// not move, the query results are unchanged, and retrying the same staged
// batch with the fault disarmed succeeds.
//
//   ./examples/sharded_server [events] [fanout] [epochs] [range|hash]
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/augtree/interval_tree.h"
#include "src/kdtree/dynamic.h"
#include "src/parallel/fault.h"
#include "src/parallel/sharded.h"
#include "src/primitives/random.h"

using namespace weg;
using augtree::DynamicIntervalTree;
using augtree::Interval;
using kdtree::LogForest;
using parallel::Routing;
using parallel::Sharded;

struct Event {
  Interval span;       // active time span (id = event id)
  geom::Point2 where;  // location
};

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [events] [fanout] [epochs] [range|hash]\n"
               "  events >= 1, fanout in [1, 64], epochs >= 1\n",
               prog);
  return 2;
}

// Strict decimal parse: rejects empty strings, signs, trailing junk, and
// out-of-range values instead of silently truncating them to 0.
bool parse_size(const char* s, size_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 100000, fanout = 4, epochs = 6;
  if (argc > 1 && (!parse_size(argv[1], &n) || n == 0)) return usage(argv[0]);
  if (argc > 2 && (!parse_size(argv[2], &fanout) || fanout == 0 ||
                   fanout > 64)) {
    return usage(argv[0]);
  }
  if (argc > 3 && (!parse_size(argv[3], &epochs) || epochs == 0)) {
    return usage(argv[0]);
  }
  Routing routing = Routing::kRange;
  if (argc > 4) {
    if (std::strcmp(argv[4], "hash") == 0) {
      routing = Routing::kHash;
    } else if (std::strcmp(argv[4], "range") != 0) {
      return usage(argv[0]);
    }
  }
  primitives::Rng rng(2026);

  auto make_event = [&](uint32_t id) {
    Event e;
    double t0 = rng.next_double() * 1000.0;
    e.span = Interval{t0, t0 + rng.next_double() * 5.0, id};
    e.where = geom::Point2{{rng.next_double(), rng.next_double()}};
    return e;
  };

  Sharded<DynamicIntervalTree> by_time(routing, fanout, /*alpha=*/4);
  Sharded<LogForest<2>> by_location(routing, fanout);

  // Initial load: half the stream in one immediate bulk epoch per index.
  std::vector<Event> live;
  live.reserve(n);
  uint32_t next_id = 0;
  asym::Region load;
  {
    std::vector<Interval> spans;
    std::vector<geom::Point2> wheres;
    for (size_t i = 0; i < n / 2; ++i) {
      Event e = make_event(next_id++);
      live.push_back(e);
      spans.push_back(e.span);
      wheres.push_back(e.where);
    }
    if (Status s = by_time.bulk_insert(spans); !s.ok()) {
      std::fprintf(stderr, "initial load failed: %s\n", s.to_string().c_str());
      return 1;
    }
    if (Status s = by_location.bulk_insert(wheres); !s.ok()) {
      std::fprintf(stderr, "initial load failed: %s\n", s.to_string().c_str());
      return 1;
    }
  }
  auto lc = load.delta();
  std::printf(
      "loaded %zu events into %zu %s-routed shards x 2 indexes: %llu reads, "
      "%llu writes (version %llu)\n",
      live.size(), fanout, routing == Routing::kRange ? "range" : "hash",
      (unsigned long long)lc.reads, (unsigned long long)lc.writes,
      (unsigned long long)by_time.version());

  // Fixed query mix, reused every epoch so the per-epoch rows are
  // comparable: 128 time stabs, 64 rectangles, 64 nearest-event probes.
  std::vector<double> stabs(128);
  for (double& t : stabs) t = rng.next_double() * 1000.0;
  std::vector<geom::Box2> rects(64);
  for (auto& b : rects) {
    double x = rng.next_double() * 0.9, y = rng.next_double() * 0.9;
    b.lo[0] = x;
    b.hi[0] = x + 0.1;
    b.lo[1] = y;
    b.hi[1] = y + 0.1;
  }
  std::vector<geom::Point2> probes(64);
  for (auto& p : probes) {
    p = geom::Point2{{rng.next_double(), rng.next_double()}};
  }

  size_t batch = n / (2 * epochs) + 1;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    asym::Region turn;
    uint64_t named = by_time.begin_epoch();

    // Stage the write batch: `batch` fresh events in, the oldest quarter of
    // the live set out.
    size_t expire = live.size() / 4;
    for (size_t i = 0; i < expire; ++i) {
      by_time.stage_erase(live[i].span);
      by_location.stage_erase(live[i].where);
    }
    std::vector<Event> fresh;
    for (size_t i = 0; i < batch; ++i) {
      Event e = make_event(next_id++);
      fresh.push_back(e);
      by_time.stage_insert(e.span);
      by_location.stage_insert(e.where);
    }

    // Serve against the previous version while the writes sit staged.
    auto active_before = by_time.stab_count_batch(stabs);
    size_t before_total = 0;
    for (size_t c : active_before) before_total += c;

    // Commit: every shard applies its share of the batch in parallel. A
    // non-OK commit rolls the epoch back wholesale; this loop only stages
    // well-formed records, so a failure here is a real bug (or an armed
    // WEG_FAULT from the environment).
    if (auto v = by_time.commit(); !v.ok()) {
      std::fprintf(stderr, "epoch %llu: time-index commit failed: %s\n",
                   (unsigned long long)named, v.status().to_string().c_str());
      return 1;
    }
    if (auto v = by_location.commit(); !v.ok()) {
      std::fprintf(stderr, "epoch %llu: location-index commit failed: %s\n",
                   (unsigned long long)named, v.status().to_string().c_str());
      return 1;
    }

    // Serve the same mix against the new version.
    auto active = by_time.stab_count_batch(stabs);
    auto hits = by_location.range_report_batch(rects);
    auto nearest = by_location.knn_batch(probes, 4);
    size_t active_total = 0;
    for (size_t c : active) active_total += c;

    live.erase(live.begin(), live.begin() + (long)expire);
    live.insert(live.end(), fresh.begin(), fresh.end());
    auto tc = turn.delta();
    // Shards visited per routed query so far, across both indexes: the
    // planner's selectivity (broadcast pins this at exactly `fanout`).
    uint64_t pq = by_time.planner_queries() + by_location.planner_queries();
    uint64_t pv =
        by_time.planner_shard_visits() + by_location.planner_shard_visits();
    std::printf(
        "epoch %llu: +%zu/-%zu events, live %zu | stab hits %zu -> %zu, "
        "rect hits %zu, knn %zu | %llu reads, %llu writes | "
        "%.2f shards/query\n",
        (unsigned long long)named, batch, expire, live.size(), before_total,
        active_total, hits.total(), nearest.total(),
        (unsigned long long)tc.reads, (unsigned long long)tc.writes,
        pq ? (double)pv / (double)pq : 0.0);
    if (by_time.size() != live.size() || by_location.size() != live.size()) {
      std::printf("SIZE MISMATCH: %zu vs %zu/%zu\n", live.size(),
                  by_time.size(), by_location.size());
      return 1;
    }
  }
#if WEG_FAULT_INJECTION
  // Rollback demo: arm a deterministic shard_apply fault, attempt a commit,
  // and verify the transactional contract end to end. The staged batch is
  // kept across the failure, so disarming and retrying commits exactly the
  // records the failed epoch tried to publish.
  if (!fault::armed()) {
    std::vector<Event> retry;
    for (size_t i = 0; i < 64; ++i) {
      Event e = make_event(next_id++);
      retry.push_back(e);
      by_time.stage_insert(e.span);
    }
    uint64_t v0 = by_time.version();
    auto before = by_time.stab_count_batch(stabs);
    {
      fault::ScopedFault guard("shard_apply", /*seed=*/0, /*nth=*/0);
      auto v = by_time.commit();
      if (v.ok() || by_time.version() != v0 ||
          by_time.stab_count_batch(stabs) != before) {
        std::fprintf(stderr, "rollback demo: contract violated\n");
        return 1;
      }
      std::printf("rollback demo: commit failed [%s], version still %llu, "
                  "queries unchanged\n",
                  v.status().to_string().c_str(), (unsigned long long)v0);
    }
    auto v = by_time.commit();  // fault disarmed: same staged batch lands
    if (!v.ok() || by_time.version() != v0 + 1) {
      std::fprintf(stderr, "rollback demo: retry after disarm failed\n");
      return 1;
    }
    for (const Event& e : retry) live.push_back(e);
    std::printf("rollback demo: retry committed version %llu (+%zu events)\n",
                (unsigned long long)v.value(), retry.size());
  }
#endif

  std::printf(
      "final version %llu across %zu shards, %zu live events, "
      "%zu + %zu rebalances\n",
      (unsigned long long)by_time.version(), fanout, live.size(),
      by_time.rebalances(), by_location.rebalances());
  return 0;
}
