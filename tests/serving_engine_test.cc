// The asynchronous serving engine (src/serve/engine.h) on top of the
// sharded epoch layer. Trace mode is the determinism anchor: a fixed
// request trace replayed with the injected logical clock must produce
// bitwise-identical admission decisions, batch boundaries, versions, and
// query results at every worker count (the CMake registration reruns the
// suite at WEG_NUM_THREADS=1/2/8, and the tsan-parallel preset runs it
// under TSan). The suite pins:
//   * fixed-trace determinism against a brute-force per-version oracle,
//   * deterministic admission rejection when the queue capacity is hit,
//   * size- and deadline-triggered flushes on the injected clock,
//   * per-request Status isolation (malformed records, duplicate ids, and
//     query_poison faults fail their own request, batch-mates succeed),
//   * ScopedFault(shard_apply): the engine retries, propagates the failure
//     to exactly the epoch's requests, and serves normally once disarmed,
//   * live-mode snapshot isolation: every concurrent query's reply matches
//     the brute-force oracle at exactly the version it reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/augtree/interval.h"
#include "src/augtree/interval_tree.h"
#include "src/core/status.h"
#include "src/geom/point.h"
#include "src/kdtree/dynamic.h"
#include "src/parallel/fault.h"
#include "src/parallel/sharded.h"
#include "src/primitives/random.h"
#include "src/serve/engine.h"

namespace weg {
namespace {

using augtree::DynamicIntervalTree;
using augtree::Interval;
using kdtree::LogForest;
using parallel::Routing;
using parallel::Sharded;
using serve::Config;
using serve::RequestKind;

using IntervalEngine = serve::Engine<DynamicIntervalTree>;
using Event = serve::TraceEvent<DynamicIntervalTree>;
using Outcome = serve::TraceOutcome<DynamicIntervalTree>;

std::vector<Interval> make_intervals(size_t n, uint64_t seed, double lo,
                                     double hi, double len, uint32_t id0) {
  primitives::Rng rng(seed);
  std::vector<Interval> ivs(n);
  for (size_t i = 0; i < n; ++i) {
    double a = lo + rng.next_double() * (hi - lo);
    ivs[i] = Interval{a, a + rng.next_double() * len, id0 + uint32_t(i)};
  }
  return ivs;
}

std::vector<uint32_t> brute_stab(const std::vector<Interval>& live, double q) {
  std::vector<uint32_t> ids;
  for (const Interval& iv : live) {
    if (iv.contains(q)) ids.push_back(iv.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Event q_at(uint64_t t, double q) {
  Event e;
  e.kind = RequestKind::kQuery;
  e.at_us = t;
  e.query = q;
  return e;
}
Event ins_at(uint64_t t, Interval iv) {
  Event e;
  e.kind = RequestKind::kInsert;
  e.at_us = t;
  e.rec = iv;
  return e;
}
Event ers_at(uint64_t t, Interval iv) {
  Event e;
  e.kind = RequestKind::kErase;
  e.at_us = t;
  e.rec = iv;
  return e;
}

// Replays the committed updates of a trace run to reconstruct the live set
// at each published version, then checks every query outcome against a
// brute-force stab of exactly the version it reports — the snapshot an
// engine query sees must be some whole epoch, never a partial apply.
void check_against_oracle(const std::vector<Event>& trace,
                          const std::vector<Outcome>& out,
                          const std::vector<Interval>& base) {
  std::map<uint64_t, std::vector<size_t>> by_version;  // version -> events
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].kind != RequestKind::kQuery && out[i].status.ok()) {
      by_version[out[i].version].push_back(i);
    }
  }
  std::map<uint64_t, std::vector<Interval>> live_at;  // version -> live set
  std::vector<Interval> live = base;
  live_at[1] = live;  // bulk_load publishes version 1
  for (const auto& [ver, events] : by_version) {
    for (size_t i : events) {  // commit order: all inserts, then all erases
      if (trace[i].kind == RequestKind::kInsert) live.push_back(trace[i].rec);
    }
    for (size_t i : events) {
      if (trace[i].kind != RequestKind::kErase) continue;
      live.erase(std::remove(live.begin(), live.end(), trace[i].rec),
                 live.end());
    }
    live_at[ver] = live;
  }
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].kind != RequestKind::kQuery || !out[i].status.ok()) continue;
    auto it = live_at.find(out[i].version);
    ASSERT_NE(it, live_at.end())
        << "query " << i << " reports unknown version " << out[i].version;
    std::vector<uint32_t> got = out[i].items;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_stab(it->second, trace[i].query))
        << "query " << i << " at version " << out[i].version;
  }
}

// A mixed query/insert/erase trace with timestamps that exercise both size
// and deadline flush triggers. Pure function of the seed.
std::vector<Event> mixed_trace(const std::vector<Interval>& base,
                               uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<Event> trace;
  uint64_t t = 0;
  uint32_t next_id = 10000;
  size_t next_erase = 0;
  for (size_t i = 0; i < 220; ++i) {
    t += 17 + rng.next_bounded(60);
    if (i % 5 == 4) {
      double a = rng.next_double();
      trace.push_back(ins_at(t, Interval{a, a + 0.03, next_id++}));
    } else if (i % 11 == 10 && next_erase + 7 < base.size()) {
      trace.push_back(ers_at(t, base[next_erase]));
      next_erase += 7;
    } else {
      trace.push_back(q_at(t, rng.next_double()));
    }
  }
  return trace;
}

TEST(ServingTrace, FixedTraceIsDeterministicAndMatchesOracle) {
  Config cfg;
  cfg.queue_capacity = 64;
  cfg.max_batch = 16;
  cfg.max_delay_us = 300;
  const auto base = make_intervals(256, 1, 0.0, 1.0, 0.05, 0);
  const auto trace = mixed_trace(base, 7);

  auto run = [&] {
    IntervalEngine eng(cfg, Routing::kHash, 4);
    EXPECT_TRUE(eng.bulk_load(base).ok());
    auto out = eng.run_trace(trace);
    return std::make_pair(std::move(out), eng.stats());
  };
  auto [out1, st1] = run();
  auto [out2, st2] = run();

  ASSERT_EQ(out1.size(), trace.size());
  for (size_t i = 0; i < out1.size(); ++i) {
    EXPECT_EQ(out1[i].status.code(), out2[i].status.code()) << i;
    EXPECT_EQ(out1[i].items, out2[i].items) << i;
    EXPECT_EQ(out1[i].version, out2[i].version) << i;
    EXPECT_EQ(out1[i].completed_at_us, out2[i].completed_at_us) << i;
  }
  EXPECT_EQ(st1.query_batches, st2.query_batches);
  EXPECT_EQ(st1.size_flushes, st2.size_flushes);
  EXPECT_EQ(st1.deadline_flushes, st2.deadline_flushes);
  EXPECT_EQ(st1.epochs_committed, st2.epochs_committed);
  EXPECT_EQ(st1.batch_size_hist, st2.batch_size_hist);

  // The trace commits several epochs and never overruns the queue.
  EXPECT_GT(st1.epochs_committed, 2u);
  EXPECT_EQ(st1.queries_rejected, 0u);
  EXPECT_EQ(st1.updates_rejected, 0u);
  EXPECT_EQ(st1.requests_failed, 0u);
  for (const Outcome& o : out1) EXPECT_TRUE(o.status.ok());
  check_against_oracle(trace, out1, base);
}

TEST(ServingTrace, AdmissionRejectsDeterministicallyWhenQueueFull) {
  Config cfg;
  cfg.queue_capacity = 4;
  cfg.max_batch = 8;
  cfg.max_delay_us = 1000;
  IntervalEngine eng(cfg, Routing::kHash, 2);
  ASSERT_TRUE(eng.bulk_load(make_intervals(64, 2, 0.0, 1.0, 0.1, 0)).ok());

  std::vector<Event> trace;
  for (int i = 0; i < 6; ++i) trace.push_back(q_at(0, 0.5));
  trace.push_back(q_at(2000, 0.25));
  auto out = eng.run_trace(trace);

  // Exactly the 5th and 6th submissions overflow the capacity-4 queue and
  // are rejected at their own admission time.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(out[i].status.ok()) << i;
    EXPECT_EQ(out[i].completed_at_us, 1000u) << i;  // deadline of t=0
  }
  for (size_t i : {size_t{4}, size_t{5}}) {
    EXPECT_EQ(out[i].status.code(), StatusCode::kResourceExhausted) << i;
    EXPECT_EQ(out[i].completed_at_us, 0u) << i;
    EXPECT_TRUE(out[i].items.empty()) << i;
  }
  // The t=2000 query drains at its own deadline after the trace ends.
  EXPECT_TRUE(out[6].status.ok());
  EXPECT_EQ(out[6].completed_at_us, 3000u);

  auto st = eng.stats();
  EXPECT_EQ(st.queries_admitted, 5u);
  EXPECT_EQ(st.queries_rejected, 2u);
  EXPECT_EQ(st.deadline_flushes, 1u);
  EXPECT_EQ(st.drain_flushes, 1u);
}

TEST(ServingTrace, SizeAndDeadlineTriggersOnInjectedClock) {
  Config cfg;
  cfg.queue_capacity = 100;
  cfg.max_batch = 4;
  cfg.max_delay_us = 500;
  IntervalEngine eng(cfg, Routing::kHash, 2);
  ASSERT_TRUE(eng.bulk_load(make_intervals(64, 3, 0.0, 1.0, 0.1, 0)).ok());

  // 4 queries at t=0..3 hit max_batch and flush immediately at t=3; the
  // 3 queries at t=1000,1100,1200 flush when the oldest waiter's deadline
  // expires at t=1500 (the t=9000 event advances the clock past it).
  std::vector<Event> trace;
  for (uint64_t t = 0; t < 4; ++t) trace.push_back(q_at(t, 0.5));
  for (uint64_t t : {1000, 1100, 1200}) {
    trace.push_back(q_at(t, 0.5));
  }
  trace.push_back(q_at(9000, 0.5));
  auto out = eng.run_trace(trace);

  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].completed_at_us, 3u) << i;
  for (size_t i = 4; i < 7; ++i) EXPECT_EQ(out[i].completed_at_us, 1500u) << i;
  EXPECT_EQ(out[7].completed_at_us, 9500u);  // end-of-trace drain
  auto st = eng.stats();
  EXPECT_EQ(st.size_flushes, 1u);
  EXPECT_EQ(st.deadline_flushes, 1u);
  EXPECT_EQ(st.drain_flushes, 1u);
  // One batch of 4 (bit_width bucket 3) and two of 3 and 1 (buckets 2, 1).
  EXPECT_EQ(st.batch_size_hist[3], 1u);
  EXPECT_EQ(st.batch_size_hist[2], 1u);
  EXPECT_EQ(st.batch_size_hist[1], 1u);
}

TEST(ServingTrace, MalformedUpdatesFailAloneBatchMatesCommit) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  Config cfg;
  cfg.max_batch = 16;
  cfg.max_delay_us = 100;
  IntervalEngine eng(cfg, Routing::kHash, 2);
  const auto base = make_intervals(32, 4, 0.0, 1.0, 0.1, 0);
  ASSERT_TRUE(eng.bulk_load(base).ok());

  std::vector<Event> trace;
  trace.push_back(ins_at(0, Interval{0.1, 0.2, 1000}));   // good
  trace.push_back(ins_at(1, Interval{kNaN, 0.5, 1001}));  // NaN endpoint
  trace.push_back(ins_at(2, Interval{0.9, 0.1, 1002}));   // inverted
  trace.push_back(ins_at(3, Interval{0.3, 0.4, 1003}));   // good
  trace.push_back(ins_at(4, Interval{0.5, 0.6, 1003}));   // dup id in epoch
  trace.push_back(ers_at(5, base[0]));                    // good erase
  trace.push_back(q_at(500, 0.15));
  auto out = eng.run_trace(trace);

  EXPECT_TRUE(out[0].status.ok());
  EXPECT_EQ(out[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out[3].status.ok());
  EXPECT_EQ(out[4].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(out[5].status.ok());
  // The good requests rode one epoch: same committed version for all three.
  EXPECT_EQ(out[0].version, 2u);
  EXPECT_EQ(out[3].version, 2u);
  EXPECT_EQ(out[5].version, 2u);
  EXPECT_EQ(eng.stats().requests_failed, 3u);
  check_against_oracle(trace, out, base);
}

TEST(ServingTrace, QueryPoisonFailsOnlyRequestsOnArmedShard) {
  Config cfg;
  cfg.queue_capacity = 64;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  IntervalEngine eng(cfg, Routing::kRange, 4);
  // Short intervals across [0,100): under range routing the planner sends a
  // low stab to shard 0 and a high stab to the top shard only.
  const auto base = make_intervals(256, 5, 0.0, 100.0, 0.5, 0);
  ASSERT_TRUE(eng.bulk_load(base).ok());

  // Stab at actual record endpoints so the planner provably visits the
  // shard holding that record: the lowest left endpoint lives in shard 0
  // (the armed shard), the highest in the top shard, whose coverage stays
  // clear of shard 0's.
  auto by_l = [](const Interval& a, const Interval& b) { return a.l < b.l; };
  double lo_q = std::min_element(base.begin(), base.end(), by_l)->l;
  double hi_q = std::max_element(base.begin(), base.end(), by_l)->l;

  fault::ScopedFault poison("query_poison", 0, 0);  // exact pin: shard 0
  std::vector<Event> trace;
  trace.push_back(q_at(0, lo_q));  // routed to the armed shard
  trace.push_back(q_at(1, hi_q));  // routed clear of it
  trace.push_back(q_at(2, hi_q));
  auto out = eng.run_trace(trace);

  EXPECT_EQ(out[0].status.code(), StatusCode::kFaultInjected);
  EXPECT_TRUE(out[0].items.empty());
  EXPECT_TRUE(out[1].status.ok());
  EXPECT_TRUE(out[2].status.ok());
  std::vector<uint32_t> got = out[1].items;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, brute_stab(base, hi_q));
  EXPECT_EQ(eng.stats().requests_failed, 1u);
}

TEST(ServingTrace, ShardApplyFaultRetriesPropagatesAndRecovers) {
  Config cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  cfg.commit_retries = 2;
  IntervalEngine eng(cfg, Routing::kHash, 4);
  const auto base = make_intervals(64, 6, 0.0, 1.0, 0.1, 0);
  ASSERT_TRUE(eng.bulk_load(base).ok());

  {
    fault::ScopedFault fail("shard_apply", 0, 0);  // shard 0 always fails
    std::vector<Event> trace;
    trace.push_back(ins_at(0, Interval{0.1, 0.2, 2000}));
    trace.push_back(ins_at(1, Interval{0.3, 0.4, 2001}));
    trace.push_back(ins_at(2, Interval{0.5, 0.6, 2002}));
    auto out = eng.run_trace(trace);
    // All commit attempts trip: the epoch's requests carry the fault, the
    // engine rolls back and keeps serving epoch 1.
    for (const Outcome& o : out) {
      EXPECT_EQ(o.status.code(), StatusCode::kFaultInjected);
    }
    auto st = eng.stats();
    EXPECT_EQ(st.epochs_failed, 1u);
    EXPECT_EQ(st.commit_retries, uint64_t(cfg.commit_retries));
    EXPECT_EQ(eng.version(), 1u);
  }

  // Disarmed: the same engine commits the next epoch — not wedged.
  std::vector<Event> trace;
  trace.push_back(ins_at(0, Interval{0.1, 0.2, 2000}));
  trace.push_back(ins_at(1, Interval{0.3, 0.4, 2001}));
  trace.push_back(q_at(500, 0.15));
  auto out = eng.run_trace(trace);
  EXPECT_TRUE(out[0].status.ok());
  EXPECT_TRUE(out[1].status.ok());
  EXPECT_EQ(out[0].version, 2u);
  ASSERT_TRUE(out[2].status.ok());
  std::vector<uint32_t> got = out[2].items;
  std::sort(got.begin(), got.end());
  auto live = base;
  live.push_back(Interval{0.1, 0.2, 2000});
  live.push_back(Interval{0.3, 0.4, 2001});
  EXPECT_EQ(got, brute_stab(live, 0.15));
  EXPECT_EQ(eng.version(), 2u);
  EXPECT_EQ(eng.stats().epochs_committed, 1u);
}

// A kNN engine over the 2-d log forest: determinism between identical
// engines and membership of every reply in the correct epoch's live set.
TEST(ServingTrace, KnnEngineServesPointFamily) {
  using PointEngine = serve::Engine<LogForest<2>>;
  using PEvent = serve::TraceEvent<LogForest<2>>;
  Config cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  cfg.knn_k = 4;

  primitives::Rng rng(11);
  std::vector<geom::Point2> base(128);
  for (auto& p : base) p = {rng.next_double(), rng.next_double()};

  std::vector<PEvent> trace;
  for (int i = 0; i < 8; ++i) {  // one query batch against version 1
    PEvent e;
    e.kind = RequestKind::kQuery;
    e.at_us = uint64_t(i);
    e.query = {rng.next_double(), rng.next_double()};
    trace.push_back(e);
  }
  std::vector<geom::Point2> extra(8);
  for (size_t i = 0; i < extra.size(); ++i) {
    extra[i] = {rng.next_double(), rng.next_double()};
    PEvent e;
    e.kind = RequestKind::kInsert;
    e.at_us = 200 + i;
    e.rec = extra[i];
    trace.push_back(e);
  }
  PEvent last;
  last.kind = RequestKind::kQuery;
  last.at_us = 1000;
  last.query = {0.5, 0.5};
  trace.push_back(last);

  auto run = [&] {
    PointEngine eng(cfg, Routing::kHash, 2);
    EXPECT_TRUE(eng.bulk_load(base).ok());
    return eng.run_trace(trace);
  };
  auto out1 = run();
  auto out2 = run();
  ASSERT_EQ(out1.size(), out2.size());
  auto key = [](const geom::Point2& p) { return std::make_pair(p[0], p[1]); };
  std::set<std::pair<double, double>> in_base, in_all;
  for (const auto& p : base) in_base.insert(key(p));
  in_all = in_base;
  for (const auto& p : extra) in_all.insert(key(p));
  for (size_t i = 0; i < out1.size(); ++i) {
    EXPECT_EQ(out1[i].status.code(), out2[i].status.code()) << i;
    EXPECT_EQ(out1[i].version, out2[i].version) << i;
    ASSERT_EQ(out1[i].items.size(), out2[i].items.size()) << i;
    for (size_t j = 0; j < out1[i].items.size(); ++j) {
      EXPECT_EQ(key(out1[i].items[j]), key(out2[i].items[j])) << i;
    }
    if (trace[i].kind != RequestKind::kQuery || !out1[i].status.ok()) continue;
    EXPECT_EQ(out1[i].items.size(), cfg.knn_k) << i;
    const auto& members = out1[i].version == 1 ? in_base : in_all;
    for (const auto& p : out1[i].items) {
      EXPECT_TRUE(members.count(key(p))) << i;
    }
  }
  // The final query ran after the insert epoch committed.
  EXPECT_EQ(out1.back().version, 2u);
}

// Live mode: real producer/batcher/committer threads. Every query reply
// must match the brute-force oracle at exactly the version it reports —
// a query that observed a half-applied epoch or a torn flip would mismatch.
TEST(ServingLive, SnapshotIsolationUnderConcurrentCommits) {
  Config cfg;
  cfg.queue_capacity = 8192;
  cfg.max_batch = 64;
  cfg.max_delay_us = 200;
  IntervalEngine eng(cfg, Routing::kHash, 4);
  const auto base = make_intervals(512, 8, 0.0, 1.0, 0.05, 0);
  ASSERT_TRUE(eng.bulk_load(base).ok());
  eng.start();

  primitives::Rng rng(21);
  std::vector<std::pair<Interval, std::future<Expected<uint64_t>>>> updates;
  std::vector<std::pair<double, std::future<Expected<IntervalEngine::QueryReply>>>>
      queries;
  uint32_t next_id = 50000;
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int j = 0; j < 64; ++j) {
      double a = rng.next_double();
      Interval iv{a, a + 0.03, next_id++};
      updates.emplace_back(iv, eng.submit_insert(iv));
    }
    for (int j = 0; j < 80; ++j) {
      double q = rng.next_double();
      queries.emplace_back(q, eng.submit_query(q));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  eng.stop();

  std::map<uint64_t, std::vector<Interval>> by_version;
  for (auto& [iv, fut] : updates) {
    auto r = fut.get();
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_GT(r.value(), 1u);
    by_version[r.value()].push_back(iv);
  }
  std::map<uint64_t, std::vector<Interval>> live_at;
  std::vector<Interval> live = base;
  live_at[1] = live;
  for (auto& [ver, ivs] : by_version) {
    live.insert(live.end(), ivs.begin(), ivs.end());
    live_at[ver] = live;
  }
  size_t checked = 0;
  for (auto& [q, fut] : queries) {
    auto r = fut.get();
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    auto it = live_at.find(r.value().version);
    ASSERT_NE(it, live_at.end()) << "unknown version " << r.value().version;
    std::vector<uint32_t> got = r.value().items;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute_stab(it->second, q));
    ++checked;
  }
  EXPECT_EQ(checked, queries.size());
  auto st = eng.stats();
  EXPECT_EQ(st.epochs_committed, by_version.size());
  EXPECT_EQ(eng.version(), 1 + st.epochs_committed);
  EXPECT_EQ(st.requests_failed, 0u);
}

// Concurrent producers from several threads (the TSan target for the
// admission queues and the batcher/committer hand-off), plus the
// stop/restart contract.
TEST(ServingLive, ConcurrentProducersAndRestart) {
  Config cfg;
  cfg.queue_capacity = 4096;
  cfg.max_batch = 32;
  cfg.max_delay_us = 150;
  IntervalEngine eng(cfg, Routing::kHash, 2);
  ASSERT_TRUE(eng.bulk_load(make_intervals(128, 9, 0.0, 1.0, 0.1, 0)).ok());
  eng.start();

  constexpr int kThreads = 4;
  std::vector<std::vector<std::future<Expected<IntervalEngine::QueryReply>>>>
      qfuts(kThreads);
  std::vector<std::vector<std::future<Expected<uint64_t>>>> ufuts(kThreads);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      primitives::Rng rng(100 + uint64_t(t));
      for (int i = 0; i < 25; ++i) {
        qfuts[t].push_back(eng.submit_query(rng.next_double()));
        if (i % 3 == 0) {
          double a = rng.next_double();
          ufuts[t].push_back(eng.submit_insert(
              Interval{a, a + 0.05, uint32_t(90000 + t * 1000 + i)}));
        }
      }
    });
  }
  for (auto& th : producers) th.join();
  eng.stop();

  for (int t = 0; t < kThreads; ++t) {
    for (auto& f : qfuts[t]) {
      auto r = f.get();
      ASSERT_TRUE(r.ok()) << r.status().to_string();
      EXPECT_GE(r.value().version, 1u);
    }
    for (auto& f : ufuts[t]) {
      auto r = f.get();
      ASSERT_TRUE(r.ok()) << r.status().to_string();
    }
  }

  // Stopped: a submit completes immediately with FailedPrecondition.
  auto rejected = eng.submit_query(0.5).get();
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);

  // Restart serves again.
  EXPECT_FALSE(eng.degraded());
  eng.start();
  auto again = eng.submit_query(0.5).get();
  EXPECT_TRUE(again.ok()) << again.status().to_string();
  eng.stop();
}

// The sharded layer's snapshot handle: pins the published version and
// reports invalid the moment another epoch commits into the replica.
TEST(ShardedSnapshot, PinsVersionAndDetectsCommits) {
  Sharded<DynamicIntervalTree> layer(2);
  ASSERT_TRUE(layer.bulk_insert(make_intervals(32, 10, 0.0, 1.0, 0.1, 0)).ok());
  auto snap = layer.snapshot();
  EXPECT_TRUE(snap.valid());
  EXPECT_EQ(snap.version(), layer.version());
  EXPECT_EQ(snap->size(), layer.size());

  layer.stage_insert(Interval{0.1, 0.2, 500});
  EXPECT_TRUE(snap.valid());  // staging publishes nothing
  ASSERT_TRUE(layer.commit().ok());
  EXPECT_FALSE(snap.valid());  // the pinned epoch is gone

  parallel::ShardedSnapshot<DynamicIntervalTree> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.valid());
}

}  // namespace
}  // namespace weg
