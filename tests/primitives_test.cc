// Parallel primitives tests: reduce/scan/pack/filter/map against serial
// references (parameterized over sizes), the sorting black boxes, counting /
// radix / semisort grouping invariants, and the RNG utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "src/primitives/random.h"
#include "tests/testing_util.h"
#include "src/primitives/semisort.h"
#include "src/primitives/sequence.h"
#include "src/primitives/sort.h"

namespace weg::primitives {
namespace {

using weg::testing::random_vec;

class SeqSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(SeqSizes, ReduceAddMatchesSerial) {
  auto v = random_vec(GetParam(), 1, 1000);
  uint64_t expect = std::accumulate(v.begin(), v.end(), uint64_t{0});
  EXPECT_EQ(reduce_add(v), expect);
}

TEST_P(SeqSizes, ReduceCustomMonoid) {
  auto v = random_vec(GetParam(), 2, 0);
  uint64_t expect = 0;
  for (auto x : v) expect = std::max(expect, x);
  EXPECT_EQ(reduce(v, uint64_t{0},
                   [](uint64_t a, uint64_t b) { return std::max(a, b); }),
            expect);
}

TEST_P(SeqSizes, ScanExclusiveMatchesSerial) {
  auto v = random_vec(GetParam(), 3, 100);
  auto ref = v;
  uint64_t acc = 0;
  for (auto& x : ref) {
    uint64_t t = x;
    x = acc;
    acc += t;
  }
  auto copy = v;
  uint64_t total = scan_exclusive(copy);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(copy, ref);
}

TEST_P(SeqSizes, PackKeepsFlaggedInOrder) {
  auto v = random_vec(GetParam(), 4, 100);
  auto packed = pack(v, [&](size_t i) { return v[i] % 3 == 0; });
  std::vector<uint64_t> ref;
  for (auto x : v) {
    if (x % 3 == 0) ref.push_back(x);
  }
  EXPECT_EQ(packed, ref);
}

TEST_P(SeqSizes, FilterEqualsPack) {
  auto v = random_vec(GetParam(), 5, 50);
  auto f = filter(v, [](uint64_t x) { return x < 25; });
  auto p = pack(v, [&](size_t i) { return v[i] < 25; });
  EXPECT_EQ(f, p);
}

TEST_P(SeqSizes, MapApplies) {
  auto v = random_vec(GetParam(), 6, 1000);
  auto m = map(v, [](uint64_t x) { return x * 2 + 1; });
  ASSERT_EQ(m.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) ASSERT_EQ(m[i], v[i] * 2 + 1);
}

TEST_P(SeqSizes, TabulateProducesIndices) {
  size_t n = GetParam();
  auto t = tabulate(n, [](size_t i) { return i * i; });
  ASSERT_EQ(t.size(), n);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(t[i], i * i);
}

TEST_P(SeqSizes, SortInplaceSorts) {
  auto v = random_vec(GetParam(), 7, 0);
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  sort_inplace(v);
  EXPECT_EQ(v, ref);
}

TEST_P(SeqSizes, SortWithDuplicates) {
  auto v = random_vec(GetParam(), 8, 5);
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  sort_inplace(v);
  EXPECT_EQ(v, ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SeqSizes,
                         ::testing::Values(0, 1, 2, 5, 100, 4096, 5000,
                                           100000));

TEST(Sort, CustomComparator) {
  auto v = random_vec(10000, 9, 0);
  sort_inplace(v, std::greater<uint64_t>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<uint64_t>{}));
}

TEST(Sort, ChargesNLogNWrites) {
  size_t n = 1 << 16;
  auto v = random_vec(n, 10, 0);
  asym::Region r;
  sort_inplace(v);
  auto d = r.delta();
  // Mergesort: at least one write per element per merge level above the
  // sequential base case.
  EXPECT_GT(d.writes, n * 2);
}

TEST(CountingSort, StableAndGrouped) {
  auto v = random_vec(20000, 11, 64);
  std::vector<std::pair<uint64_t, uint32_t>> recs(v.size());
  for (size_t i = 0; i < v.size(); ++i) recs[i] = {v[i], (uint32_t)i};
  auto offsets = counting_sort(recs, 64,
                               [](const auto& r) { return (size_t)r.first; });
  ASSERT_EQ(offsets.size(), 65u);
  EXPECT_EQ(offsets[64], recs.size());
  for (size_t k = 0; k < 64; ++k) {
    for (size_t i = offsets[k]; i < offsets[k + 1]; ++i) {
      ASSERT_EQ(recs[i].first, k);
      if (i > offsets[k]) {
        ASSERT_LT(recs[i - 1].second, recs[i].second) << "stability violated";
      }
    }
  }
}

TEST(RadixSort, SortsBoundedKeys) {
  for (uint64_t range : {100ull, 70000ull, 1ull << 22}) {
    auto v = random_vec(30000, 12 + range, range);
    auto ref = v;
    std::sort(ref.begin(), ref.end());
    radix_sort(v, range, [](uint64_t x) { return x; });
    EXPECT_EQ(v, ref) << "range=" << range;
  }
}

TEST(Semisort, GroupsEqualKeys) {
  auto v = random_vec(50000, 13, 500);
  auto groups = semisort_by(v, [](uint64_t x) { return x; });
  // Every group uniform; all keys covered; group count == distinct keys.
  std::map<uint64_t, size_t> hist;
  for (auto x : v) hist[x]++;
  ASSERT_EQ(groups.back(), v.size());
  size_t num_groups = groups.size() - 1;
  EXPECT_EQ(num_groups, hist.size());
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    uint64_t key = v[groups[g]];
    for (size_t i = groups[g]; i < groups[g + 1]; ++i) ASSERT_EQ(v[i], key);
    ASSERT_EQ(groups[g + 1] - groups[g], hist[key]);
  }
}

TEST(Semisort, SingletonAndEmpty) {
  std::vector<uint64_t> empty;
  auto g0 = semisort_by(empty, [](uint64_t x) { return x; });
  EXPECT_EQ(g0, std::vector<size_t>{0});
  std::vector<uint64_t> one{42};
  auto g1 = semisort_by(one, [](uint64_t x) { return x; });
  ASSERT_EQ(g1.size(), 2u);
}

TEST(Semisort, LinearWrites) {
  // The write-efficiency contract: semisort writes O(n), not O(n log n).
  size_t n = 1 << 18;
  auto v = random_vec(n, 14, n / 4);
  asym::Region r;
  semisort_by(v, [](uint64_t x) { return x; });
  auto d = r.delta();
  EXPECT_LT(d.writes, 4 * n);
}

// ---------------------------------------------------------------------------
// Sampling-semisort distribution matrix: uniform, Zipf(1.0), all-equal, and
// adversarial equal-hash-different-key inputs, on both the sampled (n >=
// 4096) and classic small-n paths. The p=1/2/8 reruns of this suite (see
// tests/CMakeLists.txt) turn every golden below — permutation fingerprints
// and exact asym counts — into a cross-worker-count determinism check.

enum class Dist { kUniform, kZipf, kAllEqual };

std::vector<uint64_t> dist_vec(Dist d, size_t n, uint64_t seed) {
  switch (d) {
    case Dist::kUniform:
      return random_vec(n, seed);  // full 64-bit width: no repeats expected
    case Dist::kZipf: {
      Rng rng(seed);
      ZipfDistribution zipf(n, 1.0);
      std::vector<uint64_t> v(n);
      for (auto& x : v) x = zipf(rng);
      return v;
    }
    case Dist::kAllEqual:
      return std::vector<uint64_t>(n, 0xFEEDULL);
  }
  return {};
}

// Grouping invariants: every group uniform, sizes match the input histogram,
// group count == distinct keys, offsets cover [0, n].
void expect_grouped(const std::vector<uint64_t>& input,
                    const std::vector<uint64_t>& sorted,
                    const std::vector<size_t>& groups) {
  std::map<uint64_t, size_t> hist;
  for (auto x : input) hist[x]++;
  ASSERT_FALSE(groups.empty());
  ASSERT_EQ(groups.back(), input.size());
  ASSERT_EQ(sorted.size(), input.size());
  EXPECT_EQ(groups.size() - 1, hist.size());
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    ASSERT_LT(groups[g], groups[g + 1]);
    uint64_t key = sorted[groups[g]];
    for (size_t i = groups[g]; i < groups[g + 1]; ++i) {
      ASSERT_EQ(sorted[i], key);
    }
    ASSERT_EQ(groups[g + 1] - groups[g], hist[key]);
  }
}

uint64_t fnv1a_words(const std::vector<uint64_t>& v,
                     uint64_t h = 1469598103934665603ULL) {
  for (uint64_t w : v) {
    for (int b = 0; b < 8; ++b) {
      h = (h ^ ((w >> (8 * b)) & 0xFF)) * 1099511628211ULL;
    }
  }
  return h;
}

class SemisortDist : public ::testing::TestWithParam<Dist> {};

TEST_P(SemisortDist, GroupsOnSampledPath) {
  size_t n = 1 << 16;
  auto v = dist_vec(GetParam(), n, 21);
  auto input = v;
  SemisortStats st;
  auto groups = semisort_by(v, [](uint64_t x) { return x; }, &st);
  EXPECT_TRUE(st.sampled);
  expect_grouped(input, v, groups);
  EXPECT_EQ(st.groups, groups.size() - 1);
}

TEST_P(SemisortDist, GroupsOnClassicPath) {
  size_t n = 2000;  // < kSemisortSampledMinN
  auto v = dist_vec(GetParam(), n, 22);
  auto input = v;
  SemisortStats st;
  auto groups = semisort_by(v, [](uint64_t x) { return x; }, &st);
  EXPECT_FALSE(st.sampled);
  expect_grouped(input, v, groups);
}

INSTANTIATE_TEST_SUITE_P(Matrix, SemisortDist,
                         ::testing::Values(Dist::kUniform, Dist::kZipf,
                                           Dist::kAllEqual));

TEST(Semisort, StatsClassifyThePlan) {
  size_t n = 1 << 16;
  // All-equal: the single key must be heavy and own every record.
  auto eq = dist_vec(Dist::kAllEqual, n, 23);
  SemisortStats st;
  semisort_by(eq, [](uint64_t x) { return x; }, &st);
  EXPECT_EQ(st.heavy_keys, 1u);
  EXPECT_EQ(st.heavy_records, n);
  EXPECT_EQ(st.groups, 1u);
  // Uniform full-width: no key can reach the ~log^2 n heavy frequency.
  auto uni = dist_vec(Dist::kUniform, n, 24);
  semisort_by(uni, [](uint64_t x) { return x; }, &st);
  EXPECT_EQ(st.heavy_keys, 0u);
  EXPECT_EQ(st.heavy_records, 0u);
  // Zipf(1.0): the head keys (frequency ~ n / (H_n * rank)) clear the
  // threshold; a solid fraction of records should route heavy.
  auto zipf = dist_vec(Dist::kZipf, n, 25);
  semisort_by(zipf, [](uint64_t x) { return x; }, &st);
  EXPECT_GE(st.heavy_keys, 1u);
  EXPECT_LE(st.heavy_keys, 200u);
  EXPECT_GT(st.heavy_records, n / 10);
}

TEST(Semisort, AdversarialAllKeysShareOneHash) {
  // hash64 is invertible, so distinct uint64 keys never truly collide at
  // full width — adversarial collisions have to be injected through the
  // hash hook. Constant hash: every record lands in one (heavy) bucket and
  // grouping must fall back to the exact-key local sort.
  size_t n = 1 << 14;
  auto v = random_vec(n, 77, 64);
  auto input = v;
  SemisortStats st;
  auto groups = semisort_by_hashed(
      v, [](uint64_t x) { return x; }, [](uint64_t) { return uint64_t{0}; },
      &st);
  EXPECT_TRUE(st.sampled);
  EXPECT_EQ(st.heavy_keys, 1u);
  EXPECT_EQ(st.heavy_records, n);
  expect_grouped(input, v, groups);
}

TEST(Semisort, AdversarialFourHashClasses) {
  // Weak hash x & 3: 64 distinct keys share 4 hash values. All four classes
  // clear the heavy threshold; each heavy bucket then holds ~16 distinct
  // keys and must be split by the exact-key sort, not by hash.
  size_t n = 1 << 14;
  auto v = random_vec(n, 78, 64);
  auto input = v;
  SemisortStats st;
  auto groups = semisort_by_hashed(
      v, [](uint64_t x) { return x; }, [](uint64_t x) { return x & 3; }, &st);
  EXPECT_EQ(st.heavy_keys, 4u);
  EXPECT_EQ(st.heavy_records, n);
  expect_grouped(input, v, groups);
}

TEST(Semisort, AdversarialCollisionsOnClassicPath) {
  // Same weak-hash torture below the sampling cutoff.
  size_t n = 1000;
  auto v = random_vec(n, 79, 32);
  auto input = v;
  auto groups = semisort_by_hashed(
      v, [](uint64_t x) { return x; }, [](uint64_t) { return uint64_t{7}; });
  expect_grouped(input, v, groups);
}

TEST(Semisort, GoldenBitwisePermutation) {
  // FNV fingerprints of (permuted records, group offsets) for each
  // distribution, captured at WEG_NUM_THREADS=1. The output permutation is
  // part of the determinism contract: the plan is a pure function of the
  // input, so these must match at every worker count (the p=1/2/8 reruns
  // enforce exactly that) and on every rerun.
  struct Row {
    Dist d;
    uint64_t records_fp;
    uint64_t groups_fp;
  };
  const Row rows[] = {
      {Dist::kUniform, 15839630282862592096ULL, 12610849180122979242ULL},
      {Dist::kZipf, 8574241550819480444ULL, 18005339744678913803ULL},
      {Dist::kAllEqual, 2171979372864930691ULL, 14305617065199756810ULL},
  };
  for (const Row& row : rows) {
    auto v = dist_vec(row.d, 1 << 16, 26);
    auto groups = semisort_by(v, [](uint64_t x) { return x; });
    std::vector<uint64_t> g64(groups.begin(), groups.end());
    EXPECT_EQ(fnv1a_words(v), row.records_fp) << "dist " << (int)row.d;
    EXPECT_EQ(fnv1a_words(g64), row.groups_fp) << "dist " << (int)row.d;
  }
}

TEST(Semisort, GoldenAsymCountsPerDistribution) {
  // Exact read/write totals per distribution at n = 2^16, captured at
  // WEG_NUM_THREADS=1; the p=1/2/8 reruns make these the cross-worker
  // count-determinism check. The write totals also pin the O(n)-writes
  // claim: all three stay well under 4n (= 262144).
  struct Row {
    Dist d;
    uint64_t reads;
    uint64_t writes;
  };
  // Reads are distribution-independent (sample + histogram + scatter-read +
  // grouping sweeps are all fixed-size passes); writes shrink with skew
  // because single-key buckets skip their local sort entirely.
  const Row rows[] = {
      {Dist::kUniform, 200383u, 220362u},
      {Dist::kZipf, 200383u, 131903u},
      {Dist::kAllEqual, 200383u, 98307u},
  };
  size_t n = 1 << 16;
  for (const Row& row : rows) {
    auto v = dist_vec(row.d, n, 27);
    asym::Region r;
    semisort_by(v, [](uint64_t x) { return x; });
    auto d = r.delta();
    EXPECT_EQ(d.reads, row.reads) << "dist " << (int)row.d;
    EXPECT_EQ(d.writes, row.writes) << "dist " << (int)row.d;
    EXPECT_LT(d.writes, 4 * n);
  }
}

TEST(Rng, DeterministicAndDistinct) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.next_bounded(17), 17u);
}

TEST(RandomPermutation, IsAPermutation) {
  auto p = random_permutation(10000, 5);
  std::vector<uint8_t> seen(10000, 0);
  for (auto x : p) {
    ASSERT_LT(x, 10000u);
    ASSERT_EQ(seen[x], 0);
    seen[x] = 1;
  }
}

TEST(RandomPermutation, SeedsDiffer) {
  EXPECT_NE(random_permutation(1000, 1), random_permutation(1000, 2));
}

TEST(Hash64, DeterministicAndSpreads) {
  EXPECT_EQ(hash64(123), hash64(123));
  // Low bits should differ across consecutive inputs (avalanche sanity).
  int diff = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    if ((hash64(i) & 1) != (hash64(i + 1) & 1)) ++diff;
  }
  EXPECT_GT(diff, 16);
}

}  // namespace
}  // namespace weg::primitives
