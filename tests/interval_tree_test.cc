// Interval tree tests (Sections 7.1-7.3): static classic vs post-sorted
// construction equivalence and write bounds (Theorem 7.1), stabbing queries
// against brute force across interval patterns (including duplicate and
// degenerate endpoints), and the α-labeled dynamic tree under mixed
// workloads with structural validation (Corollary 7.2 path statistics).
#include <gtest/gtest.h>

#include <cmath>

#include "src/augtree/interval_tree.h"
#include "src/primitives/random.h"

namespace weg::augtree {
namespace {

enum class Pattern { kShort, kMixed, kNested, kPointLike, kSharedEndpoints };

std::vector<Interval> make_intervals(Pattern pat, size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<Interval> ivs(n);
  for (size_t i = 0; i < n; ++i) {
    double a = 0, b = 0;
    switch (pat) {
      case Pattern::kShort:
        a = rng.next_double();
        b = a + rng.next_double() * 0.01;
        break;
      case Pattern::kMixed:
        a = rng.next_double();
        b = a + rng.next_double() * rng.next_double();
        break;
      case Pattern::kNested:
        a = 0.5 - double(i + 1) / double(2 * n + 4);
        b = 0.5 + double(i + 1) / double(2 * n + 4);
        break;
      case Pattern::kPointLike:
        a = rng.next_double();
        b = a;  // zero length
        break;
      case Pattern::kSharedEndpoints:
        a = double(rng.next_bounded(20)) / 20.0;
        b = a + double(1 + rng.next_bounded(5)) / 20.0;
        break;
    }
    ivs[i] = Interval{a, b, uint32_t(i)};
  }
  return ivs;
}

size_t brute_stab(const std::vector<Interval>& ivs, double q) {
  size_t c = 0;
  for (auto& iv : ivs) c += iv.contains(q) ? 1 : 0;
  return c;
}

class StaticIT
    : public ::testing::TestWithParam<std::tuple<Pattern, size_t>> {};

TEST_P(StaticIT, BothBuildsAnswerStabsCorrectly) {
  auto [pat, n] = GetParam();
  auto ivs = make_intervals(pat, n, 31 + n);
  auto tc = StaticIntervalTree::build_classic(ivs);
  auto tp = StaticIntervalTree::build_postsorted(ivs);
  EXPECT_TRUE(tc.validate(ivs));
  EXPECT_TRUE(tp.validate(ivs));
  primitives::Rng rng(n + 1);
  for (int t = 0; t < 25; ++t) {
    double q = rng.next_double();
    size_t ref = brute_stab(ivs, q);
    EXPECT_EQ(tc.stab(q).size(), ref);
    EXPECT_EQ(tp.stab(q).size(), ref);
    EXPECT_EQ(tc.stab_count(q), ref);
    EXPECT_EQ(tp.stab_count(q), ref);
  }
  // Query exactly at endpoints too (tie handling).
  for (size_t i = 0; i < std::min<size_t>(n, 10); ++i) {
    for (double q : {ivs[i].l, ivs[i].r}) {
      size_t ref = brute_stab(ivs, q);
      EXPECT_EQ(tc.stab(q).size(), ref) << "endpoint query";
      EXPECT_EQ(tp.stab(q).size(), ref) << "endpoint query";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, StaticIT,
    ::testing::Combine(::testing::Values(Pattern::kShort, Pattern::kMixed,
                                         Pattern::kNested, Pattern::kPointLike,
                                         Pattern::kSharedEndpoints),
                       ::testing::Values(1, 2, 16, 300, 5000)));

TEST(StaticIT, EmptyTree) {
  std::vector<Interval> none;
  auto t = StaticIntervalTree::build_postsorted(none);
  EXPECT_TRUE(t.stab(0.5).empty());
  EXPECT_EQ(t.stab_count(0.5), 0u);
}

TEST(StaticIT, StabReturnsActualIds) {
  auto ivs = make_intervals(Pattern::kMixed, 500, 33);
  auto t = StaticIntervalTree::build_postsorted(ivs);
  double q = 0.5;
  auto ids = t.stab(q);
  for (uint32_t id : ids) EXPECT_TRUE(ivs[id].contains(q));
}

TEST(StaticIT, Theorem71WriteBound) {
  // Post-sorted construction writes grow ~linearly; the classic baseline
  // grows ~n log n: the ratio must widen and the WE constant stay bounded.
  double prev_ratio = 0;
  for (size_t n : {1ul << 14, 1ul << 17}) {
    auto ivs = make_intervals(Pattern::kMixed, n, 35);
    StaticIntervalTree::Stats sc, sp;
    StaticIntervalTree::build_classic(ivs, &sc);
    StaticIntervalTree::build_postsorted(ivs, &sp);
    EXPECT_LT(sp.cost.writes, sc.cost.writes) << "n=" << n;
    double ratio = double(sc.cost.writes) / double(sp.cost.writes);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
    EXPECT_LT(sp.cost.writes, 32 * n);
  }
}

TEST(StaticIT, CountingQueryWritesNothing) {
  auto ivs = make_intervals(Pattern::kMixed, 10000, 37);
  auto t = StaticIntervalTree::build_postsorted(ivs);
  asym::Region r;
  t.stab_count(0.5);
  EXPECT_EQ(r.delta().writes, 0u);
}

class DynamicIT : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicIT, MixedWorkloadMatchesBrute) {
  uint64_t alpha = GetParam();
  DynamicIntervalTree t(alpha);
  primitives::Rng rng(39 + alpha);
  std::vector<Interval> alive;
  uint32_t next_id = 0;
  for (size_t op = 0; op < 6000; ++op) {
    uint64_t r = rng.next_bounded(10);
    if (r < 6 || alive.empty()) {
      double a = rng.next_double();
      Interval iv{a, a + rng.next_double() * 0.2, next_id++};
      t.insert(iv);
      alive.push_back(iv);
    } else if (r < 8) {
      size_t i = rng.next_bounded(alive.size());
      ASSERT_TRUE(t.erase(alive[i]));
      alive.erase(alive.begin() + long(i));
    } else {
      double q = rng.next_double();
      ASSERT_EQ(t.stab(q).size(), brute_stab(alive, q)) << "op " << op;
      ASSERT_EQ(t.stab_count(q), brute_stab(alive, q));
    }
  }
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), alive.size());
}

INSTANTIATE_TEST_SUITE_P(Alphas, DynamicIT,
                         ::testing::Values(2, 4, 8, 16, 64));

TEST(DynamicIT, EraseSemantics) {
  DynamicIntervalTree t(4);
  Interval a{0.1, 0.5, 1}, b{0.2, 0.6, 2};
  t.insert(a);
  t.insert(b);
  EXPECT_FALSE(t.erase(Interval{0.1, 0.5, 99}));  // wrong id
  EXPECT_TRUE(t.erase(a));
  EXPECT_FALSE(t.erase(a));  // already erased
  EXPECT_EQ(t.stab(0.3).size(), 1u);
}

TEST(DynamicIT, Corollary72PathStatistics) {
  // The number of critical nodes on any root-leaf path is O(log_alpha n) and
  // the total path length is O(alpha log_alpha n).
  for (uint64_t alpha : {2ull, 8ull}) {
    DynamicIntervalTree t(alpha);
    primitives::Rng rng(41);
    size_t n = 20000;
    for (uint32_t i = 0; i < n; ++i) {
      double a = rng.next_double();
      t.insert(Interval{a, a + 0.01, i});
    }
    double la = std::log(double(2 * n)) / std::log(double(alpha));
    EXPECT_LE(t.critical_on_path_max(), size_t(4 * la + 10))
        << "alpha=" << alpha;
    EXPECT_LE(t.height(), size_t(double(4 * alpha + 2) * la + 20))
        << "alpha=" << alpha;
  }
}

TEST(DynamicIT, LargerAlphaFewerUpdateWrites) {
  // Theorem 7.4: writes per update scale as log_alpha n.
  size_t n = 30000;
  uint64_t w2, w16;
  for (uint64_t alpha : {2ull, 16ull}) {
    DynamicIntervalTree t(alpha);
    primitives::Rng rng(43);
    // warm up
    for (uint32_t i = 0; i < n; ++i) {
      double a = rng.next_double();
      t.insert(Interval{a, a + 0.01, i});
    }
    asym::Region r;
    for (uint32_t i = 0; i < 2000; ++i) {
      double a = rng.next_double();
      t.insert(Interval{a, a + 0.01, static_cast<uint32_t>(n + i)});
    }
    (alpha == 2 ? w2 : w16) = r.delta().writes;
  }
  EXPECT_LT(w16, w2);
}

TEST(DynamicIT, BulkInsertMatchesIncremental) {
  primitives::Rng rng(45);
  auto base = make_intervals(Pattern::kMixed, 3000, 47);
  auto batch = make_intervals(Pattern::kShort, 2000, 49);
  for (auto& iv : batch) iv.id += 10000;
  DynamicIntervalTree t(4);
  for (auto& iv : base) t.insert(iv);
  ASSERT_TRUE(t.bulk_insert(batch).ok());
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), base.size() + batch.size());
  std::vector<Interval> all = base;
  all.insert(all.end(), batch.begin(), batch.end());
  for (int q = 0; q < 25; ++q) {
    double x = rng.next_double();
    EXPECT_EQ(t.stab(x).size(), brute_stab(all, x));
  }
}

TEST(DynamicIT, BulkInsertIntoEmpty) {
  DynamicIntervalTree t(4);
  auto batch = make_intervals(Pattern::kMixed, 1000, 51);
  ASSERT_TRUE(t.bulk_insert(batch).ok());
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), batch.size());
  EXPECT_EQ(t.stab(0.5).size(), brute_stab(batch, 0.5));
}

TEST(DynamicIT, BulkInsertWritesLessThanIncremental) {
  // Section 7.3.5: a large bulk costs fewer writes than one-by-one inserts.
  auto base = make_intervals(Pattern::kMixed, 5000, 53);
  auto batch = make_intervals(Pattern::kMixed, 5000, 55);
  for (auto& iv : batch) iv.id += 100000;
  uint64_t bulk_writes, incr_writes;
  {
    DynamicIntervalTree t(4);
    for (auto& iv : base) t.insert(iv);
    asym::Region r;
    ASSERT_TRUE(t.bulk_insert(batch).ok());
    bulk_writes = r.delta().writes;
  }
  {
    DynamicIntervalTree t(4);
    for (auto& iv : base) t.insert(iv);
    asym::Region r;
    for (auto& iv : batch) t.insert(iv);
    incr_writes = r.delta().writes;
  }
  EXPECT_LT(bulk_writes, incr_writes);
}

}  // namespace
}  // namespace weg::augtree
