// Transactional epoch commits under deterministic fault injection
// (src/core/status.h, src/parallel/fault.h, src/parallel/sharded.h): a
// failed commit must be a perfect no-op. The suite drives every fault point
// the harness defines — shard_apply at every shard index, alloc at the
// structure level, validate on staged records, query_poison through every
// merge path, steal_stall against the join watchdog — and checks the
// rollback contract each time: version() unchanged, every query family
// bitwise-identical to the pre-commit snapshot, staged buffers kept for
// retry, and the asym read/write totals of a failed commit deterministic
// across repeat runs (the CMake registration reruns the suite at
// WEG_NUM_THREADS=1/2/8). Degenerate serving inputs (fanout 0, k = 0,
// k > n, empty/inverted/NaN rectangles, NaN probes) are pinned to defined
// empty results under both routing policies. The FaultSweep cases re-run
// the serving scenario under whatever WEG_FAULT the environment arms — the
// CI fault sweep's entry point — and assert the invariants hold whether or
// not the armed point trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "src/asym/counters.h"
#include "src/augtree/interval.h"
#include "src/augtree/interval_tree.h"
#include "src/geom/box.h"
#include "src/kdtree/dynamic.h"
#include "src/parallel/fault.h"
#include "src/parallel/scheduler.h"
#include "src/parallel/sharded.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg {
namespace {

using augtree::DynamicIntervalTree;
using augtree::Interval;
using kdtree::DynamicKdTree;
using kdtree::LogForest;
using parallel::Routing;
using parallel::Sharded;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<Interval> fixed_intervals(size_t n, uint64_t seed,
                                      uint32_t id0 = 0) {
  primitives::Rng rng(seed);
  std::vector<Interval> ivs(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.next_double();
    ivs[i] = Interval{a, a + rng.next_double() * 0.05, id0 + uint32_t(i)};
  }
  return ivs;
}

std::vector<double> stab_points(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<double> qs(q);
  for (double& x : qs) x = rng.next_double();
  return qs;
}

std::vector<geom::Box2> box_queries(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::Box2> qs(q);
  for (auto& b : qs) {
    b.lo[0] = rng.next_double();
    b.hi[0] = b.lo[0] + rng.next_double() * 0.2;
    b.lo[1] = rng.next_double();
    b.hi[1] = b.lo[1] + rng.next_double() * 0.2;
  }
  return qs;
}

// Everything a rollback must preserve, captured from a sharded interval
// index in one call.
struct IntervalSnapshot {
  uint64_t version;
  size_t size;
  std::vector<uint32_t> items;
  std::vector<size_t> offsets;
  std::vector<size_t> counts;
};

IntervalSnapshot snapshot(const Sharded<DynamicIntervalTree>& si,
                          const std::vector<double>& qs) {
  auto r = si.stab_batch(qs);
  return {si.version(), si.size(), r.items(), r.offsets(),
          si.stab_count_batch(qs)};
}

void expect_identical(const IntervalSnapshot& a, const IntervalSnapshot& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.counts, b.counts);
}

// --- the tentpole: all-or-nothing commit --------------------------------

TEST(FaultInjection, CommitRollsBackAtEveryShardIndex) {
  auto qs = stab_points(128, 0xBEEF);
  for (size_t f : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    auto base = fixed_intervals(8000, 0xA11CE);
    Sharded<DynamicIntervalTree> si(Routing::kRange, f, 4);
    ASSERT_TRUE(si.bulk_insert(base).ok());

    // Stage an epoch with insert and erase work on every shard: 4000
    // uniform inserts plus every fourth live record erased.
    auto extra = fixed_intervals(4000, 0xF00D, 8000);
    for (const Interval& iv : extra) si.stage_insert(iv);
    for (size_t i = 0; i < base.size(); i += 4) si.stage_erase(base[i]);
    size_t staged_ins = si.staged_inserts();
    size_t staged_ers = si.staged_erases();

    IntervalSnapshot golden = snapshot(si, qs);
    for (size_t s = 0; s < f; ++s) {
      fault::ScopedFault guard("shard_apply", /*seed=*/0, /*nth=*/s);
      auto v = si.commit();
      ASSERT_FALSE(v.ok()) << "fanout " << f << " shard " << s;
      EXPECT_EQ(v.code(), StatusCode::kFaultInjected);
      EXPECT_GE(fault::trips(), 1u);
      // Rollback identity: the failed epoch is invisible.
      expect_identical(snapshot(si, qs), golden);
      // The staged batch is kept for repair/retry.
      EXPECT_EQ(si.staged_inserts(), staged_ins);
      EXPECT_EQ(si.staged_erases(), staged_ers);
    }

    // Disarmed: the identical staged batch commits and publishes.
    auto v = si.commit();
    ASSERT_TRUE(v.ok()) << v.status().to_string();
    EXPECT_EQ(v.value(), golden.version + 1);
    EXPECT_EQ(si.version(), golden.version + 1);
    EXPECT_EQ(si.staged_inserts(), 0u);
    EXPECT_EQ(si.last_commit_erased(), staged_ers);
    EXPECT_EQ(si.size(), golden.size + staged_ins - staged_ers);
  }
}

TEST(FaultInjection, FailedCommitCountsAreDeterministic) {
  // A rolled-back commit's asym totals are a function of the staged batch
  // and the shard sizes alone — identical across repeat runs at any worker
  // count (the p=1/2/8 reruns of this suite check exactly that).
  auto base = fixed_intervals(8000, 0x60D);
  Sharded<DynamicIntervalTree> si(Routing::kRange, 4, 4);
  ASSERT_TRUE(si.bulk_insert(base).ok());
  for (const Interval& iv : fixed_intervals(2000, 0xD1CE, 8000)) {
    si.stage_insert(iv);
  }
  fault::ScopedFault guard("shard_apply", /*seed=*/0, /*nth=*/2);
  asym::Counts c1, c2;
  {
    asym::Region region;
    ASSERT_FALSE(si.commit().ok());
    c1 = region.delta();
  }
  {
    asym::Region region;
    ASSERT_FALSE(si.commit().ok());
    c2 = region.delta();
  }
  EXPECT_EQ(c1.reads, c2.reads);
  EXPECT_EQ(c1.writes, c2.writes);
}

TEST(FaultInjection, ValidationRejectsMalformedStagedRecords) {
  auto qs = stab_points(64, 0x90D);
  Sharded<DynamicIntervalTree> si(4, 4);
  ASSERT_TRUE(si.bulk_insert(fixed_intervals(2000, 0xABBA)).ok());
  IntervalSnapshot golden = snapshot(si, qs);

  auto expect_rejected = [&](const Interval& bad) {
    si.stage_insert(Interval{0.1, 0.2, 90001});  // a valid companion
    si.stage_insert(bad);
    auto v = si.commit();
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.code(), StatusCode::kInvalidArgument);
    expect_identical(snapshot(si, qs), golden);
    si.discard_staged();
    EXPECT_EQ(si.staged_inserts(), 0u);
  };
  expect_rejected(Interval{kNaN, 0.5, 90002});       // NaN endpoint
  expect_rejected(Interval{0.5, kInf, 90002});       // infinite endpoint
  expect_rejected(Interval{0.7, 0.2, 90002});        // inverted l > r
  expect_rejected(Interval{0.1, 0.2, 90001});        // dup id within epoch

  // Malformed staged erases are rejected too (an absent but well-formed
  // erase is a soft miss, not an error).
  si.stage_erase(Interval{kNaN, 0.5, 123});
  auto v = si.commit();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.code(), StatusCode::kInvalidArgument);
  si.discard_staged();
  expect_identical(snapshot(si, qs), golden);

  // The "validate" fault point force-fails a record that would pass.
  si.stage_insert(Interval{0.3, 0.4, 90100});
  si.stage_insert(Interval{0.5, 0.6, 90101});
  {
    fault::ScopedFault guard("validate", /*seed=*/0, /*nth=*/1);
    auto forced = si.commit();
    ASSERT_FALSE(forced.ok());
    EXPECT_EQ(forced.code(), StatusCode::kFaultInjected);
    expect_identical(snapshot(si, qs), golden);
  }
  ASSERT_TRUE(si.commit().ok());  // disarmed: the same batch lands
  EXPECT_EQ(si.size(), golden.size + 2);
}

TEST(FaultInjection, DuplicateIdAgainstLiveRecordRollsBack) {
  // A staged id that is already live fails inside the owning shard's
  // shadow apply — after other shards may have applied their clones — and
  // the transaction still rolls back wholesale.
  auto qs = stab_points(64, 0x51);
  auto base = fixed_intervals(4000, 0xCAFE);
  Sharded<DynamicIntervalTree> si(Routing::kRange, 4, 4);
  ASSERT_TRUE(si.bulk_insert(base).ok());
  IntervalSnapshot golden = snapshot(si, qs);

  for (const Interval& iv : fixed_intervals(1000, 0xBEAD, 4000)) {
    si.stage_insert(iv);
  }
  si.stage_insert(base[1234]);  // id 1234 is live
  auto v = si.commit();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.code(), StatusCode::kInvalidArgument);
  expect_identical(snapshot(si, qs), golden);

  // Same-epoch id reuse via insert+erase is still an error (inserts apply
  // before erases, so the insert clobbers); cross-epoch reuse is fine.
  si.discard_staged();
  ASSERT_EQ(si.bulk_erase({base[7]}).value(), 1u);
  si.stage_insert(Interval{0.4, 0.6, base[7].id});
  EXPECT_TRUE(si.commit().ok());
}

// --- structure-level contract: fail before the first write --------------

TEST(FaultInjection, StructureBulkOpsFailWithoutMutating) {
  auto base = fixed_intervals(3000, 0x7A5);
  DynamicIntervalTree t(4);
  ASSERT_TRUE(t.bulk_insert(base).ok());
  auto probe = t.stab(0.5);

  // seed != 0, nth = 0 selects every index: the alloc gate always trips.
  {
    fault::ScopedFault guard("alloc", /*seed=*/1, /*nth=*/0);
    Status s = t.bulk_insert(fixed_intervals(500, 0x7A6, 3000));
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kFaultInjected);
  }
  EXPECT_EQ(t.size(), base.size());
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.stab(0.5), probe);

  // Validation errors follow the same pre-mutation contract.
  Status s = t.bulk_insert({Interval{0.2, 0.1, 99999}});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  auto e = t.bulk_erase({Interval{kNaN, 0.5, 1}});
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(t.size(), base.size());
  EXPECT_EQ(t.stab(0.5), probe);

  auto pts = testing::random_points<2>(3000, 0x7A7);
  LogForest<2> forest;
  ASSERT_TRUE(forest.bulk_insert(pts).ok());
  DynamicKdTree<2> kd;
  ASSERT_TRUE(kd.bulk_insert(pts).ok());
  {
    fault::ScopedFault guard("alloc", /*seed=*/1, /*nth=*/0);
    auto more = testing::random_points<2>(500, 0x7A8);
    EXPECT_EQ(forest.bulk_insert(more).code(), StatusCode::kFaultInjected);
    EXPECT_EQ(kd.bulk_insert(more).code(), StatusCode::kFaultInjected);
  }
  EXPECT_EQ(forest.size(), pts.size());
  EXPECT_EQ(kd.size(), pts.size());
  geom::PointK<2> bad{{0.5, kNaN}};
  EXPECT_EQ(forest.bulk_insert({bad}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(kd.bulk_insert({bad}).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(forest.bulk_erase({bad}).ok());
  EXPECT_FALSE(kd.bulk_erase({bad}).ok());
  EXPECT_EQ(forest.size(), pts.size());
  EXPECT_EQ(kd.size(), pts.size());
}

// --- poisoned query sub-batches -----------------------------------------

TEST(FaultInjection, QueryPoisonPropagatesThroughEveryMergePath) {
  auto ivs = fixed_intervals(6000, 0xB00);
  auto qs = stab_points(96, 0xB01);
  auto pts = testing::random_points<2>(6000, 0xB02);
  auto boxes = box_queries(48, 0xB03);
  auto probes = testing::random_points<2>(32, 0xB04);

  for (Routing routing : {Routing::kHash, Routing::kRange}) {
    Sharded<DynamicIntervalTree> si(routing, 4, 4);
    ASSERT_TRUE(si.bulk_insert(ivs).ok());
    Sharded<LogForest<2>> sf(routing, 4);
    ASSERT_TRUE(sf.bulk_insert(pts).ok());
    auto count_golden = si.stab_count_batch(qs);

    fault::ScopedFault guard("query_poison", /*seed=*/0, /*nth=*/1);
    auto stab = si.stab_batch(qs);
    ASSERT_FALSE(stab.ok());
    EXPECT_EQ(stab.status().code(), StatusCode::kFaultInjected);
    EXPECT_EQ(stab.total(), 0u);  // a poisoned result carries no items

    auto rep = sf.range_report_batch(boxes);
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.status().code(), StatusCode::kFaultInjected);

    auto knn = sf.knn_batch(probes, 8);
    ASSERT_FALSE(knn.ok());
    EXPECT_EQ(knn.status().code(), StatusCode::kFaultInjected);

    // Families without a Status carrier (counting) have no poison point:
    // the armed spec must not change their results.
    EXPECT_EQ(si.stab_count_batch(qs), count_golden);
  }
}

// --- degenerate serving inputs ------------------------------------------

TEST(FaultInjection, DegenerateServingInputsAreDefined) {
  auto ivs = fixed_intervals(2000, 0xDE6);
  auto pts = testing::random_points<2>(2000, 0xDE7);

  // Fanout 0 clamps to the degenerate unsharded layout.
  Sharded<DynamicIntervalTree> zero(0, 4);
  EXPECT_EQ(zero.fanout(), 1u);
  ASSERT_TRUE(zero.bulk_insert(ivs).ok());
  EXPECT_EQ(zero.size(), ivs.size());

  for (Routing routing : {Routing::kHash, Routing::kRange}) {
    Sharded<DynamicIntervalTree> si(routing, 4, 4);
    ASSERT_TRUE(si.bulk_insert(ivs).ok());
    Sharded<LogForest<2>> sf(routing, 4);
    ASSERT_TRUE(sf.bulk_insert(pts).ok());

    // Empty query batches.
    EXPECT_EQ(si.stab_batch(std::vector<double>{}).num_queries(), 0u);
    EXPECT_EQ(sf.knn_batch(std::vector<geom::Point2>{}, 4).num_queries(),
              0u);

    // NaN stab probes answer empty, not UB.
    std::vector<double> qs = {0.5, kNaN, 0.25};
    auto stab = si.stab_batch(qs);
    ASSERT_TRUE(stab.ok());
    EXPECT_EQ(stab.count(1), 0u);
    EXPECT_GT(stab.count(0), 0u);
    auto cnt = si.stab_count_batch(qs);
    EXPECT_EQ(cnt[1], 0u);
    EXPECT_EQ(cnt[0], stab.count(0));

    // Inverted and NaN rectangles are empty ranges.
    geom::Box2 inverted;
    inverted.lo[0] = 0.8;
    inverted.hi[0] = 0.2;
    inverted.lo[1] = 0.8;
    inverted.hi[1] = 0.2;
    geom::Box2 nanbox;
    nanbox.lo[0] = kNaN;
    nanbox.hi[0] = kNaN;
    nanbox.lo[1] = 0.0;
    nanbox.hi[1] = 1.0;
    std::vector<geom::Box2> degenerate = {inverted, nanbox};
    auto rep = sf.range_report_batch(degenerate);
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.total(), 0u);
    auto rc = sf.range_count_batch(degenerate);
    EXPECT_EQ(rc[0], 0u);
    EXPECT_EQ(rc[1], 0u);

    // k = 0, k > n, and NaN probes.
    std::vector<geom::Point2> nn = {geom::Point2{{0.5, 0.5}},
                                    geom::Point2{{kNaN, 0.5}}};
    auto k0 = sf.knn_batch(nn, 0);
    ASSERT_TRUE(k0.ok());
    EXPECT_EQ(k0.total(), 0u);
    auto kbig = sf.knn_batch(nn, pts.size() + 100);
    ASSERT_TRUE(kbig.ok());
    EXPECT_EQ(kbig.count(0), pts.size());  // min(k, live)
    EXPECT_EQ(kbig.count(1), 0u);          // NaN probe: empty slice
    auto ann = sf.ann_batch(nn, 0.0);
    EXPECT_TRUE(ann[0].has_value());
    EXPECT_FALSE(ann[1].has_value());

    // Erasing absent but well-formed records is a soft miss.
    EXPECT_EQ(si.bulk_erase({Interval{0.123, 0.456, 777777}}).value(), 0u);
    EXPECT_EQ(si.size(), ivs.size());
  }
}

// --- scheduler watchdog vs a stalled worker -----------------------------

TEST(FaultInjection, WatchdogSurfacesStalledWorker) {
  auto& sched = parallel::Scheduler::instance();
  if (sched.num_workers() < 2) {
    GTEST_SKIP() << "no steals at p=1: the stall point cannot fire";
  }
  auto ivs = fixed_intervals(30000, 0xA77);
  Sharded<DynamicIntervalTree> si(4, 4);
  ASSERT_TRUE(si.bulk_insert(ivs).ok());
  auto qs = stab_points(256, 0x77);

  uint64_t trips0 = sched.watchdog_trips();
  sched.set_watchdog_ms(5);
  {
    // Every steal by a scheduler worker sleeps kStallMillis before the
    // stolen job runs, so any join on a stolen branch outlives the 5 ms
    // deadline. A few batches make a steal (and thus a trip) overwhelmingly
    // likely at p >= 2; bail out as soon as one lands.
    fault::ScopedFault guard("steal_stall", /*seed=*/1, /*nth=*/0);
    for (int round = 0; round < 30; ++round) {
      si.stab_batch(qs);
      if (sched.watchdog_trips() > trips0) break;
    }
  }
  sched.set_watchdog_ms(0);
  if (fault::trips() == 0) {
    GTEST_SKIP() << "no steal occurred; nothing to observe";
  }
  EXPECT_GT(sched.watchdog_trips(), trips0);
}

// --- the CI fault sweep entry point -------------------------------------

// Runs a full serving scenario under whatever WEG_FAULT the environment
// armed (or none) and asserts the transactional invariants hold either
// way: a failing step must be a perfect no-op, a succeeding run must match
// the fault-free oracle. The CI fault sweep executes exactly this suite
// under a matrix of WEG_FAULT specs.
TEST(FaultSweep, ServingInvariantsHoldUnderEnvFault) {
  auto base = fixed_intervals(6000, 0x5EED);
  auto extra = fixed_intervals(1500, 0x5EEE, 6000);
  auto qs = stab_points(128, 0x5EEF);

  // The oracle is built element-wise: insert() has no fault points, so the
  // oracle is correct under every armed spec.
  DynamicIntervalTree oracle(4);
  for (const Interval& iv : base) oracle.insert(iv);

  Sharded<DynamicIntervalTree> si(Routing::kRange, 4, 4);
  Status load = si.bulk_insert(base);
  if (!load.ok()) {
    // The initial bulk epoch tripped: nothing may have been published.
    EXPECT_EQ(si.version(), 0u);
    EXPECT_EQ(si.size(), 0u);
    return;
  }
  EXPECT_EQ(si.size(), oracle.size());
  IntervalSnapshot before = snapshot(si, qs);

  for (const Interval& iv : extra) si.stage_insert(iv);
  for (size_t i = 0; i < base.size(); i += 3) si.stage_erase(base[i]);
  auto v = si.commit();
  if (!v.ok()) {
    // Rolled back: epoch N still serves, staged batch kept.
    expect_identical(snapshot(si, qs), before);
    EXPECT_EQ(si.staged_inserts(), extra.size());
    return;
  }
  EXPECT_EQ(si.version(), before.version + 1);
  for (const Interval& iv : extra) oracle.insert(iv);
  std::vector<Interval> gone;
  for (size_t i = 0; i < base.size(); i += 3) gone.push_back(base[i]);
  ASSERT_TRUE(oracle.bulk_erase(gone).ok());
  EXPECT_EQ(si.size(), oracle.size());

  auto r = si.stab_batch(qs);
  if (!r.ok()) {
    // A poisoned sub-batch: the merged result reports, never fabricates.
    EXPECT_EQ(r.status().code(), StatusCode::kFaultInjected);
    EXPECT_EQ(r.total(), 0u);
    return;
  }
  for (size_t i = 0; i < qs.size(); ++i) {
    auto expect = oracle.stab(qs[i]);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(r.result(i), expect);
  }
}

}  // namespace
}  // namespace weg
