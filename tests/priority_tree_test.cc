// Priority search tree tests (Sections 7.1-7.3, Appendix A): classic vs
// post-sorted construction (heap + x-partition invariants, Theorem 7.1 write
// bounds, small-memory base cases), 3-sided queries against brute force, and
// the α-labeled dynamic tree under mixed workloads.
#include <gtest/gtest.h>

#include "src/augtree/priority_tree.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg::augtree {
namespace {

std::vector<PPoint> make_points(size_t n, uint64_t seed, bool grid = false) {
  return weg::testing::random_ppoints(n, seed, grid ? 30 : 0);
}

size_t brute_3sided(const std::vector<PPoint>& pts, double xl, double xr,
                    double yb) {
  size_t c = 0;
  for (auto& p : pts) c += (p.x >= xl && p.x <= xr && p.y >= yb) ? 1 : 0;
  return c;
}

class StaticPT : public ::testing::TestWithParam<std::tuple<size_t, bool>> {};

TEST_P(StaticPT, BothBuildsValidateAndQuery) {
  auto [n, grid] = GetParam();
  auto pts = make_points(n, 61 + n, grid);
  StaticPriorityTree::Stats sc, sp;
  auto tc = StaticPriorityTree::build_classic(pts, &sc);
  auto tp = StaticPriorityTree::build_postsorted(pts, &sp);
  EXPECT_TRUE(tc.validate());
  EXPECT_TRUE(tp.validate());
  EXPECT_EQ(tc.size(), n);
  EXPECT_EQ(tp.size(), n);
  primitives::Rng rng(n + 2);
  for (int t = 0; t < 25; ++t) {
    double xl = rng.next_double() * 0.8;
    double xr = xl + rng.next_double() * 0.3;
    double yb = rng.next_double();
    size_t ref = brute_3sided(pts, xl, xr, yb);
    EXPECT_EQ(tc.query(xl, xr, yb).size(), ref);
    EXPECT_EQ(tp.query(xl, xr, yb).size(), ref);
    EXPECT_EQ(tc.query_count(xl, xr, yb), ref);
    EXPECT_EQ(tp.query_count(xl, xr, yb), ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, StaticPT,
    ::testing::Combine(::testing::Values(0, 1, 2, 10, 333, 5000),
                       ::testing::Bool()));

TEST(StaticPT, QueryReturnsActualIds) {
  auto pts = make_points(1000, 63);
  auto t = StaticPriorityTree::build_postsorted(pts);
  auto ids = t.query(0.2, 0.6, 0.5);
  for (uint32_t id : ids) {
    EXPECT_GE(pts[id].x, 0.2);
    EXPECT_LE(pts[id].x, 0.6);
    EXPECT_GE(pts[id].y, 0.5);
  }
}

TEST(StaticPT, Theorem71WriteBound) {
  double prev_ratio = 0;
  for (size_t n : {1ul << 14, 1ul << 17}) {
    auto pts = make_points(n, 65);
    StaticPriorityTree::Stats sc, sp;
    StaticPriorityTree::build_classic(pts, &sc);
    StaticPriorityTree::build_postsorted(pts, &sp);
    EXPECT_LT(sp.cost.writes, sc.cost.writes);
    double ratio = double(sc.cost.writes) / double(sp.cost.writes);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
    EXPECT_LT(sp.cost.writes, 20 * n);
  }
}

TEST(StaticPT, PostsortedUsesSmallMemoryBaseCases) {
  auto pts = make_points(1 << 14, 67);
  StaticPriorityTree::Stats st;
  StaticPriorityTree::build_postsorted(pts, &st);
  EXPECT_GT(st.smallmem_base_cases, 0u);
}

TEST(StaticPT, HeapRootIsGlobalMax) {
  auto pts = make_points(4000, 69);
  auto t = StaticPriorityTree::build_postsorted(pts);
  double best = -1;
  for (auto& p : pts) best = std::max(best, p.y);
  // The root must be reported by any query covering everything.
  auto ids = t.query(-1, 2, best);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(pts[ids[0]].y, best);
}

class DynamicPT : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicPT, MixedWorkloadMatchesBrute) {
  uint64_t alpha = GetParam();
  DynamicPriorityTree t(alpha);
  primitives::Rng rng(71 + alpha);
  std::vector<PPoint> alive;
  uint32_t next_id = 0;
  for (size_t op = 0; op < 6000; ++op) {
    uint64_t r = rng.next_bounded(10);
    if (r < 6 || alive.empty()) {
      PPoint p{rng.next_double(), rng.next_double(), next_id++};
      t.insert(p);
      alive.push_back(p);
    } else if (r < 8) {
      size_t i = rng.next_bounded(alive.size());
      ASSERT_TRUE(t.erase(alive[i]));
      alive.erase(alive.begin() + long(i));
    } else {
      double xl = rng.next_double() * 0.8;
      double xr = xl + rng.next_double() * 0.3;
      double yb = rng.next_double();
      ASSERT_EQ(t.query(xl, xr, yb).size(), brute_3sided(alive, xl, xr, yb))
          << "op " << op;
      ASSERT_EQ(t.query_count(xl, xr, yb), brute_3sided(alive, xl, xr, yb));
    }
  }
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), alive.size());
}

INSTANTIATE_TEST_SUITE_P(Alphas, DynamicPT, ::testing::Values(2, 4, 8, 32));

TEST(DynamicPT, EraseMissingReturnsFalse) {
  DynamicPriorityTree t(4);
  t.insert(PPoint{0.5, 0.5, 1});
  EXPECT_FALSE(t.erase(PPoint{0.5, 0.5, 2}));
  EXPECT_TRUE(t.erase(PPoint{0.5, 0.5, 1}));
  EXPECT_FALSE(t.erase(PPoint{0.5, 0.5, 1}));
}

TEST(DynamicPT, DeadPointsStillPruneButAreNotReported) {
  DynamicPriorityTree t(4);
  // The max-y point dies; queries must not report it but must still find
  // everything below.
  t.insert(PPoint{0.5, 0.9, 1});
  for (uint32_t i = 2; i < 100; ++i) {
    t.insert(PPoint{double(i) / 100, 0.5 * double(i) / 100, i});
  }
  ASSERT_TRUE(t.erase(PPoint{0.5, 0.9, 1}));
  auto ids = t.query(0, 1, 0.0);
  EXPECT_EQ(ids.size(), 98u);
  for (uint32_t id : ids) EXPECT_NE(id, 1u);
}

TEST(DynamicPT, LargerAlphaFewerUpdateWrites) {
  size_t n = 30000;
  uint64_t w2 = 0, w16 = 0;
  for (uint64_t alpha : {2ull, 16ull}) {
    DynamicPriorityTree t(alpha);
    primitives::Rng rng(73);
    for (uint32_t i = 0; i < n; ++i) {
      t.insert(PPoint{rng.next_double(), rng.next_double(), i});
    }
    asym::Region r;
    for (uint32_t i = 0; i < 2000; ++i) {
      t.insert(PPoint{rng.next_double(), rng.next_double(), uint32_t(n) + i});
    }
    (alpha == 2 ? w2 : w16) = r.delta().writes;
  }
  EXPECT_LT(w16, w2);
}

TEST(DynamicPT, DuplicateXCoordinates) {
  DynamicPriorityTree t(4);
  primitives::Rng rng(75);
  std::vector<PPoint> pts;
  for (uint32_t i = 0; i < 500; ++i) {
    pts.push_back(PPoint{double(i % 10) / 10.0, rng.next_double(), i});
    t.insert(pts.back());
  }
  EXPECT_TRUE(t.validate());
  for (int q = 0; q < 10; ++q) {
    double xl = rng.next_double() * 0.5, xr = xl + 0.3;
    double yb = rng.next_double();
    EXPECT_EQ(t.query(xl, xr, yb).size(), brute_3sided(pts, xl, xr, yb));
  }
  for (uint32_t i = 0; i < 500; i += 3) ASSERT_TRUE(t.erase(pts[i]));
  EXPECT_TRUE(t.validate());
}

}  // namespace
}  // namespace weg::augtree
