// Batch-vs-serial equality for the parallel batched-query engine
// (src/parallel/batch_query.h): every structure's *_batch entry point must
// return, per query, exactly the ids/points/neighbors its serial query
// returns, in the same order (bitwise equality — both run the same single
// templated traversal). The CMake registration reruns this suite at
// WEG_NUM_THREADS=1/2/8, and the golden read/write counts below pin the
// engine's other contract: the two-phase plan (count pass, exclusive scan,
// report pass into pre-claimed slices) is a function of the input alone, so
// asym totals are bit-identical at every worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/augtree/interval.h"
#include "src/augtree/interval_tree.h"
#include "src/augtree/priority_tree.h"
#include "src/augtree/range_tree.h"
#include "src/kdtree/dynamic.h"
#include "src/kdtree/kdtree.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg {
namespace {

using augtree::AlphaRangeTree;
using augtree::DynamicIntervalTree;
using augtree::DynamicPriorityTree;
using augtree::Interval;
using augtree::PPoint;
using augtree::Query3Sided;
using augtree::RangeQuery2D;
using augtree::StaticIntervalTree;
using augtree::StaticPriorityTree;
using augtree::StaticRangeTree;

constexpr size_t kN = 30000;  // above the ~2k sequential cutoff

std::vector<Interval> fixed_intervals(size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<Interval> ivs(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.next_double();
    ivs[i] = Interval{a, a + rng.next_double() * 0.05, uint32_t(i)};
  }
  return ivs;
}

std::vector<double> stab_points(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<double> qs(q);
  for (double& x : qs) x = rng.next_double();
  return qs;
}

std::vector<RangeQuery2D> range_queries(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<RangeQuery2D> qs(q);
  for (auto& r : qs) {
    r.xl = rng.next_double();
    r.xr = r.xl + rng.next_double() * 0.2;
    r.yb = rng.next_double();
    r.yt = r.yb + rng.next_double() * 0.2;
  }
  return qs;
}

std::vector<Query3Sided> sided_queries(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<Query3Sided> qs(q);
  for (auto& s : qs) {
    s.xl = rng.next_double();
    s.xr = s.xl + rng.next_double() * 0.2;
    s.yb = 1.0 - rng.next_double() * 0.4;
  }
  return qs;
}

std::vector<geom::Box2> box_queries(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::Box2> qs(q);
  for (auto& b : qs) {
    b.lo[0] = rng.next_double();
    b.hi[0] = b.lo[0] + rng.next_double() * 0.2;
    b.lo[1] = rng.next_double();
    b.hi[1] = b.lo[1] + rng.next_double() * 0.2;
  }
  return qs;
}

TEST(QueryBatchEquality, IntervalTreesStabBatch) {
  auto ivs = fixed_intervals(kN, 0xA11CE);
  auto classic = StaticIntervalTree::build_classic(ivs);
  auto postsorted = StaticIntervalTree::build_postsorted(ivs);
  DynamicIntervalTree dynamic(4);
  ASSERT_TRUE(dynamic.bulk_insert(ivs).ok());
  auto qs = stab_points(256, 0xBEEF);

  auto bc = classic.stab_batch(qs);
  auto bp = postsorted.stab_batch(qs);
  auto bd = dynamic.stab_batch(qs);
  auto cc = classic.stab_count_batch(qs);
  ASSERT_EQ(bc.num_queries(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(bc.result(i), classic.stab(qs[i]));
    EXPECT_EQ(bp.result(i), postsorted.stab(qs[i]));
    EXPECT_EQ(bd.result(i), dynamic.stab(qs[i]));
    EXPECT_EQ(bc.count(i), classic.stab_count(qs[i]));
    EXPECT_EQ(bd.count(i), dynamic.stab_count(qs[i]));
    EXPECT_EQ(cc[i], bc.count(i));
  }
}

TEST(QueryBatchEquality, RangeTreesQueryBatch) {
  auto pts = testing::random_ppoints(kN, 0x5EED);
  auto classic = StaticRangeTree::build(pts);
  auto alpha = AlphaRangeTree::build(pts, 4);
  auto qs = range_queries(128, 0xCAFE);

  auto bc = classic.query_batch(qs);
  auto ba = alpha.query_batch(qs);
  auto cc = classic.query_count_batch(qs);
  auto ca = alpha.query_count_batch(qs);
  for (size_t i = 0; i < qs.size(); ++i) {
    const RangeQuery2D& q = qs[i];
    EXPECT_EQ(bc.result(i), classic.query(q.xl, q.xr, q.yb, q.yt));
    EXPECT_EQ(ba.result(i), alpha.query(q.xl, q.xr, q.yb, q.yt));
    EXPECT_EQ(cc[i], classic.query_count(q.xl, q.xr, q.yb, q.yt));
    EXPECT_EQ(ca[i], ba.count(i));
    EXPECT_EQ(bc.count(i), ba.count(i));  // same answer set size
  }
}

TEST(QueryBatchEquality, PriorityTreesQueryBatch) {
  auto pts = testing::random_ppoints(kN, 0xFACE);
  auto classic = StaticPriorityTree::build_classic(pts);
  auto postsorted = StaticPriorityTree::build_postsorted(pts);
  DynamicPriorityTree dynamic(4);
  for (const PPoint& p : pts) dynamic.insert(p);
  auto qs = sided_queries(128, 0xB0BA);

  auto bc = classic.query_batch(qs);
  auto bp = postsorted.query_batch(qs);
  auto bd = dynamic.query_batch(qs);
  auto cd = dynamic.query_count_batch(qs);
  for (size_t i = 0; i < qs.size(); ++i) {
    const Query3Sided& q = qs[i];
    EXPECT_EQ(bc.result(i), classic.query(q.xl, q.xr, q.yb));
    EXPECT_EQ(bp.result(i), postsorted.query(q.xl, q.xr, q.yb));
    EXPECT_EQ(bd.result(i), dynamic.query(q.xl, q.xr, q.yb));
    EXPECT_EQ(cd[i], dynamic.query_count(q.xl, q.xr, q.yb));
    EXPECT_EQ(bc.count(i), bd.count(i));
  }
}

TEST(QueryBatchEquality, KdTreeRangeAndNeighborBatch) {
  auto pts = testing::random_points<2>(kN, 0xD00D);
  auto tree = kdtree::KdTree2::build_classic(pts, 8);
  auto boxes = box_queries(128, 0xF00D);
  auto nnq = testing::random_points<2>(256, 0x1DEA);

  auto br = tree.range_report_batch(boxes);
  auto bc = tree.range_count_batch(boxes);
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(br.result(i), tree.range_report(boxes[i]));
    EXPECT_EQ(bc[i], tree.range_count(boxes[i]));
    EXPECT_EQ(br.count(i), bc[i]);
  }

  const size_t k = 8;
  auto bk = tree.knn_batch(nnq, k);
  auto ba = tree.ann_batch(nnq, 0.0);
  ASSERT_EQ(bk.total(), nnq.size() * k);
  for (size_t i = 0; i < nnq.size(); ++i) {
    // Serial knn/ann return indices into points(); the unified batch API
    // returns the neighbor points themselves.
    auto ids = tree.knn(nnq[i], k);
    std::vector<geom::Point2> want(ids.size());
    for (size_t j = 0; j < ids.size(); ++j) want[j] = tree.points()[ids[j]];
    EXPECT_EQ(bk.result(i), want);
    ASSERT_TRUE(ba[i].has_value());
    EXPECT_EQ(*ba[i], tree.points()[tree.ann(nnq[i], 0.0)]);
    EXPECT_EQ(bk.result(i).front(), *ba[i]);  // 1-NN is the exact ANN
  }
}

TEST(QueryBatchEquality, CoveredSubtreeFastPathMatchesLeafScan) {
  // The count-augmented traversal answers fully-covered subtrees from the
  // pre-claimed slice bounds. Every covered-box shape — all-covering,
  // half-space (whole subtrees on one side of the root split), zero-area
  // through an existing point, zero-area in empty space — must return
  // bitwise-identical results with the fast path on, with the kill switch
  // off, and against a leaf-scan oracle; the all-covering count must do it
  // with strictly fewer reads.
  auto pts = testing::random_points<2>(kN, 0xC0FE);
  auto tree = kdtree::KdTree2::build_classic(pts, 8);

  geom::Box2 all;
  all.lo[0] = all.lo[1] = -1.0;
  all.hi[0] = all.hi[1] = 2.0;
  geom::Box2 half;
  half.lo[0] = half.lo[1] = -1.0;
  half.hi[0] = 0.5;
  half.hi[1] = 2.0;
  geom::Box2 pbox;  // zero-area: lo == hi on an existing point
  pbox.lo = pbox.hi = pts[7];
  geom::Box2 nowhere;  // zero-area box in empty space
  nowhere.lo[0] = nowhere.hi[0] = -0.25;
  nowhere.lo[1] = nowhere.hi[1] = -0.25;
  std::vector<geom::Box2> boxes = {all, half, pbox, nowhere};

  auto leaf_count = [&](const geom::Box2& b) {
    size_t c = 0;
    for (const auto& p : pts) c += b.contains(p) ? 1 : 0;
    return c;
  };

  kdtree::QueryOptions off;
  off.count_fast_path = false;
  auto bc = tree.range_count_batch(boxes);
  auto br = tree.range_report_batch(boxes);
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(bc[i], leaf_count(boxes[i]));
    EXPECT_EQ(bc[i], tree.range_count(boxes[i], off));
    EXPECT_EQ(br.result(i), tree.range_report(boxes[i], off));  // same order
  }
  EXPECT_EQ(bc[0], pts.size());
  EXPECT_GE(bc[2], 1u);
  EXPECT_EQ(bc[3], 0u);

  kdtree::QueryStats qs_on, qs_off;
  asym::Counts on_c, off_c;
  {
    asym::Region region;
    tree.range_count(all, kdtree::QueryOptions{&qs_on});
    on_c = region.delta();
  }
  {
    asym::Region region;
    kdtree::QueryOptions o{&qs_off};
    o.count_fast_path = false;
    tree.range_count(all, o);
    off_c = region.delta();
  }
  EXPECT_EQ(qs_on.covered_subtrees, 1u);  // the root shortcut
  EXPECT_EQ(qs_off.covered_subtrees, 0u);
  EXPECT_LT(on_c.reads, off_c.reads);
  EXPECT_LT(qs_on.nodes_visited, qs_off.nodes_visited);
}

TEST(QueryBatchEquality, DynamicCoveredCountsRespectLiveWeights) {
  // Covered counts in the dynamic structures come from live-subtree
  // weights: erased points must not resurrect through the fast path, and
  // the kill switch must agree bitwise.
  auto pts = testing::random_points<2>(20000, 0xD1CE);
  kdtree::DynamicKdTree<2> single;
  for (const auto& p : pts) single.insert(p);
  kdtree::LogForest<2> forest;
  ASSERT_TRUE(forest.bulk_insert(pts).ok());
  for (size_t i = 0; i < pts.size() / 4; ++i) {
    ASSERT_TRUE(single.erase(pts[i]));
    ASSERT_TRUE(forest.erase(pts[i]));
  }
  const size_t live = pts.size() - pts.size() / 4;

  geom::Box2 all;
  all.lo[0] = all.lo[1] = -1.0;
  all.hi[0] = all.hi[1] = 2.0;
  kdtree::QueryOptions off;
  off.count_fast_path = false;
  EXPECT_EQ(single.range_count(all), live);
  EXPECT_EQ(forest.range_count(all), live);
  EXPECT_EQ(single.range_count(all, off), live);
  EXPECT_EQ(forest.range_count(all, off), live);
  EXPECT_EQ(single.range_report(all).size(), live);
  EXPECT_EQ(forest.range_report(all).size(), live);
}

TEST(QueryBatchEquality, DynamicKdStructuresRangeBatch) {
  auto pts = testing::random_points<2>(20000, 0xFEED);
  kdtree::DynamicKdTree<2> single;
  for (const auto& p : pts) single.insert(p);
  kdtree::LogForest<2> forest;
  ASSERT_TRUE(forest.bulk_insert(pts).ok());
  // Erase a slice so the dead-point filtering paths run too.
  for (size_t i = 0; i < pts.size() / 8; ++i) {
    ASSERT_TRUE(single.erase(pts[i]));
    ASSERT_TRUE(forest.erase(pts[i]));
  }
  auto boxes = box_queries(96, 0xABBA);
  auto nnq = testing::random_points<2>(64, 0xACDC);

  auto bs = single.range_report_batch(boxes);
  auto cs = single.range_count_batch(boxes);
  auto bf = forest.range_report_batch(boxes);
  auto cf = forest.range_count_batch(boxes);
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(bs.result(i), single.range_report(boxes[i]));
    EXPECT_EQ(cs[i], single.range_count(boxes[i]));
    EXPECT_EQ(bf.result(i), forest.range_report(boxes[i]));
    EXPECT_EQ(cf[i], forest.range_count(boxes[i]));
    EXPECT_EQ(cs[i], cf[i]);  // same live point set
  }

  auto as = single.ann_batch(nnq);
  auto af = forest.ann_batch(nnq);
  for (size_t i = 0; i < nnq.size(); ++i) {
    EXPECT_EQ(as[i], single.ann(nnq[i]));
    EXPECT_EQ(af[i], forest.ann(nnq[i]));
  }
}

TEST(QueryBatchEquality, BatchCountsAreScheduleIndependent) {
  // Repeat-run determinism at whatever worker count this process has: the
  // two-phase plan performs the same counted accesses regardless of how work
  // stealing interleaves the per-query tasks.
  auto ivs = fixed_intervals(20000, 0x60D);
  auto tree = StaticIntervalTree::build_postsorted(ivs);
  auto qs = stab_points(200, 0x90D);
  asym::Counts c1, c2;
  {
    asym::Region region;
    tree.stab_batch(qs);
    c1 = region.delta();
  }
  {
    asym::Region region;
    tree.stab_batch(qs);
    c2 = region.delta();
  }
  EXPECT_EQ(c1.reads, c2.reads);
  EXPECT_EQ(c1.writes, c2.writes);
}

TEST(QueryBatchEquality, BatchCountsMatchSerialGolden) {
  // Golden read/write counts captured from the serial (WEG_NUM_THREADS=1)
  // code path. The p=2/8 reruns of this suite must charge exactly the same
  // totals — the cross-worker-count half of the determinism contract the
  // batch engine inherits from the parallel builds. If an algorithm's
  // counting legitimately changes, recapture at p=1.
  auto ivs = fixed_intervals(20000, 0x60D);
  auto itree = StaticIntervalTree::build_postsorted(ivs);
  auto sq = stab_points(200, 0x90D);
  {
    asym::Region region;
    auto r = itree.stab_batch(sq);
    auto c = region.delta();
    EXPECT_GT(r.total(), 0u);
    EXPECT_EQ(c.reads, 120768u);
    EXPECT_EQ(c.writes, 97815u);
  }

  auto pts = testing::random_ppoints(20000, 0x60D);
  auto rtree = StaticRangeTree::build(pts);
  auto rq = range_queries(96, 0xE66);
  {
    asym::Region region;
    auto r = rtree.query_batch(rq);
    auto c = region.delta();
    EXPECT_GT(r.total(), 0u);
    EXPECT_EQ(c.reads, 47055u);
    EXPECT_EQ(c.writes, 16979u);
  }

  auto kpts = testing::random_points<2>(20000, 0x60D);
  auto ktree = kdtree::KdTree2::build_classic(kpts, 8);
  auto nnq = testing::random_points<2>(128, 0xE66);
  {
    asym::Region region;
    auto r = ktree.knn_batch(nnq, 8);
    auto c = region.delta();
    EXPECT_EQ(r.total(), 128u * 8u);
    // Recaptured for the count-augmented traversal: the per-node bounding
    // box short-circuit skips subtrees farther than the running k-th
    // candidate, dropping reads from the pre-augmentation 7319.
    EXPECT_EQ(c.reads, 6599u);
    EXPECT_EQ(c.writes, 1281u);
  }
}

}  // namespace
}  // namespace weg
