// Parallel/serial equality for the augmented trees: every structure is built
// on fixed-seed inputs large enough to engage the parallel construction
// paths (n >> the ~2k sequential cutoff) and must answer a fixed query set
// identically to a serial brute-force oracle. The CMake registration reruns
// this suite at WEG_NUM_THREADS=1 and WEG_NUM_THREADS=8, so a parallel build
// answering differently from a serial build fails one of the two runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/augtree/interval.h"
#include "src/augtree/interval_tree.h"
#include "src/augtree/priority_tree.h"
#include "src/augtree/range_tree.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg::augtree {
namespace {

constexpr size_t kN = 50000;  // several fork levels above the ~2k cutoff

std::vector<Interval> fixed_intervals(size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<Interval> ivs(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.next_double();
    ivs[i] = Interval{a, a + rng.next_double() * 0.05, uint32_t(i)};
  }
  return ivs;
}

std::vector<uint32_t> brute_stab(const std::vector<Interval>& ivs, double q) {
  std::vector<uint32_t> out;
  for (const Interval& iv : ivs) {
    if (iv.l <= q && q <= iv.r) out.push_back(iv.id);
  }
  return out;
}

std::vector<uint32_t> sorted(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(ParallelEquality, StaticIntervalTreesMatchBruteForce) {
  auto ivs = fixed_intervals(kN, 0xA11CE);
  auto classic = StaticIntervalTree::build_classic(ivs);
  auto postsorted = StaticIntervalTree::build_postsorted(ivs);
  ASSERT_TRUE(classic.validate(ivs));
  ASSERT_TRUE(postsorted.validate(ivs));
  primitives::Rng rng(0xBEEF);
  for (int t = 0; t < 64; ++t) {
    double q = rng.next_double();
    auto expect = sorted(brute_stab(ivs, q));
    EXPECT_EQ(sorted(classic.stab(q)), expect);
    EXPECT_EQ(sorted(postsorted.stab(q)), expect);
    EXPECT_EQ(classic.stab_count(q), expect.size());
    EXPECT_EQ(postsorted.stab_count(q), expect.size());
  }
}

TEST(ParallelEquality, DynamicIntervalTreeBulkMatchesBruteForce) {
  auto ivs = fixed_intervals(kN, 0xD1CE);
  DynamicIntervalTree t(4);
  // Empty-tree bulk build takes the balanced-build path.
  ASSERT_TRUE(t.bulk_insert(ivs).ok());
  ASSERT_TRUE(t.validate());
  primitives::Rng rng(0xF00D);
  for (int q = 0; q < 48; ++q) {
    double x = rng.next_double();
    auto expect = sorted(brute_stab(ivs, x));
    EXPECT_EQ(sorted(t.stab(x)), expect);
    EXPECT_EQ(t.stab_count(x), expect.size());
  }
}

std::vector<uint32_t> brute_range(const std::vector<PPoint>& pts, double xl,
                                  double xr, double yb, double yt) {
  std::vector<uint32_t> out;
  for (const PPoint& p : pts) {
    if (p.x >= xl && p.x <= xr && p.y >= yb && p.y <= yt) out.push_back(p.id);
  }
  return out;
}

TEST(ParallelEquality, RangeTreesMatchBruteForce) {
  auto pts = testing::random_ppoints(kN, 0x5EED);
  auto classic = StaticRangeTree::build(pts);
  auto alpha = AlphaRangeTree::build(pts, 4);
  ASSERT_TRUE(classic.validate());
  ASSERT_TRUE(alpha.validate());
  primitives::Rng rng(0xCAFE);
  for (int t = 0; t < 32; ++t) {
    double xl = rng.next_double(), yb = rng.next_double();
    double xr = xl + rng.next_double() * 0.2;
    double yt = yb + rng.next_double() * 0.2;
    auto expect = sorted(brute_range(pts, xl, xr, yb, yt));
    EXPECT_EQ(sorted(classic.query(xl, xr, yb, yt)), expect);
    EXPECT_EQ(sorted(alpha.query(xl, xr, yb, yt)), expect);
    EXPECT_EQ(classic.query_count(xl, xr, yb, yt), expect.size());
    EXPECT_EQ(alpha.query_count(xl, xr, yb, yt), expect.size());
  }
}

std::vector<uint32_t> brute_3sided(const std::vector<PPoint>& pts, double xl,
                                   double xr, double yb) {
  std::vector<uint32_t> out;
  for (const PPoint& p : pts) {
    if (p.x >= xl && p.x <= xr && p.y >= yb) out.push_back(p.id);
  }
  return out;
}

TEST(ParallelEquality, StaticPriorityTreesMatchBruteForce) {
  auto pts = testing::random_ppoints(kN, 0xFACE);
  auto classic = StaticPriorityTree::build_classic(pts);
  auto postsorted = StaticPriorityTree::build_postsorted(pts);
  ASSERT_TRUE(classic.validate());
  ASSERT_TRUE(postsorted.validate());
  primitives::Rng rng(0xB0BA);
  for (int t = 0; t < 32; ++t) {
    double xl = rng.next_double(), yb = 1.0 - rng.next_double() * 0.3;
    double xr = xl + rng.next_double() * 0.2;
    auto expect = sorted(brute_3sided(pts, xl, xr, yb));
    EXPECT_EQ(sorted(classic.query(xl, xr, yb)), expect);
    EXPECT_EQ(sorted(postsorted.query(xl, xr, yb)), expect);
    EXPECT_EQ(classic.query_count(xl, xr, yb), expect.size());
    EXPECT_EQ(postsorted.query_count(xl, xr, yb), expect.size());
  }
}

TEST(ParallelEquality, ConstructionCountsAreScheduleIndependent) {
  // Every construction executes the same set of counted accesses regardless
  // of schedule, so repeat builds must report bit-identical read/write
  // counts even when work stealing interleaves them differently (the p=8
  // rerun of this suite exercises exactly that).
  auto ivs = fixed_intervals(kN, 0xC0DE);
  StaticIntervalTree::Stats i1{}, i2{};
  StaticIntervalTree::build_postsorted(ivs, &i1);
  StaticIntervalTree::build_postsorted(ivs, &i2);
  EXPECT_EQ(i1.cost.reads, i2.cost.reads);
  EXPECT_EQ(i1.cost.writes, i2.cost.writes);

  auto pts = testing::random_ppoints(kN, 0xC0DE);
  StaticPriorityTree::Stats p1{}, p2{};
  StaticPriorityTree::build_classic(pts, &p1);
  StaticPriorityTree::build_classic(pts, &p2);
  EXPECT_EQ(p1.cost.reads, p2.cost.reads);
  EXPECT_EQ(p1.cost.writes, p2.cost.writes);

  asym::Counts r1, r2;
  StaticRangeTree::build(pts);  // warm: exclude counter-slot registration
  {
    asym::Region region;
    StaticRangeTree::build(pts);
    r1 = region.delta();
  }
  {
    asym::Region region;
    StaticRangeTree::build(pts);
    r2 = region.delta();
  }
  EXPECT_EQ(r1.reads, r2.reads);
  EXPECT_EQ(r1.writes, r2.writes);
}

TEST(ParallelEquality, BulkBuildCountsMatchSerialGolden) {
  // Golden counts captured from the serial (WEG_NUM_THREADS=1) code path.
  // The p>1 reruns of this suite take the parallel id-slice/cursor paths,
  // which must charge exactly the same reads and writes — this is the
  // cross-worker-count half of the count-determinism claim (the repeat-build
  // test below covers schedule independence at a fixed worker count).
  // If an algorithm's counting legitimately changes, recapture at p=1.
  auto ivs = fixed_intervals(20000, 0x60D);
  DynamicIntervalTree t(4);
  asym::Region region;
  ASSERT_TRUE(t.bulk_insert(ivs).ok());
  auto c = region.delta();
  // Recaptured for the sampling semisort: interval bulk builds sort their
  // endpoints through write-efficient incremental-sort rounds, whose large
  // rounds now take the sampled heavy/light plan (sample read pass + grouped
  // bucket writes). Verified bitwise-identical at p=1 and p=8 before pinning.
  EXPECT_EQ(c.reads, 2656220u);
  EXPECT_EQ(c.writes, 810881u);

  // Same guard for the α range tree, whose build_balanced also keeps a
  // serial twin next to the shared parallel id-slice path.
  auto pts = testing::random_ppoints(20000, 0x60D);
  asym::Counts rc;
  AlphaRangeTree::build(pts, 4, &rc);
  // Recaptured for the sampling semisort (same incremental-sort shift as the
  // interval tree above); identical at p=1 and p=8.
  EXPECT_EQ(rc.reads, 2160280u);
  EXPECT_EQ(rc.writes, 589819u);
}

TEST(ParallelEquality, DynamicPriorityTreeRebuildsMatchBruteForce) {
  // Incremental inserts trigger weight-doubling rebuilds; the root rebuilds
  // past ~4k points take the parallel pre-grown-pool path.
  auto pts = testing::random_ppoints(20000, 0xD00D);
  DynamicPriorityTree t(4);
  for (const PPoint& p : pts) t.insert(p);
  ASSERT_TRUE(t.validate());
  EXPECT_GT(t.rebuilds(), 0u);
  primitives::Rng rng(0x1DEA);
  for (int q = 0; q < 32; ++q) {
    double xl = rng.next_double(), yb = 1.0 - rng.next_double() * 0.3;
    double xr = xl + rng.next_double() * 0.2;
    auto expect = sorted(brute_3sided(pts, xl, xr, yb));
    EXPECT_EQ(sorted(t.query(xl, xr, yb)), expect);
    EXPECT_EQ(t.query_count(xl, xr, yb), expect.size());
  }
}

}  // namespace
}  // namespace weg::augtree
