// Parallel/serial equality for the geometry layer (hull, Delaunay, k-d
// trees): every structure is built on fixed-seed inputs large enough to
// engage the parallel paths (n >> the ~2k sequential cutoff / block size)
// and must answer identically to a serial brute-force oracle. The CMake
// registration reruns this suite at WEG_NUM_THREADS=1/2/8, so a parallel
// build answering — or *counting* — differently from a serial build fails
// one of the pinned runs. Golden read/write counts (captured at p=1) pin the
// cross-worker-count half of the counter-determinism claim; the repeat-build
// checks pin schedule independence at a fixed worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "src/delaunay/delaunay.h"
#include "src/hull/hull.h"
#include "src/kdtree/dynamic.h"
#include "src/kdtree/kdtree.h"
#include "src/kdtree/pbatched.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg {
namespace {

constexpr size_t kN = 50000;  // several fork levels above the ~2k cutoff

// ---------------------------------------------------------------------------
// Convex hull
// ---------------------------------------------------------------------------

// Independent serial oracle: std::sort + one monotone-chain pass (no blocks,
// no parallel primitives).
std::vector<uint32_t> brute_hull(const std::vector<geom::Point2>& pts) {
  size_t n = pts.size();
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return pts[a][0] < pts[b][0] ||
           (pts[a][0] == pts[b][0] && pts[a][1] < pts[b][1]);
  });
  auto cross = [&](uint32_t o, uint32_t a, uint32_t b) {
    return (pts[a][0] - pts[o][0]) * (pts[b][1] - pts[o][1]) -
           (pts[a][1] - pts[o][1]) * (pts[b][0] - pts[o][0]);
  };
  if (n < 2) return order;
  std::vector<uint32_t> hull;
  auto scan = [&](auto begin, auto end) {
    size_t start = hull.size();
    for (auto it = begin; it != end; ++it) {
      while (hull.size() >= start + 2 &&
             cross(hull[hull.size() - 2], hull.back(), *it) <= 0) {
        hull.pop_back();
      }
      hull.push_back(*it);
    }
    hull.pop_back();
  };
  scan(order.begin(), order.end());
  scan(order.rbegin(), order.rend());
  return hull;
}

TEST(GeometryParallelEquality, HullMatchesSerialOracle) {
  auto pts = testing::random_points(kN, 0x481);
  auto expect = brute_hull(pts);
  EXPECT_EQ(convex_hull(pts, hull::SortMode::kClassic), expect);
  EXPECT_EQ(convex_hull(pts, hull::SortMode::kWriteEfficient), expect);
}

TEST(GeometryParallelEquality, HullCircleAllVerticesSurviveBlockFilter) {
  // Every point is a hull vertex: the block filter may discard nothing.
  size_t n = 20000;
  primitives::Rng rng(0x482);
  std::vector<geom::Point2> pts(n);
  for (auto& p : pts) {
    double t = rng.next_double() * 6.283185307179586;
    p[0] = std::cos(t);
    p[1] = std::sin(t);
  }
  auto expect = brute_hull(pts);
  hull::HullStats st{};
  auto h = convex_hull(pts, hull::SortMode::kClassic, &st);
  EXPECT_EQ(h, expect);
  EXPECT_EQ(st.hull_size, n);
  EXPECT_GE(st.candidates, n);
}

TEST(GeometryParallelEquality, HullGridPointsWithEqualXRuns) {
  // Lattice points: long equal-x runs that cross parallel_for chunk and
  // block boundaries, exercising the two-phase run fixup (the continuous
  // inputs above never take that branch) — including under the tsan preset.
  size_t n = 30000;
  primitives::Rng rng(0x48E);
  std::vector<geom::Point2> pts(n);
  for (auto& p : pts) {
    p[0] = static_cast<double>(rng.next_bounded(64));
    p[1] = static_cast<double>(rng.next_bounded(64));
  }
  // Duplicate lattice points make the representative *index* of a vertex
  // tie-dependent, so compare vertex coordinates.
  auto coords = [&](const std::vector<uint32_t>& h) {
    std::vector<std::pair<double, double>> c;
    c.reserve(h.size());
    for (uint32_t i : h) c.emplace_back(pts[i][0], pts[i][1]);
    return c;
  };
  auto expect = coords(brute_hull(pts));
  EXPECT_EQ(coords(convex_hull(pts, hull::SortMode::kClassic)), expect);
  EXPECT_EQ(coords(convex_hull(pts, hull::SortMode::kWriteEfficient)), expect);
}

TEST(GeometryParallelEquality, HullCountsMatchSerialGolden) {
  // Golden counts captured from the serial (WEG_NUM_THREADS=1) code path.
  // The block decomposition is a function of n alone, so the p=2/8 reruns
  // must charge exactly the same reads and writes. If the algorithm's
  // counting legitimately changes, recapture at p=1.
  auto pts = testing::random_points(kN, 0x483);
  hull::HullStats c1{}, c2{};
  convex_hull(pts, hull::SortMode::kWriteEfficient, &c1);
  convex_hull(pts, hull::SortMode::kWriteEfficient, &c2);
  EXPECT_EQ(c1.cost.reads, c2.cost.reads);
  EXPECT_EQ(c1.cost.writes, c2.cost.writes);
  // Recaptured for the sampling semisort: the write-efficient hull sorts
  // its chains through incremental-sort rounds, whose large rounds now take
  // the heavy/light plan (+52785 reads: sample fetches + separately charged
  // grouping sweeps; +39409 writes: the now-charged local bucket sorts).
  EXPECT_EQ(c1.cost.reads, 2322052u);
  EXPECT_EQ(c1.cost.writes, 383260u);
}

// ---------------------------------------------------------------------------
// Delaunay triangulation
// ---------------------------------------------------------------------------

// Canonical triangle set: each alive triangle as a sorted vertex triple,
// whole set sorted. Under symbolic perturbation the Delaunay triangulation
// is unique, so every mode / schedule must produce the identical set.
std::vector<std::array<uint32_t, 3>> triangle_set(const delaunay::Mesh& mesh) {
  std::vector<std::array<uint32_t, 3>> tris;
  for (uint32_t t : mesh.alive_triangles()) {
    const auto& tr = mesh.tri(t);
    std::array<uint32_t, 3> v = {tr.v[0], tr.v[1], tr.v[2]};
    std::sort(v.begin(), v.end());
    tris.push_back(v);
  }
  std::sort(tris.begin(), tris.end());
  return tris;
}

TEST(GeometryParallelEquality, DelaunayModesAgreeOnTheTriangulation) {
  auto pts = testing::random_points(20000, 0x484);
  auto grid = delaunay::quantize(pts);
  auto baseline = delaunay::triangulate(grid, delaunay::Mode::kBaseline);
  auto we = delaunay::triangulate(grid, delaunay::Mode::kWriteEfficient);
  ASSERT_TRUE(baseline->validate(false));
  ASSERT_TRUE(we->validate(false));
  EXPECT_EQ(triangle_set(*baseline), triangle_set(*we));
}

TEST(GeometryParallelEquality, DelaunayCountsMatchSerialGolden) {
  auto pts = testing::random_points(20000, 0x485);
  auto grid = delaunay::quantize(pts);
  delaunay::DTStats s1{}, s2{};
  auto m1 = delaunay::triangulate(grid, delaunay::Mode::kWriteEfficient, &s1);
  auto m2 = delaunay::triangulate(grid, delaunay::Mode::kWriteEfficient, &s2);
  EXPECT_EQ(triangle_set(*m1), triangle_set(*m2));
  EXPECT_EQ(s1.cost.reads, s2.cost.reads);
  EXPECT_EQ(s1.cost.writes, s2.cost.writes);
  EXPECT_EQ(s1.cost.reads, 3353871u);
  EXPECT_EQ(s1.cost.writes, 2242466u);
}

// ---------------------------------------------------------------------------
// k-d trees
// ---------------------------------------------------------------------------

size_t brute_range_count(const std::vector<geom::Point2>& pts,
                         const geom::Box2& q) {
  size_t c = 0;
  for (const auto& p : pts) c += q.contains(p) ? 1 : 0;
  return c;
}

geom::Box2 random_box(primitives::Rng& rng) {
  geom::Box2 q;
  for (int d = 0; d < 2; ++d) {
    double a = rng.next_double();
    q.lo[d] = a;
    q.hi[d] = a + rng.next_double() * 0.25;
  }
  return q;
}

TEST(GeometryParallelEquality, PBatchedBuildIsDeterministicAndCorrect) {
  auto pts = testing::random_points(kN, 0x486);
  auto t1 = kdtree::PBatched2::build(pts);
  auto t2 = kdtree::PBatched2::build(pts);
  ASSERT_TRUE(t1.validate());
  // Structural determinism across schedules: the finishing step lays both
  // the point array and the compact node ids out from pre-claimed,
  // size-determined slices, so repeat builds are bit-identical.
  EXPECT_EQ(t1.points(), t2.points());
  EXPECT_EQ(t1.num_nodes(), t2.num_nodes());
  EXPECT_EQ(t1.height(), t2.height());
  auto classic = kdtree::KdTree2::build_classic(pts);
  primitives::Rng rng(0x487);
  for (int i = 0; i < 48; ++i) {
    auto q = random_box(rng);
    size_t expect = brute_range_count(pts, q);
    EXPECT_EQ(t1.range_count(q), expect);
    EXPECT_EQ(classic.range_count(q), expect);
  }
}

TEST(GeometryParallelEquality, KdBuildCountsMatchSerialGolden) {
  auto pts = testing::random_points(kN, 0x488);
  kdtree::BuildStats c1{}, c2{}, p1{}, p2{};
  kdtree::KdTree2::build_classic(pts, 8, &c1);
  kdtree::KdTree2::build_classic(pts, 8, &c2);
  EXPECT_EQ(c1.cost.reads, c2.cost.reads);
  EXPECT_EQ(c1.cost.writes, c2.cost.writes);
  kdtree::PBatched2::build(pts, 0, 8, &p1);
  kdtree::PBatched2::build(pts, 0, 8, &p2);
  EXPECT_EQ(p1.cost.reads, p2.cost.reads);
  EXPECT_EQ(p1.cost.writes, p2.cost.writes);
  EXPECT_EQ(c1.cost.reads, 650000u);
  EXPECT_EQ(c1.cost.writes, 700000u);
  // Recaptured for the sampling semisort: pbatched rounds semisort by leaf
  // rank through the heavy/light plan (+52785 reads, as in the hull golden
  // above). Writes moved by only +14 — leaf-rank buckets are single-key, so
  // the plan places every round with pre-claimed slices and almost no local
  // sorting: the O(n)-writes contract is intact.
  EXPECT_EQ(p1.cost.reads, 502170u);
  EXPECT_EQ(p1.cost.writes, 328303u);
}

TEST(GeometryParallelEquality, DynamicKdTreeRebuildsMatchBruteForce) {
  // Incremental inserts trigger imbalance rebuilds; rebuilds past the ~2k
  // cutoff take the parallel pre-claimed-slice path.
  auto pts = testing::random_points(20000, 0x489);
  kdtree::DynamicKdTree<2> t;
  asym::Region region;
  for (const auto& p : pts) t.insert(p);
  auto c = region.delta();
  ASSERT_TRUE(t.validate());
  EXPECT_GT(t.rebuilds(), 0u);
  primitives::Rng rng(0x48A);
  for (int i = 0; i < 32; ++i) {
    auto q = random_box(rng);
    EXPECT_EQ(t.range_count(q), brute_range_count(pts, q));
  }
  EXPECT_EQ(c.reads, 562155u);
  EXPECT_EQ(c.writes, 560610u);
}

TEST(GeometryParallelEquality, LogForestBulkInsertMatchesBruteForce) {
  auto pts = testing::random_points(30000, 0x48B);
  kdtree::LogForest<2> bulk(kdtree::LogForest<2>::RebuildMode::kPBatched);
  ASSERT_TRUE(bulk.bulk_insert(pts).ok());
  EXPECT_EQ(bulk.size(), pts.size());
  // A second, smaller batch exercises the carry-chain absorption.
  auto more = testing::random_points(5000, 0x48C);
  ASSERT_TRUE(bulk.bulk_insert(more).ok());
  auto all = pts;
  all.insert(all.end(), more.begin(), more.end());
  EXPECT_EQ(bulk.size(), all.size());
  primitives::Rng rng(0x48D);
  for (int i = 0; i < 32; ++i) {
    auto q = random_box(rng);
    EXPECT_EQ(bulk.range_count(q), brute_range_count(all, q));
  }
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bulk.erase(all[i]));
  }
  EXPECT_EQ(bulk.size(), all.size() - 1000);
}

}  // namespace
}  // namespace weg
