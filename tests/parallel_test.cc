// Scheduler and priority-write tests: fork-join correctness, nesting,
// granularity, and the priority-write (write_min/write_max) semantics that
// the paper's model assumes.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/parallel/parallel_for.h"
#include "src/parallel/priority_write.h"
#include "src/parallel/scheduler.h"

namespace weg::parallel {
namespace {

TEST(Scheduler, HasWorkers) {
  EXPECT_GE(num_workers(), 1);
}

TEST(ParDo, BothBranchesRun) {
  int a = 0, b = 0;
  par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(ParDo, NestedFibonacci) {
  // Heavy nesting exercises help-while-wait (stealing during joins).
  auto fib = [](auto&& self, int n) -> long {
    if (n <= 1) return n;
    long x = 0, y = 0;
    par_do([&] { x = self(self, n - 1); }, [&] { y = self(self, n - 2); });
    return x + y;
  };
  EXPECT_EQ(fib(fib, 20), 6765);
}

TEST(ParDo, ExceptionsNotRequiredButSequentialFallbackWorks) {
  // Single-element ranges run inline.
  std::atomic<int> count{0};
  parallel_for(0, 1, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParDo3, AllThreeRun) {
  std::atomic<int> mask{0};
  par_do3([&] { mask |= 1; }, [&] { mask |= 2; }, [&] { mask |= 4; });
  EXPECT_EQ(mask.load(), 7);
}

class ParallelForSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelForSizes, CoversEveryIndexExactlyOnce) {
  size_t n = GetParam();
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ParallelForSizes, SumMatchesSerial) {
  size_t n = GetParam();
  std::atomic<uint64_t> sum{0};
  parallel_for(0, n, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelForSizes,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 1000, 12345,
                                           100000));

TEST(ParallelFor, ExplicitGrainStillCovers) {
  for (size_t grain : {1ul, 2ul, 17ul, 4096ul}) {
    std::vector<std::atomic<int>> hits(5000);
    parallel_for(0, hits.size(), [&](size_t i) { hits[i]++; }, grain);
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, SubrangeRespected) {
  std::vector<int> v(100, 0);
  parallel_for(10, 90, [&](size_t i) { v[i] = 1; });
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], (i >= 10 && i < 90) ? 1 : 0);
}

TEST(WriteMin, SequentialSemantics) {
  std::atomic<int> x{100};
  EXPECT_TRUE(write_min(&x, 50));
  EXPECT_EQ(x.load(), 50);
  EXPECT_FALSE(write_min(&x, 70));
  EXPECT_EQ(x.load(), 50);
  EXPECT_FALSE(write_min(&x, 50));
}

TEST(WriteMax, SequentialSemantics) {
  std::atomic<int> x{0};
  EXPECT_TRUE(write_max(&x, 5));
  EXPECT_FALSE(write_max(&x, 3));
  EXPECT_EQ(x.load(), 5);
}

TEST(WriteMin, ConcurrentMinimumSurvives) {
  // The defining property of the model's priority-write.
  for (int trial = 0; trial < 20; ++trial) {
    std::atomic<uint32_t> x{UINT32_MAX};
    parallel_for(0, 10000, [&](size_t i) {
      write_min(&x, static_cast<uint32_t>((i * 7919) % 10000 + 1));
    });
    EXPECT_EQ(x.load(), 1u);
  }
}

TEST(WriteMax, ConcurrentMaximumSurvives) {
  std::atomic<uint64_t> x{0};
  parallel_for(0, 50000, [&](size_t i) { write_max(&x, (uint64_t)i); });
  EXPECT_EQ(x.load(), 49999u);
}

TEST(WriteMin, CustomComparator) {
  // Priority by second component.
  std::atomic<uint64_t> x{~uint64_t{0}};
  auto less = [](uint64_t a, uint64_t b) { return (a & 0xff) < (b & 0xff); };
  parallel_for(0, 1000, [&](size_t i) {
    write_min(&x, (uint64_t(i) << 8) | ((i * 31) % 256), less);
  });
  EXPECT_EQ(x.load() & 0xff, 0u);
}

TEST(Scheduler, WorkerIdsInRange) {
  std::atomic<bool> ok{true};
  parallel_for(0, 100000, [&](size_t) {
    int id = worker_id();
    if (id < 0 || id >= num_workers()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Scheduler, DeterministicResultUnderRaces) {
  // Result of a reduction must not depend on scheduling.
  uint64_t first = 0;
  for (int t = 0; t < 5; ++t) {
    std::vector<uint64_t> v(100000);
    parallel_for(0, v.size(), [&](size_t i) { v[i] = i * i; });
    uint64_t sum = std::accumulate(v.begin(), v.end(), uint64_t{0});
    if (t == 0) {
      first = sum;
    } else {
      EXPECT_EQ(sum, first);
    }
  }
}

}  // namespace
}  // namespace weg::parallel
