// Range-routed planner vs hash-broadcast vs unsharded equality
// (src/parallel/sharded.h): the shard-pruning planner may only change which
// shards answer a query, never the answer. Every merged slice under
// Routing::kRange must be bitwise-identical to the hash-broadcast merge and
// to the unsharded structure's answer in the canonical order, at every
// fanout — stabbing, range count/report, kNN, and ANN — including queries
// sitting exactly on shard split points and spanning several shards. The
// suite also pins the planner's selectivity (selective batches visit fewer
// than fanout shards per query; broadcast visits exactly fanout), the
// commit-time rebalancing path, the routing-key normalization regression
// (-0.0 must route like +0.0), the no-op-epoch versioning regression, and
// golden read/write counts for the planned paths (captured at
// WEG_NUM_THREADS=1; the CMake registration reruns the suite at p=1/2/8 and
// the totals must not move — planner bookkeeping is charged in bulk).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/augtree/interval.h"
#include "src/augtree/interval_tree.h"
#include "src/geom/box.h"
#include "src/kdtree/dynamic.h"
#include "src/parallel/sharded.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg {
namespace {

using augtree::DynamicIntervalTree;
using augtree::Interval;
using kdtree::DynamicKdTree;
using kdtree::LogForest;
using parallel::Routing;
using parallel::Sharded;

constexpr size_t kN = 30000;  // above the ~2k sequential cutoff
const size_t kFanouts[] = {1, 2, 4, 8};

std::vector<Interval> fixed_intervals(size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<Interval> ivs(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.next_double();
    ivs[i] = Interval{a, a + rng.next_double() * 0.05, uint32_t(i)};
  }
  return ivs;
}

std::vector<double> stab_points(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<double> qs(q);
  for (double& x : qs) x = rng.next_double();
  return qs;
}

std::vector<geom::Box2> box_queries(size_t q, uint64_t seed, double extent) {
  primitives::Rng rng(seed);
  std::vector<geom::Box2> qs(q);
  for (auto& b : qs) {
    b.lo[0] = rng.next_double();
    b.hi[0] = b.lo[0] + rng.next_double() * extent;
    b.lo[1] = rng.next_double();
    b.hi[1] = b.lo[1] + rng.next_double() * extent;
  }
  return qs;
}

std::vector<uint32_t> sorted_ids(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<geom::Point2> sorted_points(std::vector<geom::Point2> v) {
  std::sort(v.begin(), v.end(),
            [](const geom::Point2& a, const geom::Point2& b) {
              return a.coords < b.coords;
            });
  return v;
}

TEST(PlannerEquality, StabRoutedVsBroadcastVsUnsharded) {
  auto ivs = fixed_intervals(kN, 0xA11CE);
  DynamicIntervalTree oracle(4);
  ASSERT_TRUE(oracle.bulk_insert(ivs).ok());
  auto qs = stab_points(256, 0xBEEF);

  for (size_t f : kFanouts) {
    Sharded<DynamicIntervalTree> routed(Routing::kRange, f, 4);
    Sharded<DynamicIntervalTree> broadcast(Routing::kHash, f, 4);
    ASSERT_TRUE(routed.bulk_insert(ivs).ok());
    ASSERT_TRUE(broadcast.bulk_insert(ivs).ok());
    EXPECT_EQ(routed.routing(), Routing::kRange);
    EXPECT_TRUE(routed.bounds_built());
    EXPECT_EQ(routed.splits().size(), f - 1);
    EXPECT_EQ(routed.size(), oracle.size());

    auto r = routed.stab_batch(qs);
    auto b = broadcast.stab_batch(qs);
    auto rc = routed.stab_count_batch(qs);
    ASSERT_EQ(r.num_queries(), qs.size());
    // Bitwise equality of the full flat result, not just per-slice.
    EXPECT_EQ(r.items(), b.items());
    EXPECT_EQ(r.offsets(), b.offsets());
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(r.result(i), sorted_ids(oracle.stab(qs[i])));
      EXPECT_EQ(rc[i], oracle.stab_count(qs[i]));
    }
  }
}

TEST(PlannerEquality, ForestRoutedVsBroadcastVsUnsharded) {
  auto pts = testing::random_points<2>(20000, 0xFEED);
  std::vector<geom::Point2> gone(pts.begin(), pts.begin() + 2500);
  LogForest<2> oracle;
  ASSERT_TRUE(oracle.bulk_insert(pts).ok());
  ASSERT_EQ(oracle.bulk_erase(gone).value(), gone.size());
  auto boxes = box_queries(96, 0xABBA, 0.2);
  auto nnq = testing::random_points<2>(64, 0xACDC);
  const size_t k = 8;

  for (size_t f : kFanouts) {
    Sharded<LogForest<2>> routed(Routing::kRange, f);
    Sharded<LogForest<2>> broadcast(f);
    ASSERT_TRUE(routed.bulk_insert(pts).ok());
    ASSERT_TRUE(broadcast.bulk_insert(pts).ok());
    EXPECT_EQ(routed.bulk_erase(gone).value(), gone.size());
    EXPECT_EQ(broadcast.bulk_erase(gone).value(), gone.size());
    EXPECT_EQ(routed.size(), oracle.size());

    auto rep_r = routed.range_report_batch(boxes);
    auto rep_b = broadcast.range_report_batch(boxes);
    auto cnt_r = routed.range_count_batch(boxes);
    EXPECT_EQ(rep_r.items(), rep_b.items());
    EXPECT_EQ(rep_r.offsets(), rep_b.offsets());
    for (size_t i = 0; i < boxes.size(); ++i) {
      EXPECT_EQ(rep_r.result(i), sorted_points(oracle.range_report(boxes[i])));
      EXPECT_EQ(cnt_r[i], oracle.range_count(boxes[i]));
    }

    auto knn_r = routed.knn_batch(nnq, k);
    auto knn_b = broadcast.knn_batch(nnq, k);
    auto ann_r = routed.ann_batch(nnq, 0.0);
    auto ann_b = broadcast.ann_batch(nnq, 0.0);
    EXPECT_EQ(knn_r.items(), knn_b.items());
    EXPECT_EQ(knn_r.offsets(), knn_b.offsets());
    ASSERT_EQ(knn_r.total(), nnq.size() * k);
    for (size_t i = 0; i < nnq.size(); ++i) {
      EXPECT_EQ(knn_r.result(i), oracle.knn(nnq[i], k));
      ASSERT_TRUE(ann_r[i].has_value());
      EXPECT_EQ(ann_r[i], ann_b[i]);
      EXPECT_EQ(*ann_r[i], oracle.knn(nnq[i], 1).front());
    }
  }
}

TEST(PlannerEquality, DynamicKdTreeRoutedVsBroadcast) {
  auto pts = testing::random_points<2>(20000, 0xD00D);
  std::vector<geom::Point2> gone(pts.begin(), pts.begin() + 2500);
  DynamicKdTree<2> oracle;
  ASSERT_TRUE(oracle.bulk_insert(pts).ok());
  ASSERT_EQ(oracle.bulk_erase(gone).value(), gone.size());
  auto boxes = box_queries(96, 0xF00D, 0.2);
  auto nnq = testing::random_points<2>(32, 0x1DEA);

  for (size_t f : kFanouts) {
    Sharded<DynamicKdTree<2>> routed(Routing::kRange, f);
    ASSERT_TRUE(routed.bulk_insert(pts).ok());
    EXPECT_EQ(routed.bulk_erase(gone).value(), gone.size());
    auto rep = routed.range_report_batch(boxes);
    auto ann = routed.ann_batch(nnq, 0.0);
    for (size_t i = 0; i < boxes.size(); ++i) {
      EXPECT_EQ(rep.result(i), sorted_points(oracle.range_report(boxes[i])));
    }
    for (size_t i = 0; i < nnq.size(); ++i) {
      EXPECT_EQ(ann[i], oracle.ann(nnq[i], 0.0));
    }
  }
}

TEST(PlannerEquality, BoundaryStraddlingQueries) {
  // Queries placed exactly on the split points and spanning whole shard
  // slabs: the overlap predicates must include both sides of a boundary.
  auto ivs = fixed_intervals(kN, 0x0B0E);
  DynamicIntervalTree oracle(4);
  ASSERT_TRUE(oracle.bulk_insert(ivs).ok());

  for (size_t f : {size_t{2}, size_t{4}, size_t{8}}) {
    Sharded<DynamicIntervalTree> routed(Routing::kRange, f, 4);
    ASSERT_TRUE(routed.bulk_insert(ivs).ok());
    ASSERT_EQ(routed.splits().size(), f - 1);
    std::vector<double> qs;
    for (double s : routed.splits()) {
      qs.push_back(s);              // exactly on the boundary
      qs.push_back(s - 1e-12);      // just inside the lower shard
      qs.push_back(s + 1e-12);      // just inside the upper shard
    }
    auto r = routed.stab_batch(qs);
    auto c = routed.stab_count_batch(qs);
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(r.result(i), sorted_ids(oracle.stab(qs[i])));
      EXPECT_EQ(c[i], oracle.stab_count(qs[i]));
    }
  }

  // Boxes spanning several shard slabs along the split dimension.
  auto pts = testing::random_points<2>(16000, 0x57AB);
  LogForest<2> foracle;
  ASSERT_TRUE(foracle.bulk_insert(pts).ok());
  Sharded<LogForest<2>> froutcd(Routing::kRange, 4);
  ASSERT_TRUE(froutcd.bulk_insert(pts).ok());
  std::vector<geom::Box2> wide;
  for (double s : froutcd.splits()) {
    geom::Box2 b;
    b.lo[0] = s - 0.3;
    b.hi[0] = s + 0.3;
    b.lo[1] = 0.2;
    b.hi[1] = 0.8;
    wide.push_back(b);
  }
  auto rep = froutcd.range_report_batch(wide);
  for (size_t i = 0; i < wide.size(); ++i) {
    EXPECT_EQ(rep.result(i), sorted_points(foracle.range_report(wide[i])));
  }
}

TEST(PlannerEquality, SelectiveQueriesVisitFewerThanFanoutShards) {
  // The acceptance criterion behind the shards_visited_per_query bench row:
  // at fanout 4/8, selective stab and range batches must touch strictly
  // fewer than fanout shards per query under range routing, while broadcast
  // touches exactly fanout.
  auto ivs = fixed_intervals(kN, 0x5E1);
  auto qs = stab_points(256, 0x5E1F);
  for (size_t f : {size_t{4}, size_t{8}}) {
    Sharded<DynamicIntervalTree> routed(Routing::kRange, f, 4);
    Sharded<DynamicIntervalTree> broadcast(f, 4);
    ASSERT_TRUE(routed.bulk_insert(ivs).ok());
    ASSERT_TRUE(broadcast.bulk_insert(ivs).ok());
    routed.stab_batch(qs);
    broadcast.stab_batch(qs);
    EXPECT_EQ(routed.planner_queries(), qs.size());
    EXPECT_LT(routed.planner_shard_visits(), qs.size() * f);
    EXPECT_EQ(broadcast.planner_queries(), qs.size());
    EXPECT_EQ(broadcast.planner_shard_visits(), qs.size() * f);
  }

  auto pts = testing::random_points<2>(20000, 0x5E1D);
  auto boxes = box_queries(128, 0x51DE, 0.05);  // narrow along the split dim
  for (size_t f : {size_t{4}, size_t{8}}) {
    Sharded<LogForest<2>> routed(Routing::kRange, f);
    ASSERT_TRUE(routed.bulk_insert(pts).ok());
    routed.range_count_batch(boxes);
    EXPECT_EQ(routed.planner_queries(), boxes.size());
    EXPECT_LT(routed.planner_shard_visits(), boxes.size() * f);
    // Per-shard routing stats feed the commit-time rebalancer.
    uint64_t routed_total = 0;
    for (const auto& ls : routed.load_stats()) routed_total += ls.queries;
    EXPECT_EQ(routed_total, routed.planner_shard_visits());
  }
}

TEST(PlannerEquality, SingleShardKnnPassThroughVisitsOneShard) {
  // Four tight clusters, well separated along the routing dimension: each
  // cluster lands in its own range shard, a probe at a cluster center finds
  // all k neighbors inside that shard, and every other shard's cover box is
  // farther than the k-th candidate. The bound-driven planner must never
  // schedule a second round (shards_visited_per_query == 1) and the merge
  // takes the single-shard pass-through, still bitwise-equal to the
  // unsharded forest in the canonical (d2, coords) order.
  primitives::Rng rng(0xC1A5);
  std::vector<geom::Point2> pts;
  std::vector<geom::Point2> probes;
  for (int c = 0; c < 4; ++c) {
    double cx = 0.125 + 0.25 * c;
    for (int i = 0; i < 500; ++i) {
      geom::Point2 p;
      p[0] = cx + (rng.next_double() - 0.5) * 0.02;
      p[1] = 0.5 + (rng.next_double() - 0.5) * 0.02;
      pts.push_back(p);
    }
    probes.push_back(geom::Point2{{cx, 0.5}});
  }
  Sharded<LogForest<2>> sf(Routing::kRange, 4);
  ASSERT_TRUE(sf.bulk_insert(pts).ok());
  LogForest<2> oracle;
  ASSERT_TRUE(oracle.bulk_insert(pts).ok());

  auto k = sf.knn_batch(probes, 8);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(sf.planner_queries(), probes.size());
  EXPECT_EQ(sf.planner_shard_visits(), probes.size());  // exactly 1 per query
  auto ok = oracle.knn_batch(probes, 8);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(k.result(i), ok.result(i));
  }
}

TEST(PlannerEquality, FullyCoveredShardsAnswerCountsWithoutRouting) {
  // A range_count query box that contains a shard's whole cover box is
  // answered from the shard's size — the planner routes nothing to it. An
  // all-covering box therefore visits zero shards, and the counts still
  // match the unsharded oracle exactly.
  auto pts = testing::random_points<2>(20000, 0xC0E);
  Sharded<LogForest<2>> sf(Routing::kRange, 4);
  ASSERT_TRUE(sf.bulk_insert(pts).ok());
  LogForest<2> oracle;
  ASSERT_TRUE(oracle.bulk_insert(pts).ok());

  geom::Box2 all;
  all.lo[0] = all.lo[1] = -1.0;
  all.hi[0] = all.hi[1] = 2.0;
  geom::Box2 half;  // covers the low shards' covers, clips the rest
  half.lo[0] = half.lo[1] = -1.0;
  half.hi[0] = 0.5;
  half.hi[1] = 2.0;
  std::vector<geom::Box2> boxes = {all, half};
  auto rc = sf.range_count_batch(boxes);
  EXPECT_EQ(rc[0], pts.size());
  EXPECT_EQ(rc[1], oracle.range_count(half));
  EXPECT_EQ(sf.planner_queries(), boxes.size());
  // The all-covering box visits no shard; the half box visits only the
  // shards it clips, so total visits stay under one fanout's worth.
  EXPECT_LT(sf.planner_shard_visits(), 4u);
}

TEST(PlannerEquality, CommitRebalancesSkewedShards) {
  // Seed the partition from a uniform prefix, then commit a heavily skewed
  // batch: one shard ends up with most of the records, the rebalancer must
  // fire at commit, and every query family must still match the oracle
  // (migration may not lose or duplicate records).
  auto uniform = fixed_intervals(4000, 0xBA1A);
  primitives::Rng rng(0x5CE9);
  std::vector<Interval> skew(12000);
  for (size_t i = 0; i < skew.size(); ++i) {
    double a = 0.9 + rng.next_double() * 0.01;
    skew[i] = Interval{a, a + rng.next_double() * 0.01,
                       uint32_t(uniform.size() + i)};
  }

  DynamicIntervalTree oracle(4);
  ASSERT_TRUE(oracle.bulk_insert(uniform).ok());
  ASSERT_TRUE(oracle.bulk_insert(skew).ok());

  Sharded<DynamicIntervalTree> routed(Routing::kRange, 4, 4);
  ASSERT_TRUE(routed.bulk_insert(uniform).ok());
  EXPECT_EQ(routed.rebalances(), 0u);
  for (const Interval& iv : skew) routed.stage_insert(iv);
  ASSERT_TRUE(routed.commit().ok());
  EXPECT_GE(routed.rebalances(), 1u);
  EXPECT_EQ(routed.size(), oracle.size());

  auto qs = stab_points(200, 0x90D);
  qs.push_back(0.905);  // inside the hot range
  auto r = routed.stab_batch(qs);
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(r.result(i), sorted_ids(oracle.stab(qs[i])));
  }

  // After rebalancing, no shard should hold more than ~2x the mean load.
  auto loads = routed.load_stats();
  size_t total = 0, max_records = 0;
  for (const auto& ls : loads) {
    total += ls.records;
    max_records = std::max(max_records, ls.records);
  }
  EXPECT_LE(max_records, 2 * (total / loads.size()) + 64);
}

TEST(PlannerEquality, NegativeZeroRoutesLikePositiveZero) {
  // Regression: route_key hashed raw double bits, so -0.0 and +0.0 — equal
  // under operator== — routed to different shards and a bulk_erase of the
  // -0.0 spelling silently missed the +0.0 record. Keys are canonicalized
  // before hashing now; the erase must succeed at every fanout >= 2.
  for (size_t f : {size_t{2}, size_t{4}, size_t{8}}) {
    Sharded<DynamicIntervalTree> si(f, 4);
    ASSERT_TRUE(si.bulk_insert({Interval{0.0, 1.0, 7}}).ok());
    EXPECT_EQ(si.bulk_erase({Interval{-0.0, 1.0, 7}}).value(), 1u)
        << "fanout " << f;
    EXPECT_EQ(si.size(), 0u);

    Sharded<LogForest<2>> sf(f);
    ASSERT_TRUE(sf.bulk_insert({geom::Point2{{0.0, 0.5}}}).ok());
    EXPECT_EQ(sf.bulk_erase({geom::Point2{{-0.0, 0.5}}}).value(), 1u)
        << "fanout " << f;
    EXPECT_EQ(sf.size(), 0u);
  }
}

TEST(PlannerEquality, EmptyBatchesPublishNoVersion) {
  // Regression: empty bulk batches and empty commits used to bump version_,
  // publishing no-op epochs.
  Sharded<DynamicIntervalTree> si(4, 4);
  EXPECT_EQ(si.version(), 0u);
  ASSERT_TRUE(si.bulk_insert({}).ok());
  EXPECT_EQ(si.version(), 0u);
  EXPECT_EQ(si.bulk_erase({}).value(), 0u);
  EXPECT_EQ(si.version(), 0u);
  EXPECT_EQ(si.commit().value(), 0u);  // nothing staged: version unchanged
  EXPECT_EQ(si.version(), 0u);

  auto ivs = fixed_intervals(1000, 0xE00);
  ASSERT_TRUE(si.bulk_insert(ivs).ok());
  EXPECT_EQ(si.version(), 1u);
  EXPECT_EQ(si.commit().value(), 1u);  // still nothing staged
  EXPECT_EQ(si.version(), 1u);

  for (const Interval& iv : ivs) si.stage_erase(iv);
  EXPECT_EQ(si.commit().value(), 2u);
  EXPECT_EQ(si.version(), 2u);
  EXPECT_EQ(si.last_commit_erased(), ivs.size());
  EXPECT_EQ(si.commit().value(), 2u);  // staged sets were consumed
}

TEST(PlannerEquality, RoutedEpochInterleavingMatchesSerialReplay) {
  // The epoch schedule from the sharded suite, replayed under range routing:
  // staging, commit visibility, and erase accounting must be identical to
  // the serial oracle even while commits rebalance bounds.
  auto all = fixed_intervals(24000, 0xEB0C);
  Sharded<DynamicIntervalTree> routed(Routing::kRange, 4, 4);
  DynamicIntervalTree oracle(4);

  size_t next = 0;
  std::vector<Interval> live;
  auto qs = stab_points(128, 0x90D);
  for (int epoch = 0; epoch < 5; ++epoch) {
    uint64_t named = routed.begin_epoch();
    std::vector<Interval> ins(all.begin() + next, all.begin() + next + 4000);
    next += 4000;
    std::vector<Interval> ers;
    for (size_t i = 0; i < live.size(); i += 2) ers.push_back(live[i]);

    for (const Interval& iv : ins) routed.stage_insert(iv);
    for (const Interval& iv : ers) routed.stage_erase(iv);

    auto before = routed.stab_batch(qs);
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(before.result(i), sorted_ids(oracle.stab(qs[i])));
    }

    EXPECT_EQ(routed.commit().value(), named);
    ASSERT_TRUE(oracle.bulk_insert(ins).ok());
    EXPECT_EQ(routed.last_commit_erased(), oracle.bulk_erase(ers).value());

    auto after = routed.stab_batch(qs);
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(after.result(i), sorted_ids(oracle.stab(qs[i])));
    }

    std::vector<Interval> still;
    for (size_t i = 0; i < live.size(); ++i) {
      if (i % 2 != 0) still.push_back(live[i]);
    }
    live.swap(still);
    live.insert(live.end(), ins.begin(), ins.end());
    EXPECT_EQ(routed.size(), oracle.size());
  }
}

TEST(PlannerEquality, PlannedCountsScheduleIndependent) {
  // Repeat-run determinism of the planned path at whatever worker count this
  // process has: semisort grouping, targeted sub-batches, and the
  // entries-driven merge charge the same bulk totals regardless of
  // work-stealing interleavings.
  auto ivs = fixed_intervals(20000, 0x60D);
  Sharded<DynamicIntervalTree> routed(Routing::kRange, 4, 4);
  ASSERT_TRUE(routed.bulk_insert(ivs).ok());
  auto qs = stab_points(200, 0x90D);
  asym::Counts c1, c2;
  {
    asym::Region region;
    routed.stab_batch(qs);
    c1 = region.delta();
  }
  {
    asym::Region region;
    routed.stab_batch(qs);
    c2 = region.delta();
  }
  EXPECT_EQ(c1.reads, c2.reads);
  EXPECT_EQ(c1.writes, c2.writes);
}

TEST(PlannerEquality, PlannedBatchGoldenCounts) {
  // Golden read/write counts for the planned paths, captured from the
  // serial (WEG_NUM_THREADS=1) run. The p=2/8 reruns must charge exactly
  // the same totals: the planner's predicate sweep, semisort, and routing
  // slots are bulk-charged functions of the batch and the bounds alone. If
  // an algorithm's counting legitimately changes, recapture at p=1.
  auto ivs = fixed_intervals(20000, 0x60D);
  Sharded<DynamicIntervalTree> si(Routing::kRange, 4, 4);
  ASSERT_TRUE(si.bulk_insert(ivs).ok());
  auto sq = stab_points(200, 0x90D);
  {
    asym::Region region;
    auto r = si.stab_batch(sq);
    auto c = region.delta();
    EXPECT_GT(r.total(), 0u);
    // Broadcast charges 460387/294247 on this workload (see the sharded
    // suite's golden test): pruning shows up in the asym totals as well.
    // Recaptured for the sampling semisort: a 200-query batch rides the
    // classic small-n path, whose grouping sweep is now read-charged
    // separately from boundary emission (+nq = +200 reads; no bucket held
    // mixed masks, so no new sort writes).
    EXPECT_EQ(c.reads, 411078u);
    EXPECT_EQ(c.writes, 293858u);
  }

  auto pts = testing::random_points<2>(20000, 0x60D);
  Sharded<LogForest<2>> sf(Routing::kRange, 4);
  ASSERT_TRUE(sf.bulk_insert(pts).ok());
  auto boxes = box_queries(96, 0xE66, 0.2);
  auto nnq = testing::random_points<2>(64, 0xE66);
  {
    asym::Region region;
    auto r = sf.range_report_batch(boxes);
    auto k = sf.knn_batch(nnq, 8);
    auto c = region.delta();
    EXPECT_GT(r.total(), 0u);
    EXPECT_EQ(k.total(), nnq.size() * 8);
    // Recaptured for the count-augmented traversal: covered-subtree slice
    // reporting plus the full-dimension cover-box knn pruning inside each
    // shard drop reads from the pre-augmentation 113911 (writes unchanged —
    // the same result slices are written once).
    EXPECT_EQ(c.reads, 95685u);
    EXPECT_EQ(c.writes, 53007u);
  }
}

}  // namespace
}  // namespace weg
