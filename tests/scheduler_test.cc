// Stress tests for the lock-free Chase-Lev work-stealing scheduler: deep
// nesting, fork spines deeper than the deque capacity (serial-fallback
// path), concurrent root threads, steal-heavy unbalanced recursions, and
// result determinism. The CMake registration runs this suite at
// WEG_NUM_THREADS = 1, 2, and 8 on top of the default, so every assertion
// holds across worker counts — including oversubscribed ones.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/parallel/parallel_for.h"
#include "src/parallel/scheduler.h"

namespace weg::parallel {
namespace {

TEST(SchedulerStress, DeeplyNestedParDo) {
  // ~150k forks, every join either pops its own job or helps a thief.
  auto fib = [](auto&& self, int n) -> uint64_t {
    if (n <= 1) return static_cast<uint64_t>(n);
    uint64_t a = 0, b = 0;
    par_do([&] { a = self(self, n - 1); }, [&] { b = self(self, n - 2); });
    return a + b;
  };
  EXPECT_EQ(fib(fib, 25), 75025u);
}

TEST(SchedulerStress, SpineDeeperThanDequeCapacity) {
  // A left-leaning spine pushes one right branch per frame without joining,
  // so unless thieves drain it the deque hits kCapacity and par_do must fall
  // back to inline execution without losing jobs.
  constexpr int kDepth = 9000;
  static_assert(kDepth > static_cast<int>(detail::ChaseLevDeque::kCapacity));
  std::atomic<int64_t> sum{0};
  auto chain = [&](auto&& self, int d) -> void {
    if (d == 0) return;
    par_do([&] { self(self, d - 1); },
           [&] { sum.fetch_add(1, std::memory_order_relaxed); });
  };
  chain(chain, kDepth);
  EXPECT_EQ(sum.load(), kDepth);
}

TEST(SchedulerStress, ConcurrentRootsFromExternalThreads) {
  // Several user threads (none owned by the scheduler) submit parallel work
  // at once; each claims its own deque slot and helps while joining.
  constexpr int kRoots = 4;
  constexpr size_t kN = 200000;
  std::vector<std::vector<uint64_t>> results(kRoots);
  std::vector<std::thread> roots;
  roots.reserve(kRoots);
  for (int r = 0; r < kRoots; ++r) {
    roots.emplace_back([r, &results] {
      auto& v = results[static_cast<size_t>(r)];
      v.assign(kN, 0);
      parallel_for(0, kN, [&](size_t i) {
        v[i] = static_cast<uint64_t>(i) * static_cast<uint64_t>(r + 1);
      });
    });
  }
  for (auto& t : roots) t.join();
  for (int r = 0; r < kRoots; ++r) {
    uint64_t sum = 0;
    for (uint64_t x : results[static_cast<size_t>(r)]) sum += x;
    EXPECT_EQ(sum, static_cast<uint64_t>(r + 1) * (kN * (kN - 1) / 2)) << r;
  }
}

TEST(SchedulerStress, UnbalancedRecursionBalancesViaStealing) {
  // 1/8 vs 7/8 splits: the inline (left) branch finishes early, so progress
  // depends on thieves repeatedly stealing the large right branches.
  constexpr size_t kN = size_t{1} << 20;
  std::atomic<uint64_t> sum{0};
  auto rec = [&](auto&& self, size_t lo, size_t hi) -> void {
    if (hi - lo <= 512) {
      uint64_t local = 0;
      for (size_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
      return;
    }
    size_t mid = lo + (hi - lo) / 8;
    par_do([&] { self(self, lo, mid); }, [&] { self(self, mid, hi); });
  };
  rec(rec, 0, kN);
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(SchedulerStress, NestedParallelForInsideParDo) {
  // parallel_for bodies that themselves fork, from two outer branches.
  constexpr size_t kOuter = 64, kInner = 5000;
  std::vector<std::atomic<uint32_t>> hits(kOuter * kInner);
  auto run_half = [&](size_t base) {
    parallel_for(0, kOuter, [&](size_t o) {
      parallel_for(0, kInner, [&](size_t i) {
        hits[(base + o) % kOuter * kInner + i].fetch_add(
            1, std::memory_order_relaxed);
      });
    });
  };
  par_do([&] { run_half(0); }, [&] { run_half(kOuter / 2); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 2u);
}

TEST(SchedulerStress, DeterministicResultAcrossSchedules) {
  // The same computation must produce bit-identical results on every run
  // and at every worker count (the registration reruns this at p=1,2,8).
  auto compute = [] {
    std::vector<uint64_t> v(300000);
    parallel_for(0, v.size(), [&](size_t i) {
      uint64_t x = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
      x ^= x >> 29;
      v[i] = x;
    });
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t x : v) h = (h ^ x) * 1099511628211ULL;
    return h;
  };
  uint64_t serial = [] {
    uint64_t h = 1469598103934665603ULL;
    for (size_t i = 0; i < 300000; ++i) {
      uint64_t x = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
      x ^= x >> 29;
      h = (h ^ x) * 1099511628211ULL;
    }
    return h;
  }();
  for (int trial = 0; trial < 3; ++trial) EXPECT_EQ(compute(), serial);
}

}  // namespace
}  // namespace weg::parallel
