// Convex hull tests (Section 2.2): both sort modes against a brute-force
// containment check, degenerate inputs, and the write-efficiency of the
// WE-sorted variant.
#include <gtest/gtest.h>

#include "src/hull/hull.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg::hull {
namespace {

using weg::testing::random_points;

double cross(const geom::Point2& o, const geom::Point2& a,
             const geom::Point2& b) {
  return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]);
}

// Checks that `hull` (CCW indices) is convex and contains all points.
void check_hull(const std::vector<geom::Point2>& pts,
                const std::vector<uint32_t>& hull) {
  ASSERT_GE(hull.size(), 1u);
  size_t h = hull.size();
  if (h < 3) return;
  for (size_t i = 0; i < h; ++i) {
    const auto& a = pts[hull[i]];
    const auto& b = pts[hull[(i + 1) % h]];
    const auto& c = pts[hull[(i + 2) % h]];
    EXPECT_GT(cross(a, b, c), 0) << "hull not strictly convex at " << i;
  }
  for (const auto& p : pts) {
    for (size_t i = 0; i < h; ++i) {
      const auto& a = pts[hull[i]];
      const auto& b = pts[hull[(i + 1) % h]];
      EXPECT_GE(cross(a, b, p), -1e-12) << "point outside hull";
    }
  }
}

class HullSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(HullSizes, BothModesProduceValidHulls) {
  size_t n = GetParam();
  auto pts = random_points(n, 7 + n);
  auto h1 = convex_hull(pts, SortMode::kClassic);
  auto h2 = convex_hull(pts, SortMode::kWriteEfficient);
  check_hull(pts, h1);
  check_hull(pts, h2);
  EXPECT_EQ(h1.size(), h2.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, HullSizes,
                         ::testing::Values(1, 2, 3, 4, 10, 1000, 50000));

TEST(Hull, SquareCorners) {
  std::vector<geom::Point2> pts(5);
  pts[0][0] = 0; pts[0][1] = 0;
  pts[1][0] = 1; pts[1][1] = 0;
  pts[2][0] = 1; pts[2][1] = 1;
  pts[3][0] = 0; pts[3][1] = 1;
  pts[4][0] = 0.5; pts[4][1] = 0.5;  // interior
  auto h = convex_hull(pts);
  EXPECT_EQ(h.size(), 4u);
}

TEST(Hull, CollinearPointsExcluded) {
  std::vector<geom::Point2> pts;
  for (int i = 0; i <= 10; ++i) {
    geom::Point2 p;
    p[0] = double(i);
    p[1] = double(i);  // all on a line
    pts.push_back(p);
  }
  geom::Point2 apex;
  apex[0] = 5;
  apex[1] = 20;
  pts.push_back(apex);
  auto h = convex_hull(pts);
  EXPECT_EQ(h.size(), 3u);  // two line endpoints + apex
}

TEST(Hull, PointsOnCircleAllOnHull) {
  size_t n = 500;
  std::vector<geom::Point2> pts(n);
  for (size_t i = 0; i < n; ++i) {
    double t = 6.283185307179586 * double(i) / double(n);
    pts[i][0] = std::cos(t);
    pts[i][1] = std::sin(t);
  }
  auto h = convex_hull(pts);
  EXPECT_EQ(h.size(), n);
}

TEST(Hull, VerticalDuplicatesHandled) {
  std::vector<geom::Point2> pts;
  for (int y = 0; y < 5; ++y) {
    geom::Point2 p;
    p[0] = 0.0;
    p[1] = double(y);
    pts.push_back(p);
    p[0] = 1.0;
    pts.push_back(p);
  }
  auto h = convex_hull(pts, SortMode::kWriteEfficient);
  check_hull(pts, h);
  EXPECT_EQ(h.size(), 4u);
}

TEST(Hull, WriteEfficientModeWritesLess) {
  size_t n = 1 << 17;
  auto pts = random_points(n, 9);
  HullStats sc, sw;
  convex_hull(pts, SortMode::kClassic, &sc);
  convex_hull(pts, SortMode::kWriteEfficient, &sw);
  EXPECT_EQ(sc.hull_size, sw.hull_size);
  EXPECT_LT(sw.cost.writes, sc.cost.writes);
}

}  // namespace
}  // namespace weg::hull
