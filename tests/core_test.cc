// Framework tests: the generic DAG tracing algorithm (Section 3.1) on
// synthetic history DAGs, and the prefix-doubling round schedule (3.2).
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "src/asym/counters.h"
#include "src/core/dag_trace.h"
#include "src/core/prefix_doubling.h"
#include "src/primitives/random.h"

namespace weg::core {
namespace {

// A layered random DAG where vertex visibility is monotone along edges
// (visible child implies some visible parent by construction), matching the
// tracable property of Definition 3.2.
struct LayeredDag {
  // adjacency
  std::vector<std::vector<uint32_t>> out, in;
  std::vector<uint8_t> visible;

  size_t out_degree(uint32_t v) const { return out[v].size(); }
  uint32_t out_neighbor(uint32_t v, size_t k) const { return out[v][k]; }
  size_t in_degree(uint32_t v) const { return in[v].size(); }
  uint32_t in_neighbor(uint32_t v, size_t k) const { return in[v][k]; }
  bool higher_priority(uint32_t a, uint32_t b) const { return a < b; }
};

// Builds a DAG with `layers` layers of `width` vertices; vertex 0 is the
// root. Visibility flows downward: a vertex is visible iff at least one
// parent is visible and a per-vertex coin lands heads (root always visible).
LayeredDag make_dag(size_t layers, size_t width, uint64_t seed,
                    int keep_percent) {
  primitives::Rng rng(seed);
  size_t n = 1 + layers * width;
  LayeredDag g;
  g.out.resize(n);
  g.in.resize(n);
  g.visible.assign(n, 0);
  g.visible[0] = 1;
  auto vid = [&](size_t layer, size_t i) -> uint32_t {
    return static_cast<uint32_t>(1 + layer * width + i);
  };
  for (size_t i = 0; i < width; ++i) {
    g.out[0].push_back(vid(0, i));
    g.in[vid(0, i)].push_back(0);
  }
  for (size_t l = 1; l < layers; ++l) {
    for (size_t i = 0; i < width; ++i) {
      uint32_t v = vid(l, i);
      // Two parents from the previous layer (constant degree).
      uint32_t p1 = vid(l - 1, rng.next_bounded(width));
      uint32_t p2 = vid(l - 1, rng.next_bounded(width));
      for (uint32_t p : {p1, p2}) {
        if (std::find(g.in[v].begin(), g.in[v].end(), p) == g.in[v].end()) {
          g.out[p].push_back(v);
          g.in[v].push_back(p);
        }
      }
    }
  }
  // Propagate visibility downward with coin flips.
  for (size_t l = 0; l < layers; ++l) {
    for (size_t i = 0; i < width; ++i) {
      uint32_t v = vid(l, i);
      bool parent_vis = false;
      for (uint32_t p : g.in[v]) parent_vis |= (g.visible[p] != 0);
      if (parent_vis && rng.next_bounded(100) < (uint64_t)keep_percent) {
        g.visible[v] = 1;
      }
    }
  }
  return g;
}

std::set<uint32_t> brute_force_sinks(const LayeredDag& g) {
  std::set<uint32_t> s;
  for (uint32_t v = 0; v < g.out.size(); ++v) {
    if (g.visible[v] && g.out[v].empty()) s.insert(v);
  }
  return s;
}

class DagTraceParams
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, int>> {};

TEST_P(DagTraceParams, FindsExactlyTheVisibleSinks) {
  auto [layers, width, keep] = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto g = make_dag(layers, width, seed, keep);
    std::set<uint32_t> found;
    std::mutex mu;
    dag_trace(
        g, uint32_t{0}, [&](uint32_t v) { return g.visible[v] != 0; },
        [&](uint32_t v) {
          std::lock_guard<std::mutex> lk(mu);
          // The designated-parent rule must deliver each sink exactly once.
          EXPECT_TRUE(found.insert(v).second) << "sink visited twice";
        },
        /*parallel_depth=*/4);
    EXPECT_EQ(found, brute_force_sinks(g));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DagTraceParams,
    ::testing::Values(std::make_tuple(1, 8, 100), std::make_tuple(5, 10, 80),
                      std::make_tuple(10, 50, 60),
                      std::make_tuple(20, 100, 40),
                      std::make_tuple(3, 1000, 90)));

TEST(DagTrace, InvisibleRootYieldsNothing) {
  auto g = make_dag(3, 5, 7, 100);
  g.visible[0] = 0;
  int count = 0;
  dag_trace(g, uint32_t{0}, [&](uint32_t v) { return g.visible[v] != 0; },
            [&](uint32_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(DagTrace, WritesOnlyForOutputs) {
  // The write-efficiency contract of Theorem 3.1: the trace itself performs
  // no large-memory writes; only the caller's emits do.
  auto g = make_dag(10, 50, 9, 70);
  asym::Region r;
  size_t sinks = 0;
  dag_trace(g, uint32_t{0}, [&](uint32_t v) { return g.visible[v] != 0; },
            [&](uint32_t) {
              asym::count_write();
              ++sinks;
            });
  EXPECT_EQ(r.delta().writes, sinks);
}

TEST(PrefixDoubling, CoversRangeExactly) {
  for (size_t n : {1ul, 2ul, 10ul, 1000ul, 123456ul}) {
    auto rounds = prefix_doubling_rounds(n);
    ASSERT_FALSE(rounds.empty());
    EXPECT_EQ(rounds.front().first, 0u);
    EXPECT_EQ(rounds.back().second, n);
    for (size_t i = 1; i < rounds.size(); ++i) {
      EXPECT_EQ(rounds[i].first, rounds[i - 1].second);
    }
  }
}

TEST(PrefixDoubling, DoublesEachRound) {
  auto rounds = prefix_doubling_rounds(1 << 20);
  for (size_t i = 1; i + 1 < rounds.size(); ++i) {
    size_t before = rounds[i].first;
    size_t added = rounds[i].second - rounds[i].first;
    EXPECT_EQ(added, before) << "round " << i;
  }
}

TEST(PrefixDoubling, InitialRoundIsNOverLogSquared) {
  size_t n = 1 << 20;
  auto rounds = prefix_doubling_rounds(n);
  size_t initial = rounds[0].second;
  EXPECT_GT(initial, n / 800);  // ~ n / log^2 n = n / 400
  EXPECT_LT(initial, n / 200);
}

TEST(PrefixDoubling, RoundCountIsLogLogPlusLog) {
  // O(log(log^2 n)) + fringe: for n = 2^20, ~ log2(400) + 1 ≈ 10 rounds.
  auto rounds = prefix_doubling_rounds(1 << 20);
  EXPECT_LE(rounds.size(), 12u);
  EXPECT_GE(rounds.size(), 8u);
}

TEST(PrefixDoubling, ExplicitInitial) {
  auto rounds = prefix_doubling_rounds(100, 10);
  EXPECT_EQ(rounds[0].second, 10u);
  EXPECT_EQ(rounds[1].second, 20u);
  EXPECT_EQ(rounds.back().second, 100u);
}

TEST(PrefixDoubling, EmptyInput) {
  EXPECT_TRUE(prefix_doubling_rounds(0).empty());
}

}  // namespace
}  // namespace weg::core
