// Section 6.3 extension tests: the p-batched builder with heuristic split
// rules (longest-dimension median and surface-area heuristic). All rules
// must produce valid trees with exact query answers; the heuristics must
// keep the linear write bound.
#include <gtest/gtest.h>

#include "src/kdtree/pbatched.h"
#include "src/primitives/random.h"

namespace weg::kdtree {
namespace {

template <int K>
std::vector<geom::PointK<K>> clustered(size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::PointK<K>> pts(n);
  for (auto& p : pts) {
    for (int d = 0; d < K; ++d) {
      p[d] = double(rng.next_bounded(4)) * 0.25 + rng.next_double() * 0.03;
    }
  }
  return pts;
}

class SplitRules
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(SplitRules, ValidTreeAndExactQueries) {
  auto [rule_int, n] = GetParam();
  auto rule = static_cast<SplitRule>(rule_int);
  auto pts = clustered<2>(n, 0x80 + n);
  auto t = PBatchedBuilder<2>::build(pts, 0, 8, nullptr, rule);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), n);
  primitives::Rng rng(n);
  for (int q = 0; q < 10; ++q) {
    geom::Box2 b;
    b.lo[0] = rng.next_double() * 0.8;
    b.lo[1] = rng.next_double() * 0.8;
    b.hi[0] = b.lo[0] + 0.15;
    b.hi[1] = b.lo[1] + 0.15;
    size_t brute = 0;
    for (auto& p : pts) brute += b.contains(p) ? 1 : 0;
    EXPECT_EQ(t.range_count(b), brute);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rules, SplitRules,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 100, 5000, 40000)));

TEST(SplitRules, ThreeDimensionalSAH) {
  auto pts = clustered<3>(10000, 0x81);
  auto t = PBatchedBuilder<3>::build(pts, 0, 8, nullptr,
                                     SplitRule::kSurfaceAreaHeuristic);
  EXPECT_TRUE(t.validate());
  geom::BoxK<3> b;
  for (int d = 0; d < 3; ++d) {
    b.lo[d] = 0.2;
    b.hi[d] = 0.6;
  }
  size_t brute = 0;
  for (auto& p : pts) brute += b.contains(p) ? 1 : 0;
  EXPECT_EQ(t.range_count(b), brute);
}

TEST(SplitRules, HeuristicsKeepLinearWrites) {
  size_t n = 1 << 16;
  auto pts = clustered<2>(n, 0x82);
  for (int rule = 0; rule < 3; ++rule) {
    BuildStats st;
    PBatchedBuilder<2>::build(pts, 0, 8, &st, static_cast<SplitRule>(rule));
    EXPECT_LT(st.cost.writes, 16 * n) << "rule " << rule;
  }
}

TEST(SplitRules, NearestNeighborExactUnderSAH) {
  auto pts = clustered<2>(20000, 0x83);
  auto t = PBatchedBuilder<2>::build(pts, 0, 8, nullptr,
                                     SplitRule::kSurfaceAreaHeuristic);
  primitives::Rng rng(0x84);
  for (int q = 0; q < 25; ++q) {
    geom::Point2 query;
    query[0] = rng.next_double();
    query[1] = rng.next_double();
    double best = 1e300;
    for (auto& p : pts) best = std::min(best, geom::squared_distance(p, query));
    size_t got = t.ann(query, 0.0);
    EXPECT_DOUBLE_EQ(geom::squared_distance(t.points()[got], query), best);
  }
}

TEST(SplitRules, SAHOnAnisotropicDataStaysCompetitive) {
  // Thin horizontal strips. The paper is explicit that such heuristics
  // "generally work well on real-world instances, but usually with no
  // theoretical guarantees" (Section 6.3) — so the contract we test is
  // exactness plus bounded structural cost, not superiority.
  primitives::Rng rng(0x85);
  size_t n = 1 << 16;
  std::vector<geom::Point2> pts(n);
  for (auto& p : pts) {
    p[0] = rng.next_double();                                // long in x
    p[1] = double(rng.next_bounded(8)) * 0.125 + rng.next_double() * 0.002;
  }
  auto tc = PBatchedBuilder<2>::build(pts, 0, 8, nullptr,
                                      SplitRule::kMedianCycling);
  auto ts = PBatchedBuilder<2>::build(pts, 0, 8, nullptr,
                                      SplitRule::kSurfaceAreaHeuristic);
  QueryStats qc, qs;
  for (int q = 0; q < 50; ++q) {
    geom::Box2 b;  // thin box matching a strip
    b.lo[0] = rng.next_double() * 0.5;
    b.hi[0] = b.lo[0] + 0.3;
    b.lo[1] = double(rng.next_bounded(8)) * 0.125;
    b.hi[1] = b.lo[1] + 0.002;
    size_t a = tc.range_count(b, QueryOptions{&qc});
    size_t bb = ts.range_count(b, QueryOptions{&qs});
    ASSERT_EQ(a, bb);
  }
  // Within a constant factor of the cycling-median tree either way.
  EXPECT_LT(qs.nodes_visited, 4 * qc.nodes_visited);
  EXPECT_LT(qc.nodes_visited, 4 * qs.nodes_visited);
}

}  // namespace
}  // namespace weg::kdtree
