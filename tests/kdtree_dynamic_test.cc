// Dynamic k-d tree tests (Section 6.2): the logarithmic-reconstruction
// forest (classic and p-batched rebuild modes) and the single-tree
// reconstruction-based variant, under mixed insert/erase/query workloads
// checked against a brute-force shadow set.
#include <gtest/gtest.h>

#include <map>

#include "src/kdtree/dynamic.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg::kdtree {
namespace {

using weg::testing::random_points;

geom::Box2 box(double xlo, double ylo, double xhi, double yhi) {
  geom::Box2 b;
  b.lo[0] = xlo;
  b.lo[1] = ylo;
  b.hi[0] = xhi;
  b.hi[1] = yhi;
  return b;
}

template <typename Structure>
void mixed_workload_test(Structure& s, uint64_t seed, size_t ops) {
  primitives::Rng rng(seed);
  std::vector<geom::Point2> alive;
  auto pool = random_points(ops, seed + 1);
  size_t next = 0;
  for (size_t op = 0; op < ops; ++op) {
    uint64_t r = rng.next_bounded(10);
    if (r < 6 || alive.empty()) {
      auto p = pool[next++];
      s.insert(p);
      alive.push_back(p);
    } else if (r < 8) {
      size_t i = rng.next_bounded(alive.size());
      ASSERT_TRUE(s.erase(alive[i]));
      alive.erase(alive.begin() + long(i));
    } else {
      auto q = box(rng.next_double() * 0.7, rng.next_double() * 0.7,
                   rng.next_double() * 0.3 + 0.7,
                   rng.next_double() * 0.3 + 0.7);
      size_t brute = 0;
      for (auto& p : alive) brute += q.contains(p) ? 1 : 0;
      ASSERT_EQ(s.range_count(q), brute) << "op " << op;
    }
  }
  ASSERT_EQ(s.size(), alive.size());
}

TEST(LogForest, MixedWorkloadClassicRebuild) {
  LogForest<2> f(LogForest<2>::RebuildMode::kClassic);
  mixed_workload_test(f, 1, 4000);
}

TEST(LogForest, MixedWorkloadPBatchedRebuild) {
  LogForest<2> f(LogForest<2>::RebuildMode::kPBatched);
  mixed_workload_test(f, 2, 4000);
}

TEST(DynamicKdTree, MixedWorkloadRangeOptimal) {
  DynamicKdTree<2> t(DynamicKdTree<2>::Mode::kRangeOptimal);
  mixed_workload_test(t, 3, 4000);
  EXPECT_TRUE(t.validate());
}

TEST(DynamicKdTree, MixedWorkloadAnnOnly) {
  DynamicKdTree<2> t(DynamicKdTree<2>::Mode::kAnnOnly);
  mixed_workload_test(t, 4, 4000);
  EXPECT_TRUE(t.validate());
}

TEST(LogForest, NumTreesIsLogarithmic) {
  LogForest<2> f;
  auto pts = random_points(3000, 5);
  for (auto& p : pts) f.insert(p);
  EXPECT_LE(f.num_trees(), 13u);  // <= log2(3000) + 1
  EXPECT_EQ(f.size(), pts.size());
}

TEST(LogForest, EraseMissingReturnsFalse) {
  LogForest<2> f;
  auto pts = random_points(100, 6);
  for (auto& p : pts) f.insert(p);
  geom::Point2 absent;
  absent[0] = 5;
  absent[1] = 5;
  EXPECT_FALSE(f.erase(absent));
  EXPECT_TRUE(f.erase(pts[0]));
  EXPECT_FALSE(f.erase(pts[0]));  // already gone
}

TEST(LogForest, AnnFindsNearestAmongAlive) {
  LogForest<2> f;
  auto pts = random_points(2000, 7);
  for (auto& p : pts) f.insert(p);
  for (size_t i = 0; i < 1000; ++i) ASSERT_TRUE(f.erase(pts[i]));
  primitives::Rng rng(8);
  for (int q = 0; q < 20; ++q) {
    geom::Point2 query;
    query[0] = rng.next_double();
    query[1] = rng.next_double();
    double best = 1e300;
    for (size_t i = 1000; i < pts.size(); ++i) {
      best = std::min(best, geom::squared_distance(pts[i], query));
    }
    auto got = f.ann(query, 0.0);
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(geom::squared_distance(*got, query), best);
  }
}

TEST(DynamicKdTree, AnnAfterDeletions) {
  DynamicKdTree<2> t;
  auto pts = random_points(2000, 9);
  for (auto& p : pts) t.insert(p);
  for (size_t i = 0; i < 1000; ++i) ASSERT_TRUE(t.erase(pts[i]));
  primitives::Rng rng(10);
  for (int q = 0; q < 20; ++q) {
    geom::Point2 query;
    query[0] = rng.next_double();
    query[1] = rng.next_double();
    double best = 1e300;
    for (size_t i = 1000; i < pts.size(); ++i) {
      best = std::min(best, geom::squared_distance(pts[i], query));
    }
    auto got = t.ann(query, 0.0);
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(geom::squared_distance(*got, query), best);
  }
}

TEST(DynamicKdTree, HeightStaysLogarithmic) {
  DynamicKdTree<2> t(DynamicKdTree<2>::Mode::kRangeOptimal);
  auto pts = random_points(20000, 11);
  for (auto& p : pts) t.insert(p);
  // log2(20000/8) ~ 11.3; reconstruction keeps us within a small additive
  // slack of the balanced height.
  EXPECT_LE(t.height(), 16u);
  EXPECT_GT(t.rebuilds(), 0u);
}

TEST(DynamicKdTree, SortedInsertionOrderStillBalanced) {
  // Adversarial (sorted) insertion order: reconstruction must keep the tree
  // balanced where a plain incremental k-d tree would degenerate.
  DynamicKdTree<2> t;
  for (size_t i = 0; i < 8000; ++i) {
    geom::Point2 p;
    p[0] = double(i) / 8000;
    p[1] = double(i) / 8000;
    t.insert(p);
  }
  EXPECT_LE(t.height(), 15u);
  EXPECT_TRUE(t.validate());
}

TEST(DynamicKdTree, RangeReportMatchesCount) {
  DynamicKdTree<2> t;
  auto pts = random_points(5000, 12);
  for (auto& p : pts) t.insert(p);
  auto q = box(0.2, 0.2, 0.6, 0.6);
  EXPECT_EQ(t.range_report(q).size(), t.range_count(q));
}

TEST(LogForest, PBatchedRebuildWritesLess) {
  // Section 6.2: p-batched reconstruction cuts insertion writes by a log
  // factor relative to classic reconstruction.
  size_t n = 1 << 14;
  auto pts = random_points(n, 13);
  asym::Counts classic, pbatched;
  {
    LogForest<2> f(LogForest<2>::RebuildMode::kClassic);
    asym::Region r;
    for (auto& p : pts) f.insert(p);
    classic = r.delta();
  }
  {
    LogForest<2> f(LogForest<2>::RebuildMode::kPBatched);
    asym::Region r;
    for (auto& p : pts) f.insert(p);
    pbatched = r.delta();
  }
  EXPECT_LT(pbatched.writes, classic.writes);
}

TEST(DynamicKdTree, EmptyAndSingleton) {
  DynamicKdTree<2> t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.ann(geom::Point2{}).has_value());
  geom::Point2 p;
  p[0] = 0.5;
  p[1] = 0.5;
  t.insert(p);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.erase(p));
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace weg::kdtree
