// Static k-d tree tests (Section 6.1): classic and p-batched builders across
// sizes / dimensions / leaf sizes / p values, validation of the split
// invariants, range and (A)NN queries against brute force, the Lemma 6.2
// height bound, and the Theorem 6.1 write bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "src/kdtree/kdtree.h"
#include "src/kdtree/pbatched.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg::kdtree {
namespace {

using weg::testing::random_points;

template <int K>
geom::BoxK<K> random_box(primitives::Rng& rng, double extent) {
  geom::BoxK<K> b;
  for (int d = 0; d < K; ++d) {
    b.lo[d] = rng.next_double() * (1 - extent);
    b.hi[d] = b.lo[d] + rng.next_double() * extent;
  }
  return b;
}

template <int K>
size_t brute_count(const std::vector<geom::PointK<K>>& pts,
                   const geom::BoxK<K>& q) {
  size_t c = 0;
  for (auto& p : pts) c += q.contains(p) ? 1 : 0;
  return c;
}

class KdBuild
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, int>> {};

TEST_P(KdBuild, ClassicValidatesAndAnswersRangeQueries) {
  auto [n, leaf, pbatched] = GetParam();
  auto pts = random_points<2>(n, 100 + n);
  KdTree<2> t = pbatched ? PBatchedBuilder<2>::build(pts, 0, leaf)
                         : KdTree<2>::build_classic(pts, leaf);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), n);
  primitives::Rng rng(n);
  for (int q = 0; q < 10; ++q) {
    auto box = random_box<2>(rng, 0.3);
    EXPECT_EQ(t.range_count(box), brute_count(pts, box));
    EXPECT_EQ(t.range_report(box).size(), brute_count(pts, box));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdBuild,
    ::testing::Combine(::testing::Values(0, 1, 2, 17, 1000, 20000),
                       ::testing::Values(1, 8, 32),
                       ::testing::Values(0, 1)));

TEST(KdTree, ThreeDimensional) {
  auto pts = random_points<3>(5000, 7);
  auto t1 = KdTree<3>::build_classic(pts);
  auto t2 = PBatchedBuilder<3>::build(pts);
  EXPECT_TRUE(t1.validate());
  EXPECT_TRUE(t2.validate());
  primitives::Rng rng(8);
  for (int q = 0; q < 10; ++q) {
    auto box = random_box<3>(rng, 0.5);
    size_t ref = brute_count(pts, box);
    EXPECT_EQ(t1.range_count(box), ref);
    EXPECT_EQ(t2.range_count(box), ref);
  }
}

TEST(KdTree, ExactNearestNeighborMatchesBrute) {
  auto pts = random_points<2>(20000, 9);
  auto t = KdTree<2>::build_classic(pts);
  primitives::Rng rng(10);
  for (int q = 0; q < 50; ++q) {
    geom::Point2 query;
    query[0] = rng.next_double();
    query[1] = rng.next_double();
    size_t best = 0;
    double bd = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      double d = geom::squared_distance(pts[i], query);
      if (d < bd) {
        bd = d;
        best = i;
      }
    }
    size_t got = t.ann(query, 0.0);
    EXPECT_DOUBLE_EQ(geom::squared_distance(t.points()[got], query), bd)
        << "query " << q << " brute idx " << best;
  }
}

TEST(KdTree, ApproximateNNWithinFactor) {
  auto pts = random_points<2>(20000, 11);
  auto t = PBatchedBuilder<2>::build(pts);
  primitives::Rng rng(12);
  double eps = 0.5;
  for (int q = 0; q < 50; ++q) {
    geom::Point2 query;
    query[0] = rng.next_double();
    query[1] = rng.next_double();
    double bd = 1e300;
    for (auto& p : pts) bd = std::min(bd, geom::squared_distance(p, query));
    size_t got = t.ann(query, eps);
    double gd = geom::squared_distance(t.points()[got], query);
    EXPECT_LE(std::sqrt(gd), (1 + eps) * std::sqrt(bd) + 1e-12);
  }
}

TEST(KdTree, KnnMatchesBruteForce) {
  auto pts = random_points<2>(5000, 13);
  auto t = KdTree<2>::build_classic(pts);
  primitives::Rng rng(14);
  for (size_t k : {1ul, 5ul, 32ul}) {
    geom::Point2 query;
    query[0] = rng.next_double();
    query[1] = rng.next_double();
    std::vector<double> dists;
    for (auto& p : pts) dists.push_back(geom::squared_distance(p, query));
    std::sort(dists.begin(), dists.end());
    auto got = t.knn(query, k);
    ASSERT_EQ(got.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(geom::squared_distance(t.points()[got[i]], query),
                       dists[i]);
    }
  }
}

TEST(KdTree, KnnLargerThanSizeReturnsAll) {
  auto pts = random_points<2>(10, 15);
  auto t = KdTree<2>::build_classic(pts);
  geom::Point2 q;
  q[0] = 0.5;
  q[1] = 0.5;
  EXPECT_EQ(t.knn(q, 100).size(), 10u);
}

TEST(KdTree, FindLocatesEveryPoint) {
  auto pts = random_points<2>(3000, 16);
  auto t = PBatchedBuilder<2>::build(pts);
  for (auto& p : pts) {
    size_t idx = t.find(p);
    ASSERT_NE(idx, SIZE_MAX);
    EXPECT_EQ(t.points()[idx], p);
  }
  geom::Point2 absent;
  absent[0] = 2.0;
  absent[1] = 2.0;
  EXPECT_EQ(t.find(absent), SIZE_MAX);
}

TEST(PBatched, Lemma62HeightBound) {
  // p = Omega(log^3 n) keeps the height within log2(n/leaf) + O(1) of the
  // perfectly balanced height.
  size_t n = 1 << 16;
  auto pts = random_points<2>(n, 17);
  BuildStats sc, sp;
  auto tc = KdTree<2>::build_classic(pts, 8, &sc);
  auto tp = PBatchedBuilder<2>::build(pts, 0, 8, &sp);
  EXPECT_LE(sp.height, sc.height + 3);
}

TEST(PBatched, SettleBuffersAreOrderP) {
  size_t n = 1 << 16;
  auto pts = random_points<2>(n, 18);
  double lg = std::log2(double(n));
  size_t p = size_t(lg * lg * lg) + 8;
  BuildStats st;
  PBatchedBuilder<2>::build(pts, p, 8, &st);
  EXPECT_GT(st.settles, 0u);
  EXPECT_LT(st.max_settle_buffer, 5 * p);  // O(p) whp
}

TEST(PBatched, Theorem61WriteBound) {
  double prev_ratio = 0;
  for (size_t n : {1ul << 14, 1ul << 17}) {
    auto pts = random_points<2>(n, 19);
    BuildStats sc, sp;
    KdTree<2>::build_classic(pts, 8, &sc);
    PBatchedBuilder<2>::build(pts, 0, 8, &sp);
    EXPECT_LT(sp.cost.writes, sc.cost.writes);
    double ratio = double(sc.cost.writes) / double(sp.cost.writes);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
    EXPECT_LT(sp.cost.writes, 15 * n);
  }
}

TEST(PBatched, SmallPStillCorrect) {
  auto pts = random_points<2>(5000, 20);
  for (size_t p : {1ul, 4ul, 64ul, 5000ul}) {
    auto t = PBatchedBuilder<2>::build(pts, p, 8);
    EXPECT_TRUE(t.validate()) << "p=" << p;
    EXPECT_EQ(t.size(), pts.size());
  }
}

TEST(KdTree, DuplicatePointsSupported) {
  auto pts = random_points<2>(500, 21);
  auto dup = pts;
  dup.insert(dup.end(), pts.begin(), pts.end());
  auto t = KdTree<2>::build_classic(dup);
  auto tp = PBatchedBuilder<2>::build(dup);
  EXPECT_TRUE(t.validate());
  EXPECT_TRUE(tp.validate());
  geom::Box2 all;
  all.lo[0] = all.lo[1] = -1;
  all.hi[0] = all.hi[1] = 2;
  EXPECT_EQ(t.range_count(all), dup.size());
  EXPECT_EQ(tp.range_count(all), dup.size());
}

TEST(KdTree, QueryStatsPopulated) {
  auto pts = random_points<2>(10000, 22);
  auto t = KdTree<2>::build_classic(pts);
  QueryStats qs;
  geom::Box2 b;
  b.lo[0] = b.lo[1] = 0.4;
  b.hi[0] = b.hi[1] = 0.6;
  t.range_count(b, QueryOptions{&qs});
  EXPECT_GT(qs.nodes_visited, 0u);
  EXPECT_GT(qs.points_scanned, 0u);
}

TEST(KdTree, RangeQueryCostSublinear) {
  // Lemma 6.1: a 2-d range query visits O(sqrt(n)) nodes (plus output).
  size_t n = 1 << 16;
  auto pts = random_points<2>(n, 23);
  auto t = PBatchedBuilder<2>::build(pts);
  QueryStats qs;
  geom::Box2 thin;  // a thin slab: output small, structure cost dominates
  thin.lo[0] = 0.5;
  thin.hi[0] = 0.5005;
  thin.lo[1] = -1;
  thin.hi[1] = 2;
  t.range_count(thin, QueryOptions{&qs});
  EXPECT_LT(qs.nodes_visited, 60 * size_t(std::sqrt(double(n))));
}

}  // namespace
}  // namespace weg::kdtree
