// Sharded-vs-unsharded equality for the serving layer
// (src/parallel/sharded.h): at every fanout, each merged query slice must be
// bitwise-identical to the unsharded structure's answer put into the same
// canonical order — ascending ids for stabbing, lexicographic coordinates
// for range reports, (distance, coordinates) for kNN/ANN — because the
// merge is pure offset arithmetic plus a canonicalizing sort, and shards
// partition the record set. The epoch tests replay the same
// update-batch/query-batch schedule against a serial oracle. The CMake
// registration reruns this suite at WEG_NUM_THREADS=1/2/8, and the golden
// read/write counts pin the other contract: bulk updates (pre-claimed build
// slots) and sharded batch queries charge asym totals that are functions of
// the input alone — identical at every worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/augtree/interval.h"
#include "src/augtree/interval_tree.h"
#include "src/geom/box.h"
#include "src/kdtree/dynamic.h"
#include "src/parallel/sharded.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg {
namespace {

using augtree::DynamicIntervalTree;
using augtree::Interval;
using kdtree::DynamicKdTree;
using kdtree::LogForest;
using parallel::Sharded;

constexpr size_t kN = 30000;  // above the ~2k sequential cutoff
const size_t kFanouts[] = {1, 2, 4, 8};

std::vector<Interval> fixed_intervals(size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<Interval> ivs(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.next_double();
    ivs[i] = Interval{a, a + rng.next_double() * 0.05, uint32_t(i)};
  }
  return ivs;
}

std::vector<double> stab_points(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<double> qs(q);
  for (double& x : qs) x = rng.next_double();
  return qs;
}

std::vector<geom::Box2> box_queries(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::Box2> qs(q);
  for (auto& b : qs) {
    b.lo[0] = rng.next_double();
    b.hi[0] = b.lo[0] + rng.next_double() * 0.2;
    b.lo[1] = rng.next_double();
    b.hi[1] = b.lo[1] + rng.next_double() * 0.2;
  }
  return qs;
}

std::vector<uint32_t> sorted_ids(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<geom::Point2> sorted_points(std::vector<geom::Point2> v) {
  std::sort(v.begin(), v.end(),
            [](const geom::Point2& a, const geom::Point2& b) {
              return a.coords < b.coords;
            });
  return v;
}

TEST(ShardedEquality, StabBatchAllFanouts) {
  auto ivs = fixed_intervals(kN, 0xA11CE);
  DynamicIntervalTree oracle(4);
  ASSERT_TRUE(oracle.bulk_insert(ivs).ok());
  auto qs = stab_points(256, 0xBEEF);

  for (size_t f : kFanouts) {
    Sharded<DynamicIntervalTree> sharded(f, 4);
    ASSERT_TRUE(sharded.bulk_insert(ivs).ok());
    EXPECT_EQ(sharded.fanout(), f);
    EXPECT_EQ(sharded.size(), oracle.size());
    for (size_t s = 0; s < f; ++s) {
      EXPECT_GT(sharded.shard(s).size(), 0u);  // routing actually spreads
    }
    auto batch = sharded.stab_batch(qs);
    auto counts = sharded.stab_count_batch(qs);
    ASSERT_EQ(batch.num_queries(), qs.size());
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(batch.result(i), sorted_ids(oracle.stab(qs[i])));
      EXPECT_EQ(counts[i], oracle.stab_count(qs[i]));
      EXPECT_EQ(batch.count(i), counts[i]);
    }
  }
}

TEST(ShardedEquality, ForestRangeKnnAnnAllFanouts) {
  auto pts = testing::random_points<2>(20000, 0xFEED);
  std::vector<geom::Point2> gone(pts.begin(), pts.begin() + 2500);
  LogForest<2> oracle;
  ASSERT_TRUE(oracle.bulk_insert(pts).ok());
  ASSERT_EQ(oracle.bulk_erase(gone).value(), gone.size());
  auto boxes = box_queries(96, 0xABBA);
  {
    // Covered-subtree shapes ride along: all-covering, half-space, and a
    // zero-area box through a surviving point — the count fast path and
    // covered-shard planning must stay bitwise-equal to the oracle at
    // every fanout.
    geom::Box2 all;
    all.lo[0] = all.lo[1] = -1.0;
    all.hi[0] = all.hi[1] = 2.0;
    geom::Box2 half = all;
    half.hi[0] = 0.5;
    geom::Box2 pb;
    pb.lo = pb.hi = pts.back();
    boxes.push_back(all);
    boxes.push_back(half);
    boxes.push_back(pb);
  }
  auto nnq = testing::random_points<2>(64, 0xACDC);

  for (size_t f : kFanouts) {
    Sharded<LogForest<2>> sharded(f);
    ASSERT_TRUE(sharded.bulk_insert(pts).ok());
    EXPECT_EQ(sharded.bulk_erase(gone).value(), gone.size());
    EXPECT_EQ(sharded.size(), oracle.size());

    auto rep = sharded.range_report_batch(boxes);
    auto cnt = sharded.range_count_batch(boxes);
    for (size_t i = 0; i < boxes.size(); ++i) {
      EXPECT_EQ(rep.result(i), sorted_points(oracle.range_report(boxes[i])));
      EXPECT_EQ(cnt[i], oracle.range_count(boxes[i]));
      EXPECT_EQ(rep.count(i), cnt[i]);
    }

    const size_t k = 8;
    auto knn = sharded.knn_batch(nnq, k);
    auto ann = sharded.ann_batch(nnq, 0.0);
    ASSERT_EQ(knn.total(), nnq.size() * k);
    for (size_t i = 0; i < nnq.size(); ++i) {
      // LogForest::knn already reports in the canonical (distance,
      // coordinates) order, so this is plain bitwise equality.
      EXPECT_EQ(knn.result(i), oracle.knn(nnq[i], k));
      ASSERT_TRUE(ann[i].has_value());
      EXPECT_EQ(*ann[i], oracle.knn(nnq[i], 1).front());
      EXPECT_EQ(knn.result(i).front(), *ann[i]);
    }
  }
}

TEST(ShardedEquality, KnnAnnCanonicalUnderDistanceTies) {
  // Lattice points make distinct equidistant candidates ubiquitous: a query
  // on a lattice site sees its 4 unit neighbors tied, so k=6 forces a pick
  // among tied boundary candidates. The canonical (distance, coordinates)
  // order in the kd visitors is what keeps every fanout's top-k identical —
  // a plain distance comparison would let traversal order decide.
  std::vector<geom::Point2> pts;
  for (int x = 0; x < 40; ++x) {
    for (int y = 0; y < 40; ++y) {
      pts.push_back(geom::Point2{{double(x), double(y)}});
    }
  }
  LogForest<2> oracle;
  ASSERT_TRUE(oracle.bulk_insert(pts).ok());
  std::vector<geom::Point2> qs;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      qs.push_back(geom::Point2{{double(x * 5), double(y * 5)}});
    }
  }
  for (size_t f : kFanouts) {
    Sharded<LogForest<2>> sharded(f);
    ASSERT_TRUE(sharded.bulk_insert(pts).ok());
    auto knn = sharded.knn_batch(qs, 6);
    auto ann = sharded.ann_batch(qs, 0.0);
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(knn.result(i), oracle.knn(qs[i], 6));
      ASSERT_TRUE(ann[i].has_value());
      EXPECT_EQ(*ann[i], oracle.knn(qs[i], 1).front());
    }
  }
}

TEST(ShardedEquality, DynamicKdTreeBulkMatchesElementwise) {
  auto pts = testing::random_points<2>(20000, 0xD00D);
  std::vector<geom::Point2> gone(pts.begin(), pts.begin() + 2500);

  DynamicKdTree<2> bulk;
  ASSERT_TRUE(bulk.bulk_insert(pts).ok());
  EXPECT_EQ(bulk.bulk_erase(gone).value(), gone.size());
  ASSERT_TRUE(bulk.validate());

  DynamicKdTree<2> elementwise;
  for (const auto& p : pts) elementwise.insert(p);
  for (const auto& p : gone) ASSERT_TRUE(elementwise.erase(p));
  ASSERT_TRUE(elementwise.validate());

  EXPECT_EQ(bulk.size(), elementwise.size());
  auto boxes = box_queries(96, 0xF00D);
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(sorted_points(bulk.range_report(boxes[i])),
              sorted_points(elementwise.range_report(boxes[i])));
  }

  // The sharded wrapper over the single-tree version: range + ANN equality.
  for (size_t f : kFanouts) {
    Sharded<DynamicKdTree<2>> sharded(f);
    ASSERT_TRUE(sharded.bulk_insert(pts).ok());
    EXPECT_EQ(sharded.bulk_erase(gone).value(), gone.size());
    auto rep = sharded.range_report_batch(boxes);
    auto nnq = testing::random_points<2>(32, 0x1DEA);
    auto ann = sharded.ann_batch(nnq, 0.0);
    for (size_t i = 0; i < boxes.size(); ++i) {
      EXPECT_EQ(rep.result(i), sorted_points(bulk.range_report(boxes[i])));
    }
    for (size_t i = 0; i < nnq.size(); ++i) {
      EXPECT_EQ(ann[i], bulk.ann(nnq[i], 0.0));
    }
  }
}

TEST(ShardedEquality, EpochInterleavingMatchesSerialReplay) {
  // Update batches and query batches interleaved through the epoch API must
  // match a serial oracle that applies the same bulk batches at the same
  // commit points: queries staged-but-uncommitted see the old version,
  // committed epochs see exactly the new record set.
  auto all = fixed_intervals(24000, 0xEB0C);
  Sharded<DynamicIntervalTree> sharded(4, 4);
  DynamicIntervalTree oracle(4);

  size_t next = 0;
  std::vector<Interval> live;
  auto qs = stab_points(128, 0x90D);
  for (int epoch = 0; epoch < 5; ++epoch) {
    uint64_t named = sharded.begin_epoch();
    std::vector<Interval> ins(all.begin() + next, all.begin() + next + 4000);
    next += 4000;
    std::vector<Interval> ers;
    for (size_t i = 0; i < live.size(); i += 2) ers.push_back(live[i]);

    for (const Interval& iv : ins) sharded.stage_insert(iv);
    for (const Interval& iv : ers) sharded.stage_erase(iv);

    // Staged but not committed: queries still see the previous version.
    auto before = sharded.stab_batch(qs);
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(before.result(i), sorted_ids(oracle.stab(qs[i])));
    }

    EXPECT_EQ(sharded.commit().value(), named);
    EXPECT_EQ(sharded.version(), named);
    ASSERT_TRUE(oracle.bulk_insert(ins).ok());
    size_t oracle_erased = oracle.bulk_erase(ers).value();
    EXPECT_EQ(sharded.last_commit_erased(), oracle_erased);

    auto after = sharded.stab_batch(qs);
    auto counts = sharded.stab_count_batch(qs);
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(after.result(i), sorted_ids(oracle.stab(qs[i])));
      EXPECT_EQ(counts[i], oracle.stab_count(qs[i]));
    }

    // Maintain the live set the way the oracle saw it.
    std::vector<Interval> still;
    for (size_t i = 0; i < live.size(); ++i) {
      if (i % 2 != 0) still.push_back(live[i]);
    }
    live.swap(still);
    live.insert(live.end(), ins.begin(), ins.end());
    EXPECT_EQ(sharded.size(), oracle.size());
  }
}

TEST(ShardedEquality, ForestEpochInterleaving) {
  auto pts = testing::random_points<2>(16000, 0xE66);
  Sharded<LogForest<2>> sharded(4);
  LogForest<2> oracle;
  auto boxes = box_queries(48, 0xB0BA);

  size_t next = 0;
  std::vector<geom::Point2> live;
  for (int epoch = 0; epoch < 4; ++epoch) {
    std::vector<geom::Point2> ins(pts.begin() + next,
                                  pts.begin() + next + 4000);
    next += 4000;
    std::vector<geom::Point2> ers;
    for (size_t i = 0; i < live.size(); i += 3) ers.push_back(live[i]);
    for (const auto& p : ins) sharded.stage_insert(p);
    for (const auto& p : ers) sharded.stage_erase(p);
    ASSERT_TRUE(sharded.commit().ok());
    ASSERT_TRUE(oracle.bulk_insert(ins).ok());
    EXPECT_EQ(sharded.last_commit_erased(), oracle.bulk_erase(ers).value());

    auto rep = sharded.range_report_batch(boxes);
    for (size_t i = 0; i < boxes.size(); ++i) {
      EXPECT_EQ(rep.result(i), sorted_points(oracle.range_report(boxes[i])));
    }

    std::vector<geom::Point2> still;
    for (size_t i = 0; i < live.size(); ++i) {
      if (i % 3 != 0) still.push_back(live[i]);
    }
    live.swap(still);
    live.insert(live.end(), ins.begin(), ins.end());
  }
  EXPECT_EQ(sharded.version(), 4u);
}

TEST(ShardedEquality, ShardedCountsScheduleIndependent) {
  // Repeat-run determinism at whatever worker count this process has: the
  // shard fan-out, per-shard two-phase plans, and bulk-charged merge perform
  // the same counted accesses regardless of work-stealing interleavings.
  auto ivs = fixed_intervals(20000, 0x60D);
  Sharded<DynamicIntervalTree> sharded(4, 4);
  ASSERT_TRUE(sharded.bulk_insert(ivs).ok());
  auto qs = stab_points(200, 0x90D);
  asym::Counts c1, c2;
  {
    asym::Region region;
    sharded.stab_batch(qs);
    c1 = region.delta();
  }
  {
    asym::Region region;
    sharded.stab_batch(qs);
    c2 = region.delta();
  }
  EXPECT_EQ(c1.reads, c2.reads);
  EXPECT_EQ(c1.writes, c2.writes);
}

TEST(ShardedEquality, BulkOpsAndShardedBatchGoldenCounts) {
  // Golden read/write counts captured from the serial (WEG_NUM_THREADS=1)
  // code path. The p=2/8 reruns of this suite must charge exactly the same
  // totals — the unified pre-claimed-slot bulk paths and the bulk-charged
  // sharded merge are functions of the input alone. If an algorithm's
  // counting legitimately changes, recapture at p=1.
  auto ivs = fixed_intervals(20000, 0x60D);
  std::vector<Interval> iv_gone(ivs.begin(), ivs.begin() + 5000);
  {
    asym::Region region;
    DynamicIntervalTree t(4);
    ASSERT_TRUE(t.bulk_insert(ivs).ok());
    ASSERT_EQ(t.bulk_erase(iv_gone).value(), iv_gone.size());
    auto c = region.delta();
    // Recaptured for the sampling semisort (interval bulk ops rebuild via
    // the write-efficient sort, whose large rounds now take the heavy/light
    // plan): +42226 reads are the separately charged sample fetches and
    // grouping sweeps, +28731 writes the now-charged local bucket sorts.
    EXPECT_EQ(c.reads, 2932197u);
    EXPECT_EQ(c.writes, 839650u);
  }

  auto pts = testing::random_points<2>(20000, 0x60D);
  std::vector<geom::Point2> pt_gone(pts.begin(), pts.begin() + 5000);
  {
    asym::Region region;
    DynamicKdTree<2> t;
    ASSERT_TRUE(t.bulk_insert(pts).ok());
    ASSERT_EQ(t.bulk_erase(pt_gone).value(), pt_gone.size());
    auto c = region.delta();
    EXPECT_EQ(c.reads, 386912u);
    EXPECT_EQ(c.writes, 340486u);
  }
  {
    asym::Region region;
    LogForest<2> t;
    ASSERT_TRUE(t.bulk_insert(pts).ok());
    ASSERT_EQ(t.bulk_erase(pt_gone).value(), pt_gone.size());
    auto c = region.delta();
    EXPECT_EQ(c.reads, 351783u);
    EXPECT_EQ(c.writes, 285000u);
  }

  Sharded<DynamicIntervalTree> si(4, 4);
  ASSERT_TRUE(si.bulk_insert(ivs).ok());
  auto sq = stab_points(200, 0x90D);
  {
    asym::Region region;
    auto r = si.stab_batch(sq);
    auto c = region.delta();
    EXPECT_GT(r.total(), 0u);
    EXPECT_EQ(c.reads, 460387u);
    EXPECT_EQ(c.writes, 294247u);
  }

  Sharded<LogForest<2>> sf(4);
  ASSERT_TRUE(sf.bulk_insert(pts).ok());
  auto boxes = box_queries(96, 0xE66);
  auto nnq = testing::random_points<2>(64, 0xE66);
  {
    asym::Region region;
    auto r = sf.range_report_batch(boxes);
    auto k = sf.knn_batch(nnq, 8);
    auto c = region.delta();
    EXPECT_GT(r.total(), 0u);
    EXPECT_EQ(k.total(), nnq.size() * 8);
    // Recaptured for the count-augmented traversal: covered-subtree slice
    // reporting and per-node box pruning inside each shard's forest drop
    // reads from the pre-augmentation 145297 (writes unchanged — the same
    // result slices are written once).
    EXPECT_EQ(c.reads, 129326u);
    EXPECT_EQ(c.writes, 54528u);
  }
}

}  // namespace
}  // namespace weg
