// Delaunay triangulation tests (Section 5): mesh validity and the exact
// empty-circle property across point distributions (uniform, circle, grid,
// clusters, collinear, duplicates), agreement between the baseline and the
// write-efficient variants, Euler-formula structure, and the Theorem 5.1
// write bounds.
#include <gtest/gtest.h>

#include <set>

#include "src/delaunay/delaunay.h"
#include "src/primitives/random.h"

namespace weg::delaunay {
namespace {

enum class Dist { kUniform, kCircle, kGrid, kClusters, kCollinearish };

std::vector<geom::Point2> make_points(Dist d, size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::Point2> pts(n);
  switch (d) {
    case Dist::kUniform:
      for (auto& p : pts) {
        p[0] = rng.next_double();
        p[1] = rng.next_double();
      }
      break;
    case Dist::kCircle:
      for (auto& p : pts) {
        double t = rng.next_double() * 6.283185307179586;
        p[0] = 0.5 + 0.5 * std::cos(t);
        p[1] = 0.5 + 0.5 * std::sin(t);
      }
      break;
    case Dist::kGrid: {
      size_t side = static_cast<size_t>(std::sqrt(double(n))) + 1;
      pts.clear();
      for (size_t x = 0; x < side && pts.size() < n; ++x) {
        for (size_t y = 0; y < side && pts.size() < n; ++y) {
          geom::Point2 p;
          p[0] = double(x);
          p[1] = double(y);
          pts.push_back(p);
        }
      }
      primitives::shuffle(pts, rng);
      break;
    }
    case Dist::kClusters:
      for (auto& p : pts) {
        double cx = (rng.next_bounded(4)) * 0.25;
        double cy = (rng.next_bounded(4)) * 0.25;
        p[0] = cx + rng.next_double() * 0.01;
        p[1] = cy + rng.next_double() * 0.01;
      }
      break;
    case Dist::kCollinearish:
      for (size_t i = 0; i < n; ++i) {
        pts[i][0] = double(i);
        pts[i][1] = (i % 5 == 0) ? 1.0 : 0.0;  // mostly on a line
      }
      primitives::shuffle(pts, rng);
      break;
  }
  return pts;
}

std::vector<uint32_t> all_ids(const Mesh& m) {
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i + 3 < m.vertices().size() + 0; ++i) {
    if (i < m.vertices().size() - 3) ids.push_back(i);
  }
  return ids;
}

class DTDistributions
    : public ::testing::TestWithParam<std::tuple<Dist, size_t, int>> {};

TEST_P(DTDistributions, ValidDelaunayBothModes) {
  auto [dist, n, mode_int] = GetParam();
  Mode mode = mode_int ? Mode::kWriteEfficient : Mode::kBaseline;
  auto pts = make_points(dist, n, 42 + n);
  DTStats st;
  auto mesh = triangulate(pts, mode, &st);
  auto ids = all_ids(*mesh);
  EXPECT_TRUE(mesh->validate(/*check_delaunay=*/true, &ids));
  // Euler: with the bounding triangle, every inserted point is interior, so
  // the number of alive triangles is exactly 2 * m + 1 where m is the number
  // of distinct inserted points.
  size_t m = mesh->vertices().size() - 3;
  EXPECT_EQ(mesh->alive_triangles().size(), 2 * m + 1);
  EXPECT_EQ(st.points_inserted, m);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DTDistributions,
    ::testing::Combine(::testing::Values(Dist::kUniform, Dist::kCircle,
                                         Dist::kGrid, Dist::kClusters,
                                         Dist::kCollinearish),
                       ::testing::Values(3, 50, 500, 1500),
                       ::testing::Values(0, 1)));

TEST(Delaunay, TinyInputs) {
  for (size_t n : {0ul, 1ul, 2ul}) {
    auto pts = make_points(Dist::kUniform, n, 7);
    auto mesh = triangulate(pts, Mode::kWriteEfficient);
    EXPECT_TRUE(mesh->validate(false));
    EXPECT_EQ(mesh->alive_triangles().size(), 2 * n + 1);
  }
}

TEST(Delaunay, BothModesProduceTheSameTriangulation) {
  // The Delaunay triangulation of symbolically perturbed points is unique,
  // so the alive triangle sets must match exactly (as vertex triples).
  auto pts = make_points(Dist::kUniform, 2000, 11);
  auto m1 = triangulate(pts, Mode::kBaseline);
  auto m2 = triangulate(pts, Mode::kWriteEfficient);
  auto canon = [](const Mesh& m) {
    std::set<std::array<uint32_t, 3>> tris;
    for (uint32_t t : m.alive_triangles()) {
      std::array<uint32_t, 3> v{m.tri(t).v[0], m.tri(t).v[1], m.tri(t).v[2]};
      // rotate the smallest vertex first (orientation preserved)
      int k = int(std::min_element(v.begin(), v.end()) - v.begin());
      std::array<uint32_t, 3> c{v[size_t(k)], v[size_t((k + 1) % 3)],
                                v[size_t((k + 2) % 3)]};
      tris.insert(c);
    }
    return tris;
  };
  EXPECT_EQ(canon(*m1), canon(*m2));
}

TEST(Delaunay, DuplicatesAreDropped) {
  auto pts = make_points(Dist::kUniform, 500, 13);
  auto dup = pts;
  dup.insert(dup.end(), pts.begin(), pts.end());  // every point twice
  DTStats st;
  auto mesh = triangulate(dup, Mode::kWriteEfficient, &st);
  EXPECT_EQ(st.duplicates_dropped, pts.size());
  EXPECT_EQ(mesh->vertices().size() - 3, pts.size());
  EXPECT_TRUE(mesh->validate(false));
}

TEST(Delaunay, Theorem51WriteEfficiency) {
  // WE writes stay ~linear; the baseline grows ~n log n. Check the ratio
  // widens with n and the WE constant stays bounded.
  double prev_ratio = 0;
  for (size_t n : {1ul << 12, 1ul << 14}) {
    auto pts = make_points(Dist::kUniform, n, 17);
    DTStats sb, sw;
    triangulate(pts, Mode::kBaseline, &sb);
    triangulate(pts, Mode::kWriteEfficient, &sw);
    EXPECT_LT(sw.cost.writes, sb.cost.writes);
    double ratio = double(sb.cost.writes) / double(sw.cost.writes);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
    EXPECT_LT(sw.cost.writes, 140 * n);  // bounded writes-per-point
  }
}

TEST(Delaunay, Figure1TracingStructureStats) {
  // Expected |S| (cavity size) is constant (~6 by Euler); expected |R|
  // (visited history nodes) is O(log n).
  size_t n = 1 << 14;
  auto pts = make_points(Dist::kUniform, n, 19);
  DTStats st;
  triangulate(pts, Mode::kWriteEfficient, &st);
  double avg_cavity = double(st.cavity_triangles) / double(st.points_inserted);
  EXPECT_GT(avg_cavity, 3.0);
  EXPECT_LT(avg_cavity, 8.0);
  double avg_steps = double(st.history_steps) / double(st.points_inserted);
  EXPECT_LT(avg_steps, 10.0 * 14);  // O(log n) with a small constant
}

TEST(Delaunay, PrefixRoundsMatchSchedule) {
  auto pts = make_points(Dist::kUniform, 1 << 12, 23);
  DTStats sw, sb;
  triangulate(pts, Mode::kWriteEfficient, &sw);
  triangulate(pts, Mode::kBaseline, &sb);
  EXPECT_GT(sw.prefix_rounds, 4u);
  EXPECT_EQ(sb.prefix_rounds, 1u);
}

TEST(Quantize, PreservesOrderDropsDuplicates) {
  std::vector<geom::Point2> pts(4);
  pts[0][0] = 0.1; pts[0][1] = 0.1;
  pts[1][0] = 0.9; pts[1][1] = 0.9;
  pts[2][0] = 0.1; pts[2][1] = 0.1;  // duplicate of 0
  pts[3][0] = 0.5; pts[3][1] = 0.5;
  size_t dropped = 0;
  auto g = quantize(pts, &dropped);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(g.size(), 3u);
  for (size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i].id, i);
  EXPECT_EQ(g[0].x, 0);  // min maps to 0
}

TEST(Quantize, CoordinatesWithinGrid) {
  auto pts = make_points(Dist::kUniform, 1000, 29);
  auto g = quantize(pts);
  for (auto& p : g) {
    EXPECT_GE(p.x, 0);
    EXPECT_LT(p.x, int64_t{1} << 24);
    EXPECT_GE(p.y, 0);
    EXPECT_LT(p.y, int64_t{1} << 24);
  }
}

}  // namespace
}  // namespace weg::delaunay
