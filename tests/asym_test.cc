// Asymmetric-memory simulation tests: counting correctness, region deltas,
// parallel aggregation, the instrumented array, and the ω-parameterized work
// formula.
#include <gtest/gtest.h>

#include "src/asym/array.h"
#include "src/asym/counters.h"
#include "src/parallel/parallel_for.h"

namespace weg::asym {
namespace {

TEST(Counters, ReadWriteDeltas) {
  Region r;
  count_read(10);
  count_write(3);
  auto d = r.delta();
  EXPECT_EQ(d.reads, 10u);
  EXPECT_EQ(d.writes, 3u);
}

TEST(Counters, AccessorHelpers) {
  int x = 5;
  Region r;
  int y = read(x);
  write(x, y + 1);
  EXPECT_EQ(x, 6);
  auto d = r.delta();
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.writes, 1u);
}

TEST(Counters, WorkFormula) {
  Counts c{100, 10};
  EXPECT_DOUBLE_EQ(c.work(1.0), 110.0);
  EXPECT_DOUBLE_EQ(c.work(10.0), 200.0);
  EXPECT_DOUBLE_EQ(c.work(0.0), 100.0);
}

TEST(Counters, ArithmeticOps) {
  Counts a{10, 5}, b{3, 2};
  auto s = a + b;
  EXPECT_EQ(s.reads, 13u);
  EXPECT_EQ(s.writes, 7u);
  auto d = s - b;
  EXPECT_EQ(d.reads, a.reads);
  EXPECT_EQ(d.writes, a.writes);
}

TEST(Counters, ParallelCountingIsExact) {
  Region r;
  size_t n = 1 << 18;
  parallel::parallel_for(0, n, [&](size_t) {
    count_read();
    count_write(2);
  });
  auto d = r.delta();
  EXPECT_EQ(d.reads, n);
  EXPECT_EQ(d.writes, 2 * n);
}

TEST(Counters, NestedRegionsCompose) {
  Region outer;
  count_read(5);
  {
    Region inner;
    count_read(7);
    EXPECT_EQ(inner.delta().reads, 7u);
  }
  EXPECT_EQ(outer.delta().reads, 12u);
}

TEST(Array, InitializationCountsWrites) {
  Region r;
  Array<int> a(100, 42);
  EXPECT_EQ(r.delta().writes, 100u);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.peek(50), 42);
}

TEST(Array, GetSetCounting) {
  Array<int> a(10);
  Region r;
  a.set(3, 7);
  int v = a.get(3);
  EXPECT_EQ(v, 7);
  auto d = r.delta();
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.writes, 1u);
}

TEST(Array, PeekAndRawAreUncounted) {
  Array<int> a(10);
  a.raw(2) = 9;
  Region r;
  EXPECT_EQ(a.peek(2), 9);
  EXPECT_EQ(r.delta().reads, 0u);
  EXPECT_EQ(r.delta().writes, 0u);
}

TEST(Array, PushBackCounted) {
  Array<int> a;
  Region r;
  a.push_back_counted(1);
  a.push_back_counted(2);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(r.delta().writes, 2u);
}

}  // namespace
}  // namespace weg::asym
