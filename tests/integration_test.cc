// Cross-module integration tests: different structures answering the same
// geometric questions must agree, and the write-efficient variants must beat
// their classic counterparts end-to-end at a fixed scale.
#include <gtest/gtest.h>

#include <set>

#include "src/augtree/interval_tree.h"
#include "src/augtree/priority_tree.h"
#include "src/augtree/range_tree.h"
#include "src/delaunay/delaunay.h"
#include "src/hull/hull.h"
#include "src/kdtree/kdtree.h"
#include "src/kdtree/pbatched.h"
#include "src/primitives/random.h"
#include "src/sort/incremental_sort.h"
#include "tests/testing_util.h"

namespace weg {
namespace {

using weg::testing::random_points;

TEST(Integration, KdTreeAndRangeTreeAgreeOnRangeQueries) {
  size_t n = 20000;
  auto pts = random_points(n, 1);
  std::vector<augtree::PPoint> ppts(n);
  for (size_t i = 0; i < n; ++i) {
    ppts[i] = augtree::PPoint{pts[i][0], pts[i][1], uint32_t(i)};
  }
  auto kd = kdtree::PBatchedBuilder<2>::build(pts);
  auto rt = augtree::StaticRangeTree::build(ppts);
  auto art = augtree::AlphaRangeTree::build(ppts, 8);
  primitives::Rng rng(2);
  for (int q = 0; q < 30; ++q) {
    double xl = rng.next_double() * 0.7, xr = xl + rng.next_double() * 0.3;
    double yb = rng.next_double() * 0.7, yt = yb + rng.next_double() * 0.3;
    geom::Box2 box;
    box.lo[0] = xl;
    box.hi[0] = xr;
    box.lo[1] = yb;
    box.hi[1] = yt;
    size_t a = kd.range_count(box);
    size_t b = rt.query_count(xl, xr, yb, yt);
    size_t c = art.query_count(xl, xr, yb, yt);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
  }
}

TEST(Integration, PriorityTreeMatchesRangeTreeOn3SidedQueries) {
  size_t n = 10000;
  auto pts = random_points(n, 3);
  std::vector<augtree::PPoint> ppts(n);
  for (size_t i = 0; i < n; ++i) {
    ppts[i] = augtree::PPoint{pts[i][0], pts[i][1], uint32_t(i)};
  }
  auto pt = augtree::StaticPriorityTree::build_postsorted(ppts);
  auto rt = augtree::StaticRangeTree::build(ppts);
  primitives::Rng rng(4);
  for (int q = 0; q < 30; ++q) {
    double xl = rng.next_double() * 0.7, xr = xl + rng.next_double() * 0.3;
    double yb = rng.next_double();
    // 3-sided = range query with yt = +inf.
    EXPECT_EQ(pt.query_count(xl, xr, yb), rt.query_count(xl, xr, yb, 2.0));
  }
}

TEST(Integration, HullVerticesAreDelaunayBoundaryVertices) {
  // Every convex hull vertex must appear in the Delaunay triangulation as a
  // vertex of some triangle adjacent to the bounding vertices.
  size_t n = 2000;
  auto pts = random_points(n, 5);
  auto hull = hull::convex_hull(pts);
  delaunay::DTStats st;
  auto mesh = delaunay::triangulate(pts, delaunay::Mode::kWriteEfficient, &st);
  ASSERT_EQ(st.duplicates_dropped, 0u);
  uint32_t bound_lo = uint32_t(mesh->vertices().size() - 3);
  std::set<uint32_t> boundary_adjacent;
  for (uint32_t t : mesh->alive_triangles()) {
    const auto& tr = mesh->tri(t);
    bool touches = tr.v[0] >= bound_lo || tr.v[1] >= bound_lo ||
                   tr.v[2] >= bound_lo;
    if (!touches) continue;
    for (int k = 0; k < 3; ++k) {
      if (tr.v[k] < bound_lo) boundary_adjacent.insert(tr.v[k]);
    }
  }
  // Quantization can merge/move points slightly; require the vast majority
  // of hull vertices to be boundary-adjacent in the mesh.
  size_t hits = 0;
  for (uint32_t h : hull) hits += boundary_adjacent.count(h);
  EXPECT_GE(hits * 10, hull.size() * 9);
}

TEST(Integration, InnerSortersAgree) {
  primitives::Rng rng(6);
  std::vector<uint64_t> keys(100000);
  for (auto& k : keys) k = rng.next();
  auto a = sort::incremental_sort_classic(keys);
  auto b = sort::incremental_sort_we(keys);
  EXPECT_EQ(a, b);
}

TEST(Integration, WriteEfficiencyAcrossTheBoard) {
  // One end-to-end check per structure: at n = 2^15, every write-efficient
  // construction must perform fewer large-memory writes than its classic
  // counterpart (Table 1 + Theorems 4.1/5.1/6.1/7.1 at a fixed scale).
  size_t n = 1 << 15;
  auto pts = random_points(n, 7);
  std::vector<augtree::PPoint> ppts(n);
  std::vector<augtree::Interval> ivs(n);
  std::vector<uint64_t> keys(n);
  primitives::Rng rng(8);
  for (size_t i = 0; i < n; ++i) {
    ppts[i] = augtree::PPoint{pts[i][0], pts[i][1], uint32_t(i)};
    ivs[i] = augtree::Interval{pts[i][0], pts[i][0] + 0.01 + pts[i][1] * 0.05,
                               uint32_t(i)};
    keys[i] = rng.next();
  }

  sort::SortStats sc, sw;
  sort::incremental_sort_classic(keys, &sc);
  sort::incremental_sort_we(keys, &sw);
  EXPECT_LT(sw.cost.writes, sc.cost.writes) << "sort";

  delaunay::DTStats db, dw;
  delaunay::triangulate(pts, delaunay::Mode::kBaseline, &db);
  delaunay::triangulate(pts, delaunay::Mode::kWriteEfficient, &dw);
  EXPECT_LT(dw.cost.writes, db.cost.writes) << "delaunay";

  kdtree::BuildStats kc, kp;
  kdtree::KdTree<2>::build_classic(pts, 8, &kc);
  kdtree::PBatchedBuilder<2>::build(pts, 0, 8, &kp);
  EXPECT_LT(kp.cost.writes, kc.cost.writes) << "kdtree";

  augtree::StaticIntervalTree::Stats ic, ip;
  augtree::StaticIntervalTree::build_classic(ivs, &ic);
  augtree::StaticIntervalTree::build_postsorted(ivs, &ip);
  EXPECT_LT(ip.cost.writes, ic.cost.writes) << "interval tree";

  augtree::StaticPriorityTree::Stats pc, pp;
  augtree::StaticPriorityTree::build_classic(ppts, &pc);
  augtree::StaticPriorityTree::build_postsorted(ppts, &pp);
  EXPECT_LT(pp.cost.writes, pc.cost.writes) << "priority tree";

  augtree::StaticRangeTree::Stats rc;
  augtree::StaticRangeTree::build(ppts, &rc);
  asym::Counts ra;
  augtree::AlphaRangeTree::build(ppts, 8, &ra);
  EXPECT_LT(ra.writes, rc.cost.writes) << "range tree";
}

TEST(Integration, AsymWorkCrossoverWithOmega) {
  // At ω = 1 the classic interval construction can win on total work (the
  // WE variant reads more); at large ω the WE variant must win — the
  // crossover the paper's model predicts.
  size_t n = 1 << 15;
  auto pts = random_points(n, 9);
  std::vector<augtree::Interval> ivs(n);
  for (size_t i = 0; i < n; ++i) {
    ivs[i] = augtree::Interval{pts[i][0], pts[i][0] + 0.02, uint32_t(i)};
  }
  augtree::StaticIntervalTree::Stats ic, ip;
  augtree::StaticIntervalTree::build_classic(ivs, &ic);
  augtree::StaticIntervalTree::build_postsorted(ivs, &ip);
  EXPECT_LT(ip.cost.work(40.0), ic.cost.work(40.0));
}

}  // namespace
}  // namespace weg
