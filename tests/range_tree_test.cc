// 2D range tree tests (Sections 7.1, 7.3.4): the classic full-augmentation
// tree vs the α-labeled tree (inner trees only at critical nodes), range
// reporting/counting against brute force, construction write bounds (Table 1
// last rows), augmentation-size scaling in α, and dynamic mixed workloads.
#include <gtest/gtest.h>

#include "src/augtree/range_tree.h"
#include "src/primitives/random.h"
#include "tests/testing_util.h"

namespace weg::augtree {
namespace {

std::vector<PPoint> make_points(size_t n, uint64_t seed, bool grid = false) {
  return weg::testing::random_ppoints(n, seed, grid ? 25 : 0);
}

size_t brute(const std::vector<PPoint>& pts, double xl, double xr, double yb,
             double yt) {
  size_t c = 0;
  for (auto& p : pts) {
    c += (p.x >= xl && p.x <= xr && p.y >= yb && p.y <= yt) ? 1 : 0;
  }
  return c;
}

class StaticRT : public ::testing::TestWithParam<std::tuple<size_t, bool>> {};

TEST_P(StaticRT, QueriesMatchBrute) {
  auto [n, grid] = GetParam();
  auto pts = make_points(n, 81 + n, grid);
  auto t = StaticRangeTree::build(pts);
  EXPECT_TRUE(t.validate());
  primitives::Rng rng(n + 3);
  for (int q = 0; q < 25; ++q) {
    double xl = rng.next_double() * 0.8, xr = xl + rng.next_double() * 0.3;
    double yb = rng.next_double() * 0.8, yt = yb + rng.next_double() * 0.3;
    size_t ref = brute(pts, xl, xr, yb, yt);
    EXPECT_EQ(t.query(xl, xr, yb, yt).size(), ref);
    EXPECT_EQ(t.query_count(xl, xr, yb, yt), ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, StaticRT,
    ::testing::Combine(::testing::Values(0, 1, 2, 9, 500, 8000),
                       ::testing::Bool()));

TEST(StaticRT, InnerEntriesAreNLogN) {
  size_t n = 1 << 13;
  auto pts = make_points(n, 83);
  StaticRangeTree::Stats st;
  StaticRangeTree::build(pts, &st);
  // Each point appears once per level of its search path: ~ n * log2(n).
  EXPECT_GT(st.inner_entries, n * 10);
  EXPECT_LT(st.inner_entries, n * 16);
}

class AlphaRT : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlphaRT, BulkBuildQueriesMatchBrute) {
  uint64_t alpha = GetParam();
  auto pts = make_points(4000, 85 + alpha);
  auto t = AlphaRangeTree::build(pts, alpha);
  EXPECT_TRUE(t.validate());
  primitives::Rng rng(alpha);
  for (int q = 0; q < 25; ++q) {
    double xl = rng.next_double() * 0.8, xr = xl + rng.next_double() * 0.3;
    double yb = rng.next_double() * 0.8, yt = yb + rng.next_double() * 0.3;
    size_t ref = brute(pts, xl, xr, yb, yt);
    EXPECT_EQ(t.query(xl, xr, yb, yt).size(), ref);
    EXPECT_EQ(t.query_count(xl, xr, yb, yt), ref);
  }
}

TEST_P(AlphaRT, MixedWorkloadMatchesBrute) {
  uint64_t alpha = GetParam();
  AlphaRangeTree t(alpha);
  primitives::Rng rng(87 + alpha);
  std::vector<PPoint> alive;
  uint32_t next_id = 0;
  for (size_t op = 0; op < 5000; ++op) {
    uint64_t r = rng.next_bounded(10);
    if (r < 6 || alive.empty()) {
      PPoint p{rng.next_double(), rng.next_double(), next_id++};
      t.insert(p);
      alive.push_back(p);
    } else if (r < 8) {
      size_t i = rng.next_bounded(alive.size());
      ASSERT_TRUE(t.erase(alive[i]));
      alive.erase(alive.begin() + long(i));
    } else {
      double xl = rng.next_double() * 0.8, xr = xl + rng.next_double() * 0.3;
      double yb = rng.next_double() * 0.8, yt = yb + rng.next_double() * 0.3;
      ASSERT_EQ(t.query(xl, xr, yb, yt).size(), brute(alive, xl, xr, yb, yt))
          << "op " << op;
    }
  }
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), alive.size());
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaRT, ::testing::Values(2, 4, 8, 32));

TEST(AlphaRT, AugmentationShrinksWithAlpha) {
  // Inner entries total n log_alpha n: must decrease as alpha grows.
  auto pts = make_points(20000, 89);
  size_t prev = SIZE_MAX;
  for (uint64_t alpha : {2ull, 4ull, 16ull}) {
    auto t = AlphaRangeTree::build(pts, alpha);
    size_t entries = t.inner_entries();
    EXPECT_LT(entries, prev) << "alpha=" << alpha;
    prev = entries;
  }
}

TEST(AlphaRT, ConstructionWritesBelowClassic) {
  // Table 1: O((alpha + omega) n log_alpha n) vs O(omega n log n) writes.
  size_t n = 1 << 15;
  auto pts = make_points(n, 91);
  StaticRangeTree::Stats sc;
  StaticRangeTree::build(pts, &sc);
  asym::Counts ca;
  AlphaRangeTree::build(pts, 8, &ca);
  EXPECT_LT(ca.writes, sc.cost.writes);
}

TEST(AlphaRT, LargerAlphaFewerUpdateWrites) {
  size_t n = 20000;
  uint64_t w2 = 0, w16 = 0;
  for (uint64_t alpha : {2ull, 16ull}) {
    auto pts = make_points(n, 93);
    auto t = AlphaRangeTree::build(pts, alpha);
    primitives::Rng rng(95);
    asym::Region r;
    for (uint32_t i = 0; i < 2000; ++i) {
      t.insert(PPoint{rng.next_double(), rng.next_double(), uint32_t(n) + i});
    }
    (alpha == 2 ? w2 : w16) = r.delta().writes;
  }
  EXPECT_LT(w16, w2);
}

TEST(AlphaRT, QueryAtEdgesAndEmptyRanges) {
  auto pts = make_points(1000, 97);
  auto t = AlphaRangeTree::build(pts, 4);
  EXPECT_EQ(t.query(2.0, 3.0, 0.0, 1.0).size(), 0u);   // empty x range
  EXPECT_EQ(t.query(0.0, 1.0, 2.0, 3.0).size(), 0u);   // empty y range
  EXPECT_EQ(t.query(-1.0, 2.0, -1.0, 2.0).size(), pts.size());  // everything
  // Inverted range: no results.
  EXPECT_EQ(t.query(0.9, 0.1, 0.0, 1.0).size(), 0u);
}

TEST(AlphaRT, EraseThenReinsertSameId) {
  AlphaRangeTree t(4);
  PPoint p{0.5, 0.5, 7};
  t.insert(p);
  ASSERT_TRUE(t.erase(p));
  t.insert(p);
  EXPECT_EQ(t.query(0.4, 0.6, 0.4, 0.6).size(), 1u);
  EXPECT_TRUE(t.validate());
}

TEST(StaticRT, DuplicateCoordinates) {
  auto pts = make_points(2000, 99, /*grid=*/true);  // heavy duplication
  auto t = StaticRangeTree::build(pts);
  primitives::Rng rng(101);
  for (int q = 0; q < 20; ++q) {
    double xl = rng.next_double() * 0.8, xr = xl + 0.2;
    double yb = rng.next_double() * 0.8, yt = yb + 0.2;
    EXPECT_EQ(t.query_count(xl, xr, yb, yt), brute(pts, xl, xr, yb, yt));
  }
}

}  // namespace
}  // namespace weg::augtree
