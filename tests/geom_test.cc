// Geometry predicate tests: exact signs, symbolic-perturbation properties
// (never-zero, antisymmetry, permutation parity, consistency on degenerate
// inputs), and box utilities.
#include <gtest/gtest.h>

#include "src/geom/box.h"
#include "src/geom/predicates.h"
#include "src/primitives/random.h"

namespace weg::geom {
namespace {

GridPoint gp(int64_t x, int64_t y, uint32_t id) { return GridPoint{x, y, id}; }

TEST(Orient2D, ExactBasicSigns) {
  EXPECT_GT(orient2d_exact(gp(0, 0, 0), gp(1, 0, 1), gp(0, 1, 2)), 0);  // CCW
  EXPECT_LT(orient2d_exact(gp(0, 0, 0), gp(0, 1, 1), gp(1, 0, 2)), 0);  // CW
  EXPECT_EQ(orient2d_exact(gp(0, 0, 0), gp(1, 1, 1), gp(2, 2, 2)), 0);
}

TEST(Orient2D, ExactLargeCoordinatesNoOverflow) {
  int64_t big = int64_t{1} << 28;
  EXPECT_GT(orient2d_exact(gp(-big, -big, 0), gp(big, -big, 1), gp(0, big, 2)),
            0);
}

TEST(Orient2D, SosNeverZero) {
  primitives::Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    // Many collinear triples (small grid).
    GridPoint a = gp((int64_t)rng.next_bounded(4),
                     (int64_t)rng.next_bounded(4), 0);
    GridPoint b = gp((int64_t)rng.next_bounded(4),
                     (int64_t)rng.next_bounded(4), 1);
    GridPoint c = gp((int64_t)rng.next_bounded(4),
                     (int64_t)rng.next_bounded(4), 2);
    if ((a.x == b.x && a.y == b.y) || (a.x == c.x && a.y == c.y) ||
        (b.x == c.x && b.y == c.y)) {
      continue;  // coincident points are excluded by dedup upstream
    }
    EXPECT_NE(orient2d_sos(a, b, c), 0);
  }
}

TEST(Orient2D, SosAgreesWithExactWhenNondegenerate) {
  primitives::Rng rng(2);
  for (int t = 0; t < 2000; ++t) {
    GridPoint a = gp((int64_t)rng.next_bounded(1000),
                     (int64_t)rng.next_bounded(1000), 0);
    GridPoint b = gp((int64_t)rng.next_bounded(1000),
                     (int64_t)rng.next_bounded(1000), 1);
    GridPoint c = gp((int64_t)rng.next_bounded(1000),
                     (int64_t)rng.next_bounded(1000), 2);
    int ex = orient2d_exact(a, b, c);
    if (ex != 0) {
      EXPECT_EQ(orient2d_sos(a, b, c), ex);
    }
  }
}

TEST(Orient2D, SosPermutationParity) {
  // Swapping two arguments flips the sign — even for degenerate triples.
  primitives::Rng rng(3);
  for (int t = 0; t < 2000; ++t) {
    GridPoint a = gp((int64_t)rng.next_bounded(5),
                     (int64_t)rng.next_bounded(5), 7);
    GridPoint b = gp((int64_t)rng.next_bounded(5),
                     (int64_t)rng.next_bounded(5), 13);
    GridPoint c = gp((int64_t)rng.next_bounded(5),
                     (int64_t)rng.next_bounded(5), 29);
    if ((a.x == b.x && a.y == b.y) || (a.x == c.x && a.y == c.y) ||
        (b.x == c.x && b.y == c.y)) {
      continue;
    }
    int s = orient2d_sos(a, b, c);
    EXPECT_EQ(orient2d_sos(b, a, c), -s);
    EXPECT_EQ(orient2d_sos(a, c, b), -s);
    EXPECT_EQ(orient2d_sos(b, c, a), s);  // cyclic
    EXPECT_EQ(orient2d_sos(c, a, b), s);
  }
}

TEST(InCircle, ExactBasic) {
  // Unit-ish circle through (0,0),(4,0),(0,4); (1,1) inside, (5,5) outside.
  GridPoint a = gp(0, 0, 0), b = gp(4, 0, 1), c = gp(0, 4, 2);
  ASSERT_GT(orient2d_exact(a, b, c), 0);
  EXPECT_GT(in_circle_exact(a, b, c, gp(1, 1, 3)), 0);
  EXPECT_LT(in_circle_exact(a, b, c, gp(5, 5, 3)), 0);
  EXPECT_EQ(in_circle_exact(a, b, c, gp(4, 4, 3)), 0);  // cocircular
}

TEST(InCircle, SosDecidesCocircular) {
  GridPoint a = gp(0, 0, 0), b = gp(4, 0, 1), c = gp(0, 4, 2);
  GridPoint d = gp(4, 4, 3);  // exactly on the circle
  // The perturbed predicate must be decisive and consistent: d inside abc
  // iff NOT (a inside bcd-reversed orientation) etc. We check decisiveness
  // and rotation invariance here.
  bool in1 = in_circle_sos(a, b, c, d);
  bool in2 = in_circle_sos(b, c, a, d);
  bool in3 = in_circle_sos(c, a, b, d);
  EXPECT_EQ(in1, in2);
  EXPECT_EQ(in1, in3);
}

TEST(InCircle, SosSymmetryAcrossTheCircle) {
  // For four cocircular points, "d in circle(a,b,c)" and "a in circle(d,c,b)"
  // (both CCW) must be consistent under the same perturbation: exactly one
  // of each opposite pair of diagonals flips. We verify via Delaunay-flip
  // consistency: in the square, exactly one diagonal is chosen.
  GridPoint a = gp(0, 0, 0), b = gp(2, 0, 1), c = gp(2, 2, 2), d = gp(0, 2, 3);
  // Triangles (a,b,c) + (a,c,d) vs (a,b,d) + (b,c,d).
  bool flip1 = in_circle_sos(a, b, c, d);  // d encroaches abc?
  bool flip2 = in_circle_sos(a, c, d, b);  // b encroaches acd?
  // Both triangulations of the square cannot be simultaneously "illegal".
  EXPECT_EQ(flip1, flip2);
  bool alt1 = in_circle_sos(a, b, d, c);
  bool alt2 = in_circle_sos(b, c, d, a);
  EXPECT_EQ(alt1, alt2);
  EXPECT_NE(flip1, alt1);  // exactly one diagonal is Delaunay
}

TEST(InCircle, StrictInsideUnaffectedByPerturbation) {
  primitives::Rng rng(4);
  for (int t = 0; t < 1000; ++t) {
    GridPoint a = gp(0, 0, 0), b = gp(100, 0, 1), c = gp(0, 100, 2);
    int64_t x = (int64_t)rng.next_bounded(60) + 10;
    int64_t y = (int64_t)rng.next_bounded(60) + 10;
    GridPoint d = gp(x, y, 3);
    if (in_circle_exact(a, b, c, d) > 0) {
      EXPECT_TRUE(in_circle_sos(a, b, c, d));
    } else if (in_circle_exact(a, b, c, d) < 0) {
      EXPECT_FALSE(in_circle_sos(a, b, c, d));
    }
  }
}

TEST(InTriangle, SosBasic) {
  GridPoint a = gp(0, 0, 0), b = gp(10, 0, 1), c = gp(0, 10, 2);
  EXPECT_TRUE(in_triangle_sos(a, b, c, gp(2, 2, 3)));
  EXPECT_FALSE(in_triangle_sos(a, b, c, gp(20, 20, 3)));
}

TEST(Box, ExtendAndContains) {
  auto b = BoxK<2>::empty();
  Point2 p1, p2;
  p1[0] = 0;
  p1[1] = 0;
  p2[0] = 2;
  p2[1] = 3;
  b.extend(p1);
  b.extend(p2);
  Point2 mid;
  mid[0] = 1;
  mid[1] = 1.5;
  EXPECT_TRUE(b.contains(mid));
  EXPECT_TRUE(b.contains(p1));
  Point2 out;
  out[0] = -1;
  out[1] = 0;
  EXPECT_FALSE(b.contains(out));
}

TEST(Box, IntersectsAndInside) {
  Box2 a, b;
  a.lo[0] = 0; a.lo[1] = 0; a.hi[0] = 2; a.hi[1] = 2;
  b.lo[0] = 1; b.lo[1] = 1; b.hi[0] = 3; b.hi[1] = 3;
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.inside(b));
  Box2 c;
  c.lo[0] = 0.5; c.lo[1] = 0.5; c.hi[0] = 1.5; c.hi[1] = 1.5;
  EXPECT_TRUE(c.inside(a));
  Box2 d;
  d.lo[0] = 5; d.lo[1] = 5; d.hi[0] = 6; d.hi[1] = 6;
  EXPECT_FALSE(a.intersects(d));
}

TEST(Box, SquaredDistance) {
  Box2 a;
  a.lo[0] = 0; a.lo[1] = 0; a.hi[0] = 1; a.hi[1] = 1;
  Point2 in;
  in[0] = 0.5;
  in[1] = 0.5;
  EXPECT_DOUBLE_EQ(a.squared_distance(in), 0.0);
  Point2 right;
  right[0] = 3;
  right[1] = 0.5;
  EXPECT_DOUBLE_EQ(a.squared_distance(right), 4.0);
  Point2 corner;
  corner[0] = 2;
  corner[1] = 2;
  EXPECT_DOUBLE_EQ(a.squared_distance(corner), 2.0);
}

TEST(Box, LongestDimension) {
  Box2 a;
  a.lo[0] = 0; a.lo[1] = 0; a.hi[0] = 1; a.hi[1] = 5;
  EXPECT_EQ(a.longest_dimension(), 1);
}

TEST(Point, Distances) {
  Point2 a, b;
  a[0] = 0; a[1] = 0; b[0] = 3; b[1] = 4;
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
}

}  // namespace
}  // namespace weg::geom
