// Incremental comparison sort tests (Section 4): correctness of the classic
// parallel BST sort and the write-efficient prefix-doubling variant across
// sizes / duplicate densities, the Theorem 4.1 write bound (linear writes vs
// Θ(n log n) for the classic variant), and the order-returning API.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/primitives/random.h"
#include "tests/testing_util.h"
#include "src/sort/incremental_sort.h"

namespace weg::sort {
namespace {

using weg::testing::random_vec;

class SortSizes
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(SortSizes, ClassicSorts) {
  auto [n, range] = GetParam();
  auto keys = random_vec(n, 1 + n, range);
  auto ref = keys;
  std::sort(ref.begin(), ref.end());
  SortStats st;
  EXPECT_EQ(incremental_sort_classic(keys, &st), ref);
}

TEST_P(SortSizes, WriteEfficientSorts) {
  auto [n, range] = GetParam();
  auto keys = random_vec(n, 2 + n, range);
  auto ref = keys;
  std::sort(ref.begin(), ref.end());
  SortStats st;
  EXPECT_EQ(incremental_sort_we(keys, &st), ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SortSizes,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 10, 100, 1000, 50000),
                       ::testing::Values(0ull, 7ull, 1000ull)));

TEST(IncrementalSort, OrderVariantIsASortingPermutation) {
  auto keys = random_vec(20000, 3, 500);
  auto order = incremental_sort_we_order(keys);
  ASSERT_EQ(order.size(), keys.size());
  std::vector<uint8_t> seen(keys.size(), 0);
  for (size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(seen[order[i]], 0);
    seen[order[i]] = 1;
    if (i > 0) {
      ASSERT_LE(keys[order[i - 1]], keys[order[i]]);
    }
  }
}

TEST(IncrementalSort, OrderBreaksTiesByIndex) {
  std::vector<uint64_t> keys{5, 5, 5, 5, 5};
  auto order = incremental_sort_we_order(keys);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(IncrementalSort, Theorem41LinearWrites) {
  // Writes of the WE sort grow ~linearly while the classic variant grows
  // ~n log n: the ratio classic/WE must increase with n.
  double prev_ratio = 0;
  for (size_t n : {1ul << 14, 1ul << 17}) {
    auto keys = random_vec(n, 4, 0);
    SortStats c, w;
    incremental_sort_classic(keys, &c);
    incremental_sort_we(keys, &w);
    EXPECT_LT(w.cost.writes, c.cost.writes);
    double ratio = double(c.cost.writes) / double(w.cost.writes);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
    // WE writes bounded by a fixed constant per key.
    EXPECT_LT(w.cost.writes, 10 * n);
  }
}

TEST(IncrementalSort, PostponedFractionIsSmall) {
  auto keys = random_vec(1 << 16, 5, 0);
  SortStats st;
  incremental_sort_we(keys, &st);
  EXPECT_LT(st.postponed, keys.size() / 20);
}

TEST(IncrementalSort, TreeHeightIsLogarithmic) {
  size_t n = 1 << 16;
  auto keys = random_vec(n, 6, 0);
  SortStats c, w;
  incremental_sort_classic(keys, &c);
  incremental_sort_we(keys, &w);
  // Random BSTs have height < 4 log2 n whp.
  EXPECT_LT(c.tree_height, 4 * 16u);
  EXPECT_LT(w.tree_height, 5 * 16u);  // cutoff chains add a little
}

TEST(IncrementalSort, RoundsPolylog) {
  auto keys = random_vec(1 << 16, 7, 0);
  SortStats c;
  incremental_sort_classic(keys, &c);
  // Classic rounds == tree height (one level per round).
  EXPECT_EQ(c.rounds, c.tree_height);
}

TEST(IncrementalSort, SmallCutoffStillSorts) {
  auto keys = random_vec(20000, 8, 0);
  auto ref = keys;
  std::sort(ref.begin(), ref.end());
  SortStats st;
  EXPECT_EQ(incremental_sort_we(keys, &st, /*cutoff=*/2), ref);
  EXPECT_GT(st.postponed, 0u);  // tiny cutoff forces postponements
}

TEST(IncrementalSort, AlreadySortedInput) {
  // Sorted order is adversarial for BST shape but the WE variant's random-
  // order assumption concerns cost, not correctness.
  std::vector<uint64_t> keys(3000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  auto ref = keys;
  EXPECT_EQ(incremental_sort_we(keys), ref);
  EXPECT_EQ(incremental_sort_classic(keys), ref);
}

TEST(DoubleToSortable, MonotoneOverDoubles) {
  primitives::Rng rng(9);
  std::vector<double> ds;
  for (int i = 0; i < 10000; ++i) {
    ds.push_back((rng.next_double() - 0.5) * 1e9);
  }
  ds.push_back(0.0);
  ds.push_back(-0.0);
  ds.push_back(1e-300);
  ds.push_back(-1e-300);
  std::sort(ds.begin(), ds.end());
  for (size_t i = 1; i < ds.size(); ++i) {
    if (ds[i - 1] < ds[i]) {
      EXPECT_LT(double_to_sortable(ds[i - 1]), double_to_sortable(ds[i]));
    } else {
      EXPECT_LE(double_to_sortable(ds[i - 1]), double_to_sortable(ds[i]));
    }
  }
}

}  // namespace
}  // namespace weg::sort
