// Shared deterministic input generators for the test suites. Every helper
// takes an explicit seed — tests must never seed from the wall clock, so the
// same binary always sees the same inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/augtree/priority_tree.h"
#include "src/geom/point.h"
#include "src/primitives/random.h"

namespace weg::testing {

// Uniform uint64 keys; range == 0 draws from the full 64-bit width.
inline std::vector<uint64_t> random_vec(size_t n, uint64_t seed,
                                        uint64_t range = 0) {
  primitives::Rng rng(seed);
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = range ? rng.next() % range : rng.next();
  return v;
}

// Uniform points in [0,1)^K.
template <int K = 2>
std::vector<geom::PointK<K>> random_points(size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::PointK<K>> pts(n);
  for (auto& p : pts) {
    for (int d = 0; d < K; ++d) p[d] = rng.next_double();
  }
  return pts;
}

// Priority-search/range-tree points with ids 0..n-1. grid_cells > 0 snaps
// both coordinates to a grid_cells x grid_cells lattice (many duplicate
// coordinates, the degenerate case the augmented trees must survive).
inline std::vector<augtree::PPoint> random_ppoints(size_t n, uint64_t seed,
                                                   uint32_t grid_cells = 0) {
  primitives::Rng rng(seed);
  std::vector<augtree::PPoint> pts(n);
  for (size_t i = 0; i < n; ++i) {
    if (grid_cells > 0) {
      pts[i] =
          augtree::PPoint{double(rng.next_bounded(grid_cells)) / grid_cells,
                          double(rng.next_bounded(grid_cells)) / grid_cells,
                          uint32_t(i)};
    } else {
      pts[i] =
          augtree::PPoint{rng.next_double(), rng.next_double(), uint32_t(i)};
    }
  }
  return pts;
}

}  // namespace weg::testing
