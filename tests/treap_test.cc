// Inner-tree (treap) and tournament-tree tests: BST/heap invariants,
// duplicate keys, reporting with early exit, order statistics on the sized
// variant, the O(1)-expected-rotation property, and the Appendix A
// tournament-tree queries with scoped deletions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/augtree/tournament.h"
#include "src/augtree/treap.h"
#include "src/primitives/random.h"

namespace weg::augtree {
namespace {

TEST(Treap, InsertAndValidate) {
  Treap t;
  primitives::Rng rng(1);
  for (int i = 0; i < 5000; ++i) t.insert(rng.next_double(), uint32_t(i));
  EXPECT_EQ(t.size(), 5000u);
  EXPECT_TRUE(t.validate());
}

TEST(Treap, DuplicateKeysByItem) {
  Treap t;
  for (uint32_t i = 0; i < 100; ++i) t.insert(1.0, i);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), 100u);
  size_t seen = 0;
  t.for_each([&](double k, uint32_t) {
    EXPECT_EQ(k, 1.0);
    ++seen;
  });
  EXPECT_EQ(seen, 100u);
}

TEST(Treap, EraseExactEntry) {
  Treap t;
  t.insert(1.0, 1);
  t.insert(1.0, 2);
  t.insert(2.0, 3);
  EXPECT_TRUE(t.erase(1.0, 2));
  EXPECT_FALSE(t.erase(1.0, 2));
  EXPECT_FALSE(t.erase(5.0, 9));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.validate());
}

TEST(Treap, ForEachInSortedOrder) {
  Treap t;
  primitives::Rng rng(2);
  std::vector<double> keys;
  for (int i = 0; i < 2000; ++i) {
    double k = rng.next_double();
    keys.push_back(k);
    t.insert(k, uint32_t(i));
  }
  std::sort(keys.begin(), keys.end());
  std::vector<double> got;
  t.for_each([&](double k, uint32_t) { got.push_back(k); });
  EXPECT_EQ(got, keys);
}

TEST(Treap, ReportLeqGeqRange) {
  Treap t;
  for (int i = 0; i < 1000; ++i) t.insert(double(i), uint32_t(i));
  size_t c = 0;
  t.report_leq(99.5, [&](double k, uint32_t) {
    EXPECT_LE(k, 99.5);
    ++c;
  });
  EXPECT_EQ(c, 100u);
  c = 0;
  t.report_geq(900.0, [&](double k, uint32_t) {
    EXPECT_GE(k, 900.0);
    ++c;
  });
  EXPECT_EQ(c, 100u);
  c = 0;
  t.report_range(10.0, 19.0, [&](double k, uint32_t) {
    EXPECT_GE(k, 10.0);
    EXPECT_LE(k, 19.0);
    ++c;
  });
  EXPECT_EQ(c, 10u);
}

TEST(Treap, ReportEarlyExitIsCheap) {
  Treap t;
  for (int i = 0; i < 100000; ++i) t.insert(double(i), uint32_t(i));
  asym::Region r;
  size_t c = 0;
  t.report_leq(4.5, [&](double, uint32_t) { ++c; });
  EXPECT_EQ(c, 5u);
  // O(k + depth) node visits, nowhere near n.
  EXPECT_LT(r.delta().reads, 200u);
}

TEST(Treap, FromSortedBuildsValidTreap) {
  std::vector<std::pair<double, uint32_t>> es;
  for (uint32_t i = 0; i < 10000; ++i) es.emplace_back(double(i) * 0.5, i);
  auto t = Treap::from_sorted(es);
  EXPECT_EQ(t.size(), es.size());
  EXPECT_TRUE(t.validate());
  // Expected depth O(log n): generous bound.
  EXPECT_LT(t.depth(), 60u);
}

TEST(Treap, FromSortedLinearWrites) {
  std::vector<std::pair<double, uint32_t>> es;
  for (uint32_t i = 0; i < 50000; ++i) es.emplace_back(double(i), i);
  asym::Region r;
  auto t = Treap::from_sorted(es);
  EXPECT_LE(r.delta().writes, es.size() + 10);
}

TEST(Treap, ExpectedConstantRotationsPerUpdate) {
  Treap t;
  primitives::Rng rng(3);
  size_t total_rot = 0;
  size_t n = 20000;
  for (size_t i = 0; i < n; ++i) {
    t.insert(rng.next_double(), uint32_t(i));
    total_rot += t.last_rotations();
  }
  // Expected < 2 rotations per insert.
  EXPECT_LT(double(total_rot) / double(n), 3.0);
}

TEST(Treap, UpdateWritesAreConstantExpected) {
  // The write-efficiency contract for inner trees: O(1) expected writes per
  // insert (unsized variant).
  Treap t;
  primitives::Rng rng(4);
  size_t n = 20000;
  for (size_t i = 0; i < n / 2; ++i) t.insert(rng.next_double(), uint32_t(i));
  asym::Region r;
  for (size_t i = n / 2; i < n; ++i) t.insert(rng.next_double(), uint32_t(i));
  EXPECT_LT(double(r.delta().writes) / double(n / 2), 8.0);
}

TEST(SizedTreap, CountQueries) {
  SizedTreap t;
  for (int i = 0; i < 1000; ++i) t.insert(double(i), uint32_t(i));
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.count_less(500.0), 500u);
  EXPECT_EQ(t.count_leq(500.0), 501u);
  EXPECT_EQ(t.count_range(100.0, 199.0), 100u);
  EXPECT_EQ(t.count_range(-5.0, 2000.0), 1000u);
}

TEST(SizedTreap, CountsStayCorrectUnderErase) {
  SizedTreap t;
  primitives::Rng rng(5);
  std::multiset<double> shadow;
  std::vector<std::pair<double, uint32_t>> entries;
  for (uint32_t i = 0; i < 3000; ++i) {
    double k = rng.next_double();
    t.insert(k, i);
    shadow.insert(k);
    entries.emplace_back(k, i);
  }
  for (uint32_t i = 0; i < 1500; ++i) {
    t.erase(entries[i].first, entries[i].second);
    shadow.erase(shadow.find(entries[i].first));
  }
  EXPECT_TRUE(t.validate());
  for (double q : {0.1, 0.5, 0.9}) {
    size_t ref = size_t(std::distance(shadow.begin(), shadow.lower_bound(q)));
    EXPECT_EQ(t.count_less(q), ref);
  }
}

TEST(Tournament, RangeArgmaxAndCounts) {
  std::vector<double> ys{5, 1, 9, 3, 7, 2, 8, 6};
  TournamentTree tt(ys);
  EXPECT_EQ(tt.count_valid(0, 8), 8u);
  EXPECT_EQ(tt.range_argmax(0, 8), 2u);  // y=9
  EXPECT_EQ(tt.range_argmax(3, 6), 4u);  // y=7
  EXPECT_EQ(tt.range_argmax(0, 2), 0u);  // y=5
}

TEST(Tournament, KthValid) {
  std::vector<double> ys{5, 1, 9, 3, 7, 2, 8, 6};
  TournamentTree tt(ys);
  for (size_t k = 0; k < 8; ++k) EXPECT_EQ(tt.kth_valid(0, 8, k), k);
  EXPECT_EQ(tt.kth_valid(2, 6, 1), 3u);
  EXPECT_EQ(tt.kth_valid(0, 8, 8), TournamentTree::kNone);
}

TEST(Tournament, EraseUpdatesQueries) {
  std::vector<double> ys{5, 1, 9, 3, 7, 2, 8, 6};
  TournamentTree tt(ys);
  tt.erase(2);  // remove the max
  EXPECT_EQ(tt.range_argmax(0, 8), 6u);  // y=8
  EXPECT_EQ(tt.count_valid(0, 8), 7u);
  EXPECT_EQ(tt.kth_valid(0, 8, 2), 3u);  // 0,1,3,...
}

TEST(Tournament, ScopedEraseKeepsInScopeQueriesCorrect) {
  // After erase_scoped(i, lo, hi), queries fully inside [lo, hi) must see
  // the deletion even though out-of-scope ancestors are stale.
  std::vector<double> ys(64);
  primitives::Rng rng(6);
  for (auto& y : ys) y = rng.next_double();
  TournamentTree tt(ys);
  // Work within scope [16, 32).
  uint32_t before = tt.range_argmax(16, 32);
  tt.erase_scoped(before, 16, 32);
  uint32_t after = tt.range_argmax(16, 32);
  EXPECT_NE(after, before);
  EXPECT_NE(after, TournamentTree::kNone);
  EXPECT_EQ(tt.count_valid(16, 32), 15u);
}

TEST(Tournament, NonPowerOfTwoSizes) {
  for (size_t n : {1ul, 3ul, 17ul, 100ul}) {
    std::vector<double> ys(n);
    primitives::Rng rng(7 + n);
    for (auto& y : ys) y = rng.next_double();
    TournamentTree tt(ys);
    EXPECT_EQ(tt.count_valid(0, n), n);
    uint32_t am = tt.range_argmax(0, n);
    double best = *std::max_element(ys.begin(), ys.end());
    EXPECT_EQ(ys[am], best);
  }
}

TEST(Tournament, ScopedDeletionWritesAreBounded) {
  // The Appendix A accounting: a scoped deletion writes only the ancestors
  // inside its scope.
  std::vector<double> ys(1 << 14);
  primitives::Rng rng(8);
  for (auto& y : ys) y = rng.next_double();
  TournamentTree tt(ys);
  asym::Region r;
  tt.erase_scoped(100, 96, 104);  // scope of width 8
  EXPECT_LE(r.delta().writes, 5u);  // leaf + <= 3 in-scope ancestors
}

}  // namespace
}  // namespace weg::augtree
