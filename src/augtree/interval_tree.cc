#include "src/augtree/interval_tree.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "src/parallel/fault.h"
#include "src/parallel/par_build.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/semisort.h"
#include "src/primitives/sort.h"
#include "src/sort/incremental_sort.h"

namespace weg::augtree {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------------------------------
// StaticIntervalTree
// ---------------------------------------------------------------------------

size_t StaticIntervalTree::lca(size_t i, size_t j) {
  if (i == j) return i;
  if (i > j) std::swap(i, j);
  int k = std::bit_width(i ^ j);
  return ((j >> k) << k) | (size_t{1} << (k - 1));
}

int StaticIntervalTree::level_of(size_t pos) {
  return std::countr_zero(pos);
}

namespace {

// Shared skeleton setup: m_ = 2^h - 1 >= max(2n, 1).
void setup_shape(size_t num_endpoints, size_t& m, int& h) {
  h = 1;
  m = 1;
  while (m < num_endpoints) {
    m = 2 * m + 1;
    ++h;
  }
}

}  // namespace

StaticIntervalTree StaticIntervalTree::build_postsorted(
    const std::vector<Interval>& ivs, Stats* stats) {
  asym::Region region;
  StaticIntervalTree t;
  t.n_ = ivs.size();
  size_t ne = 2 * t.n_;  // endpoints
  setup_shape(std::max<size_t>(ne, 1), t.m_, t.height_);

  // 1) Write-efficient sort of the endpoint values (Theorem 4.1 sorter).
  // The monotone double->uint64 mapping happens in registers while reading
  // the input, so it costs reads only.
  std::vector<uint64_t> keys(ne);
  parallel::parallel_for(0, t.n_, [&](size_t i) {
    keys[2 * i] = sort::double_to_sortable(ivs[i].l);
    keys[2 * i + 1] = sort::double_to_sortable(ivs[i].r);
  });
  asym::count_read(ne);
  auto order = sort::incremental_sort_we_order(keys);

  // 2) Ranks and sorted key array (O(n) reads/writes). `order` is a
  // permutation, so every iteration writes distinct slots.
  std::vector<uint32_t> rank(ne);
  t.keys_.assign(t.m_, kInf);
  asym::count_read(ne);
  asym::count_write(2 * ne);
  parallel::parallel_for(0, ne, [&](size_t i) {
    rank[order[i]] = static_cast<uint32_t>(i);
    t.keys_[i] = (order[i] & 1) ? ivs[order[i] / 2].r : ivs[order[i] / 2].l;
  });

  // 3) Assign each interval to its node with the O(1) implicit-tree LCA and
  //    sort by (level, endpoint rank) per Section 7.2. Intervals in
  //    endpoint-rank order are simply the left (resp. right) endpoints
  //    filtered out of `order`, so one *stable* counting sort by level
  //    (O(log n) buckets) replaces the general radix sort — the same
  //    O(n log n)-key-range bound, with one pass.
  struct Rec {
    uint32_t pos;    // node (in-order, 1-based)
    uint32_t depth;  // level from the root (counting-sort key)
    uint32_t id;
    double coord;
  };
  int h = t.height_;
  auto build_csr = [&](bool left_side, std::vector<uint32_t>& offsets,
                       std::vector<std::pair<double, uint32_t>>& out) {
    // Intervals in endpoint-rank order.
    std::vector<Rec> rs;
    rs.reserve(t.n_);
    asym::count_read(ne);
    asym::count_write(t.n_);
    for (size_t i = 0; i < ne; ++i) {
      bool is_left = (order[i] & 1) == 0;
      if (is_left != left_side) continue;
      uint32_t iv = order[i] / 2;
      size_t pos = lca(rank[2 * iv] + 1, rank[2 * iv + 1] + 1);
      uint32_t depth = static_cast<uint32_t>((h - 1) - level_of(pos));
      rs.push_back(Rec{static_cast<uint32_t>(pos), depth, iv,
                       left_side ? ivs[iv].l : ivs[iv].r});
    }
    if (!left_side) std::reverse(rs.begin(), rs.end());  // descending r
    // Stable counting sort by level keeps the endpoint-rank order within
    // each level, making every node's intervals contiguous (Section 7.2).
    primitives::counting_sort(rs, static_cast<size_t>(h),
                              [](const Rec& r) { return r.depth; });
    // Scatter into in-order-position-major CSR. Convention: node pos's run
    // is [offsets[pos-1], offsets[pos]).
    offsets.assign(t.m_ + 1, 0);
    for (const Rec& r : rs) ++offsets[r.pos];
    for (size_t p = 1; p <= t.m_; ++p) offsets[p] += offsets[p - 1];
    out.resize(rs.size());
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    asym::count_read(rs.size());
    asym::count_write(rs.size());
    for (const Rec& r : rs) out[cursor[r.pos - 1]++] = {r.coord, r.id};
  };

  // The two CSRs are independent (disjoint outputs, shared read-only
  // inputs), so build them as one fork-join pair.
  parallel::par_do([&] { build_csr(true, t.node_left_off_, t.by_left_); },
                   [&] { build_csr(false, t.node_right_off_, t.by_right_); });

  if (stats) {
    stats->cost = region.delta();
    stats->height = static_cast<size_t>(t.height_);
  }
  return t;
}

StaticIntervalTree StaticIntervalTree::build_classic(
    const std::vector<Interval>& ivs, Stats* stats) {
  asym::Region region;
  StaticIntervalTree t;
  t.n_ = ivs.size();
  size_t ne = 2 * t.n_;
  setup_shape(std::max<size_t>(ne, 1), t.m_, t.height_);

  // Classic: sort the endpoints with the Θ(n log n)-write mergesort.
  std::vector<double> endpoints(ne);
  for (size_t i = 0; i < t.n_; ++i) {
    endpoints[2 * i] = ivs[i].l;
    endpoints[2 * i + 1] = ivs[i].r;
  }
  primitives::sort_inplace(endpoints);
  t.keys_.assign(t.m_, kInf);
  asym::count_write(ne);
  std::copy(endpoints.begin(), endpoints.end(), t.keys_.begin());

  // Recursive partition, copying the interval set at every level (this is
  // the Θ(n log n)-write baseline). The two child partitions touch disjoint
  // per_node slots, so they fork as independent subtree builds down to a
  // sequential cutoff.
  std::vector<std::vector<std::pair<double, uint32_t>>> per_node_l(t.m_ + 1);
  std::vector<std::vector<std::pair<double, uint32_t>>> per_node_r(t.m_ + 1);
  std::vector<uint32_t> all(t.n_);
  for (size_t i = 0; i < t.n_; ++i) all[i] = static_cast<uint32_t>(i);
  auto rec = [&](auto&& self, size_t pos, std::vector<uint32_t> set) -> void {
    if (set.empty()) return;
    double key = t.keys_[pos - 1];
    std::vector<uint32_t> left, right, here;
    asym::count_read(set.size());
    asym::count_write(set.size());  // the copy at this level
    for (uint32_t id : set) {
      if (ivs[id].r < key) {
        left.push_back(id);
      } else if (ivs[id].l > key) {
        right.push_back(id);
      } else {
        here.push_back(id);
      }
    }
    if (!here.empty()) {
      auto& bl = per_node_l[pos];
      auto& br = per_node_r[pos];
      for (uint32_t id : here) {
        bl.emplace_back(ivs[id].l, id);
        br.emplace_back(ivs[id].r, id);
      }
      primitives::sort_inplace(bl);
      primitives::sort_inplace(br);
      std::reverse(br.begin(), br.end());
      asym::count_write(2 * here.size());
    }
    int lvl = level_of(pos);
    if (lvl > 0) {
      size_t step = size_t{1} << (lvl - 1);
      parallel::par_do_if(left.size() + right.size() > parallel::kSeqCutoff,
                          [&] { self(self, pos - step, std::move(left)); },
                          [&] { self(self, pos + step, std::move(right)); });
    }
  };
  rec(rec, t.root_pos(), std::move(all));

  // Flatten into CSR (counted as part of the construction's writes).
  t.node_left_off_.assign(t.m_ + 1, 0);
  t.node_right_off_.assign(t.m_ + 1, 0);
  t.by_left_.reserve(t.n_);
  t.by_right_.reserve(t.n_);
  for (size_t p = 1; p <= t.m_; ++p) {
    t.node_left_off_[p - 1] = static_cast<uint32_t>(t.by_left_.size());
    t.node_right_off_[p - 1] = static_cast<uint32_t>(t.by_right_.size());
    t.by_left_.insert(t.by_left_.end(), per_node_l[p].begin(),
                      per_node_l[p].end());
    t.by_right_.insert(t.by_right_.end(), per_node_r[p].begin(),
                       per_node_r[p].end());
  }
  // Shift offsets: node_left_off_[p] is the start of node (p+1)'s run — fix
  // to the usual CSR convention below.
  t.node_left_off_.back() = static_cast<uint32_t>(t.by_left_.size());
  t.node_right_off_.back() = static_cast<uint32_t>(t.by_right_.size());
  asym::count_write(2 * t.n_);

  if (stats) {
    stats->cost = region.delta();
    stats->height = static_cast<size_t>(t.height_);
  }
  return t;
}

namespace {

// Reporting visitor: scans each run with early exit, one read per scanned
// entry and one output write per reported id (via emit).
template <typename Emit>
struct StaticStabReport {
  const std::vector<std::pair<double, uint32_t>>& by_left;
  const std::vector<std::pair<double, uint32_t>>& by_right;
  double q;
  Emit emit;

  void left_run(size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      asym::count_read();
      if (by_left[i].first > q) break;
      emit(by_left[i].second);
    }
  }
  void right_run(size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      asym::count_read();
      if (by_right[i].first < q) break;
      emit(by_right[i].second);
    }
  }
  void all_run(size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      asym::count_read();
      emit(by_left[i].second);
    }
  }
};

// Counting visitor (Appendix A): binary search in each visited node's sorted
// run — O(log^2 n + duplicate fringe) reads, zero writes.
struct StaticStabCount {
  const std::vector<std::pair<double, uint32_t>>& by_left;
  const std::vector<std::pair<double, uint32_t>>& by_right;
  double q;
  size_t total = 0;

  void left_run(size_t lo, size_t hi) {
    auto it = std::upper_bound(by_left.begin() + lo, by_left.begin() + hi,
                               std::make_pair(q, UINT32_MAX));
    asym::count_read(static_cast<uint64_t>(std::bit_width(hi - lo + 1)));
    total += static_cast<size_t>(it - (by_left.begin() + lo));
  }
  void right_run(size_t lo, size_t hi) {
    // by_right is sorted descending by r.
    auto it = std::lower_bound(by_right.begin() + lo, by_right.begin() + hi, q,
                               [](const std::pair<double, uint32_t>& e,
                                  double v) { return e.first >= v; });
    asym::count_read(static_cast<uint64_t>(std::bit_width(hi - lo + 1)));
    total += static_cast<size_t>(it - (by_right.begin() + lo));
  }
  void all_run(size_t lo, size_t hi) { total += hi - lo; }
};

}  // namespace

template <typename V>
void StaticIntervalTree::stab_visit(double q, V&& vis) const {
  // A NaN stab point is inside no interval; every comparison below would be
  // false, which the forking walk would misread as an exact key match.
  if (n_ == 0 || std::isnan(q)) return;
  // Walk by key comparison; on an exact key match the walk forks into both
  // subtrees (duplicate endpoint values can place storage nodes on either
  // side). The fork is output-sensitive: every node whose key equals q is an
  // endpoint of a *reported* interval, so visits stay O(log n + k).
  auto walk = [&](auto&& self, size_t pos) -> void {
    asym::count_read();
    double key = keys_[pos - 1];
    int lvl = level_of(pos);
    size_t step = lvl > 0 ? (size_t{1} << (lvl - 1)) : 0;
    if (q < key) {
      vis.left_run(node_left_off_[pos - 1], node_left_off_[pos]);
      if (lvl > 0) self(self, pos - step);
    } else if (q > key) {
      vis.right_run(node_right_off_[pos - 1], node_right_off_[pos]);
      if (lvl > 0) self(self, pos + step);
    } else {  // q == key: everything stored here contains q; fork
      vis.all_run(node_left_off_[pos - 1], node_left_off_[pos]);
      if (lvl > 0) {
        self(self, pos - step);
        self(self, pos + step);
      }
    }
  };
  walk(walk, root_pos());
}

std::vector<uint32_t> StaticIntervalTree::stab(double q) const {
  std::vector<uint32_t> out;
  auto emit = [&](uint32_t id) {
    asym::count_write();
    out.push_back(id);
  };
  StaticStabReport<decltype(emit)> vis{by_left_, by_right_, q, emit};
  stab_visit(q, vis);
  return out;
}

size_t StaticIntervalTree::stab_count(double q) const {
  StaticStabCount vis{by_left_, by_right_, q};
  stab_visit(q, vis);
  return vis.total;
}

parallel::BatchResult<uint32_t> StaticIntervalTree::stab_batch(
    const std::vector<double>& qs) const {
  return parallel::batch_two_phase<uint32_t>(
      qs.size(), [&](size_t i) { return stab_count(qs[i]); },
      [&](size_t i, uint32_t* out) {
        auto emit = [&](uint32_t id) {
          asym::count_write();
          *out++ = id;
        };
        StaticStabReport<decltype(emit)> vis{by_left_, by_right_, qs[i], emit};
        stab_visit(qs[i], vis);
      });
}

std::vector<size_t> StaticIntervalTree::stab_count_batch(
    const std::vector<double>& qs) const {
  return parallel::batch_map<size_t>(
      qs.size(), [&](size_t i) { return stab_count(qs[i]); });
}

bool StaticIntervalTree::validate(const std::vector<Interval>& ivs) const {
  if (by_left_.size() != n_ || by_right_.size() != n_) return false;
  // Every interval appears exactly once in each CSR and contains its node key;
  // runs are sorted.
  std::vector<int> seen(n_, 0);
  for (size_t p = 1; p <= m_; ++p) {
    size_t l0 = node_left_off_[p - 1], l1 = node_left_off_[p];
    double key = keys_[p - 1];
    for (size_t i = l0; i < l1; ++i) {
      uint32_t id = by_left_[i].second;
      ++seen[id];
      if (!(ivs[id].l <= key && key <= ivs[id].r)) return false;
      if (by_left_[i].first != ivs[id].l) return false;
      if (i > l0 && by_left_[i - 1].first > by_left_[i].first) return false;
    }
    size_t r0 = node_right_off_[p - 1], r1 = node_right_off_[p];
    for (size_t i = r0; i < r1; ++i) {
      if (i > r0 && by_right_[i - 1].first < by_right_[i].first) return false;
    }
    if (l1 - l0 != r1 - r0) return false;
  }
  for (int s : seen) {
    if (s != 1) return false;
  }
  return true;
}



// ---------------------------------------------------------------------------
// DynamicIntervalTree (Section 7.3)
// ---------------------------------------------------------------------------
//
// Subtree rebuilds keep dead endpoint keys (they are just keys); dead keys
// are dropped only at whole-tree rebuilds, which guarantees every live
// interval can always find a storage node (its own endpoints are live keys
// somewhere in the tree).

uint32_t DynamicIntervalTree::alloc() {
  if (!free_.empty()) {
    uint32_t v = free_.back();
    free_.pop_back();
    pool_[v] = Node{};
    return v;
  }
  pool_.push_back(Node{});
  return static_cast<uint32_t>(pool_.size() - 1);
}

uint32_t DynamicIntervalTree::insert_key(double key,
                                         std::vector<uint32_t>& path) {
  uint32_t nu = alloc();
  pool_[nu].key = key;
  pool_[nu].critical = true;  // every leaf is critical (weight 2)
  pool_[nu].init_weight = 2;
  // Pre-insertion weight: bump_weights_and_rebalance adds the new node's
  // contribution along the whole path, including this fresh leaf.
  pool_[nu].weight = 1;
  ++node_count_;
  ++root_weight_;
  asym::count_write();  // attach the leaf
  if (root_ == kNull) {
    root_ = nu;
    path.push_back(nu);
    return nu;
  }
  uint32_t v = root_;
  while (true) {
    path.push_back(v);
    asym::count_read();
    // Equal keys descend right, matching erase's duplicate search.
    if (key < pool_[v].key) {
      if (pool_[v].left == kNull) {
        pool_[v].left = nu;
        break;
      }
      v = pool_[v].left;
    } else {
      if (pool_[v].right == kNull) {
        pool_[v].right = nu;
        break;
      }
      v = pool_[v].right;
    }
  }
  path.push_back(nu);
  return nu;
}

uint32_t DynamicIntervalTree::find_storage(double l, double r) const {
  uint32_t v = root_;
  while (v != kNull) {
    asym::count_read();
    const Node& nd = pool_[v];
    if (r < nd.key) {
      v = nd.left;
    } else if (l > nd.key) {
      v = nd.right;
    } else {
      return v;  // highest node with key in [l, r]
    }
  }
  return kNull;
}

std::vector<Interval> DynamicIntervalTree::live_records() const {
  std::vector<std::pair<double, bool>> keys;
  std::vector<Interval> out;
  keys.reserve(node_count_);
  out.reserve(live_intervals_);
  collect(root_, keys, out);
  asym::count_write(out.size());
  return out;
}

void DynamicIntervalTree::collect(uint32_t v,
                                  std::vector<std::pair<double, bool>>& keys,
                                  std::vector<Interval>& out_ivs) const {
  if (v == kNull) return;
  // Iterative in-order to tolerate deep secondary chains.
  std::vector<std::pair<uint32_t, bool>> st{{v, false}};
  while (!st.empty()) {
    auto [u, expanded] = st.back();
    st.pop_back();
    const Node& nd = pool_[u];
    if (expanded) {
      asym::count_read();
      keys.emplace_back(nd.key, nd.dead);
      nd.by_l.for_each([&](double, uint32_t id) {
        auto it = ivs_.find(id);
        assert(it != ivs_.end());
        out_ivs.push_back(it->second);
      });
      continue;
    }
    if (nd.right != kNull) st.push_back({nd.right, false});
    st.push_back({u, true});
    if (nd.left != kNull) st.push_back({nd.left, false});
  }
}

uint32_t DynamicIntervalTree::build_balanced(
    std::vector<std::pair<double, bool>>& keys, size_t lo, size_t hi) {
  if (lo >= hi) return kNull;
  // One path for every worker count: balanced_build_ids forks above the
  // sequential cutoff and runs inline below it.
  auto ids = parallel::claim_build_slots(pool_, free_, hi - lo);
  return parallel::balanced_build_ids(
      pool_, keys, lo, hi, ids.data(),
      [](Node& nd, const std::pair<double, bool>& e) {
        nd.key = e.first;
        nd.dead = e.second;
      });
}

void DynamicIntervalTree::set_critical(uint32_t v, uint64_t w,
                                       uint64_t sibling_w) {
  Node& nd = pool_[v];
  nd.critical = is_critical_weight(w, sibling_w, alpha_);
  if (nd.critical) {
    nd.init_weight = w;
    nd.weight = w;
    asym::count_write();
  }
}

uint64_t DynamicIntervalTree::mark_rec(uint32_t v, int par_depth) {
  if (v == kNull) return 1;
  asym::count_read();
  uint32_t left = pool_[v].left, right = pool_[v].right;
  uint64_t wl = 1, wr = 1;
  parallel::par_do_if(par_depth > 0 && left != kNull && right != kNull,
                      [&] { wl = mark_rec(left, par_depth - 1); },
                      [&] { wr = mark_rec(right, par_depth - 1); });
  if (left != kNull) set_critical(left, wl, wr);
  if (right != kNull) set_critical(right, wr, wl);
  return wl + wr;
}

void DynamicIntervalTree::mark_criticals(uint32_t v) {
  uint64_t w = mark_rec(v, parallel::fork_depth_hint());
  // Subtree root: sibling weight unknown here; rule (2) does not apply.
  set_critical(v, w, 0);
}

void DynamicIntervalTree::rebuild(uint32_t v, uint32_t parent, int side,
                                  uint64_t old_init) {
  ++rebuilds_;
  std::vector<std::pair<double, bool>> keys;
  std::vector<Interval> collected;
  collect(v, keys, collected);
  bool whole_tree = (parent == kNull);
  if (whole_tree) {
    std::vector<std::pair<double, bool>> live;
    live.reserve(keys.size());
    for (auto& k : keys) {
      if (!k.second) live.push_back(k);
    }
    dead_count_ = 0;
    node_count_ = live.size();
    keys.swap(live);
  }
  free_subtree(v);
  uint32_t fresh = build_balanced(keys, 0, keys.size());
  if (whole_tree) {
    root_ = fresh;
    root_weight_ = keys.size() + 1;
    root_init_ = root_weight_;
  } else {
    asym::count_write();
    if (side == 0) {
      pool_[parent].left = fresh;
    } else {
      pool_[parent].right = fresh;
    }
  }
  if (fresh != kNull) {
    mark_criticals(fresh);
    // §7.3.2 exception: keep the new root unmarked when marking it would
    // violate the Lemma 7.2 ratio with its critical parent.
    if (!whole_tree && rebuild_root_exception(old_init, alpha_) &&
        pool_[fresh].critical) {
      pool_[fresh].critical = false;
    }
  }
  // Reassign the collected intervals within the new subtree (the key set is
  // unchanged for subtree rebuilds, so a storage node always exists).
  for (const Interval& iv : collected) {
    uint32_t u = fresh;
    while (true) {
      assert(u != kNull);
      asym::count_read();
      Node& nd = pool_[u];
      if (iv.r < nd.key) {
        u = nd.left;
      } else if (iv.l > nd.key) {
        u = nd.right;
      } else {
        nd.by_l.insert(iv.l, iv.id);
        nd.by_r.insert(iv.r, iv.id);
        break;
      }
    }
  }
}

void DynamicIntervalTree::bump_weights_and_rebalance(
    const std::vector<uint32_t>& path) {
  for (uint32_t v : path) {
    if (pool_[v].critical) {
      asym::count_write();
      ++pool_[v].weight;
    }
  }
  asym::count_write();  // virtual-root weight
  if (root_weight_ >= 2 * root_init_ && node_count_ > 4) {
    rebuild(root_, kNull, 0, root_init_);
    return;
  }
  for (size_t i = 0; i < path.size(); ++i) {
    uint32_t v = path[i];
    const Node& nd = pool_[v];
    if (nd.critical && nd.weight >= 2 * nd.init_weight) {
      uint32_t parent = (i == 0) ? root_ : path[i - 1];
      if (i == 0) {
        // path[0] is the root itself; treat as whole-tree rebuild.
        rebuild(root_, kNull, 0, root_init_);
      } else {
        int side = pool_[parent].right == v ? 1 : 0;
        rebuild(v, parent, side, nd.init_weight);
      }
      return;  // only the topmost violated critical node
    }
  }
}

void DynamicIntervalTree::free_subtree(uint32_t v) {
  if (v == kNull) return;
  std::vector<uint32_t> st{v};
  while (!st.empty()) {
    uint32_t u = st.back();
    st.pop_back();
    if (pool_[u].left != kNull) st.push_back(pool_[u].left);
    if (pool_[u].right != kNull) st.push_back(pool_[u].right);
    pool_[u] = Node{};
    free_.push_back(u);
  }
}

namespace {

// Shared record validation for the bulk mutation paths: a malformed record
// (non-finite endpoint or l > r) would poison BST key comparisons, so it is
// rejected before the first write. The scan is charged as bulk reads — an
// input-only function, so asym totals stay deterministic.
Status check_interval(const Interval& iv, const char* op) {
  if (!std::isfinite(iv.l) || !std::isfinite(iv.r)) {
    return Status::InvalidArgument(std::string(op) + ": non-finite endpoint" +
                                   " on interval id " + std::to_string(iv.id));
  }
  if (iv.l > iv.r) {
    return Status::InvalidArgument(std::string(op) + ": inverted interval [" +
                                   std::to_string(iv.l) + ", " +
                                   std::to_string(iv.r) + "] id " +
                                   std::to_string(iv.id));
  }
  return Status::Ok();
}

}  // namespace

Status DynamicIntervalTree::bulk_insert(const std::vector<Interval>& batch) {
  if (batch.empty()) return Status::Ok();
  // Validation pass: malformed records and id collisions (within the batch
  // or against a live interval — ivs_[id] would silently clobber the live
  // record and orphan its treap entries) are rejected pre-mutation.
  asym::count_read(batch.size());
  std::unordered_set<uint32_t> seen;
  seen.reserve(batch.size());
  for (const Interval& iv : batch) {
    Status s = check_interval(iv, "bulk_insert");
    if (!s.ok()) return s;
    if (!seen.insert(iv.id).second) {
      return Status::InvalidArgument(
          "bulk_insert: duplicate id " + std::to_string(iv.id) +
          " within batch");
    }
    if (ivs_.find(iv.id) != ivs_.end()) {
      return Status::InvalidArgument(
          "bulk_insert: id " + std::to_string(iv.id) +
          " already live (erase it first)");
    }
  }
  // Allocation fault point: index = endpoint-node demand of this batch.
  if (fault::should_fail("alloc", 2 * batch.size())) {
    return fault::injected("alloc", 2 * batch.size());
  }
  // Register intervals and sort the 2m endpoint keys write-efficiently.
  std::vector<double> keys;
  keys.reserve(2 * batch.size());
  for (const Interval& iv : batch) {
    ivs_[iv.id] = iv;
    asym::count_write();
    keys.push_back(iv.l);
    keys.push_back(iv.r);
  }
  {
    std::vector<uint64_t> skeys(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      skeys[i] = sort::double_to_sortable(keys[i]);
    }
    asym::count_read(keys.size());
    auto order = sort::incremental_sort_we_order_anyorder(skeys);
    std::vector<double> sorted(keys.size());
    asym::count_write(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) sorted[i] = keys[order[i]];
    keys.swap(sorted);
  }
  node_count_ += keys.size();
  root_weight_ += keys.size();

  // Top-down merge (Section 7.3.5): at each critical node, if the incoming
  // keys would overflow its doubling budget, flatten + merge + rebuild the
  // union in one shot; otherwise bump its weight, split the key range at the
  // node key (binary search; equal keys go right, matching single
  // insertion), and recurse. Secondary nodes split without weight checks.
  std::vector<Interval> displaced;
  auto run = [&](auto&& self, uint32_t v, size_t lo, size_t hi) -> uint32_t {
    if (lo >= hi) return v;
    if (v == kNull) {
      std::vector<std::pair<double, bool>> ks;
      ks.reserve(hi - lo);
      for (size_t i = lo; i < hi; ++i) ks.emplace_back(keys[i], false);
      uint32_t fresh = build_balanced(ks, 0, ks.size());
      if (fresh != kNull) mark_criticals(fresh);
      return fresh;
    }
    asym::count_read();
    Node& nd0 = pool_[v];
    if (nd0.critical && nd0.weight + (hi - lo) >= 2 * nd0.init_weight) {
      std::vector<std::pair<double, bool>> old_keys;
      collect(v, old_keys, displaced);
      free_subtree(v);
      std::vector<std::pair<double, bool>> merged;
      merged.reserve(old_keys.size() + (hi - lo));
      size_t i = 0, j = lo;
      asym::count_read(old_keys.size() + (hi - lo));
      asym::count_write(old_keys.size() + (hi - lo));
      while (i < old_keys.size() || j < hi) {
        if (j >= hi || (i < old_keys.size() && old_keys[i].first <= keys[j])) {
          merged.push_back(old_keys[i++]);
        } else {
          merged.emplace_back(keys[j++], false);
        }
      }
      uint32_t fresh = build_balanced(merged, 0, merged.size());
      if (fresh != kNull) mark_criticals(fresh);
      ++rebuilds_;
      return fresh;
    }
    size_t mid = static_cast<size_t>(
        std::lower_bound(keys.begin() + static_cast<long>(lo),
                         keys.begin() + static_cast<long>(hi), nd0.key) -
        keys.begin());
    asym::count_read(static_cast<uint64_t>(std::bit_width(hi - lo + 1)));
    if (nd0.critical) {
      asym::count_write();
      nd0.weight += (hi - lo);
    }
    uint32_t l = self(self, pool_[v].left, lo, mid);
    uint32_t r = self(self, pool_[v].right, mid, hi);
    pool_[v].left = l;
    pool_[v].right = r;
    return v;
  };
  root_ = run(run, root_, 0, keys.size());

  // Assign the batch intervals plus any displaced by rebuilds.
  auto assign = [&](const Interval& iv) {
    uint32_t v = find_storage(iv.l, iv.r);
    assert(v != kNull);
    pool_[v].by_l.insert(iv.l, iv.id);
    pool_[v].by_r.insert(iv.r, iv.id);
  };
  for (const Interval& iv : batch) assign(iv);
  for (const Interval& iv : displaced) assign(iv);
  live_intervals_ += batch.size();
  if (root_weight_ >= 2 * root_init_) {
    rebuild(root_, kNull, 0, root_init_);
  }
  return Status::Ok();
}

void DynamicIntervalTree::insert(const Interval& iv) {
  ivs_[iv.id] = iv;
  asym::count_write();
  {
    std::vector<uint32_t> path;
    insert_key(iv.l, path);
    bump_weights_and_rebalance(path);
  }
  {
    std::vector<uint32_t> path;
    insert_key(iv.r, path);
    bump_weights_and_rebalance(path);
  }
  uint32_t v = find_storage(iv.l, iv.r);
  assert(v != kNull);
  pool_[v].by_l.insert(iv.l, iv.id);
  pool_[v].by_r.insert(iv.r, iv.id);
  ++live_intervals_;
}

bool DynamicIntervalTree::erase(const Interval& iv) {
  if (!erase_one(iv)) return false;
  maybe_compact();
  return true;
}

Expected<size_t> DynamicIntervalTree::bulk_erase(
    const std::vector<Interval>& batch) {
  // A malformed erase record cannot match a live interval (inserts reject
  // them), so it signals a corrupted batch: reject pre-mutation rather than
  // walking the skeleton with NaN keys. Absent-but-well-formed records stay
  // a soft miss (count 0), preserving the idempotent-erase contract.
  asym::count_read(batch.size());
  for (const Interval& iv : batch) {
    Status s = check_interval(iv, "bulk_erase");
    if (!s.ok()) return s;
  }
  size_t erased = 0;
  for (const Interval& iv : batch) {
    if (erase_one(iv)) ++erased;
  }
  if (erased > 0) maybe_compact();
  return erased;
}

void DynamicIntervalTree::maybe_compact() {
  if (dead_count_ * 2 >= node_count_ && node_count_ > 16) {
    rebuild(root_, kNull, 0, root_init_);
  }
}

bool DynamicIntervalTree::erase_one(const Interval& iv) {
  auto it = ivs_.find(iv.id);
  if (it == ivs_.end() || !(it->second == iv)) return false;
  uint32_t v = find_storage(iv.l, iv.r);
  if (v == kNull) return false;
  if (!pool_[v].by_l.erase(iv.l, iv.id)) return false;
  pool_[v].by_r.erase(iv.r, iv.id);
  ivs_.erase(it);
  --live_intervals_;
  // Mark one endpoint node per endpoint dead (duplicates descend right).
  auto mark_dead = [&](double key) {
    uint32_t u = root_;
    while (u != kNull) {
      asym::count_read();
      Node& nd = pool_[u];
      if (key < nd.key) {
        u = nd.left;
      } else if (key > nd.key) {
        u = nd.right;
      } else if (nd.dead) {
        u = nd.right;  // an equal, not-yet-dead key lies further right
      } else {
        asym::count_write();
        nd.dead = true;
        ++dead_count_;
        return;
      }
    }
  };
  mark_dead(iv.l);
  mark_dead(iv.r);
  return true;
}

template <typename F>
void DynamicIntervalTree::stab_visit(double q, F&& emit) const {
  // A NaN stab point is inside no interval (see the static tree's guard).
  if (std::isnan(q)) return;
  uint32_t v = root_;
  while (v != kNull) {
    asym::count_read();
    const Node& nd = pool_[v];
    if (q < nd.key) {
      nd.by_l.report_leq(q, [&](double, uint32_t id) { emit(id); });
      v = nd.left;
    } else if (q > nd.key) {
      nd.by_r.report_geq(q, [&](double, uint32_t id) { emit(id); });
      v = nd.right;
    } else {
      nd.by_l.for_each([&](double, uint32_t id) { emit(id); });
      v = nd.right;  // equal keys (with their own intervals) lie right
    }
  }
}

std::vector<uint32_t> DynamicIntervalTree::stab(double q) const {
  std::vector<uint32_t> out;
  stab_visit(q, [&](uint32_t id) {
    asym::count_write();
    out.push_back(id);
  });
  return out;
}

size_t DynamicIntervalTree::stab_count(double q) const {
  size_t total = 0;
  stab_visit(q, [&](uint32_t) { ++total; });
  return total;
}

parallel::BatchResult<uint32_t> DynamicIntervalTree::stab_batch(
    const std::vector<double>& qs) const {
  return parallel::batch_two_phase<uint32_t>(
      qs.size(), [&](size_t i) { return stab_count(qs[i]); },
      [&](size_t i, uint32_t* out) {
        stab_visit(qs[i], [&](uint32_t id) {
          asym::count_write();
          *out++ = id;
        });
      });
}

std::vector<size_t> DynamicIntervalTree::stab_count_batch(
    const std::vector<double>& qs) const {
  return parallel::batch_map<size_t>(
      qs.size(), [&](size_t i) { return stab_count(qs[i]); });
}

size_t DynamicIntervalTree::height() const {
  auto rec = [&](auto&& self, uint32_t v) -> size_t {
    if (v == kNull) return 0;
    return 1 + std::max(self(self, pool_[v].left), self(self, pool_[v].right));
  };
  return rec(rec, root_);
}

size_t DynamicIntervalTree::critical_on_path_max() const {
  auto rec = [&](auto&& self, uint32_t v) -> size_t {
    if (v == kNull) return 0;
    size_t below =
        std::max(self(self, pool_[v].left), self(self, pool_[v].right));
    return below + (pool_[v].critical ? 1 : 0);
  };
  return rec(rec, root_);
}

bool DynamicIntervalTree::validate() const {
  if (root_ == kNull) return live_intervals_ == 0;
  bool ok = true;
  size_t stored = 0;
  // BST order, treap invariants, intervals contain their node key, critical
  // weights equal true subtree weights as tracked.
  auto rec = [&](auto&& self, uint32_t v, double lo, double hi) -> uint64_t {
    if (v == kNull) return 1;
    const Node& nd = pool_[v];
    if (!(nd.key >= lo && nd.key <= hi)) ok = false;
    ok = ok && nd.by_l.validate() && nd.by_r.validate();
    nd.by_l.for_each([&](double, uint32_t id) {
      auto it = ivs_.find(id);
      if (it == ivs_.end() || !it->second.contains(nd.key)) ok = false;
      ++stored;
    });
    uint64_t w = self(self, nd.left, lo, nd.key) +
                 self(self, nd.right, nd.key, hi);
    if (nd.critical && nd.weight != w) ok = false;
    return w;
  };
  uint64_t w = rec(rec, root_,
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity());
  if (w != root_weight_) ok = false;
  if (stored != live_intervals_) ok = false;
  return ok;
}

}  // namespace weg::augtree
