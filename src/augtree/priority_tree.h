// Priority search trees for 3-sided queries (Sections 7.1-7.3, Appendix A).
//
// We implement the paper's second variant: a heap on priorities (y) where
// each node also stores an x-splitter between its subtrees, enabling
// reconstruction-based updates (rotations are impossible in this variant).
//
// StaticPriorityTree:
//   * build_classic — textbook recursion: extract the max-priority point,
//     split the rest by the x-median, copy the two halves — Θ(n log n) reads
//     and writes (baseline).
//   * build_postsorted (Section 7.2 + Appendix A, Theorem 7.1) — after one
//     write-efficient sort by x, a tournament tree answers range-argmax /
//     k-th-valid queries and supports scoped deletions, so the whole tree is
//     carved out of the *in-place* sorted array with O(n) writes. Base case:
//     when a range has more holes than valid points, the valid points are
//     loaded into the symmetric memory (size Ω(log n)) and the subtree is
//     finished there.
//
// DynamicPriorityTree (Section 7.3.4): points are stored only at *critical*
// nodes (α-labeling); secondary nodes just partition x. An insertion swaps
// the new point down the critical chain (O(log_α n) writes); deletions mark
// points dead in place — a dead point still upper-bounds its subtree's
// priorities, so query pruning stays correct — and the subtree is rebuilt
// through the usual weight-doubling rule (weights here count points + 1).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/asym/counters.h"
#include "src/augtree/alpha.h"
#include "src/parallel/batch_query.h"

namespace weg::augtree {

struct PPoint {
  double x = 0;
  double y = 0;  // priority
  uint32_t id = 0;

  friend bool operator==(const PPoint& a, const PPoint& b) {
    return a.x == b.x && a.y == b.y && a.id == b.id;
  }
};

// A 3-sided query: xl <= x <= xr, y >= yb (batch input).
struct Query3Sided {
  double xl = 0, xr = 0, yb = 0;
};

class StaticPriorityTree {
 public:
  struct Stats {
    asym::Counts cost;
    size_t height = 0;
    size_t smallmem_base_cases = 0;  // Appendix A base-case count
  };

  static StaticPriorityTree build_classic(const std::vector<PPoint>& pts,
                                          Stats* stats = nullptr);
  static StaticPriorityTree build_postsorted(const std::vector<PPoint>& pts,
                                             Stats* stats = nullptr);

  // 3-sided query: ids of points with xL <= x <= xR and y >= yB.
  std::vector<uint32_t> query(double xl, double xr, double yb) const;
  size_t query_count(double xl, double xr, double yb) const;

  // Batched queries on the shared two-phase engine.
  parallel::BatchResult<uint32_t> query_batch(
      const std::vector<Query3Sided>& qs) const;
  std::vector<size_t> query_count_batch(
      const std::vector<Query3Sided>& qs) const;

  size_t size() const { return n_; }
  size_t height() const;
  bool validate() const;

 private:
  static constexpr uint32_t kNull = UINT32_MAX;

  struct Node {
    PPoint pt;
    double split = 0;
    uint32_t left = kNull;
    uint32_t right = kNull;
  };

  // The single templated query traversal; query, query_count, and the batch
  // variants all instantiate it with different report sinks.
  template <typename F>
  void query_rec(uint32_t v, double xlo, double xhi, double xl, double xr,
                 double yb, F&& report) const;

  std::vector<Node> pool_;
  uint32_t root_ = kNull;
  size_t n_ = 0;
};

class DynamicPriorityTree {
 public:
  explicit DynamicPriorityTree(uint64_t alpha = 2) : alpha_(alpha) {}

  void insert(const PPoint& p);
  bool erase(const PPoint& p);  // marks dead; false if absent

  std::vector<uint32_t> query(double xl, double xr, double yb) const;
  size_t query_count(double xl, double xr, double yb) const;

  // Batched queries on the shared two-phase engine.
  parallel::BatchResult<uint32_t> query_batch(
      const std::vector<Query3Sided>& qs) const;
  std::vector<size_t> query_count_batch(
      const std::vector<Query3Sided>& qs) const;

  size_t size() const { return live_; }
  size_t rebuilds() const { return rebuilds_; }
  size_t height() const;
  bool validate() const;

 private:
  static constexpr uint32_t kNull = UINT32_MAX;

  struct Node {
    double split = 0;          // internal only
    uint32_t left = kNull;     // both kNull -> leaf
    uint32_t right = kNull;
    bool critical = false;
    bool has_point = false;
    bool dead = false;         // point marked erased (still prunes)
    PPoint pt;
    uint64_t init_weight = 0;  // critical only; weight = points + 1
    uint64_t weight = 0;
  };

  uint32_t alloc();
  void rebuild(uint32_t v, uint32_t parent, int side, uint64_t old_init);
  // Post-sorted rebuild core over pts[lo, hi) (sorted by x): returns node.
  // Large rebuilds pre-grow the pool and fork sibling subtree builds.
  uint32_t build_range(std::vector<PPoint>& pts, size_t lo, size_t hi,
                       uint64_t sibling_points);
  // Parallel variant over pre-claimed slots handed out by `cursor`, so
  // sibling builds never touch the shared allocator and mutate disjoint pts
  // slices / pool entries.
  uint32_t build_range_ids(std::vector<PPoint>& pts, size_t lo, size_t hi,
                           uint64_t sibling_points,
                           const std::vector<uint32_t>& slots,
                           std::atomic<uint32_t>& cursor);
  void collect_live(uint32_t v, std::vector<PPoint>& out) const;
  void bump_and_rebalance(const std::vector<uint32_t>& path);
  // The single templated query traversal; query, query_count, and the batch
  // variants all instantiate it with different report sinks.
  template <typename F>
  void query_rec(uint32_t v, double xlo, double xhi, double xl, double xr,
                 double yb, F&& report) const;

  uint64_t alpha_;
  std::vector<Node> pool_;
  std::vector<uint32_t> free_;
  uint32_t root_ = kNull;
  uint64_t root_weight_ = 1;  // points + 1
  uint64_t root_init_ = 1;
  size_t live_ = 0;
  size_t dead_ = 0;
  size_t rebuilds_ = 0;
};

}  // namespace weg::augtree
