// Treap used as the *inner tree* of the augmented structures (Section 7).
// The paper uses red-black trees with O(1) amortized rotations [56] for the
// ordered interval lists and switches to treaps for bulk updates (Section
// 7.3.5); we use treaps throughout: O(1) *expected* rotations per
// insert/delete — hence O(1) expected large-memory writes per update — and
// O(log n) expected search depth, the same cost profile with far less
// machinery.
//
// TreapT<true> additionally maintains subtree sizes, enabling the counting /
// order-statistic queries of Appendix A ("other queries") at the cost of
// O(log n) size-update writes per modification (the paper's counting variant
// pays the same). TreapT<false> (the default inner tree) keeps updates at
// O(1) expected writes.
//
// Keys are doubles with an item id as tiebreaker, so duplicate keys are fully
// supported. Priorities are hashes of (key bits, item): deterministic across
// runs.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "src/asym/counters.h"
#include "src/primitives/random.h"

namespace weg::augtree {

template <bool Sized>
class TreapT {
 public:
  static constexpr uint32_t kNull = UINT32_MAX;

  struct Node {
    double key = 0;
    uint32_t item = 0;  // caller-defined payload (e.g. interval id)
    uint32_t left = kNull;
    uint32_t right = kNull;
    uint32_t size = 1;
    uint64_t pri = 0;
  };

  TreapT() = default;

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Builds from entries sorted ascending by (key, item): O(n) reads/writes
  // via the right-spine Cartesian-tree construction.
  static TreapT from_sorted(const std::vector<std::pair<double, uint32_t>>& es);

  void insert(double key, uint32_t item);
  // Removes the entry (key, item); returns false if absent.
  bool erase(double key, uint32_t item);

  // Order statistics (Sized only; O(log n) reads, no writes).
  size_t count_less(double k) const;
  size_t count_leq(double k) const;
  size_t count_range(double lo, double hi) const {
    return count_leq(hi) - count_less(lo);
  }

  // In-order reporting with early exit. Visits O(k + depth) nodes.
  template <typename F>
  void report_leq(double k, F emit) const {
    report_leq_rec(root_, k, emit);
  }
  template <typename F>
  void report_geq(double k, F emit) const {
    report_geq_rec(root_, k, emit);
  }
  template <typename F>
  void report_range(double lo, double hi, F emit) const {
    report_range_rec(root_, lo, hi, emit);
  }
  template <typename F>
  void for_each(F emit) const {
    report_leq_rec(root_, std::numeric_limits<double>::infinity(), emit);
  }

  // Rotation-equivalent link writes performed by the last insert/erase (test
  // hook for the O(1) expected-writes property).
  size_t last_rotations() const { return last_rotations_; }

  size_t depth() const { return depth_rec(root_); }

  // Heap + BST order invariants (test helper, uncounted).
  bool validate() const { return validate_rec(root_).ok; }

 private:
  static uint64_t make_priority(double key, uint32_t item) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(key));
    __builtin_memcpy(&bits, &key, sizeof(bits));
    return primitives::hash64(bits * 0x9e3779b97f4a7c15ULL + item + 1);
  }

  static bool entry_less(double k1, uint32_t i1, double k2, uint32_t i2) {
    return k1 < k2 || (k1 == k2 && i1 < i2);
  }

  uint32_t alloc(double key, uint32_t item) {
    pool_.push_back(Node{key, item, kNull, kNull, 1, make_priority(key, item)});
    return static_cast<uint32_t>(pool_.size() - 1);
  }

  void pull(uint32_t v) {
    if constexpr (Sized) {
      uint32_t s = 1;
      if (pool_[v].left != kNull) s += pool_[pool_[v].left].size;
      if (pool_[v].right != kNull) s += pool_[pool_[v].right].size;
      if (pool_[v].size != s) {
        pool_[v].size = s;
        asym::count_write();
      }
    }
  }

  // Classic recursive insert with rotations: O(depth) reads, O(1) expected
  // link writes (one per rotation plus the leaf attach).
  uint32_t insert_rec(uint32_t v, uint32_t nu) {
    if (v == kNull) {
      asym::count_write();  // attach the new node
      return nu;
    }
    asym::count_read();
    bool go_left = entry_less(pool_[nu].key, pool_[nu].item, pool_[v].key,
                              pool_[v].item);
    if (go_left) {
      uint32_t c = insert_rec(pool_[v].left, nu);
      pool_[v].left = c;  // only a real write when the child changed
      if (pool_[c].pri > pool_[v].pri) {
        v = rotate_right(v);
      }
    } else {
      uint32_t c = insert_rec(pool_[v].right, nu);
      pool_[v].right = c;
      if (pool_[c].pri > pool_[v].pri) {
        v = rotate_left(v);
      }
    }
    pull(v);
    return v;
  }

  uint32_t rotate_right(uint32_t v) {
    uint32_t l = pool_[v].left;
    pool_[v].left = pool_[l].right;
    pool_[l].right = v;
    pull(v);
    pull(l);
    asym::count_write(2);
    ++last_rotations_;
    return l;
  }
  uint32_t rotate_left(uint32_t v) {
    uint32_t r = pool_[v].right;
    pool_[v].right = pool_[r].left;
    pool_[r].left = v;
    pull(v);
    pull(r);
    asym::count_write(2);
    ++last_rotations_;
    return r;
  }

  // Joins two treaps where every key in l precedes every key in r. The merge
  // spine has O(1) expected length when called for a deletion.
  uint32_t join(uint32_t l, uint32_t r) {
    if (l == kNull) return r;
    if (r == kNull) return l;
    asym::count_read(2);
    asym::count_write();
    ++last_rotations_;
    if (pool_[l].pri > pool_[r].pri) {
      pool_[l].right = join(pool_[l].right, r);
      pull(l);
      return l;
    }
    pool_[r].left = join(l, pool_[r].left);
    pull(r);
    return r;
  }

  uint32_t erase_rec(uint32_t v, double key, uint32_t item, bool& found) {
    if (v == kNull) return kNull;
    asym::count_read();
    const Node& nd = pool_[v];
    if (nd.key == key && nd.item == item) {
      found = true;
      asym::count_write();  // unlink
      return join(nd.left, nd.right);
    }
    if (entry_less(key, item, nd.key, nd.item)) {
      uint32_t c = erase_rec(nd.left, key, item, found);
      pool_[v].left = c;
    } else {
      uint32_t c = erase_rec(nd.right, key, item, found);
      pool_[v].right = c;
    }
    if (found) pull(v);
    return v;
  }

  template <typename F>
  void report_leq_rec(uint32_t v, double k, F& emit) const {
    if (v == kNull) return;
    asym::count_read();
    const Node& nd = pool_[v];
    report_leq_rec(nd.left, k, emit);
    if (nd.key > k) return;
    emit(nd.key, nd.item);
    report_leq_rec(nd.right, k, emit);
  }
  template <typename F>
  void report_geq_rec(uint32_t v, double k, F& emit) const {
    if (v == kNull) return;
    asym::count_read();
    const Node& nd = pool_[v];
    report_geq_rec(nd.right, k, emit);
    if (nd.key < k) return;
    emit(nd.key, nd.item);
    report_geq_rec(nd.left, k, emit);
  }
  template <typename F>
  void report_range_rec(uint32_t v, double lo, double hi, F& emit) const {
    if (v == kNull) return;
    asym::count_read();
    const Node& nd = pool_[v];
    if (nd.key >= lo) report_range_rec(nd.left, lo, hi, emit);
    if (nd.key >= lo && nd.key <= hi) emit(nd.key, nd.item);
    if (nd.key <= hi) report_range_rec(nd.right, lo, hi, emit);
  }

  size_t depth_rec(uint32_t v) const {
    if (v == kNull) return 0;
    return 1 + std::max(depth_rec(pool_[v].left), depth_rec(pool_[v].right));
  }

  struct Check {
    bool ok;
    size_t size;
  };
  Check validate_rec(uint32_t v) const {
    if (v == kNull) return {true, 0};
    const Node& nd = pool_[v];
    Check l = validate_rec(nd.left), r = validate_rec(nd.right);
    bool ok = l.ok && r.ok;
    if (nd.left != kNull) {
      ok = ok && !entry_less(nd.key, nd.item, pool_[nd.left].key,
                             pool_[nd.left].item);
      ok = ok && pool_[nd.left].pri <= nd.pri;
    }
    if (nd.right != kNull) {
      ok = ok && entry_less(nd.key, nd.item, pool_[nd.right].key,
                            pool_[nd.right].item);
      ok = ok && pool_[nd.right].pri <= nd.pri;
    }
    size_t s = 1 + l.size + r.size;
    if constexpr (Sized) ok = ok && nd.size == s;
    return {ok, s};
  }

  std::vector<Node> pool_;
  uint32_t root_ = kNull;
  size_t count_ = 0;
  size_t last_rotations_ = 0;
};

template <bool Sized>
TreapT<Sized> TreapT<Sized>::from_sorted(
    const std::vector<std::pair<double, uint32_t>>& es) {
  TreapT t;
  t.pool_.reserve(es.size());
  asym::count_read(es.size());
  asym::count_write(es.size());
  // Right-spine Cartesian-tree construction: O(n) total.
  std::vector<uint32_t> spine;
  for (const auto& [key, item] : es) {
    uint32_t nu = t.alloc(key, item);
    uint32_t last_popped = kNull;
    while (!spine.empty() && t.pool_[spine.back()].pri < t.pool_[nu].pri) {
      last_popped = spine.back();
      spine.pop_back();
    }
    if (last_popped != kNull) t.pool_[nu].left = last_popped;
    if (spine.empty()) {
      t.root_ = nu;
    } else {
      t.pool_[spine.back()].right = nu;
    }
    spine.push_back(nu);
  }
  t.count_ = es.size();
  if constexpr (Sized) {
    // Recompute sizes with an explicit post-order stack (uncounted: part of
    // the same O(n)-write construction pass).
    if (t.root_ != kNull) {
      std::vector<std::pair<uint32_t, bool>> st{{t.root_, false}};
      while (!st.empty()) {
        auto [v, processed] = st.back();
        st.pop_back();
        if (processed) {
          uint32_t s = 1;
          if (t.pool_[v].left != kNull) s += t.pool_[t.pool_[v].left].size;
          if (t.pool_[v].right != kNull) s += t.pool_[t.pool_[v].right].size;
          t.pool_[v].size = s;
          continue;
        }
        st.push_back({v, true});
        if (t.pool_[v].left != kNull) st.push_back({t.pool_[v].left, false});
        if (t.pool_[v].right != kNull) st.push_back({t.pool_[v].right, false});
      }
    }
  }
  return t;
}

template <bool Sized>
void TreapT<Sized>::insert(double key, uint32_t item) {
  last_rotations_ = 0;
  uint32_t nu = alloc(key, item);
  root_ = insert_rec(root_, nu);
  ++count_;
}

template <bool Sized>
bool TreapT<Sized>::erase(double key, uint32_t item) {
  last_rotations_ = 0;
  bool found = false;
  root_ = erase_rec(root_, key, item, found);
  if (found) --count_;
  return found;
}

template <bool Sized>
size_t TreapT<Sized>::count_less(double k) const {
  static_assert(Sized, "count queries need the sized treap");
  size_t c = 0;
  uint32_t v = root_;
  while (v != kNull) {
    asym::count_read();
    const Node& nd = pool_[v];
    if (nd.key < k) {
      c += 1 + (nd.left == kNull ? 0 : pool_[nd.left].size);
      v = nd.right;
    } else {
      v = nd.left;
    }
  }
  return c;
}

template <bool Sized>
size_t TreapT<Sized>::count_leq(double k) const {
  static_assert(Sized, "count queries need the sized treap");
  size_t c = 0;
  uint32_t v = root_;
  while (v != kNull) {
    asym::count_read();
    const Node& nd = pool_[v];
    if (nd.key <= k) {
      c += 1 + (nd.left == kNull ? 0 : pool_[nd.left].size);
      v = nd.right;
    } else {
      v = nd.left;
    }
  }
  return c;
}

using Treap = TreapT<false>;
using SizedTreap = TreapT<true>;

}  // namespace weg::augtree
