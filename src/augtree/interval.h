// Interval record shared by the augmented-tree structures (Section 7.1).
#pragma once

#include <cstdint>

namespace weg::augtree {

struct Interval {
  double l = 0;
  double r = 0;
  uint32_t id = 0;

  bool contains(double q) const { return l <= q && q <= r; }
  friend bool operator==(const Interval& a, const Interval& b) {
    return a.l == b.l && a.r == b.r && a.id == b.id;
  }
};

struct AugStats {
  // Filled by construction / update entry points via asym::Region.
  uint64_t reads = 0;
  uint64_t writes = 0;
};

}  // namespace weg::augtree
