#include "src/augtree/priority_tree.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>

#include "src/parallel/par_build.h"
#include "src/augtree/tournament.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/sort.h"
#include "src/sort/incremental_sort.h"

namespace weg::augtree {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

bool px_less(const PPoint& a, const PPoint& b) {
  return a.x < b.x || (a.x == b.x && a.id < b.id);
}
}  // namespace

// ---------------------------------------------------------------------------
// StaticPriorityTree
// ---------------------------------------------------------------------------

StaticPriorityTree StaticPriorityTree::build_classic(
    const std::vector<PPoint>& pts, Stats* stats) {
  asym::Region region;
  StaticPriorityTree t;
  t.n_ = pts.size();
  // One node per point; a subtree over a set of size s occupies the
  // contiguous slot slice [base, base + s) with its root at `base`, so
  // sibling builds write disjoint slots, the layout is DFS-contiguous, and
  // ids are identical at every worker count.
  t.pool_.resize(t.n_);
  std::vector<PPoint> sorted = pts;
  asym::count_read(pts.size());
  primitives::sort_inplace(sorted, px_less);
  // Recursive extract-max + median split, copying each half (the Θ(n log n)
  // write baseline). The halves are independent, so they fork down to a
  // sequential cutoff.
  auto rec = [&](auto&& self, std::vector<PPoint> set,
                 uint32_t base) -> uint32_t {
    if (set.empty()) return kNull;
    asym::count_read(set.size());
    size_t best = 0;
    for (size_t i = 1; i < set.size(); ++i) {
      if (set[i].y > set[best].y) best = i;
    }
    uint32_t id = base;
    t.pool_[id].pt = set[best];
    asym::count_write();
    set.erase(set.begin() + static_cast<long>(best));
    if (set.empty()) {
      t.pool_[id].split = t.pool_[id].pt.x;
      return id;
    }
    size_t mid = (set.size() - 1) / 2;  // left gets positions [0, mid]
    asym::count_read(set.size());
    asym::count_write(set.size());  // the two copies
    std::vector<PPoint> left(set.begin(),
                             set.begin() + static_cast<long>(mid) + 1);
    std::vector<PPoint> right(set.begin() + static_cast<long>(mid) + 1,
                              set.end());
    t.pool_[id].split = set[mid].x;
    uint32_t lbase = base + 1;
    uint32_t rbase = lbase + static_cast<uint32_t>(left.size());
    uint32_t l = kNull, r = kNull;
    parallel::par_do_if(left.size() + right.size() > parallel::kSeqCutoff,
                        [&] { l = self(self, std::move(left), lbase); },
                        [&] { r = self(self, std::move(right), rbase); });
    t.pool_[id].left = l;
    t.pool_[id].right = r;
    return id;
  };
  t.root_ = rec(rec, std::move(sorted), 0);
  if (stats) {
    stats->cost = region.delta();
    stats->height = t.height();
    stats->smallmem_base_cases = 0;
  }
  return t;
}

StaticPriorityTree StaticPriorityTree::build_postsorted(
    const std::vector<PPoint>& pts, Stats* stats) {
  asym::Region region;
  StaticPriorityTree t;
  t.n_ = pts.size();
  if (t.n_ == 0) {
    if (stats) *stats = Stats{asym::Counts{}, 0, 0};
    return t;
  }
  // One node per point; a carve over nv valid points occupies the contiguous
  // slot slice [base, base + nv) with its root at `base`, so sibling carves
  // write disjoint slots and ids are identical at every worker count.
  t.pool_.resize(t.n_);

  // Write-efficient sort by x (Theorem 4.1 sorter on the mapped doubles).
  std::vector<uint64_t> keys(t.n_);
  parallel::parallel_for(0, t.n_, [&](size_t i) {
    keys[i] = sort::double_to_sortable(pts[i].x);
  });
  asym::count_read(t.n_);  // the monotone mapping happens in registers
  auto order = sort::incremental_sort_we_order(keys);
  std::vector<PPoint> sorted(t.n_);
  asym::count_read(t.n_);
  asym::count_write(t.n_);
  parallel::parallel_for(0, t.n_, [&](size_t i) { sorted[i] = pts[order[i]]; });
  // Stabilize equal x by id (the WE sorter breaks key ties by input index).
  // (Equal doubles map to equal keys; tie order does not matter here.)

  std::vector<double> ys(t.n_);
  parallel::parallel_for(0, t.n_, [&](size_t i) { ys[i] = sorted[i].y; });
  TournamentTree tt(ys);

  std::atomic<size_t> base_cases{0};

  // Appendix A construction: carve the tree out of the sorted array using
  // range-argmax / k-th-valid / scoped deletions on the tournament tree.
  // Sibling carves fork: a scoped deletion in [a, b) only rewrites
  // tournament nodes whose segment lies inside [a, b), and queries read
  // summaries only at fully-covered nodes, so recursions over disjoint
  // ranges touch disjoint tournament state.
  auto rec = [&](auto&& self, size_t lo, size_t hi, size_t nv,
                 uint32_t base) -> uint32_t {
    if (nv == 0) return kNull;
    size_t holes = (hi - lo) - nv;
    if (nv == 1 || holes > nv) {
      // Base case: load the valid points into the symmetric memory and
      // finish the subtree there; only the reads of the range and the writes
      // of the produced nodes touch the large memory.
      base_cases.fetch_add(1, std::memory_order_relaxed);
      asym::count_read(hi - lo);
      std::vector<PPoint> local;
      local.reserve(nv);
      for (size_t i = lo; i < hi; ++i) {
        if (tt.count_valid(i, i + 1)) local.push_back(sorted[i]);
      }
      for (size_t i = lo; i < hi; ++i) tt.erase_scoped(i, lo, hi);
      // In-memory classic build into slots [bbase, bbase + (bhi - blo));
      // charge one write per created node.
      auto build = [&](auto&& bself, size_t blo, size_t bhi,
                       uint32_t bbase) -> uint32_t {
        if (blo >= bhi) return kNull;
        size_t best = blo;
        for (size_t i = blo + 1; i < bhi; ++i) {
          if (local[i].y > local[best].y) best = i;
        }
        std::swap(local[blo], local[best]);
        PPoint top = local[blo];
        // Keep the rest sorted by x for the median split.
        std::sort(local.begin() + static_cast<long>(blo) + 1,
                  local.begin() + static_cast<long>(bhi), px_less);
        uint32_t id = bbase;
        asym::count_write();
        t.pool_[id].pt = top;
        size_t rest = bhi - (blo + 1);
        if (rest == 0) {
          t.pool_[id].split = top.x;
          return id;
        }
        size_t mid = blo + 1 + (rest - 1) / 2;
        t.pool_[id].split = local[mid].x;
        uint32_t l = bself(bself, blo + 1, mid + 1, bbase + 1);
        uint32_t r = bself(bself, mid + 1, bhi,
                           bbase + 1 + static_cast<uint32_t>(mid - blo));
        t.pool_[id].left = l;
        t.pool_[id].right = r;
        return id;
      };
      return build(build, 0, local.size(), base);
    }
    uint32_t top_idx = tt.range_argmax(lo, hi);
    assert(top_idx != TournamentTree::kNone);
    uint32_t id = base;
    asym::count_write();
    t.pool_[id].pt = sorted[top_idx];
    tt.erase_scoped(top_idx, lo, hi);
    size_t rest = nv - 1;
    if (rest == 0) {
      t.pool_[id].split = t.pool_[id].pt.x;
      return id;
    }
    size_t k = (rest - 1) / 2;  // left keeps k+1 valid points
    uint32_t med = tt.kth_valid(lo, hi, k);
    assert(med != TournamentTree::kNone);
    t.pool_[id].split = sorted[med].x;
    uint32_t lbase = base + 1;
    uint32_t rbase = lbase + static_cast<uint32_t>(k + 1);
    uint32_t l = kNull, r = kNull;
    parallel::par_do_if(
        rest > parallel::kSeqCutoff,
        [&] { l = self(self, lo, med + 1, k + 1, lbase); },
        [&] { r = self(self, med + 1, hi, rest - (k + 1), rbase); });
    t.pool_[id].left = l;
    t.pool_[id].right = r;
    return id;
  };
  t.root_ = rec(rec, 0, t.n_, t.n_, 0);

  if (stats) {
    stats->cost = region.delta();
    stats->height = t.height();
    stats->smallmem_base_cases = base_cases.load(std::memory_order_relaxed);
  }
  return t;
}

template <typename F>
void StaticPriorityTree::query_rec(uint32_t v, double xlo, double xhi,
                                   double xl, double xr, double yb,
                                   F&& report) const {
  if (v == kNull) return;
  if (xhi < xl || xlo > xr) return;  // x-range disjoint
  asym::count_read();
  const Node& nd = pool_[v];
  if (nd.pt.y < yb) return;  // heap prune
  if (nd.pt.x >= xl && nd.pt.x <= xr) report(nd.pt);
  query_rec(nd.left, xlo, nd.split, xl, xr, yb, report);
  query_rec(nd.right, nd.split, xhi, xl, xr, yb, report);
}

std::vector<uint32_t> StaticPriorityTree::query(double xl, double xr,
                                                double yb) const {
  std::vector<uint32_t> out;
  query_rec(root_, -kInf, kInf, xl, xr, yb, [&](const PPoint& p) {
    asym::count_write();
    out.push_back(p.id);
  });
  return out;
}

size_t StaticPriorityTree::query_count(double xl, double xr, double yb) const {
  size_t c = 0;
  query_rec(root_, -kInf, kInf, xl, xr, yb, [&](const PPoint&) { ++c; });
  return c;
}

parallel::BatchResult<uint32_t> StaticPriorityTree::query_batch(
    const std::vector<Query3Sided>& qs) const {
  return parallel::batch_two_phase<uint32_t>(
      qs.size(),
      [&](size_t i) { return query_count(qs[i].xl, qs[i].xr, qs[i].yb); },
      [&](size_t i, uint32_t* out) {
        query_rec(root_, -kInf, kInf, qs[i].xl, qs[i].xr, qs[i].yb,
                  [&](const PPoint& p) {
                    asym::count_write();
                    *out++ = p.id;
                  });
      });
}

std::vector<size_t> StaticPriorityTree::query_count_batch(
    const std::vector<Query3Sided>& qs) const {
  return parallel::batch_map<size_t>(qs.size(), [&](size_t i) {
    return query_count(qs[i].xl, qs[i].xr, qs[i].yb);
  });
}

size_t StaticPriorityTree::height() const {
  auto rec = [&](auto&& self, uint32_t v) -> size_t {
    if (v == kNull) return 0;
    return 1 + std::max(self(self, pool_[v].left), self(self, pool_[v].right));
  };
  return rec(rec, root_);
}

bool StaticPriorityTree::validate() const {
  size_t count = 0;
  bool ok = true;
  auto rec = [&](auto&& self, uint32_t v, double xlo, double xhi,
                 double ymax) -> void {
    if (v == kNull) return;
    ++count;
    const Node& nd = pool_[v];
    if (nd.pt.y > ymax) ok = false;                    // heap order
    if (nd.pt.x < xlo || nd.pt.x > xhi) ok = false;    // x partition
    self(self, nd.left, xlo, nd.split, nd.pt.y);
    self(self, nd.right, nd.split, xhi, nd.pt.y);
  };
  rec(rec, root_, -kInf, kInf, kInf);
  return ok && count == n_;
}

// ---------------------------------------------------------------------------
// DynamicPriorityTree
// ---------------------------------------------------------------------------

uint32_t DynamicPriorityTree::alloc() {
  if (!free_.empty()) {
    uint32_t v = free_.back();
    free_.pop_back();
    pool_[v] = Node{};
    return v;
  }
  pool_.push_back(Node{});
  return static_cast<uint32_t>(pool_.size() - 1);
}

void DynamicPriorityTree::insert(const PPoint& p) {
  ++live_;
  ++root_weight_;
  asym::count_write();  // virtual-root weight
  if (root_ == kNull) {
    root_ = alloc();
    pool_[root_].critical = true;
    pool_[root_].has_point = true;
    pool_[root_].pt = p;
    pool_[root_].init_weight = 2;
    pool_[root_].weight = 2;
    asym::count_write();
    return;
  }
  std::vector<uint32_t> path;
  PPoint carried = p;
  bool carried_dead = false;  // dead points can be displaced downward too
  uint32_t v = root_;
  while (true) {
    path.push_back(v);
    asym::count_read();
    Node& nd = pool_[v];
    // Swap down the chain of stored points: the node keeps the higher
    // priority (dead points participate — they still bound the subtree).
    if (nd.has_point && carried.y > nd.pt.y) {
      std::swap(carried, nd.pt);
      std::swap(carried_dead, nd.dead);
      asym::count_write();
    }
    if (nd.left == kNull && nd.right == kNull) break;  // leaf
    v = carried.x <= nd.split ? nd.left : nd.right;
  }
  // At the leaf: place or split.
  Node& leaf = pool_[v];
  if (!leaf.has_point) {
    leaf.has_point = true;
    leaf.pt = carried;
    leaf.dead = carried_dead;
    asym::count_write();
  } else {
    // Leaf keeps its (higher-y, post-swap) point and becomes internal; the
    // carried point descends into a fresh child leaf, its sibling empty.
    // Fresh nodes start at weight 1 (no point); bump_and_rebalance below
    // accounts for the newly inserted point on the whole path.
    double split = carried.x;
    uint32_t cl = alloc();
    uint32_t cr = alloc();
    Node& nd = pool_[v];  // re-fetch (alloc may reallocate)
    nd.split = split;
    nd.left = cl;
    nd.right = cr;
    uint32_t target = cl;  // carried.x <= split
    pool_[cl].critical = pool_[cr].critical = true;
    pool_[cl].init_weight = pool_[cr].init_weight = 2;
    pool_[cl].weight = pool_[cr].weight = 1;
    pool_[target].has_point = true;
    pool_[target].pt = carried;
    pool_[target].dead = carried_dead;
    asym::count_write(2);
    path.push_back(target);
  }
  bump_and_rebalance(path);
}

void DynamicPriorityTree::bump_and_rebalance(
    const std::vector<uint32_t>& path) {
  for (uint32_t v : path) {
    if (pool_[v].critical) {
      asym::count_write();
      ++pool_[v].weight;
    }
  }
  if (root_weight_ >= 2 * root_init_ && live_ + dead_ > 4) {
    rebuild(root_, kNull, 0, root_init_);
    return;
  }
  for (size_t i = 0; i < path.size(); ++i) {
    uint32_t v = path[i];
    const Node& nd = pool_[v];
    if (nd.critical && nd.weight >= 2 * nd.init_weight && nd.init_weight > 1) {
      if (i == 0) {
        rebuild(root_, kNull, 0, root_init_);
      } else {
        uint32_t parent = path[i - 1];
        int side = pool_[parent].right == v ? 1 : 0;
        rebuild(v, parent, side, nd.init_weight);
      }
      return;
    }
  }
}

void DynamicPriorityTree::collect_live(uint32_t v,
                                       std::vector<PPoint>& out) const {
  if (v == kNull) return;
  std::vector<uint32_t> st{v};
  while (!st.empty()) {
    uint32_t u = st.back();
    st.pop_back();
    const Node& nd = pool_[u];
    asym::count_read();
    if (nd.has_point && !nd.dead) out.push_back(nd.pt);
    if (nd.left != kNull) st.push_back(nd.left);
    if (nd.right != kNull) st.push_back(nd.right);
  }
}

uint32_t DynamicPriorityTree::build_range(std::vector<PPoint>& pts, size_t lo,
                                          size_t hi, uint64_t sibling_points) {
  if (lo >= hi) return kNull;
  size_t n = hi - lo;
  // Claim the worst-case node count up front (free-list slots first, so
  // repeated rebuilds recycle instead of growing the pool) and hand slots
  // out through an atomic cursor; build_range_ids forks sibling subtree
  // builds above the sequential cutoff and runs inline below it, so this
  // single path serves serial and parallel rebuilds alike. Bound: every
  // call creates one node; a size-1 range or a critical node consumes a
  // point, a secondary node splits size s >= 2 into two strictly smaller
  // ranges, so N(s) <= 2s - 1 by induction.
  std::vector<uint32_t> slots =
      parallel::claim_build_slots(pool_, free_, 2 * n);
  std::atomic<uint32_t> cursor{0};
  uint32_t root = build_range_ids(pts, lo, hi, sibling_points, slots, cursor);
  // Return the unused slack to the free list.
  for (size_t k = cursor.load(std::memory_order_relaxed); k < slots.size();
       ++k) {
    free_.push_back(slots[k]);
  }
  return root;
}

uint32_t DynamicPriorityTree::build_range_ids(
    std::vector<PPoint>& pts, size_t lo, size_t hi, uint64_t sibling_points,
    const std::vector<uint32_t>& slots, std::atomic<uint32_t>& cursor) {
  if (lo >= hi) return kNull;
  uint64_t w = (hi - lo) + 1;
  uint32_t id = slots[cursor.fetch_add(1, std::memory_order_relaxed)];
  asym::count_write();
  // Claimed slots all hold Node{} and the pool never resizes during the
  // build, so holding the reference across child calls is safe.
  Node& nd = pool_[id];
  nd.critical = is_critical_weight(w, sibling_points + 1, alpha_);
  nd.init_weight = w;
  nd.weight = w;
  size_t begin = lo;
  if (nd.critical || hi - lo == 1) {
    size_t best = lo;
    for (size_t i = lo + 1; i < hi; ++i) {
      if (pts[i].y > pts[best].y) best = i;
    }
    asym::count_read(hi - lo);
    nd.has_point = true;
    nd.pt = pts[best];
    // Remove by swapping toward the front, preserving x order of the rest
    // via rotation.
    std::rotate(pts.begin() + static_cast<long>(lo),
                pts.begin() + static_cast<long>(best),
                pts.begin() + static_cast<long>(best) + 1);
    begin = lo + 1;
  }
  if (begin >= hi) {
    nd.split = nd.has_point ? nd.pt.x : 0;
    if (!nd.critical) {
      // A childless secondary node would be pointless; make it critical so
      // every leaf holds its point.
      nd.critical = true;
    }
    return id;
  }
  size_t rest = hi - begin;
  size_t mid = begin + (rest - 1) / 2;  // left keeps [begin, mid]
  nd.split = pts[mid].x;
  uint64_t wl = (mid + 1 - begin) + 1, wr = (hi - (mid + 1)) + 1;
  uint32_t l = kNull, r = kNull;
  // Children mutate disjoint pts slices and allocate through the shared
  // cursor only.
  parallel::par_do_if(
      rest > parallel::kSeqCutoff,
      [&] { l = build_range_ids(pts, begin, mid + 1, wr - 1, slots, cursor); },
      [&] { r = build_range_ids(pts, mid + 1, hi, wl - 1, slots, cursor); });
  nd.left = l;
  nd.right = r;
  return id;
}

void DynamicPriorityTree::rebuild(uint32_t v, uint32_t parent, int side,
                                  uint64_t old_init) {
  ++rebuilds_;
  std::vector<PPoint> pts;
  collect_live(v, pts);
  // Free old subtree.
  {
    std::vector<uint32_t> st{v};
    while (!st.empty()) {
      uint32_t u = st.back();
      st.pop_back();
      if (pool_[u].left != kNull) st.push_back(pool_[u].left);
      if (pool_[u].right != kNull) st.push_back(pool_[u].right);
      bool was_dead = pool_[u].has_point && pool_[u].dead;
      if (was_dead) --dead_;
      pool_[u] = Node{};
      free_.push_back(u);
    }
  }
  // Sort by x. Small subtrees (the frequent leaf-level reconstructions)
  // fit in the symmetric memory (size Omega(log n)) and sort there for the
  // cost of reading them in and writing them out; larger subtrees use the
  // write-efficient sorter (linear writes).
  if (pts.size() <= 64) {
    asym::count_read(pts.size());
    asym::count_write(pts.size());
    std::sort(pts.begin(), pts.end(), px_less);
  } else {
    std::vector<uint64_t> keys(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
      keys[i] = sort::double_to_sortable(pts[i].x);
    }
    asym::count_read(pts.size());
    auto order = sort::incremental_sort_we_order_anyorder(keys);
    std::vector<PPoint> sorted(pts.size());
    asym::count_write(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) sorted[i] = pts[order[i]];
    pts.swap(sorted);
  }
  uint32_t fresh = pts.empty() ? kNull : build_range(pts, 0, pts.size(), 0);
  if (parent == kNull) {
    root_ = fresh;
    root_weight_ = pts.size() + 1;
    root_init_ = root_weight_;
  } else {
    asym::count_write();
    if (side == 0) {
      pool_[parent].left = fresh;
    } else {
      pool_[parent].right = fresh;
    }
  }
  if (fresh != kNull && parent != kNull &&
      rebuild_root_exception(old_init, alpha_) && pool_[fresh].critical &&
      !pool_[fresh].has_point) {
    // §7.3.2 exception: the fresh root stays secondary. We only unmark when
    // it holds no point (labels drift until the next rebuild otherwise).
    pool_[fresh].critical = false;
  }
}

bool DynamicPriorityTree::erase(const PPoint& p) {
  bool found = false;
  auto rec = [&](auto&& self, uint32_t v) -> void {
    if (v == kNull || found) return;
    asym::count_read();
    Node& nd = pool_[v];
    if (nd.has_point && nd.pt.y < p.y) return;  // heap prune
    if (nd.has_point && !nd.dead && nd.pt == p) {
      asym::count_write();
      nd.dead = true;
      found = true;
      return;
    }
    if (nd.left == kNull && nd.right == kNull) return;
    // Ties on the splitter search both sides.
    if (p.x <= nd.split) self(self, nd.left);
    if (!found && p.x >= nd.split) self(self, nd.right);
  };
  rec(rec, root_);
  if (!found) return false;
  --live_;
  ++dead_;
  if (dead_ * 2 >= live_ + dead_ && live_ + dead_ > 8) {
    rebuild(root_, kNull, 0, root_init_);
  }
  return true;
}

template <typename F>
void DynamicPriorityTree::query_rec(uint32_t v, double xlo, double xhi,
                                    double xl, double xr, double yb,
                                    F&& report) const {
  if (v == kNull) return;
  if (xhi < xl || xlo > xr) return;  // x-range disjoint
  asym::count_read();
  const Node& nd = pool_[v];
  if (nd.has_point) {
    if (nd.pt.y < yb) return;  // heap prune (dead points prune too)
    if (!nd.dead && nd.pt.x >= xl && nd.pt.x <= xr) report(nd.pt);
  }
  query_rec(nd.left, xlo, nd.split, xl, xr, yb, report);
  query_rec(nd.right, nd.split, xhi, xl, xr, yb, report);
}

std::vector<uint32_t> DynamicPriorityTree::query(double xl, double xr,
                                                 double yb) const {
  std::vector<uint32_t> out;
  query_rec(root_, -kInf, kInf, xl, xr, yb, [&](const PPoint& p) {
    asym::count_write();
    out.push_back(p.id);
  });
  return out;
}

size_t DynamicPriorityTree::query_count(double xl, double xr,
                                        double yb) const {
  size_t c = 0;
  query_rec(root_, -kInf, kInf, xl, xr, yb, [&](const PPoint&) { ++c; });
  return c;
}

parallel::BatchResult<uint32_t> DynamicPriorityTree::query_batch(
    const std::vector<Query3Sided>& qs) const {
  return parallel::batch_two_phase<uint32_t>(
      qs.size(),
      [&](size_t i) { return query_count(qs[i].xl, qs[i].xr, qs[i].yb); },
      [&](size_t i, uint32_t* out) {
        query_rec(root_, -kInf, kInf, qs[i].xl, qs[i].xr, qs[i].yb,
                  [&](const PPoint& p) {
                    asym::count_write();
                    *out++ = p.id;
                  });
      });
}

std::vector<size_t> DynamicPriorityTree::query_count_batch(
    const std::vector<Query3Sided>& qs) const {
  return parallel::batch_map<size_t>(qs.size(), [&](size_t i) {
    return query_count(qs[i].xl, qs[i].xr, qs[i].yb);
  });
}

size_t DynamicPriorityTree::height() const {
  auto rec = [&](auto&& self, uint32_t v) -> size_t {
    if (v == kNull) return 0;
    return 1 + std::max(self(self, pool_[v].left), self(self, pool_[v].right));
  };
  return rec(rec, root_);
}

bool DynamicPriorityTree::validate() const {
  bool ok = true;
  size_t live_seen = 0;
  auto rec = [&](auto&& self, uint32_t v, double xlo, double xhi,
                 double ymax) -> void {
    if (v == kNull) return;
    const Node& nd = pool_[v];
    double next_ymax = ymax;
    if (nd.has_point) {
      if (nd.pt.y > ymax) ok = false;
      if (nd.pt.x < xlo || nd.pt.x > xhi) ok = false;
      if (!nd.dead) ++live_seen;
      next_ymax = nd.pt.y;
    }
    if (nd.left != kNull || nd.right != kNull) {
      self(self, nd.left, xlo, nd.split, next_ymax);
      self(self, nd.right, nd.split, xhi, next_ymax);
    }
  };
  rec(rec, root_, -kInf, kInf, kInf);
  return ok && live_seen == live_;
}

}  // namespace weg::augtree
