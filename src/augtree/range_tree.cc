#include "src/augtree/range_tree.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/parallel/par_build.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/sort.h"
#include "src/sort/incremental_sort.h"

namespace weg::augtree {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Sorted order of points by (x, id) with write-efficient counting: the WE
// sorter orders by x (ties by input index); equal-x runs are then locally
// reordered by id (runs are short for generic inputs).
std::vector<uint32_t> we_order_by_x(const std::vector<PPoint>& pts) {
  std::vector<uint64_t> keys(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    keys[i] = sort::double_to_sortable(pts[i].x);
  }
  asym::count_read(pts.size());
  auto order = sort::incremental_sort_we_order(keys);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i + 1;
    asym::count_read();
    while (j < order.size() && pts[order[j]].x == pts[order[i]].x) ++j;
    if (j - i > 1) {
      std::sort(order.begin() + static_cast<long>(i),
                order.begin() + static_cast<long>(j),
                [&](uint32_t a, uint32_t b) { return pts[a].id < pts[b].id; });
      asym::count_write(j - i);
    }
    i = j;
  }
  return order;
}

std::vector<uint32_t> we_order_by_y(const std::vector<PPoint>& pts) {
  // Callers pass x-ordered collections (reconstruction), so the random-order
  // precondition does not hold; use the shuffling variant.
  std::vector<uint64_t> keys(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    keys[i] = sort::double_to_sortable(pts[i].y);
  }
  asym::count_read(pts.size());
  return sort::incremental_sort_we_order_anyorder(keys);
}

}  // namespace

// ---------------------------------------------------------------------------
// StaticRangeTree
// ---------------------------------------------------------------------------

StaticRangeTree StaticRangeTree::build(const std::vector<PPoint>& pts,
                                       Stats* stats) {
  asym::Region region;
  StaticRangeTree t;
  t.n_ = pts.size();
  t.m_ = 1;
  t.height_ = 1;
  while (t.m_ < std::max<size_t>(t.n_, 1)) {
    t.m_ = 2 * t.m_ + 1;
    ++t.height_;
  }
  t.by_x_ = pts;
  asym::count_read(t.n_);
  primitives::sort_inplace(t.by_x_, [](const PPoint& a, const PPoint& b) {
    return a.x < b.x || (a.x == b.x && a.id < b.id);
  });

  // One y-sort, then top-down stable partition by rank range: node at
  // position p (level l) covers ranks [p - 2^l, p + 2^l - 2].
  std::vector<std::pair<double, uint32_t>> all(t.n_);  // (y, rank)
  for (size_t r = 0; r < t.n_; ++r) all[r] = {t.by_x_[r].y, (uint32_t)r};
  primitives::sort_inplace(all);

  // Sibling subtrees write disjoint per_node slots, so the stable partition
  // forks on independent subtree builds down to a sequential cutoff.
  std::vector<std::vector<std::pair<double, uint32_t>>> per_node(t.m_ + 1);
  auto rec = [&](auto&& self, size_t pos,
                 std::vector<std::pair<double, uint32_t>> list) -> void {
    if (list.empty()) return;
    asym::count_read(list.size());
    asym::count_write(list.size());  // this level's copy
    int lvl = std::countr_zero(pos);
    per_node[pos] = list;
    if (lvl == 0) return;
    size_t step = size_t{1} << (lvl - 1);
    std::vector<std::pair<double, uint32_t>> left, right;
    uint32_t own_rank = static_cast<uint32_t>(pos - 1);
    for (auto& e : list) {
      if (e.second < own_rank) {
        left.push_back(e);
      } else if (e.second > own_rank) {
        right.push_back(e);
      }
    }
    parallel::par_do_if(left.size() + right.size() > parallel::kSeqCutoff,
                        [&] { self(self, pos - step, std::move(left)); },
                        [&] { self(self, pos + step, std::move(right)); });
  };
  rec(rec, t.root_pos(), std::move(all));

  // Flatten into CSR, converting ranks to ids: serial prefix sum over the
  // node sizes, then a parallel scatter into disjoint output ranges.
  t.inner_off_.assign(t.m_ + 1, 0);
  size_t total = 0;
  for (size_t p = 1; p <= t.m_; ++p) {
    t.inner_off_[p - 1] = static_cast<uint32_t>(total);
    total += per_node[p].size();
  }
  t.inner_off_[t.m_] = static_cast<uint32_t>(total);
  t.ys_.resize(total);
  parallel::parallel_for(1, t.m_ + 1, [&](size_t p) {
    size_t off = t.inner_off_[p - 1];
    for (auto& [y, r] : per_node[p]) t.ys_[off++] = {y, t.by_x_[r].id};
  });
  asym::count_write(total);

  if (stats) {
    stats->cost = region.delta();
    stats->inner_entries = total;
  }
  return t;
}

namespace {

// Shared canonical decomposition over the implicit tree: visits node `pos`
// whose subtree covers ranks [a, b); query rank range [rl, rr).
template <typename Covered, typename Own>
void decompose(size_t pos, size_t a, size_t b, size_t rl, size_t rr, size_t n,
               const Covered& covered_fn, const Own& own_fn) {
  if (rr <= a || b <= rl || a >= n) return;
  asym::count_read();
  if (rl <= a && b <= rr) {
    covered_fn(pos);
    return;
  }
  size_t own_rank = pos - 1;
  if (own_rank < n && own_rank >= rl && own_rank < rr) own_fn(own_rank);
  int lvl = std::countr_zero(pos);
  if (lvl == 0) return;
  size_t step = size_t{1} << (lvl - 1);
  decompose(pos - step, a, own_rank, rl, rr, n, covered_fn, own_fn);
  decompose(pos + step, own_rank + 1, b, rl, rr, n, covered_fn, own_fn);
}

// Reporting visitor: scans each covered node's y-run from lower_bound(yb)
// while y <= yt, one read per scanned entry.
template <typename Emit>
struct StaticRangeReport {
  const std::vector<std::pair<double, uint32_t>>& ys;
  const std::vector<PPoint>& by_x;
  double yb, yt;
  Emit emit;

  void covered(size_t lo, size_t hi) {
    auto first = std::lower_bound(
        ys.begin() + lo, ys.begin() + hi, yb,
        [](const std::pair<double, uint32_t>& e, double v) {
          return e.first < v;
        });
    asym::count_read(static_cast<uint64_t>(std::bit_width(hi - lo + 1)));
    for (auto it = first; it != ys.begin() + hi && it->first <= yt; ++it) {
      asym::count_read();
      emit(it->second);
    }
  }
  void point(size_t rank) {
    asym::count_read();
    if (by_x[rank].y >= yb && by_x[rank].y <= yt) emit(by_x[rank].id);
  }
};

// Counting visitor (Appendix A): binary searches only, no per-result reads
// and no output writes.
struct StaticRangeCount {
  const std::vector<std::pair<double, uint32_t>>& ys;
  const std::vector<PPoint>& by_x;
  double yb, yt;
  size_t c = 0;

  void covered(size_t lo, size_t hi) {
    auto first = std::lower_bound(
        ys.begin() + lo, ys.begin() + hi, yb,
        [](const std::pair<double, uint32_t>& e, double v) {
          return e.first < v;
        });
    auto last = std::upper_bound(
        ys.begin() + lo, ys.begin() + hi, yt,
        [](double v, const std::pair<double, uint32_t>& e) {
          return v < e.first;
        });
    asym::count_read(static_cast<uint64_t>(2 * std::bit_width(hi - lo + 1)));
    c += static_cast<size_t>(last - first);
  }
  void point(size_t rank) {
    asym::count_read();
    if (by_x[rank].y >= yb && by_x[rank].y <= yt) ++c;
  }
};

}  // namespace

template <typename V>
void StaticRangeTree::visit_query(double xl, double xr, V&& vis) const {
  if (n_ == 0) return;
  auto rl = static_cast<size_t>(
      std::lower_bound(by_x_.begin(), by_x_.end(), xl,
                       [](const PPoint& p, double v) { return p.x < v; }) -
      by_x_.begin());
  auto rr = static_cast<size_t>(
      std::upper_bound(by_x_.begin(), by_x_.end(), xr,
                       [](double v, const PPoint& p) { return v < p.x; }) -
      by_x_.begin());
  asym::count_read(static_cast<uint64_t>(2 * std::bit_width(n_)));
  size_t root = root_pos();
  size_t span = root - 1;  // ranks [root-1-span, root-1+span]
  decompose(
      root, root - 1 - span, root + span, rl, rr, n_,
      [&](size_t pos) { vis.covered(inner_off_[pos - 1], inner_off_[pos]); },
      [&](size_t rank) { vis.point(rank); });
}

std::vector<uint32_t> StaticRangeTree::query(double xl, double xr, double yb,
                                             double yt) const {
  std::vector<uint32_t> out;
  auto emit = [&](uint32_t id) {
    asym::count_write();
    out.push_back(id);
  };
  StaticRangeReport<decltype(emit)> vis{ys_, by_x_, yb, yt, emit};
  visit_query(xl, xr, vis);
  return out;
}

size_t StaticRangeTree::query_count(double xl, double xr, double yb,
                                    double yt) const {
  StaticRangeCount vis{ys_, by_x_, yb, yt};
  visit_query(xl, xr, vis);
  return vis.c;
}

parallel::BatchResult<uint32_t> StaticRangeTree::query_batch(
    const std::vector<RangeQuery2D>& qs) const {
  return parallel::batch_two_phase<uint32_t>(
      qs.size(),
      [&](size_t i) {
        const RangeQuery2D& q = qs[i];
        return query_count(q.xl, q.xr, q.yb, q.yt);
      },
      [&](size_t i, uint32_t* out) {
        const RangeQuery2D& q = qs[i];
        auto emit = [&](uint32_t id) {
          asym::count_write();
          *out++ = id;
        };
        StaticRangeReport<decltype(emit)> vis{ys_, by_x_, q.yb, q.yt, emit};
        visit_query(q.xl, q.xr, vis);
      });
}

std::vector<size_t> StaticRangeTree::query_count_batch(
    const std::vector<RangeQuery2D>& qs) const {
  return parallel::batch_map<size_t>(qs.size(), [&](size_t i) {
    const RangeQuery2D& q = qs[i];
    return query_count(q.xl, q.xr, q.yb, q.yt);
  });
}

bool StaticRangeTree::validate() const {
  // Every point appears in the inner list of each of its ancestors
  // (including its own node): total entries per point = depth of its node.
  if (ys_.size() < n_) return false;
  // Inner lists sorted by y.
  for (size_t p = 1; p <= m_; ++p) {
    for (size_t i = inner_off_[p - 1] + 1; i < inner_off_[p]; ++i) {
      if (ys_[i - 1].first > ys_[i].first) return false;
    }
  }
  // by_x_ sorted.
  for (size_t r = 1; r < n_; ++r) {
    if (by_x_[r - 1].x > by_x_[r].x) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// AlphaRangeTree
// ---------------------------------------------------------------------------

uint32_t AlphaRangeTree::alloc() {
  if (!free_.empty()) {
    uint32_t v = free_.back();
    free_.pop_back();
    pool_[v] = Node{};
    return v;
  }
  pool_.push_back(Node{});
  return static_cast<uint32_t>(pool_.size() - 1);
}

void AlphaRangeTree::set_critical(uint32_t v, uint64_t w, uint64_t sw) {
  Node& nd = pool_[v];
  nd.critical = is_critical_weight(w, sw, alpha_);
  if (nd.critical) {
    nd.init_weight = w;
    nd.weight = w;
    asym::count_write();
  }
}

uint64_t AlphaRangeTree::mark_rec(uint32_t v, int par_depth) {
  if (v == kNull) return 1;
  asym::count_read();
  uint32_t left = pool_[v].left, right = pool_[v].right;
  uint64_t wl = 1, wr = 1;
  parallel::par_do_if(par_depth > 0 && left != kNull && right != kNull,
                      [&] { wl = mark_rec(left, par_depth - 1); },
                      [&] { wr = mark_rec(right, par_depth - 1); });
  if (left != kNull) set_critical(left, wl, wr);
  if (right != kNull) set_critical(right, wr, wl);
  return wl + wr;
}

void AlphaRangeTree::mark_criticals(uint32_t v) {
  uint64_t w = mark_rec(v, parallel::fork_depth_hint());
  set_critical(v, w, 0);
}

void AlphaRangeTree::collect_inorder(uint32_t v,
                                     std::vector<SkelEntry>& entries) const {
  if (v == kNull) return;
  std::vector<std::pair<uint32_t, bool>> st{{v, false}};
  while (!st.empty()) {
    auto [u, expanded] = st.back();
    st.pop_back();
    const Node& nd = pool_[u];
    if (expanded) {
      asym::count_read();
      entries.push_back(SkelEntry{nd.pt, nd.dead});
      continue;
    }
    if (nd.right != kNull) st.push_back({nd.right, false});
    st.push_back({u, true});
    if (nd.left != kNull) st.push_back({nd.left, false});
  }
}

uint32_t AlphaRangeTree::build_balanced(std::vector<SkelEntry>& pts,
                                        size_t lo, size_t hi) {
  if (lo >= hi) return kNull;
  // One path for every worker count: balanced_build_ids forks above the
  // sequential cutoff and runs inline below it.
  auto ids = parallel::claim_build_slots(pool_, free_, hi - lo);
  return parallel::balanced_build_ids(pool_, pts, lo, hi, ids.data(),
                                      [](Node& nd, const SkelEntry& e) {
                                        nd.pt = e.pt;
                                        nd.dead = e.dead;
                                      });
}

void AlphaRangeTree::fill_inners(uint32_t c, std::vector<YX>& ylist) {
  // ylist: y-sorted live points of c's subtree (including c's own point if
  // live). Critical nodes materialize it as their inner treap.
  if (pool_[c].critical && !ylist.empty()) {
    std::vector<std::pair<double, uint32_t>> es;
    es.reserve(ylist.size());
    for (const YX& e : ylist) es.emplace_back(e.y, e.id);
    pool_[c].inner = Treap::from_sorted(es);
  } else {
    pool_[c].inner = Treap{};
  }
  if (pool_[c].left == kNull && pool_[c].right == kNull) return;
  // Ordered filter (Appendix A): route each entry down the skeleton to its
  // next critical node (<= O(alpha) secondary steps, Corollary 7.1). An
  // entry that *is* a node on the way stays at that node (it appears in no
  // deeper inner list). Stability preserves the y order in every bucket.
  std::vector<std::pair<uint32_t, std::vector<YX>>> buckets;
  auto bucket_of = [&](uint32_t cc) -> std::vector<YX>& {
    for (auto& [k, list] : buckets) {
      if (k == cc) return list;
    }
    buckets.emplace_back(cc, std::vector<YX>{});
    return buckets.back().second;
  };
  for (const YX& e : ylist) {
    uint32_t u = c;
    while (true) {
      asym::count_read();
      const Node& nd = pool_[u];
      if (u != c && nd.critical) {
        asym::count_write();
        bucket_of(u).push_back(e);
        break;
      }
      if (nd.pt.id == e.id && nd.pt.x == e.x) break;  // the entry is node u
      uint32_t next = (e.x < nd.pt.x || (e.x == nd.pt.x && e.id < nd.pt.id))
                          ? nd.left
                          : nd.right;
      assert(next != kNull);
      u = next;
    }
  }
  // Buckets route into distinct critical subtrees (disjoint node sets), so
  // large lists recurse in parallel, one fork per bucket.
  if (ylist.size() > parallel::kSeqCutoff && buckets.size() > 1) {
    parallel::parallel_for(
        0, buckets.size(),
        [&](size_t b) { fill_inners(buckets[b].first, buckets[b].second); },
        1);
  } else {
    for (auto& [cc, list] : buckets) fill_inners(cc, list);
  }
}

void AlphaRangeTree::rebuild(uint32_t v, uint32_t parent, int side,
                             uint64_t old_init) {
  ++rebuilds_;
  std::vector<SkelEntry> entries;
  collect_inorder(v, entries);
  bool whole = (parent == kNull);
  if (whole) {
    std::vector<SkelEntry> live;
    live.reserve(entries.size());
    for (auto& e : entries) {
      if (!e.dead) live.push_back(e);
    }
    dead_ = 0;
    entries.swap(live);
  }
  // Free old subtree (treaps die with the nodes).
  {
    std::vector<uint32_t> st{v};
    while (!st.empty()) {
      uint32_t u = st.back();
      st.pop_back();
      if (pool_[u].left != kNull) st.push_back(pool_[u].left);
      if (pool_[u].right != kNull) st.push_back(pool_[u].right);
      pool_[u] = Node{};
      free_.push_back(u);
    }
  }
  uint32_t fresh = build_balanced(entries, 0, entries.size());
  if (whole) {
    root_ = fresh;
    root_weight_ = entries.size() + 1;
    root_init_ = root_weight_;
  } else {
    asym::count_write();
    if (side == 0) {
      pool_[parent].left = fresh;
    } else {
      pool_[parent].right = fresh;
    }
  }
  if (fresh == kNull) return;
  mark_criticals(fresh);
  if (!whole && rebuild_root_exception(old_init, alpha_) &&
      pool_[fresh].critical) {
    pool_[fresh].critical = false;
  }
  // Rebuild the inner trees: one write-efficient y-sort of the live points,
  // then the Appendix A ordered filter down the critical hierarchy.
  std::vector<PPoint> live;
  live.reserve(entries.size());
  for (auto& e : entries) {
    if (!e.dead) live.push_back(e.pt);
  }
  auto yorder = we_order_by_y(live);
  std::vector<YX> ylist(live.size());
  asym::count_read(live.size());
  asym::count_write(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    const PPoint& p = live[yorder[i]];
    ylist[i] = YX{p.y, p.id, p.x};
  }
  fill_inners(fresh, ylist);
}

void AlphaRangeTree::bump_and_rebalance(const std::vector<uint32_t>& path) {
  for (uint32_t v : path) {
    if (pool_[v].critical) {
      asym::count_write();
      ++pool_[v].weight;
    }
  }
  asym::count_write();  // virtual-root weight
  if (root_weight_ >= 2 * root_init_ && live_ + dead_ > 4) {
    rebuild(root_, kNull, 0, root_init_);
    return;
  }
  for (size_t i = 0; i < path.size(); ++i) {
    uint32_t v = path[i];
    const Node& nd = pool_[v];
    if (nd.critical && nd.weight >= 2 * nd.init_weight) {
      if (i == 0) {
        rebuild(root_, kNull, 0, root_init_);
      } else {
        uint32_t parent = path[i - 1];
        int side = pool_[parent].right == v ? 1 : 0;
        rebuild(v, parent, side, nd.init_weight);
      }
      return;
    }
  }
}

AlphaRangeTree AlphaRangeTree::build(const std::vector<PPoint>& pts,
                                     uint64_t alpha, asym::Counts* cost) {
  asym::Region region;
  AlphaRangeTree t(alpha);
  if (!pts.empty()) {
    auto order = we_order_by_x(pts);
    std::vector<SkelEntry> entries(pts.size());
    asym::count_read(pts.size());
    asym::count_write(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
      entries[i] = SkelEntry{pts[order[i]], false};
    }
    t.root_ = t.build_balanced(entries, 0, entries.size());
    t.root_weight_ = entries.size() + 1;
    t.root_init_ = t.root_weight_;
    t.live_ = pts.size();
    t.mark_criticals(t.root_);
    std::vector<PPoint> live(pts.begin(), pts.end());
    auto yorder = we_order_by_y(live);
    std::vector<YX> ylist(live.size());
    asym::count_read(live.size());
    asym::count_write(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      const PPoint& p = live[yorder[i]];
      ylist[i] = YX{p.y, p.id, p.x};
    }
    t.fill_inners(t.root_, ylist);
  }
  if (cost) *cost = region.delta();
  return t;
}

void AlphaRangeTree::insert(const PPoint& p) {
  ++live_;
  ++root_weight_;
  std::vector<uint32_t> path;
  uint32_t nu = alloc();
  pool_[nu].pt = p;
  pool_[nu].critical = true;
  pool_[nu].init_weight = 2;
  pool_[nu].weight = 1;  // bump adds the new node's contribution
  asym::count_write();
  if (root_ == kNull) {
    root_ = nu;
    path.push_back(nu);
  } else {
    uint32_t v = root_;
    while (true) {
      path.push_back(v);
      asym::count_read();
      if (xless(p, pool_[v].pt)) {
        if (pool_[v].left == kNull) {
          pool_[v].left = nu;
          break;
        }
        v = pool_[v].left;
      } else {
        if (pool_[v].right == kNull) {
          pool_[v].right = nu;
          break;
        }
        v = pool_[v].right;
      }
    }
    path.push_back(nu);
  }
  // The new point joins the inner tree of every critical node on its path
  // (O(log_alpha n) treaps, O(1) expected writes each).
  for (uint32_t v : path) {
    if (pool_[v].critical) pool_[v].inner.insert(p.y, p.id);
  }
  bump_and_rebalance(path);
}

bool AlphaRangeTree::erase(const PPoint& p) {
  // Locate the node holding exactly p.
  std::vector<uint32_t> path;
  uint32_t v = root_;
  uint32_t target = kNull;
  while (v != kNull) {
    path.push_back(v);
    asym::count_read();
    const Node& nd = pool_[v];
    if (nd.pt.id == p.id && nd.pt.x == p.x && nd.pt.y == p.y) {
      target = v;
      break;
    }
    v = xless(p, nd.pt) ? nd.left : nd.right;
  }
  if (target == kNull || pool_[target].dead) return false;
  asym::count_write();
  pool_[target].dead = true;
  --live_;
  ++dead_;
  for (uint32_t u : path) {
    if (pool_[u].critical) pool_[u].inner.erase(p.y, p.id);
  }
  if (dead_ * 2 >= live_ + dead_ && live_ + dead_ > 8) {
    rebuild(root_, kNull, 0, root_init_);
  }
  return true;
}

template <typename F>
void AlphaRangeTree::cover(uint32_t v, double yb, double yt, F&& emit) const {
  if (v == kNull) return;
  asym::count_read();
  const Node& nd = pool_[v];
  if (nd.critical) {
    nd.inner.report_range(yb, yt, [&](double, uint32_t id) { emit(id); });
    return;
  }
  if (!nd.dead && nd.pt.y >= yb && nd.pt.y <= yt) emit(nd.pt.id);
  cover(nd.left, yb, yt, emit);
  cover(nd.right, yb, yt, emit);
}

template <typename F>
void AlphaRangeTree::query_rec(uint32_t v, double lo, double hi, double xl,
                               double xr, double yb, double yt,
                               F&& emit) const {
  if (v == kNull) return;
  if (hi < xl || lo > xr) return;  // disjoint (conservative value bounds)
  asym::count_read();
  const Node& nd = pool_[v];
  if (lo >= xl && hi <= xr) {
    cover(v, yb, yt, emit);
    return;
  }
  if (!nd.dead && nd.pt.x >= xl && nd.pt.x <= xr && nd.pt.y >= yb &&
      nd.pt.y <= yt) {
    emit(nd.pt.id);
  }
  query_rec(nd.left, lo, nd.pt.x, xl, xr, yb, yt, emit);
  query_rec(nd.right, nd.pt.x, hi, xl, xr, yb, yt, emit);
}

std::vector<uint32_t> AlphaRangeTree::query(double xl, double xr, double yb,
                                            double yt) const {
  std::vector<uint32_t> out;
  query_rec(root_, -kInf, kInf, xl, xr, yb, yt, [&](uint32_t id) {
    asym::count_write();
    out.push_back(id);
  });
  return out;
}

size_t AlphaRangeTree::query_count(double xl, double xr, double yb,
                                   double yt) const {
  size_t c = 0;
  query_rec(root_, -kInf, kInf, xl, xr, yb, yt, [&](uint32_t) { ++c; });
  return c;
}

parallel::BatchResult<uint32_t> AlphaRangeTree::query_batch(
    const std::vector<RangeQuery2D>& qs) const {
  return parallel::batch_two_phase<uint32_t>(
      qs.size(),
      [&](size_t i) {
        const RangeQuery2D& q = qs[i];
        return query_count(q.xl, q.xr, q.yb, q.yt);
      },
      [&](size_t i, uint32_t* out) {
        const RangeQuery2D& q = qs[i];
        query_rec(root_, -kInf, kInf, q.xl, q.xr, q.yb, q.yt,
                  [&](uint32_t id) {
                    asym::count_write();
                    *out++ = id;
                  });
      });
}

std::vector<size_t> AlphaRangeTree::query_count_batch(
    const std::vector<RangeQuery2D>& qs) const {
  return parallel::batch_map<size_t>(qs.size(), [&](size_t i) {
    const RangeQuery2D& q = qs[i];
    return query_count(q.xl, q.xr, q.yb, q.yt);
  });
}

size_t AlphaRangeTree::height() const {
  auto rec = [&](auto&& self, uint32_t v) -> size_t {
    if (v == kNull) return 0;
    return 1 + std::max(self(self, pool_[v].left), self(self, pool_[v].right));
  };
  return rec(rec, root_);
}

size_t AlphaRangeTree::inner_entries() const {
  size_t total = 0;
  auto rec = [&](auto&& self, uint32_t v) -> void {
    if (v == kNull) return;
    total += pool_[v].inner.size();
    self(self, pool_[v].left);
    self(self, pool_[v].right);
  };
  rec(rec, root_);
  return total;
}

bool AlphaRangeTree::validate() const {
  if (root_ == kNull) return live_ == 0;
  bool ok = true;
  size_t live_seen = 0;
  // Returns (weight, live count); checks BST order, critical weights, and
  // inner-tree sizes.
  struct R {
    uint64_t w;
    size_t live;
  };
  auto rec = [&](auto&& self, uint32_t v) -> R {
    if (v == kNull) return {1, 0};
    const Node& nd = pool_[v];
    if (nd.left != kNull && !xless(pool_[nd.left].pt, nd.pt)) ok = false;
    if (nd.right != kNull && xless(pool_[nd.right].pt, nd.pt)) ok = false;
    R l = self(self, nd.left);
    R r = self(self, nd.right);
    uint64_t w = l.w + r.w;
    size_t live = l.live + r.live + (nd.dead ? 0 : 1);
    if (!nd.dead) ++live_seen;
    if (nd.critical) {
      if (nd.weight != w) ok = false;
      if (nd.inner.size() != live) ok = false;
      if (!nd.inner.validate()) ok = false;
    }
    return {w, live};
  };
  R root_r = rec(rec, root_);
  if (root_r.w != root_weight_) ok = false;
  if (live_seen != live_) ok = false;
  return ok;
}

}  // namespace weg::augtree

