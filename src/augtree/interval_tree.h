// Interval trees for 1D stabbing queries (Sections 7.1-7.3).
//
// StaticIntervalTree — the perfectly balanced tree over the 2n sorted
// endpoints (the de Berg et al. variant the paper uses). Two constructions:
//   * build_classic: the textbook recursion that partitions and copies the
//     interval set at every level — Θ(n log n) reads AND writes (baseline).
//   * build_postsorted (Section 7.2, Theorem 7.1): sort the endpoints once
//     with the write-efficient sorter, then assign every interval to its
//     tree node with an O(1) LCA on the implicit perfect tree, radix sort
//     intervals by (node level, endpoint rank), and carve the per-node
//     sorted lists out of the result — O(n) writes after sorting.
// Both produce identical query structure: a stabbing query walks the
// endpoint tree and scans each visited node's interval list sorted by left
// (resp. right) endpoint, O(log n + k) reads and O(k) output writes; the
// counting variant (Appendix A) binary-searches instead and writes nothing.
//
// DynamicIntervalTree — reconstruction-based rebalancing with α-labeling
// (Section 7.3): the outer endpoint tree maintains subtree weights only at
// critical nodes; updates write O(log_α n) weights and O(1) expected inner-
// treap links, and a critical node whose weight doubles is rebuilt
// (Theorem 7.4: O((ω + α) log_α n) amortized work per update, query
// O(ωk + α log_α n)). Deletions mark endpoint nodes dead; dead nodes are
// dropped on subtree rebuilds and a whole-tree rebuild triggers once half
// the endpoints are dead.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/asym/counters.h"
#include "src/augtree/alpha.h"
#include "src/augtree/interval.h"
#include "src/augtree/treap.h"
#include "src/core/status.h"
#include "src/parallel/batch_query.h"

namespace weg::augtree {

class StaticIntervalTree {
 public:
  struct Stats {
    asym::Counts cost;
    size_t height = 0;
  };

  static StaticIntervalTree build_classic(const std::vector<Interval>& ivs,
                                          Stats* stats = nullptr);
  static StaticIntervalTree build_postsorted(const std::vector<Interval>& ivs,
                                             Stats* stats = nullptr);

  // All intervals containing q (ids), in no particular order. O(log n + k)
  // reads, O(k) output writes.
  std::vector<uint32_t> stab(double q) const;
  // Counting variant (Appendix A): no output writes.
  size_t stab_count(double q) const;

  // Batched queries on the shared two-phase engine.
  parallel::BatchResult<uint32_t> stab_batch(
      const std::vector<double>& qs) const;
  std::vector<size_t> stab_count_batch(const std::vector<double>& qs) const;

  size_t size() const { return n_; }
  bool validate(const std::vector<Interval>& ivs) const;

 private:
  friend class IntervalTreeTestPeer;

  // The single templated stab traversal: walks the endpoint tree (forking on
  // exact key matches) and hands the visitor each visited node's CSR run:
  //   vis.left_run(lo, hi)  — by_left_[lo, hi): the prefix with l <= q,
  //   vis.right_run(lo, hi) — by_right_[lo, hi): the prefix with r >= q,
  //   vis.all_run(lo, hi)   — by_left_[lo, hi): q == key, take everything.
  // stab, stab_count, and the batch variants all instantiate this.
  template <typename V>
  void stab_visit(double q, V&& vis) const;

  // Implicit perfect BST over m_ = 2^h - 1 slots; in-order position p
  // (1-based) stores the endpoint of rank p-1 (+inf padding above 2n).
  // LCA of positions i < j: k = bit_width(i ^ j),
  //   lca = ((j >> k) << k) | (1 << (k-1)).
  size_t root_pos() const { return (m_ + 1) / 2; }
  static size_t lca(size_t i, size_t j);
  static int level_of(size_t pos);  // trailing zeros: leaf = 0

  size_t n_ = 0;       // number of intervals
  size_t m_ = 0;       // implicit tree slots (2^h - 1 >= 2n)
  int height_ = 0;     // h
  std::vector<double> keys_;  // keys_[p-1] = endpoint of rank p-1
  // CSR inner lists per node: by left endpoint ascending / right descending.
  std::vector<uint32_t> node_left_off_, node_right_off_;  // size m_+1
  std::vector<std::pair<double, uint32_t>> by_left_;   // (l, id)
  std::vector<std::pair<double, uint32_t>> by_right_;  // (r, id)
};

class DynamicIntervalTree {
 public:
  explicit DynamicIntervalTree(uint64_t alpha = 2) : alpha_(alpha) {}

  void insert(const Interval& iv);
  // Erases by (l, r, id); returns false if absent.
  bool erase(const Interval& iv);
  // Batched deletion: erases every present interval of the batch, deferring
  // the half-dead whole-tree rebuild check to the end — one compaction per
  // batch instead of up to |ivs| piecemeal rebuilds. Returns the number of
  // intervals actually erased; a non-OK status (malformed record, injected
  // fault) is returned before the first write, leaving the tree unchanged.
  Expected<size_t> bulk_erase(const std::vector<Interval>& ivs);

  // Bulk insertion (Section 7.3.5): sorts the batch, merges the 2m endpoint
  // keys into the tree top-down — rebuilding any subtree the batch outgrows
  // in one shot instead of piecemeal — then assigns the intervals. For
  // m = Θ(n) this costs O(m) writes amortized versus O(m log_α n) for
  // one-by-one insertion. Validates the batch up front (finite endpoints,
  // l <= r, no id duplicated within the batch or against a live interval)
  // and checks the "alloc" fault point; any non-OK return happens before
  // the first write, leaving the tree unchanged.
  Status bulk_insert(const std::vector<Interval>& ivs);

  std::vector<uint32_t> stab(double q) const;
  // Counting variant: same API as the static trees; scan-based over the
  // inner treaps (no subtree sizes maintained), still no output writes.
  size_t stab_count(double q) const;

  // Batched queries on the shared two-phase engine.
  parallel::BatchResult<uint32_t> stab_batch(
      const std::vector<double>& qs) const;
  std::vector<size_t> stab_count_batch(const std::vector<double>& qs) const;

  // Every live interval, in deterministic in-order tree order — the record
  // extraction hook the sharded layer's commit-time rebalancing uses.
  std::vector<Interval> live_records() const;

  size_t size() const { return live_intervals_; }
  size_t num_nodes() const { return node_count_; }
  size_t rebuilds() const { return rebuilds_; }
  // Longest root-leaf path (bench hook for Corollary 7.2).
  size_t height() const;
  size_t critical_on_path_max() const;  // max critical nodes on any path
  bool validate() const;

 private:
  static constexpr uint32_t kNull = UINT32_MAX;

  struct Node {
    double key = 0;
    uint32_t left = kNull;
    uint32_t right = kNull;
    bool critical = false;
    bool dead = false;  // endpoint of an erased interval
    uint64_t init_weight = 0;  // critical only
    uint64_t weight = 0;       // critical only; root always maintains it
    Treap by_l;  // intervals stored here, keyed by left endpoint
    Treap by_r;  // keyed by right endpoint
  };

  uint32_t alloc();
  void free_subtree(uint32_t v);
  // Erases one interval without the trailing dead-fraction rebuild check
  // (erase and bulk_erase share it; only the compaction cadence differs).
  bool erase_one(const Interval& iv);
  // Whole-tree rebuild (dropping dead keys) once half the endpoints are dead.
  void maybe_compact();
  // BST-inserts an endpoint key; appends the path root..new leaf.
  uint32_t insert_key(double key, std::vector<uint32_t>& path);
  // Storage node for [l, r]: highest node with l <= key <= r.
  uint32_t find_storage(double l, double r) const;
  void bump_weights_and_rebalance(const std::vector<uint32_t>& path);
  // Rebuilds the subtree at v; parent == kNull rebuilds the whole tree
  // (dropping dead keys); side selects the parent's child slot.
  void rebuild(uint32_t v, uint32_t parent, int side, uint64_t old_init);
  // Builds via the shared id-slice path (src/parallel/par_build.h): forks
  // above the sequential cutoff, inline below it.
  uint32_t build_balanced(std::vector<std::pair<double, bool>>& keys,
                          size_t lo, size_t hi);
  // Post-order weight computation marking v's descendants critical per the
  // α rule; returns the subtree weight. Forks on two-child nodes while
  // par_depth > 0 (children touch disjoint nodes). set_critical applies the
  // rule to one node given its and its sibling's weight.
  uint64_t mark_rec(uint32_t v, int par_depth);
  void set_critical(uint32_t v, uint64_t w, uint64_t sibling_w);
  void mark_criticals(uint32_t v);
  void collect(uint32_t v, std::vector<std::pair<double, bool>>& keys,
               std::vector<Interval>& ivs) const;

  // The single templated stab traversal: descends the skeleton emitting the
  // id of every stored interval containing q. stab, stab_count, and the
  // batch variants all instantiate it.
  template <typename F>
  void stab_visit(double q, F&& emit) const;

  uint64_t alpha_;
  std::unordered_map<uint32_t, Interval> ivs_;  // id -> interval (for rebuilds)
  std::vector<Node> pool_;
  std::vector<uint32_t> free_;
  uint32_t root_ = kNull;
  uint64_t node_count_ = 0;   // live skeleton nodes (incl. dead-marked)
  uint64_t dead_count_ = 0;
  uint64_t root_weight_ = 1;  // virtual critical root weight (= nodes + 1)
  uint64_t root_init_ = 1;
  size_t live_intervals_ = 0;
  size_t rebuilds_ = 0;
};

}  // namespace weg::augtree
