// α-labeling (Section 7.3.1): a node is *critical* iff for some integer
// i >= 0 its subtree weight w (nodes + 1) satisfies
//    (1) 2α^i <= w <= 4α^i - 2, or
//    (2) w = 2α^i - 1 and its sibling's weight is exactly 2α^i,
// plus the tree root, which is always a virtual critical node. Only critical
// nodes maintain balance information, so an update writes O(log_α n) weights
// instead of O(log n), at the cost of O(α log_α n) reads per root-leaf path
// (Corollaries 7.1/7.2).
#pragma once

#include <cstddef>
#include <cstdint>

namespace weg::augtree {

// True iff a node of weight w whose sibling has weight sw is critical for
// parameter alpha (>= 2). Weights use the paper's convention: subtree node
// count + 1, so a leaf has weight 2.
inline bool is_critical_weight(uint64_t w, uint64_t sibling_w,
                               uint64_t alpha) {
  // Find the band containing w: powers grow geometrically, O(log_α w) steps.
  uint64_t pw = 1;  // alpha^i
  while (true) {
    uint64_t lo = 2 * pw;          // 2 α^i
    uint64_t hi = 4 * pw - 2;      // 4 α^i - 2
    if (w < lo - 1) return false;  // below this band and above the previous
    if (w == lo - 1) return sibling_w == lo;  // rule (2)
    if (w <= hi) return true;                 // rule (1)
    if (pw > w) return false;
    pw *= alpha;
  }
}

// The §7.3.2 exception: after reconstructing a critical node of initial
// weight s into a subtree of weight 2s, the new root must stay unmarked when
// s <= 4α^i - 2 and 2α^(i+1) - 1 <= 2s for some i (marking it would violate
// the Lemma 7.2 weight ratio with its critical parent).
inline bool rebuild_root_exception(uint64_t s, uint64_t alpha) {
  uint64_t pw = 1;
  while (2 * pw - 1 <= 2 * s) {
    if (s <= 4 * pw - 2 && 2 * pw * alpha - 1 <= 2 * s) return true;
    pw *= alpha;
  }
  return false;
}

}  // namespace weg::augtree
