// Tournament tree (Appendix A): a perfect segment tree over the x-sorted
// point list supporting, during priority-search-tree construction,
//   * range-argmax of priority among valid elements,
//   * k-th valid element of a range (for medians),
//   * deletions with *scoped* ancestor updates.
//
// The scoping is the write-saving trick of Appendix A: once construction
// recursion is inside a range (x, y), all future queries are entirely inside
// or entirely disjoint from it, so a deletion only rewrites the ancestors
// whose segment lies inside (x, y). Summed over the construction this is
// O(n) writes instead of O(n log n).
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/asym/counters.h"

namespace weg::augtree {

class TournamentTree {
 public:
  // ys[i] is the priority of element i; all elements start valid.
  explicit TournamentTree(const std::vector<double>& ys) {
    n_ = ys.size();
    m_ = 1;
    while (m_ < std::max<size_t>(n_, 1)) m_ <<= 1;
    best_.assign(2 * m_, kNegInf);
    best_idx_.assign(2 * m_, kNone);
    cnt_.assign(2 * m_, 0);
    for (size_t i = 0; i < n_; ++i) {
      best_[m_ + i] = ys[i];
      best_idx_[m_ + i] = static_cast<uint32_t>(i);
      cnt_[m_ + i] = 1;
    }
    for (size_t v = m_ - 1; v >= 1; --v) pull(v);
    asym::count_read(n_);
    asym::count_write(2 * m_);  // building the tree
  }

  size_t size() const { return n_; }

  // Number of valid elements in [lo, hi).
  size_t count_valid(size_t lo, size_t hi) const {
    return count_rec(1, 0, m_, lo, hi);
  }

  // Index of the maximum-priority valid element in [lo, hi); kNone if none.
  uint32_t range_argmax(size_t lo, size_t hi) const {
    double best = kNegInf;
    uint32_t idx = kNone;
    argmax_rec(1, 0, m_, lo, hi, best, idx);
    return idx;
  }

  // Index of the k-th (0-based) valid element in [lo, hi); kNone if k is out
  // of range.
  uint32_t kth_valid(size_t lo, size_t hi, size_t k) const {
    if (count_valid(lo, hi) <= k) return kNone;
    return kth_rec(1, 0, m_, lo, hi, k);
  }

  // Invalidates element i. Ancestor summaries are recomputed only while the
  // ancestor's segment is contained in [scope_lo, scope_hi) (Appendix A).
  void erase_scoped(size_t i, size_t scope_lo, size_t scope_hi) {
    size_t v = m_ + i;
    asym::count_write();
    best_[v] = kNegInf;
    best_idx_[v] = kNone;
    cnt_[v] = 0;
    size_t node_lo = i, node_hi = i + 1;
    v >>= 1;
    while (v >= 1) {
      // Parent segment: double the width, aligned.
      size_t width = node_hi - node_lo;
      node_lo = node_lo & ~(2 * width - 1);
      node_hi = node_lo + 2 * width;
      if (node_lo < scope_lo || node_hi > scope_hi) break;
      asym::count_read(2);
      asym::count_write();
      pull(v);
      v >>= 1;
    }
  }

  // Unscoped deletion (O(log n) writes), for callers without a scope.
  void erase(size_t i) { erase_scoped(i, 0, m_); }

  static constexpr uint32_t kNone = UINT32_MAX;

 private:
  static constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  void pull(size_t v) {
    size_t l = 2 * v, r = 2 * v + 1;
    cnt_[v] = cnt_[l] + cnt_[r];
    if (best_[l] >= best_[r]) {
      best_[v] = best_[l];
      best_idx_[v] = best_idx_[l];
    } else {
      best_[v] = best_[r];
      best_idx_[v] = best_idx_[r];
    }
  }

  size_t count_rec(size_t v, size_t node_lo, size_t node_hi, size_t lo,
                   size_t hi) const {
    if (hi <= node_lo || node_hi <= lo) return 0;
    asym::count_read();
    if (lo <= node_lo && node_hi <= hi) return cnt_[v];
    size_t mid = (node_lo + node_hi) / 2;
    return count_rec(2 * v, node_lo, mid, lo, hi) +
           count_rec(2 * v + 1, mid, node_hi, lo, hi);
  }

  void argmax_rec(size_t v, size_t node_lo, size_t node_hi, size_t lo,
                  size_t hi, double& best, uint32_t& idx) const {
    if (hi <= node_lo || node_hi <= lo) return;
    asym::count_read();
    if (lo <= node_lo && node_hi <= hi) {
      if (best_idx_[v] != kNone && best_[v] > best) {
        best = best_[v];
        idx = best_idx_[v];
      }
      return;
    }
    size_t mid = (node_lo + node_hi) / 2;
    argmax_rec(2 * v, node_lo, mid, lo, hi, best, idx);
    argmax_rec(2 * v + 1, mid, node_hi, lo, hi, best, idx);
  }

  uint32_t kth_rec(size_t v, size_t node_lo, size_t node_hi, size_t lo,
                   size_t hi, size_t k) const {
    asym::count_read();
    if (node_hi - node_lo == 1) return static_cast<uint32_t>(node_lo);
    size_t mid = (node_lo + node_hi) / 2;
    // Valid count of the left child restricted to [lo, hi).
    size_t left_count;
    if (lo <= node_lo && mid <= hi) {
      left_count = cnt_[2 * v];  // fully covered
    } else {
      left_count = count_rec(2 * v, node_lo, mid, lo, hi);
    }
    if (k < left_count) return kth_rec(2 * v, node_lo, mid, lo, hi, k);
    return kth_rec(2 * v + 1, mid, node_hi, lo, hi, k - left_count);
  }

  size_t n_ = 0, m_ = 1;
  std::vector<double> best_;
  std::vector<uint32_t> best_idx_;
  std::vector<size_t> cnt_;
};

}  // namespace weg::augtree
