// 2D range trees (Sections 7.1, 7.3.4).
//
// StaticRangeTree — the classic baseline: a perfect outer BST over the
// x-sorted points where *every* node carries a y-sorted inner array of all
// points in its subtree. Built top-down from one y-sort by stable
// partitioning (O(n log n) reads and writes — already optimal because the
// structure itself occupies Θ(n log n) space). Queries decompose [xl, xr]
// into O(log n) canonical subtrees and binary-search / scan each inner
// array: O(log^2 n + k) reads, O(k) output writes.
//
// AlphaRangeTree — the paper's write-efficient version: inner trees (treaps)
// are kept only at *critical* nodes (α-labeling), so
//   * construction writes O((α + ω) n log_α n) instead of O(ω n log n),
//   * an update touches O(log_α n) inner treaps (O(1) expected writes each),
//   * a query may visit up to O(α log_α n) inner trees, each O(log n):
//     O(ωk + α log_α n log n) work (Table 1, last row).
// Balancing is reconstruction-based via the same weight-doubling rule as the
// other α structures; critical-node inner lists are derived from their
// critical parent's y-sorted list by an ordered filter (Appendix A), giving
// the O((α + ω) s log_α s) rebuild bound.
#pragma once

#include <cstdint>
#include <vector>

#include "src/asym/counters.h"
#include "src/augtree/alpha.h"
#include "src/augtree/priority_tree.h"  // PPoint
#include "src/augtree/treap.h"
#include "src/parallel/batch_query.h"

namespace weg::augtree {

// A 2D range query rectangle: xl <= x <= xr, yb <= y <= yt (batch input).
struct RangeQuery2D {
  double xl = 0, xr = 0, yb = 0, yt = 0;
};

class StaticRangeTree {
 public:
  struct Stats {
    asym::Counts cost;
    size_t inner_entries = 0;  // total augmentation size (Θ(n log n))
  };

  static StaticRangeTree build(const std::vector<PPoint>& pts,
                               Stats* stats = nullptr);

  // Points with xl <= x <= xr and yb <= y <= yt.
  std::vector<uint32_t> query(double xl, double xr, double yb,
                              double yt) const;
  // Counting variant: binary searches only, no output writes.
  size_t query_count(double xl, double xr, double yb, double yt) const;

  // Batched queries on the shared two-phase engine (count pass, scan,
  // report pass into pre-claimed slices of one flat id array).
  parallel::BatchResult<uint32_t> query_batch(
      const std::vector<RangeQuery2D>& qs) const;
  std::vector<size_t> query_count_batch(
      const std::vector<RangeQuery2D>& qs) const;

  size_t size() const { return n_; }
  bool validate() const;

 private:
  // Implicit perfect BST over m_ slots (in-order, 1-based), padded with +inf
  // keys; node p's inner array is ys_[inner_off_[p-1] .. inner_off_[p]).
  size_t root_pos() const { return (m_ + 1) / 2; }

  size_t n_ = 0, m_ = 0;
  int height_ = 0;
  std::vector<PPoint> by_x_;                      // rank -> point
  std::vector<uint32_t> inner_off_;               // size m_+1
  std::vector<std::pair<double, uint32_t>> ys_;   // (y, id) per node, sorted

  // The single templated query traversal: canonical decomposition of
  // [xl, xr] into O(log n) covered subtrees plus O(log n) individual rank
  // candidates. The visitor owns the y dimension:
  //   vis.covered(lo, hi) — ys_[lo, hi) is one covered node's y-sorted run,
  //   vis.point(rank)     — candidate point by x-rank (y untested).
  // query, query_count, and the batch variants all instantiate this.
  template <typename V>
  void visit_query(double xl, double xr, V&& vis) const;
};

class AlphaRangeTree {
 public:
  explicit AlphaRangeTree(uint64_t alpha = 2) : alpha_(alpha) {}

  // Bulk construction (used for the Table 1 construction row): repeated
  // insertion is also supported but slower.
  static AlphaRangeTree build(const std::vector<PPoint>& pts, uint64_t alpha,
                              asym::Counts* cost = nullptr);

  void insert(const PPoint& p);
  bool erase(const PPoint& p);

  std::vector<uint32_t> query(double xl, double xr, double yb,
                              double yt) const;
  size_t query_count(double xl, double xr, double yb, double yt) const;

  // Batched queries on the shared two-phase engine.
  parallel::BatchResult<uint32_t> query_batch(
      const std::vector<RangeQuery2D>& qs) const;
  std::vector<size_t> query_count_batch(
      const std::vector<RangeQuery2D>& qs) const;

  size_t size() const { return live_; }
  size_t rebuilds() const { return rebuilds_; }
  size_t height() const;
  size_t inner_entries() const;  // total augmentation size (n log_α n)
  bool validate() const;

 private:
  static constexpr uint32_t kNull = UINT32_MAX;

  struct Node {
    PPoint pt;
    uint32_t left = kNull;
    uint32_t right = kNull;
    bool critical = false;
    bool dead = false;
    uint64_t init_weight = 0;
    uint64_t weight = 0;
    Treap inner;  // (y, id) of all live points in this subtree (critical only)
  };

  static bool xless(const PPoint& a, const PPoint& b) {
    return a.x < b.x || (a.x == b.x && a.id < b.id);
  }

  // Skeleton entry used during rebuilds (dead keys are kept by subtree
  // rebuilds and dropped by whole-tree rebuilds).
  struct SkelEntry {
    PPoint pt;
    bool dead;
  };
  // y-sorted routing entry used while deriving inner lists (Appendix A
  // ordered filter); carries x so routing needs no side lookups.
  struct YX {
    double y;
    uint32_t id;
    double x;
  };

  uint32_t alloc();
  void bump_and_rebalance(const std::vector<uint32_t>& path);
  void rebuild(uint32_t v, uint32_t parent, int side, uint64_t old_init);
  // Builds via the shared id-slice path (src/parallel/par_build.h): forks
  // above the sequential cutoff, inline below it.
  uint32_t build_balanced(std::vector<SkelEntry>& pts, size_t lo, size_t hi);
  uint64_t mark_rec(uint32_t v, int par_depth);
  void set_critical(uint32_t v, uint64_t w, uint64_t sw);
  void mark_criticals(uint32_t v);
  // Builds inner treaps for c and its critical descendants from c's y-sorted
  // live-point list by ordered filtering (Appendix A).
  void fill_inners(uint32_t c, std::vector<YX>& ylist);
  void collect_inorder(uint32_t v, std::vector<SkelEntry>& entries) const;

  template <typename F>
  void cover(uint32_t v, double yb, double yt, F&& emit) const;
  // The single templated query traversal; query, query_count, and the batch
  // variants all instantiate it with different emit sinks.
  template <typename F>
  void query_rec(uint32_t v, double lo, double hi, double xl, double xr,
                 double yb, double yt, F&& emit) const;

  uint64_t alpha_;
  std::vector<Node> pool_;
  std::vector<uint32_t> free_;
  uint32_t root_ = kNull;
  uint64_t root_weight_ = 1;
  uint64_t root_init_ = 1;
  size_t live_ = 0;
  size_t dead_ = 0;
  size_t rebuilds_ = 0;
};

}  // namespace weg::augtree
