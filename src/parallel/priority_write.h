// Priority-writes: the Asymmetric NP model (Section 2.1) resolves concurrent
// writes to the same location by taking the minimum value. We implement this
// with a CAS loop on std::atomic, which has identical semantics: among
// concurrent write_min calls, the minimum value survives.
#pragma once

#include <atomic>

namespace weg::parallel {

// Atomically sets *a = min(*a, v). Returns true iff this call strictly
// lowered the stored value.
template <typename T>
bool write_min(std::atomic<T>* a, T v) {
  T cur = a->load(std::memory_order_relaxed);
  while (v < cur) {
    if (a->compare_exchange_weak(cur, v, std::memory_order_acq_rel,
                                 std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

// Atomically sets *a = max(*a, v). Returns true iff this call strictly
// raised the stored value.
template <typename T>
bool write_max(std::atomic<T>* a, T v) {
  T cur = a->load(std::memory_order_relaxed);
  while (cur < v) {
    if (a->compare_exchange_weak(cur, v, std::memory_order_acq_rel,
                                 std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

// Priority-write with a custom comparator: keeps the value that compares
// smallest under `less`.
template <typename T, typename Less>
bool write_min(std::atomic<T>* a, T v, Less less) {
  T cur = a->load(std::memory_order_relaxed);
  while (less(v, cur)) {
    if (a->compare_exchange_weak(cur, v, std::memory_order_acq_rel,
                                 std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace weg::parallel
