// Granularity-controlled parallel loops on top of the binary fork-join
// scheduler. parallel_for recursively halves the index range (binary forking,
// matching the model in Section 2.1) until ranges are at most `grain` long,
// then runs them sequentially.
#pragma once

#include <bit>
#include <cstddef>

#include "src/parallel/scheduler.h"

namespace weg::parallel {

namespace detail {

template <typename F>
void parallel_for_rec(size_t lo, size_t hi, const F& f, size_t grain) {
  if (hi - lo <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  par_do([&] { parallel_for_rec(lo, mid, f, grain); },
         [&] { parallel_for_rec(mid, hi, f, grain); });
}

}  // namespace detail

// Sequential cutoff for recursive tree/divide-and-conquer builds: below this
// many elements a subproblem is cheaper to finish inline than to fork. Sized
// for the lock-free deque's fork cost (~tens of ns); roughly the point where
// fork overhead drops below ~0.1% of the subproblem's work.
inline constexpr size_t kSeqCutoff = 2048;

// Fork-depth budget for recursions whose subproblem sizes are unknown (e.g.
// marking passes over pointer-based trees): forking the top ~log2(8p) levels
// yields ~8p steallable tasks, enough slack for work stealing to balance
// them without flooding the deques on skewed trees.
inline int fork_depth_hint() {
  unsigned p = static_cast<unsigned>(num_workers());
  return p > 1 ? std::bit_width(8 * p) : 0;
}

// Applies f(i) for i in [start, end). grain == 0 picks an automatic grain of
// max(1, (end-start) / (8p)) capped at 1024. With the lock-free Chase-Lev
// deques a fork costs tens of nanoseconds, so the cap is half the old
// mutex-era value: more steallable tasks per loop, still <1% scheduling
// overhead for fine-grained bodies.
template <typename F>
void parallel_for(size_t start, size_t end, const F& f, size_t grain = 0) {
  if (start >= end) return;
  size_t n = end - start;
  if (grain == 0) {
    size_t p = static_cast<size_t>(num_workers());
    grain = n / (8 * p) + 1;
    if (grain > 1024) grain = 1024;
  }
  if (n <= grain || num_workers() == 1) {
    for (size_t i = start; i < end; ++i) f(i);
    return;
  }
  detail::parallel_for_rec(start, end, f, grain);
}

// Conditional fork: runs the two branches as a fork-join pair when
// `parallel` holds (typically `subproblem size > kSeqCutoff`), inline
// otherwise. Keeps the cutoff stanza in one place across the recursive tree
// builds.
template <typename L, typename R>
inline void par_do_if(bool parallel, L&& l, R&& r) {
  if (parallel) {
    par_do(std::forward<L>(l), std::forward<R>(r));
  } else {
    l();
    r();
  }
}

// Fork-join over a fixed small number of thunks (used where the paper forks a
// constant number of children).
template <typename F0, typename F1, typename F2>
void par_do3(F0&& f0, F1&& f1, F2&& f2) {
  par_do([&] { f0(); }, [&] { par_do([&] { f1(); }, [&] { f2(); }); });
}

}  // namespace weg::parallel
