// Granularity-controlled parallel loops on top of the binary fork-join
// scheduler. parallel_for recursively halves the index range (binary forking,
// matching the model in Section 2.1) until ranges are at most `grain` long,
// then runs them sequentially.
#pragma once

#include <cstddef>

#include "src/parallel/scheduler.h"

namespace weg::parallel {

namespace detail {

template <typename F>
void parallel_for_rec(size_t lo, size_t hi, const F& f, size_t grain) {
  if (hi - lo <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  par_do([&] { parallel_for_rec(lo, mid, f, grain); },
         [&] { parallel_for_rec(mid, hi, f, grain); });
}

}  // namespace detail

// Applies f(i) for i in [start, end). grain == 0 picks an automatic grain of
// max(1, (end-start) / (8p)) capped at 2048, which keeps scheduling overhead
// below a few percent for fine-grained bodies.
template <typename F>
void parallel_for(size_t start, size_t end, const F& f, size_t grain = 0) {
  if (start >= end) return;
  size_t n = end - start;
  if (grain == 0) {
    size_t p = static_cast<size_t>(num_workers());
    grain = n / (8 * p) + 1;
    if (grain > 2048) grain = 2048;
  }
  if (n <= grain || num_workers() == 1) {
    for (size_t i = start; i < end; ++i) f(i);
    return;
  }
  detail::parallel_for_rec(start, end, f, grain);
}

// Fork-join over a fixed small number of thunks (used where the paper forks a
// constant number of children).
template <typename F0, typename F1, typename F2>
void par_do3(F0&& f0, F1&& f1, F2&& f2) {
  par_do([&] { f0(); }, [&] { par_do([&] { f1(); }, [&] { f2(); }); });
}

}  // namespace weg::parallel
