#include "src/parallel/fault.h"

#if WEG_FAULT_INJECTION

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace weg::fault {

namespace {

std::atomic<uint64_t> g_trips{0};

// splitmix64 finalizer (same mixer the shard router uses): the seeded-subset
// selection rule's hash.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

namespace detail {

std::atomic<const Spec*> g_spec{nullptr};

namespace {
// Retired specs stay reachable here for the life of the process (the vector
// is deliberately never destroyed) so a concurrent check that loaded the old
// spec pointer never reads freed memory — and LeakSanitizer sees every spec
// as reachable. Arming is a test-time operation, bounded per process.
std::mutex g_retire_mu;
std::vector<std::unique_ptr<const Spec>>* const g_retired =
    new std::vector<std::unique_ptr<const Spec>>;

// Shared by env parsing and programmatic arm().
void publish(const char* point, uint64_t seed, uint64_t nth) {
  auto spec = std::make_unique<const Spec>(Spec{point, seed, nth});
  const Spec* raw = spec.get();
  {
    std::lock_guard<std::mutex> lock(g_retire_mu);
    g_retired->push_back(std::move(spec));
  }
  g_spec.store(raw, std::memory_order_release);
  g_trips.store(0, std::memory_order_relaxed);
}
}  // namespace

bool ensure_env_parsed() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* env = std::getenv("WEG_FAULT");
    if (env == nullptr || *env == '\0') return;
    // <point>:<seed>:<nth> — unparsable specs are reported, not guessed at.
    std::string s(env);
    size_t c1 = s.find(':');
    size_t c2 = c1 == std::string::npos ? std::string::npos
                                        : s.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos || c1 == 0) {
      std::fprintf(stderr,
                   "weg::fault: ignoring malformed WEG_FAULT=%s "
                   "(want <point>:<seed>:<nth>)\n",
                   env);
      return;
    }
    char* end = nullptr;
    uint64_t seed = std::strtoull(s.c_str() + c1 + 1, &end, 10);
    uint64_t nth = std::strtoull(s.c_str() + c2 + 1, &end, 10);
    publish(s.substr(0, c1).c_str(), seed, nth);
  });
  return true;
}

bool should_fail_slow(const Spec* spec, const char* point, uint64_t index) {
  if (spec->point != point) return false;
  bool hit;
  if (spec->seed == 0) {
    hit = index == spec->nth;
  } else {
    // Seeded subset at rate 1/(nth+1): reproducible per (seed, index).
    hit = mix64(spec->seed ^ index) % (spec->nth + 1) == 0;
  }
  if (hit) g_trips.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

}  // namespace detail

void arm(const char* point, uint64_t seed, uint64_t nth) {
  detail::ensure_env_parsed();
  detail::publish(point, seed, nth);
}

void disarm() {
  detail::ensure_env_parsed();
  detail::g_spec.store(nullptr, std::memory_order_release);
}

uint64_t trips() { return g_trips.load(std::memory_order_relaxed); }

}  // namespace weg::fault

#endif  // WEG_FAULT_INJECTION
