// Fork-join work-stealing scheduler implementing the nested-parallel model
// from the paper (Section 2.1): a computation forks child tasks that run in
// parallel and joins them, forming a series-parallel DAG. A work-stealing
// scheduler executes a computation with work W and depth D in W/p + O(D)
// expected time, which is the execution model the Asymmetric NP model
// inherits.
//
// Design: each worker owns a deque of jobs. par_do pushes the right branch to
// the local deque and runs the left branch inline; on return it reclaims the
// right branch if nobody stole it, otherwise it helps (steals other jobs)
// until the stolen branch completes. Deques are mutex-protected — contention
// is negligible because forks are coarsened by the granularity control in
// parallel_for.h.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace weg::parallel {

// A unit of work. Jobs live on the stack frame of the forking task, which
// remains alive until the job completes (the forker joins before returning).
class Job {
 public:
  virtual void execute() = 0;

  // Set (with release ordering) by the worker that finishes executing us.
  std::atomic<bool> done{false};

 protected:
  ~Job() = default;
};

namespace detail {

template <typename F>
class FuncJob final : public Job {
 public:
  explicit FuncJob(F& f) : f_(f) {}
  void execute() override {
    f_();
    done.store(true, std::memory_order_release);
  }

 private:
  F& f_;
};

}  // namespace detail

// Singleton scheduler. Worker count defaults to std::thread::hardware
// concurrency and can be overridden with the WEG_NUM_THREADS environment
// variable (1 disables parallelism entirely; useful for deterministic
// debugging).
class Scheduler {
 public:
  static Scheduler& instance();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_workers() const { return static_cast<int>(num_workers_); }

  // Id of the calling thread: 0 for the main thread, 1..p-1 for workers.
  // Threads not owned by the scheduler (e.g. user threads other than the
  // one that first touched the scheduler) map to 0.
  static int worker_id();

  // Fork-join of exactly two branches (binary forking, as in the model).
  template <typename L, typename R>
  void par_do(L&& left, R&& right) {
    if (num_workers_ == 1) {
      left();
      right();
      return;
    }
    detail::FuncJob<R> rjob(right);
    push_local(&rjob);
    left();
    if (!pop_if_present(&rjob)) {
      wait_for(&rjob);  // stolen: help until it completes
    } else {
      rjob.execute();
    }
  }

  ~Scheduler();

 private:
  Scheduler();

  void push_local(Job* job);
  // Removes `job` from the bottom of the local deque if it is still there.
  bool pop_if_present(Job* job);
  Job* try_steal(uint64_t& rng);
  void wait_for(Job* job);
  void worker_loop(int id);
  void wake_one();

  struct alignas(64) WorkerDeque {
    std::mutex mu;
    std::deque<Job*> jobs;
  };

  size_t num_workers_;
  std::vector<WorkerDeque> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> num_pending_{0};  // jobs pushed but not yet executed
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
};

// Convenience free function: fork-join two branches.
template <typename L, typename R>
inline void par_do(L&& left, R&& right) {
  Scheduler::instance().par_do(std::forward<L>(left), std::forward<R>(right));
}

inline int num_workers() { return Scheduler::instance().num_workers(); }
inline int worker_id() { return Scheduler::worker_id(); }

}  // namespace weg::parallel
