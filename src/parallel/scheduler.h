// Fork-join work-stealing scheduler implementing the nested-parallel model
// from the paper (Section 2.1): a computation forks child tasks that run in
// parallel and joins them, forming a series-parallel DAG. A work-stealing
// scheduler executes a computation with work W and depth D in W/p + O(D)
// expected time, which is the execution model the Asymmetric NP model
// inherits.
//
// Design: each worker owns a lock-free Chase-Lev deque (Chase & Lev,
// SPAA'05) in the C11 formulation of Lê et al. (PPoPP'13), with the
// standalone fences replaced by equivalent orderings on the index variables
// themselves so the protocol is fully visible to ThreadSanitizer. par_do
// pushes the right branch onto the owner's deque and runs the left branch
// inline; on return it reclaims the right branch with a single lock-free pop
// if nobody stole it, otherwise it helps (steals other jobs) until the
// stolen branch completes. Idle workers back off exponentially (spin ->
// yield -> microsleep) instead of blocking on a condition variable, so a
// steal after a quiet period costs no syscall round-trip.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>
#include <vector>

namespace weg::parallel {

// A unit of work. Jobs live on the stack frame of the forking task, which
// remains alive until the job completes (the forker joins before returning).
class Job {
 public:
  virtual void execute() = 0;

  // Set (with release ordering) by the worker that finishes executing us.
  std::atomic<bool> done{false};

 protected:
  ~Job() = default;
};

namespace detail {

template <typename F>
class FuncJob final : public Job {
 public:
  explicit FuncJob(F& f) : f_(f) {}
  void execute() override {
    f_();
    done.store(true, std::memory_order_release);
  }

 private:
  F& f_;
};

// Lock-free Chase-Lev work-stealing deque with a fixed-capacity ring buffer.
// The owner pushes and pops at the bottom; thieves steal from the top, so
// thieves grab the oldest (largest) subcomputations. `top_` is monotonically
// increasing, which rules out ABA on the steal CAS: a slot can only be
// overwritten after `top_` has advanced past it (push refuses to wrap onto
// unconsumed entries), so a successful CAS at top value t proves the slot
// read was valid for t throughout.
//
// Memory ordering (TSan-friendly variant of Lê et al.):
//  * push publishes the slot via the release store of bottom_; steal's
//    seq_cst load of bottom_ synchronizes with it, so the thief sees the
//    job's construction.
//  * pop's seq_cst exchange of bottom_ and seq_cst load of top_ pair with
//    steal's seq_cst loads: in any seq_cst total order, either the thief
//    observes the decremented bottom (and gives up) or the owner observes
//    the advanced top (and takes the one-element race through the CAS).
class ChaseLevDeque {
 public:
  // Jobs pushed per deque are bounded by the depth of the inline fork spine,
  // so 8192 covers any sane recursion; par_do degrades to serial execution
  // (correct, just unstolen) if the ring ever fills.
  static constexpr size_t kCapacity = 8192;

  // Owner only. Returns false when the ring is full.
  bool push(Job* job) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<int64_t>(kCapacity)) return false;
    buffer_[static_cast<size_t>(b) & kMask].store(job,
                                                  std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  // Owner only. Returns the most recently pushed job, or nullptr if the
  // deque is empty or a thief won the race for the last element.
  Job* pop() {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.exchange(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Job* job = buffer_[static_cast<size_t>(b) & kMask].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race thieves by advancing top_ ourselves.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        job = nullptr;  // a thief got it
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return job;
  }

  // Any thread. Returns nullptr when empty or when another thief (or the
  // owner's last-element pop) won the race.
  Job* steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Job* job =
        buffer_[static_cast<size_t>(t) & kMask].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return job;
  }

  // Cheap emptiness probe for victim scans (may be stale).
  bool maybe_empty() const {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kMask = kCapacity - 1;
  static_assert((kCapacity & kMask) == 0, "capacity must be a power of two");

  alignas(64) std::atomic<int64_t> top_{0};
  alignas(64) std::atomic<int64_t> bottom_{0};
  alignas(64) std::vector<std::atomic<Job*>> buffer_ =
      std::vector<std::atomic<Job*>>(kCapacity);
};

}  // namespace detail

// Singleton scheduler. Worker count defaults to std::thread::hardware
// concurrency and can be overridden with the WEG_NUM_THREADS environment
// variable (1 disables parallelism entirely; useful for deterministic
// debugging).
class Scheduler {
 public:
  static Scheduler& instance();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_workers() const { return static_cast<int>(num_workers_); }

  // Id of the calling thread: 0 for the main thread, 1..p-1 for workers.
  // Threads not owned by the scheduler (e.g. user threads other than the
  // one that first touched the scheduler) map to 0.
  static int worker_id();

  // Join watchdog: when a join (wait_for) has been spinning for more than
  // this many milliseconds, the scheduler records a trip and prints one
  // diagnostic per wait to stderr — surfacing a stalled worker instead of
  // hanging silently — then keeps helping/waiting (a stolen job cannot be
  // cancelled safely). 0 disables the deadline. Initialized from the
  // WEG_WATCHDOG_MS environment variable (default 0).
  void set_watchdog_ms(uint64_t ms) {
    watchdog_ms_.store(ms, std::memory_order_relaxed);
  }
  uint64_t watchdog_ms() const {
    return watchdog_ms_.load(std::memory_order_relaxed);
  }
  // Number of joins whose deadline expired since process start.
  uint64_t watchdog_trips() const {
    return watchdog_trips_.load(std::memory_order_relaxed);
  }

  // Fork-join of exactly two branches (binary forking, as in the model).
  // Safe to call concurrently from multiple root threads: each root thread
  // lazily claims a private deque slot. Slots are never recycled, so after
  // kMaxExternal distinct external threads over the process lifetime, par_do
  // degrades to serial execution for later threads.
  template <typename L, typename R>
  void par_do(L&& left, R&& right) {
    if (num_workers_ == 1) {
      left();
      right();
      return;
    }
    detail::ChaseLevDeque* deque = my_deque();
    detail::FuncJob<R> rjob(right);
    if (deque == nullptr || !deque->push(&rjob)) {
      left();  // no slot / ring full: run both branches inline
      right();
      return;
    }
    left();
    if (Job* j = deque->pop()) {
      // When left() returns, every job it pushed has been joined, so the
      // bottom of the deque is rjob unless a thief took it (thieves consume
      // the entries above it first).
      assert(j == &rjob);
      static_cast<void>(j);
      rjob.execute();
    } else {
      wait_for(&rjob);  // stolen: help until it completes
    }
  }

  ~Scheduler();

 private:
  // Extra single-owner deques handed to external root threads (threads the
  // scheduler does not own that call par_do). Slots are never recycled, so
  // external-thread churn beyond this count falls back to serial forks.
  static constexpr size_t kMaxExternal = 32;

  Scheduler();

  // Deque owned by the calling thread, claiming an external slot on first
  // use; nullptr when the external slots are exhausted.
  detail::ChaseLevDeque* my_deque();
  Job* try_steal(uint64_t& rng);
  void wait_for(Job* job);
  void worker_loop(int id);
  static void backoff(unsigned failures);

  size_t num_workers_;
  std::vector<detail::ChaseLevDeque> deques_;  // workers then external slots
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint32_t> external_next_{0};
  std::atomic<uint64_t> watchdog_ms_{0};
  std::atomic<uint64_t> watchdog_trips_{0};
};

// Convenience free function: fork-join two branches.
template <typename L, typename R>
inline void par_do(L&& left, R&& right) {
  Scheduler::instance().par_do(std::forward<L>(left), std::forward<R>(right));
}

inline int num_workers() { return Scheduler::instance().num_workers(); }
inline int worker_id() { return Scheduler::worker_id(); }

}  // namespace weg::parallel
