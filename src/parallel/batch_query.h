// Parallel batched-query engine shared by every query structure.
//
// Executes Q independent read-only queries with a deterministic two-phase
// plan — the flat fan-out-then-compact idiom:
//   1. count pass:  sizes[i] = count(i) over all queries in parallel,
//   2. exclusive scan over the per-query sizes (primitives::scan_exclusive),
//   3. report pass: report(i, out + offsets[i]) writes query i's results
//      into its pre-claimed slice of one flat output array.
// Each result is written exactly once (the paper's write-efficiency budget
// applied to query output), and the decomposition is a function of the input
// alone — no pass depends on scheduling — so asym read/write totals are
// bit-identical at every worker count, matching the determinism contract of
// the parallel builds.
//
// Contract: count(i) must return exactly the number of items report(i, out)
// writes, and both must be pure functions of the structure and query i (the
// standard count/report pairing every traversal visitor provides).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/asym/counters.h"
#include "src/core/status.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/sequence.h"

namespace weg::parallel {

// Flat result of a batched reporting query: all queries' items concatenated,
// with offsets() delimiting query i's slice as [offsets()[i], offsets()[i+1]).
// Because a slice is addressed purely by offset arithmetic, results compose:
// the sharded layer merges per-shard BatchResults (broadcast or
// planner-routed sub-batches alike) by summing per-query counts, re-scanning,
// and concatenating slices — without this class knowing about shards.
//
// Error propagation: a result carries a Status (OK by default). A producer
// that fails mid-pipeline — a poisoned per-shard sub-batch under fault
// injection, an invalid query family — marks its result with set_status();
// every merge that consumes a poisoned result propagates the poison to the
// merged result instead of silently concatenating garbage, so the caller
// sees exactly one non-OK status at the top. A poisoned result's slices are
// empty.
template <typename T>
class BatchResult {
 public:
  using value_type = T;

  BatchResult() = default;
  BatchResult(std::vector<T> items, std::vector<size_t> offsets)
      : items_(std::move(items)), offsets_(std::move(offsets)) {}
  // A poisoned (empty) result carrying `status`.
  explicit BatchResult(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  void set_status(Status status) {
    status_ = std::move(status);
    if (!status_.ok()) {
      items_.clear();
      offsets_.clear();
    }
  }

  size_t num_queries() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t total() const { return items_.size(); }
  size_t count(size_t q) const { return offsets_[q + 1] - offsets_[q]; }
  const T* begin(size_t q) const { return items_.data() + offsets_[q]; }
  const T* end(size_t q) const { return items_.data() + offsets_[q + 1]; }
  // Query q's slice as an owned vector (test/example convenience).
  std::vector<T> result(size_t q) const {
    return std::vector<T>(begin(q), end(q));
  }

  const std::vector<T>& items() const { return items_; }
  const std::vector<size_t>& offsets() const { return offsets_; }

 private:
  Status status_;  // OK unless the producer poisoned this result
  std::vector<T> items_;
  std::vector<size_t> offsets_;  // size Q + 1
};

// The two-phase plan. Count and Report are invoked once per query, from
// worker threads (grain 1: one steallable task per query — queries are far
// heavier than the tens-of-ns fork cost). The sizes array is bookkeeping
// traffic charged in bulk, like the primitives.
template <typename T, typename Count, typename Report>
BatchResult<T> batch_two_phase(size_t num_queries, Count&& count,
                               Report&& report) {
  std::vector<size_t> offsets(num_queries + 1, 0);
  parallel_for(
      0, num_queries, [&](size_t q) { offsets[q] = count(q); }, 1);
  asym::count_write(num_queries);
  // Exclusive scan turns sizes into slice offsets; the trailing zero slot
  // receives the grand total.
  primitives::scan_exclusive(offsets);
  std::vector<T> items(offsets[num_queries]);
  parallel_for(
      0, num_queries, [&](size_t q) { report(q, items.data() + offsets[q]); },
      1);
  return BatchResult<T>(std::move(items), std::move(offsets));
}

// Fixed-size-output batches (counting queries, k-NN with known k, ANN): one
// output slot per query, no scan needed. Still deterministic: slot q is
// written by query q alone.
template <typename T, typename F>
std::vector<T> batch_map(size_t num_queries, F&& f) {
  std::vector<T> out(num_queries);
  parallel_for(
      0, num_queries, [&](size_t q) { out[q] = f(q); }, 1);
  asym::count_write(num_queries);
  return out;
}

}  // namespace weg::parallel
