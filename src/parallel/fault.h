// Deterministic, seed-driven fault injection for the serving stack.
//
// A fault *point* is a named check compiled into a failure-capable code path
// (shard apply, bulk-op allocation budget, staged-record validation, the
// scheduler's steal loop). Each check supplies a deterministic *index* from
// its own context — the shard id, the op's node demand, the staged-record
// ordinal, the worker id — NOT a global call counter, so whether a check
// trips is a pure function of (armed spec, index): bit-identical at every
// worker count and immune to scheduling.
//
// Arming (one spec at a time):
//   * environment:  WEG_FAULT=<point>:<seed>:<nth>   (parsed on first check)
//   * programmatic: fault::arm(point, seed, nth) / fault::disarm(), or the
//     RAII fault::ScopedFault for tests.
//
// Selection rule for a check at `index`:
//   * seed == 0 — exact pin: trips iff index == nth ("fail shard 3 of 8").
//   * seed != 0 — seeded subset: trips iff splitmix64(seed ^ index) falls in
//     a 1/(nth+1) fraction of the hash space ("fail a pseudo-random subset
//     of shards, reproducible per seed" — the CI fault sweep's mode).
//
// Points defined today (the site passes the index):
//   shard_apply  — Sharded commit/bulk transaction, index = shard id.
//                  Trips before the shard's shadow apply starts.
//   alloc        — bulk_insert entry of the three dynamic structures,
//                  index = the op's node demand (records to allocate for).
//                  Trips before the first write, so the structure is intact.
//   validate     — Sharded staged-record validation, index = record ordinal
//                  in the staged insert batch. Force-fails a record that
//                  would otherwise pass validation.
//   query_poison — Sharded per-shard sub-batch execution, index = shard id.
//                  Marks the shard's BatchResult poisoned; the merge
//                  propagates the poison to the merged result's status.
//   steal_stall  — scheduler worker loop, index = worker id. The worker
//                  sleeps kStallMillis before executing a stolen job,
//                  simulating a stalled worker for the join watchdog.
//
// Disarmed cost: one relaxed atomic load + branch per check (measured well
// inside the bench suite's 25% regression gate). Configure with
// -DWEG_FAULT_INJECTION=OFF to compile every check to a constant false for
// production builds.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>

#include "src/core/status.h"

#if !defined(WEG_FAULT_INJECTION)
#define WEG_FAULT_INJECTION 1
#endif

namespace weg::fault {

// How long a tripped steal_stall point sleeps (simulated stall). Large
// enough that a watchdog deadline of a few ms reliably expires first.
inline constexpr int kStallMillis = 100;

#if WEG_FAULT_INJECTION

struct Spec {
  std::string point;
  uint64_t seed = 0;
  uint64_t nth = 0;
};

namespace detail {
// Armed spec, null when disarmed. Published with release, read with acquire;
// retired specs are parked in a process-lifetime retire list (arming is a
// test-time operation, bounded per process) so concurrent checks never read
// freed memory.
extern std::atomic<const Spec*> g_spec;
// Lazily parses WEG_FAULT once; returns true ever after.
bool ensure_env_parsed();
bool should_fail_slow(const Spec* spec, const char* point, uint64_t index);
}  // namespace detail

// Arm `point` with the given selection rule (replaces any armed spec).
void arm(const char* point, uint64_t seed, uint64_t nth);
void disarm();

// Number of checks that have tripped since the last arm().
uint64_t trips();

// Fast disarmed check: a single relaxed load.
inline bool armed() {
  static const bool env = detail::ensure_env_parsed();
  (void)env;
  return detail::g_spec.load(std::memory_order_relaxed) != nullptr;
}

// True when the armed spec selects the check at deterministic site `index`.
inline bool should_fail(const char* point, uint64_t index) {
  if (!armed()) return false;
  const Spec* spec = detail::g_spec.load(std::memory_order_acquire);
  return spec != nullptr && detail::should_fail_slow(spec, point, index);
}

// RAII arming for tests: arms in the constructor, restores the disarmed
// state in the destructor.
class ScopedFault {
 public:
  ScopedFault(const char* point, uint64_t seed, uint64_t nth) {
    arm(point, seed, nth);
  }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

#else  // !WEG_FAULT_INJECTION: every check folds to a constant.

void inline arm(const char*, uint64_t, uint64_t) {}
void inline disarm() {}
inline uint64_t trips() { return 0; }
inline bool armed() { return false; }
inline bool should_fail(const char*, uint64_t) { return false; }
class ScopedFault {
 public:
  ScopedFault(const char*, uint64_t, uint64_t) {}
};

#endif  // WEG_FAULT_INJECTION

// Canonical Status for a tripped point.
inline Status injected(const char* point, uint64_t index) {
  return Status::FaultInjected(std::string("injected fault at ") + point +
                               " index " + std::to_string(index));
}

}  // namespace weg::fault
