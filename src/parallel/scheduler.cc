#include "src/parallel/scheduler.h"

#include <cstdlib>
#include <string>

namespace weg::parallel {

namespace {

// Thread-local worker id. The main thread (the one constructing the
// scheduler) is worker 0; spawned workers are 1..p-1.
thread_local int tl_worker_id = 0;

size_t configured_workers() {
  if (const char* env = std::getenv("WEG_NUM_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

uint64_t splitmix64(uint64_t& s) {
  uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Scheduler& Scheduler::instance() {
  static Scheduler s;
  return s;
}

int Scheduler::worker_id() { return tl_worker_id; }

Scheduler::Scheduler() : num_workers_(configured_workers()), deques_(num_workers_) {
  tl_worker_id = 0;
  threads_.reserve(num_workers_ > 0 ? num_workers_ - 1 : 0);
  for (size_t i = 1; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void Scheduler::push_local(Job* job) {
  auto& d = deques_[static_cast<size_t>(tl_worker_id)];
  {
    std::lock_guard<std::mutex> lk(d.mu);
    d.jobs.push_back(job);
  }
  num_pending_.fetch_add(1, std::memory_order_relaxed);
  wake_one();
}

bool Scheduler::pop_if_present(Job* job) {
  auto& d = deques_[static_cast<size_t>(tl_worker_id)];
  std::lock_guard<std::mutex> lk(d.mu);
  if (!d.jobs.empty() && d.jobs.back() == job) {
    d.jobs.pop_back();
    num_pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Job* Scheduler::try_steal(uint64_t& rng) {
  // One sweep over victims starting at a random offset; steal from the top
  // (FIFO end) to grab the largest remaining subcomputations.
  size_t start = splitmix64(rng) % num_workers_;
  for (size_t k = 0; k < num_workers_; ++k) {
    auto& d = deques_[(start + k) % num_workers_];
    std::lock_guard<std::mutex> lk(d.mu);
    if (!d.jobs.empty()) {
      Job* job = d.jobs.front();
      d.jobs.pop_front();
      num_pending_.fetch_sub(1, std::memory_order_relaxed);
      return job;
    }
  }
  return nullptr;
}

void Scheduler::wait_for(Job* job) {
  uint64_t rng = 0x12345678ULL + static_cast<uint64_t>(tl_worker_id);
  while (!job->done.load(std::memory_order_acquire)) {
    if (Job* other = try_steal(rng)) {
      other->execute();
    } else {
      std::this_thread::yield();
    }
  }
}

void Scheduler::wake_one() {
  idle_cv_.notify_one();
}

void Scheduler::worker_loop(int id) {
  tl_worker_id = id;
  uint64_t rng = 0x9e3779b9ULL * static_cast<uint64_t>(id + 1);
  int idle_spins = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (Job* job = try_steal(rng)) {
      idle_spins = 0;
      job->execute();
      continue;
    }
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lk(idle_mu_);
    idle_cv_.wait_for(lk, std::chrono::milliseconds(1), [this] {
      return shutdown_.load(std::memory_order_acquire) ||
             num_pending_.load(std::memory_order_relaxed) > 0;
    });
    idle_spins = 0;
  }
}

}  // namespace weg::parallel
