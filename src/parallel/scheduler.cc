#include "src/parallel/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/parallel/fault.h"

namespace weg::parallel {

namespace {

// Per-thread deque slot: index into Scheduler::deques_, or kUnassigned for
// threads that have not claimed one yet. The main thread claims slot 0 in
// the Scheduler constructor; workers claim 1..p-1; other root threads are
// assigned external slots lazily on their first par_do.
constexpr int kUnassigned = -1;
constexpr int kNoSlot = -2;  // external slots exhausted: serial forks
thread_local int tl_deque_slot = kUnassigned;

// Thread-local worker id. The main thread (the one constructing the
// scheduler) is worker 0; spawned workers are 1..p-1; external threads
// report 0.
thread_local int tl_worker_id = 0;

size_t configured_workers() {
  if (const char* env = std::getenv("WEG_NUM_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

uint64_t splitmix64(uint64_t& s) {
  uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

Scheduler& Scheduler::instance() {
  static Scheduler s;
  return s;
}

int Scheduler::worker_id() { return tl_worker_id; }

Scheduler::Scheduler()
    : num_workers_(configured_workers()),
      deques_(num_workers_ + kMaxExternal) {
  tl_worker_id = 0;
  tl_deque_slot = 0;
  if (const char* env = std::getenv("WEG_WATCHDOG_MS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) watchdog_ms_.store(static_cast<uint64_t>(v),
                                  std::memory_order_relaxed);
  }
  threads_.reserve(num_workers_ > 0 ? num_workers_ - 1 : 0);
  for (size_t i = 1; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

detail::ChaseLevDeque* Scheduler::my_deque() {
  int slot = tl_deque_slot;
  if (slot == kUnassigned) {
    uint32_t idx = external_next_.fetch_add(1, std::memory_order_relaxed);
    slot = idx < kMaxExternal ? static_cast<int>(num_workers_ + idx) : kNoSlot;
    tl_deque_slot = slot;
  }
  return slot >= 0 ? &deques_[static_cast<size_t>(slot)] : nullptr;
}

Job* Scheduler::try_steal(uint64_t& rng) {
  // One sweep over the live deques (workers + however many external slots
  // have been claimed so far) starting at a random offset; steal() takes
  // from the top (FIFO end), grabbing the largest remaining subcomputations.
  size_t ext = std::min<size_t>(external_next_.load(std::memory_order_relaxed),
                                kMaxExternal);
  size_t nd = num_workers_ + ext;
  size_t start = splitmix64(rng) % nd;
  for (size_t k = 0; k < nd; ++k) {
    auto& d = deques_[(start + k) % nd];
    if (d.maybe_empty()) continue;
    if (Job* job = d.steal()) return job;
  }
  return nullptr;
}

// Exponential backoff: tight pause loop first, then yields, then sleeps with
// exponentially growing duration capped at ~1 ms (so shutdown and new work
// are picked up promptly without a wake-up protocol).
void Scheduler::backoff(unsigned failures) {
  if (failures < 16) {
    cpu_pause();
  } else if (failures < 64) {
    std::this_thread::yield();
  } else {
    unsigned shift = std::min(failures - 64u, 10u);
    std::this_thread::sleep_for(std::chrono::microseconds(1u << shift));
  }
}

void Scheduler::wait_for(Job* job) {
  // Seed from the deque slot, which is unique per joining thread (external
  // roots all report worker id 0 but own distinct slots), so concurrent
  // joiners probe victims in decorrelated orders.
  uint64_t rng = 0x12345678ULL + static_cast<uint64_t>(tl_deque_slot + 1);
  unsigned failures = 0;
  // Join watchdog bookkeeping: the clock is read lazily (every ~8 spins,
  // and only when a deadline is armed) so the common fast join never
  // touches steady_clock. 8, not a larger stride: once the backoff ramp
  // reaches its ~1 ms sleeps, a stride of N costs ~N ms between clock
  // reads, and the deadline check must land inside a stall's window.
  const uint64_t deadline_ms = watchdog_ms_.load(std::memory_order_relaxed);
  std::chrono::steady_clock::time_point t0{};
  bool t0_set = false;
  bool tripped = false;
  unsigned spins = 0;
  while (!job->done.load(std::memory_order_acquire)) {
    if (Job* other = try_steal(rng)) {
      failures = 0;
      other->execute();
    } else {
      backoff(++failures);
    }
    if (deadline_ms != 0 && !tripped && (++spins & 7u) == 0) {
      auto now = std::chrono::steady_clock::now();
      if (!t0_set) {
        t0 = now;
        t0_set = true;
      } else if (std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                                       t0)
                     .count() >= static_cast<int64_t>(deadline_ms)) {
        // Surface the stall — once per wait — and keep helping: the stolen
        // branch is executing on another worker and cannot be cancelled.
        tripped = true;
        watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "weg::parallel: watchdog: join on worker %d still "
                     "waiting after %llu ms (stalled worker?)\n",
                     tl_worker_id,
                     static_cast<unsigned long long>(deadline_ms));
      }
    }
  }
}

void Scheduler::worker_loop(int id) {
  tl_worker_id = id;
  tl_deque_slot = id;
  uint64_t rng = 0x9e3779b9ULL * static_cast<uint64_t>(id + 1);
  unsigned failures = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (Job* job = try_steal(rng)) {
      failures = 0;
      // steal_stall fault point: simulate a stalled worker by sleeping
      // before executing the stolen job (index = worker id), so the join
      // watchdog's deadline expires while the joiner helps/waits.
      if (fault::should_fail("steal_stall", static_cast<uint64_t>(id))) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault::kStallMillis));
      }
      job->execute();
      continue;
    }
    backoff(++failures);
  }
}

}  // namespace weg::parallel
