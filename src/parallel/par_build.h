// Shared helpers for parallel (re)construction of pool-backed trees — used
// by the augmented trees (src/augtree) and the geometry layer (src/kdtree).
// The pattern: claim every node slot up front (drain the free list, then
// append fresh slots) so the build recursion never touches the shared
// allocator, then recurse over id slices — sibling subtrees write disjoint
// pool entries and can fork freely, and slot assignment is identical at
// every worker count (the counter-determinism invariant the equality tests
// pin).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/asym/counters.h"
#include "src/parallel/parallel_for.h"

namespace weg::parallel {

// Claims `n` node slots for a bulk build: free-list slots first (they were
// reset to Node{} when freed), then freshly appended ones. Reusing the free
// list keeps repeated large rebuilds from growing the pool without bound.
template <typename Node>
std::vector<uint32_t> claim_build_slots(std::vector<Node>& pool,
                                        std::vector<uint32_t>& free_list,
                                        size_t n) {
  std::vector<uint32_t> ids(n);
  size_t take = std::min(free_list.size(), n);
  for (size_t k = 0; k < take; ++k) {
    ids[k] = free_list.back();
    free_list.pop_back();
  }
  size_t base = pool.size();
  pool.resize(base + (n - take));
  for (size_t k = take; k < n; ++k) {
    ids[k] = static_cast<uint32_t>(base + (k - take));
  }
  return ids;
}

// Balanced BST build over entries[lo, hi) into pre-claimed slots: ids[k] is
// the pool slot of the node with in-order rank k within [lo, hi). `init`
// fills one node's payload from its entry; links and the per-node write
// charge are handled here. Forks while ranges exceed the sequential cutoff.
template <typename Node, typename Entry, typename Init>
uint32_t balanced_build_ids(std::vector<Node>& pool,
                            const std::vector<Entry>& entries, size_t lo,
                            size_t hi, const uint32_t* ids, const Init& init) {
  if (lo >= hi) return UINT32_MAX;
  size_t mid = lo + (hi - lo) / 2;
  uint32_t v = ids[mid - lo];
  asym::count_write();
  pool[v] = Node{};
  init(pool[v], entries[mid]);
  uint32_t l = UINT32_MAX, r = UINT32_MAX;
  parallel::par_do_if(
      hi - lo > parallel::kSeqCutoff,
      [&] { l = balanced_build_ids(pool, entries, lo, mid, ids, init); },
      [&] {
        r = balanced_build_ids(pool, entries, mid + 1, hi,
                               ids + (mid - lo) + 1, init);
      });
  pool[v].left = l;
  pool[v].right = r;
  return v;
}

}  // namespace weg::parallel
