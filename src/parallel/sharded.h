// Sharded serving layer over the batched-query engine.
//
// Sharded<Structure> splits the key space across S independent instances of
// one dynamic structure (fanout chosen at run time) with a per-structure
// key extractor (ShardTraits<Structure>): every record routes to exactly
// one shard, so updates touch one instance and the instances share no
// state — shard-level work fans out on the scheduler with no locking.
//
// Routing policies (Routing ctor parameter, hash is the default):
//  * Routing::kHash — route_key(rec) is hashed; records spread uniformly
//    and every query batch is broadcast to all S shards.
//  * Routing::kRange — the ordered partition key (interval left endpoint;
//    point coordinate along ShardTraits::kSplitDim) is split into S
//    contiguous ranges seeded from a sample of the first insert batch.
//    Each shard tracks conservative coverage bounds [lo, hi] along the
//    partition axis (extended on insert, never shrunk by erase, recomputed
//    exactly on rebalance), and a planner step inside each *_batch wrapper
//    routes every query only to the shards whose coverage can answer it:
//    stab point in [lo, hi]; query-rectangle slab against the shard slab;
//    kNN/ANN best-first — seed the nearest shard by slab distance, then
//    visit every other shard whose slab distance does not exceed the
//    current k-th (resp. best) candidate distance. The batch is semisorted
//    by target-shard set (primitives::semisort), one targeted sub-batch is
//    issued per shard, and the per-shard slices merge through the same
//    offset arithmetic as the broadcast path. At commit() the layer
//    collects per-shard load stats (live records + queries routed since
//    the previous commit) and rebalances skewed bounds — recomputing the
//    quantile split points over the live key set (splitting overloaded
//    ranges, merging underused neighbors) and migrating the records whose
//    shard changed — before publishing the version.
//
// Queries: every batched query family the structure exposes is re-exposed
// here. Broadcast (hash) batches go to all S shards in parallel; planned
// (range) batches go to each query's overlapping-shard set. Either way the
// per-shard BatchResult slices are merged into one flat result by pure
// offset arithmetic: merged count(q) = sum over visited shards of
// count_s(q), an exclusive scan turns the counts into slice offsets, and
// each merged slice is filled by concatenating the shard slices. Each
// merged slice is then put into a canonical order — ascending ids for
// stabbing, lexicographic coordinates for range reports, (distance,
// coordinates) for kNN/ANN — so the merged result is a function of the
// *record set* alone: every routing policy, every fanout, and every worker
// count returns bitwise-identical items (shards a planner prunes provably
// contribute nothing), and the merge's and planner's asym read/write
// charges are bulk functions of the batch and slice sizes (the same
// determinism contract the per-shard engines provide). kNN/ANN merge via a
// top-k (top-1) reduce over the per-shard candidate slices instead of
// plain concatenation.
//
// Epoch API: a serving loop alternates write batches and query batches
// without external locking by staging updates on the Sharded layer —
// begin_epoch() names the next version, stage_insert / stage_erase buffer
// records without touching any shard, and commit() partitions the staged
// batch by shard, applies every shard's bulk_insert + bulk_erase in
// parallel (insertions first, then erasures), and publishes the next
// version. A commit with nothing staged publishes nothing: version() is
// unchanged. Queries issued between commits read the last committed
// snapshot: staged records are invisible until their commit, so query
// batches may be freely interleaved with staging. The serving loop itself
// sequences commit() against in-flight query batches (phases, not locks);
// everything inside a phase parallelizes on the scheduler.
//
// Transactional commit: commit() returns Expected<Version> and is
// all-or-nothing. Staged records are validated up front (finite
// coordinates, l <= r, no duplicate ids within an epoch); then every shard
// with work applies its sub-batches to a shadow clone, and the clones are
// published — by move, shard by shard — only after every shard succeeded.
// Any failure (validation, a structure-level error such as an id already
// live, an injected fault, or std::bad_alloc mid-apply) rolls the commit
// back: version() is unchanged, every shard still holds its epoch-N state,
// and queries return bitwise-identical results to the pre-commit snapshot.
// The staged buffers are kept on failure so a caller can repair and retry,
// or drop them with discard_staged(). When several shards fail in one
// transaction, the reported Status is the lowest-numbered shard's
// (deterministic at every worker count). bulk_insert / bulk_erase run the
// same transaction, and commit-time rebalancing migrates records through
// it too (a failed migration skips the rebalance and keeps the commit).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "src/asym/counters.h"
#include "src/augtree/interval_tree.h"
#include "src/core/status.h"
#include "src/geom/point.h"
#include "src/kdtree/dynamic.h"
#include "src/parallel/batch_query.h"
#include "src/parallel/fault.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/semisort.h"
#include "src/primitives/sequence.h"

namespace weg::parallel {

// How records and queries map to shards. kHash spreads records uniformly
// and broadcasts queries; kRange partitions the ordered key space so the
// planner can prune shards per query.
enum class Routing { kHash, kRange };

// splitmix64 finalizer: the router's hash. Fanout is typically a small
// power of two, so the low bits must already be well mixed.
inline uint64_t shard_mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Canonical bit pattern of a float routing key. -0.0 and +0.0 compare
// equal as doubles but differ bitwise, so hashing the raw bits would send
// records that are equal under operator== to different shards — and a
// staged erase of {-0.0, ...} would silently miss the {+0.0, ...} record
// it targets. Routing must be a pure function of the record's equality
// class, so the zero is canonicalized before std::bit_cast.
inline uint64_t float_key_bits(double x) {
  return std::bit_cast<uint64_t>(x == 0.0 ? 0.0 : x);
}

// Per-structure key extraction. Record is the unit of update routing;
// route_key(rec) is the 64-bit key hash routing uses, partition_key(rec)
// the ordered key range routing splits on, and coverage_hi(rec) how far a
// record extends shard coverage along the partition axis (an interval
// stored by left endpoint answers stabs up to its right endpoint).
// kCoverDims / cover_lo / cover_hi describe the record's extent in the
// shard coverage box: dimension 0 is the partition axis ([partition_key,
// coverage_hi]); point structures cover all K coordinate axes so the
// planner's kNN/ANN pruning and the covered-shard count fast path can use
// the full-dimensional box distance instead of the 1-D slab. extract(s)
// enumerates the live records for commit-time rebalancing. Erasing a
// record must route like inserting it (routing is a pure function of the
// record), which is all the layer needs for correctness; the policy only
// affects balance and planner selectivity.
template <typename Structure>
struct ShardTraits;

template <>
struct ShardTraits<augtree::DynamicIntervalTree> {
  using Record = augtree::Interval;
  static uint64_t route_key(const Record& iv) {
    uint64_t h = shard_mix(float_key_bits(iv.l));
    h = shard_mix(h ^ float_key_bits(iv.r));
    return shard_mix(h ^ iv.id);
  }
  static double partition_key(const Record& iv) { return iv.l; }
  static double coverage_hi(const Record& iv) { return iv.r; }
  static constexpr int kCoverDims = 1;
  static double cover_lo(const Record& iv, int) { return iv.l; }
  static double cover_hi(const Record& iv, int) { return iv.r; }
  static std::vector<Record> extract(const augtree::DynamicIntervalTree& t) {
    return t.live_records();
  }
};

namespace detail {

template <int K>
struct PointRouteTraits {
  using Record = geom::PointK<K>;
  // The fixed split dimension range partitioning orders points by.
  static constexpr int kSplitDim = 0;
  static uint64_t route_key(const Record& p) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int d = 0; d < K; ++d) {
      h = shard_mix(h ^ float_key_bits(p[d]));
    }
    return h;
  }
  static double partition_key(const Record& p) { return p[kSplitDim]; }
  static double coverage_hi(const Record& p) { return p[kSplitDim]; }
  // Points cover all K axes: the planner prunes with the full-dimensional
  // cover-box distance and answers fully-covered shards by count.
  static constexpr int kCoverDims = K;
  static double cover_lo(const Record& p, int d) { return p[d]; }
  static double cover_hi(const Record& p, int d) { return p[d]; }
};

// Canonical slice orders for the merge.
struct IdLess {
  bool operator()(uint32_t a, uint32_t b) const { return a < b; }
};
struct CoordLess {
  template <typename P>
  bool operator()(const P& a, const P& b) const {
    return a.coords < b.coords;
  }
};

}  // namespace detail

template <int K>
struct ShardTraits<kdtree::LogForest<K>> : detail::PointRouteTraits<K> {
  static std::vector<geom::PointK<K>> extract(const kdtree::LogForest<K>& t) {
    return t.live_points();
  }
};
template <int K>
struct ShardTraits<kdtree::DynamicKdTree<K>> : detail::PointRouteTraits<K> {
  static std::vector<geom::PointK<K>> extract(
      const kdtree::DynamicKdTree<K>& t) {
    return t.live_points();
  }
};

template <typename Structure>
class Sharded;

// Read-while-commit snapshot handle. Pins one Sharded replica at one
// published version for batched reads while a twin replica applies the next
// epoch's commit (src/serve/engine.h). The handle owns and locks nothing —
// the serving engine's flip protocol guarantees the pinned replica is not
// mutated while handles to it are live (commit and read touch disjoint
// replicas); valid() is the cheap runtime assertion of that protocol: the
// pinned version is still the replica's published version.
template <typename Structure>
class ShardedSnapshot {
 public:
  ShardedSnapshot() = default;
  explicit ShardedSnapshot(const Sharded<Structure>& layer)
      : layer_(&layer), version_(layer.version()) {}

  bool empty() const { return layer_ == nullptr; }
  // The epoch this snapshot pinned at construction.
  uint64_t version() const { return version_; }
  // True while the pinned replica still serves the pinned epoch. A false
  // return means something committed into the replica under live readers —
  // a flip-protocol violation worth crashing a debug build over.
  bool valid() const {
    return layer_ != nullptr && layer_->version() == version_;
  }

  const Sharded<Structure>& operator*() const { return *layer_; }
  const Sharded<Structure>* operator->() const { return layer_; }

 private:
  const Sharded<Structure>* layer_ = nullptr;
  uint64_t version_ = 0;
};

template <typename Structure>
class Sharded {
 public:
  using Traits = ShardTraits<Structure>;
  using Record = typename Traits::Record;

  // Constructs `fanout` hash-routed shards, each as Structure(args...).
  // Fanout 0 is clamped to 1 (the degenerate unsharded layout).
  template <typename... Args>
  explicit Sharded(size_t fanout, const Args&... args)
      : Sharded(Routing::kHash, fanout, args...) {}

  // Routing-policy-selecting constructor; Routing::kHash reproduces the
  // default behavior exactly.
  template <typename... Args>
  Sharded(Routing routing, size_t fanout, const Args&... args)
      : routing_(routing) {
    if (fanout == 0) fanout = 1;
    // Planner shard sets are 64-bit masks.
    if (routing_ == Routing::kRange && fanout > 64) fanout = 64;
    shards_.reserve(fanout);
    for (size_t s = 0; s < fanout; ++s) shards_.emplace_back(args...);
    cover_.assign(fanout, empty_cover());
    queries_routed_.reset(new std::atomic<uint64_t>[fanout]);
    for (size_t s = 0; s < fanout; ++s) {
      queries_routed_[s].store(0, std::memory_order_relaxed);
    }
  }

  size_t fanout() const { return shards_.size(); }
  Routing routing() const { return routing_; }
  size_t shard_of(const Record& rec) const {
    if (routing_ == Routing::kRange && bounds_built_) {
      return shard_by_key(Traits::partition_key(rec));
    }
    return Traits::route_key(rec) % shards_.size();
  }
  Structure& shard(size_t s) { return shards_[s]; }
  const Structure& shard(size_t s) const { return shards_[s]; }
  size_t size() const {
    size_t total = 0;
    for (const Structure& s : shards_) total += s.size();
    return total;
  }

  // --- range-partition introspection -----------------------------------

  // Whether the range partition has been seeded (first non-empty insert).
  bool bounds_built() const { return bounds_built_; }
  // The S-1 ordered split points: shard 0 owns (-inf, splits()[0]), shard
  // s owns [splits()[s-1], splits()[s]), shard S-1 owns the tail.
  const std::vector<double>& splits() const { return splits_; }
  // Commit-time rebalances performed so far.
  size_t rebalances() const { return rebalances_; }

  // Routing telemetry: queries planned and shard visits issued since
  // construction, over every batch wrapper (broadcast batches visit all S
  // shards per query; planned batches visit each query's overlap set).
  // shards-visited-per-query = planner_shard_visits() / planner_queries().
  uint64_t planner_queries() const {
    return planner_queries_.load(std::memory_order_relaxed);
  }
  uint64_t planner_shard_visits() const {
    return planner_visits_.load(std::memory_order_relaxed);
  }

  // Per-shard load since the last commit: live records now, plus query
  // sub-batches routed to the shard. commit() consumes the query counters
  // (they feed the rebalance trigger).
  struct ShardLoad {
    size_t records = 0;
    uint64_t queries = 0;
  };
  std::vector<ShardLoad> load_stats() const {
    std::vector<ShardLoad> out(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      out[s] = {shards_[s].size(),
                queries_routed_[s].load(std::memory_order_relaxed)};
    }
    return out;
  }

  // Pins this replica at its current version for read-while-commit serving
  // (see ShardedSnapshot above and src/serve/engine.h).
  ShardedSnapshot<Structure> snapshot() const {
    return ShardedSnapshot<Structure>(*this);
  }

  // Admission-time screening for the serving engine: one record's
  // well-formedness, checked where it can fail its own request instead of
  // poisoning a whole staged epoch. commit() still revalidates the full
  // batch as a backstop. `ordinal` only labels the error message.
  static Status validate(const Record& rec, size_t ordinal = 0) {
    return validate_record(rec, ordinal, "submitted");
  }

  // --- epoch-versioned updates -----------------------------------------

  uint64_t version() const { return version_; }
  size_t staged_inserts() const { return staged_ins_.size(); }
  size_t staged_erases() const { return staged_ers_.size(); }
  // Number of staged erasures the last commit() actually applied.
  size_t last_commit_erased() const { return last_commit_erased_; }

  // Names the epoch the next commit() will publish. Declarative: staging is
  // buffered either way; serving loops call this to label the write batch
  // they are filling.
  uint64_t begin_epoch() const { return version_ + 1; }

  void stage_insert(const Record& rec) { staged_ins_.push_back(rec); }
  void stage_erase(const Record& rec) { staged_ers_.push_back(rec); }
  // Drops the staged batch without applying it (the recovery path after a
  // failed commit when the caller does not want to repair and retry).
  void discard_staged() {
    staged_ins_.clear();
    staged_ers_.clear();
  }

  // Applies the staged batch — every shard's share via bulk_insert then
  // bulk_erase, all shards in parallel — rebalances skewed range bounds,
  // and publishes the next version. A record staged for both insert and
  // erase in one epoch is inserted, then erased: the committed snapshot
  // does not contain it. A commit with nothing staged is a no-op epoch and
  // publishes nothing: version() is unchanged.
  //
  // All-or-nothing (see the file header): on any non-OK return the layer
  // still serves epoch N — version() unchanged, queries bitwise-identical
  // to the pre-commit snapshot — and the staged buffers are kept for repair
  // or discard_staged(). The one persisting side effect of a failed first
  // commit is the seeded range partition (split points only — a routing
  // heuristic, not record state).
  Expected<uint64_t> commit() {
    if (staged_ins_.empty() && staged_ers_.empty()) {
      last_commit_erased_ = 0;
      return version_;
    }
    Status valid = validate_staged();
    if (!valid.ok()) return valid;
    ensure_bounds(staged_ins_);
    auto ins = partition(staged_ins_);
    auto ers = partition(staged_ers_);
    Expected<size_t> erased = apply_transaction(ins, ers);
    if (!erased.ok()) return erased.status();
    // Published: coverage extension and epoch bookkeeping happen only now,
    // so a rolled-back commit leaves the planner's pruning bounds exact.
    last_commit_erased_ = erased.value();
    extend_covers(ins);
    staged_ins_.clear();
    staged_ers_.clear();
    maybe_rebalance();
    return ++version_;
  }

  // Immediate one-batch epochs: route and apply `recs` in one step and
  // publish a version of their own. Records staged for the in-progress
  // epoch (if any) are left staged — only commit() consumes them. An empty
  // batch is a no-op and publishes no version. Both run the same
  // transaction as commit(): a non-OK return leaves every shard unchanged.
  Status bulk_insert(const std::vector<Record>& recs) {
    if (recs.empty()) return Status::Ok();
    Status valid = validate_batch(recs, /*inserts=*/true);
    if (!valid.ok()) return valid;
    ensure_bounds(recs);
    auto ins = partition(recs);
    Expected<size_t> res = apply_transaction(ins, {});
    if (!res.ok()) return res.status();
    extend_covers(ins);
    ++version_;
    return Status::Ok();
  }
  Expected<size_t> bulk_erase(const std::vector<Record>& recs) {
    if (recs.empty()) return size_t{0};
    Status valid = validate_batch(recs, /*inserts=*/false);
    if (!valid.ok()) return valid;
    Expected<size_t> res = apply_transaction({}, partition(recs));
    if (!res.ok()) return res;
    ++version_;
    return res;
  }

  // --- batched queries --------------------------------------------------
  //
  // All wrappers are member templates constrained on the wrapped structure
  // actually exposing the family, so Sharded<DynamicIntervalTree> has stab
  // entry points and Sharded<LogForest<2>> has the spatial ones. Each
  // wrapper broadcasts under hash routing and plans under range routing.

  template <typename Q>
  auto stab_batch(const std::vector<Q>& qs) const
    requires requires(const Structure& s) { s.stab_batch(qs); }
  {
    if (!use_planner()) {
      note_broadcast(qs.size());
      return merge_report(
          qs.size(), [&](const Structure& s) { return s.stab_batch(qs); },
          detail::IdLess{});
    }
    Plan plan =
        plan_batch(qs.size(), [&](size_t i) { return stab_mask(qs[i]); });
    note_plan(plan, qs.size());
    auto per = run_planned(plan, qs,
                           [](const Structure& s, const std::vector<Q>& sub) {
                             return s.stab_batch(sub);
                           });
    return merge_planned_report(plan, per, qs.size(), detail::IdLess{});
  }

  template <typename Q>
  auto stab_count_batch(const std::vector<Q>& qs) const
    requires requires(const Structure& s) { s.stab_count_batch(qs); }
  {
    if (!use_planner()) {
      note_broadcast(qs.size());
      return merge_count(qs.size(), [&](const Structure& s) {
        return s.stab_count_batch(qs);
      });
    }
    Plan plan =
        plan_batch(qs.size(), [&](size_t i) { return stab_mask(qs[i]); });
    note_plan(plan, qs.size());
    auto per = run_planned(plan, qs,
                           [](const Structure& s, const std::vector<Q>& sub) {
                             return s.stab_count_batch(sub);
                           });
    return merge_planned_count(plan, per, qs.size());
  }

  template <typename B>
  auto range_count_batch(const std::vector<B>& qs) const
    requires requires(const Structure& s) { s.range_count_batch(qs); }
  {
    if (!use_planner()) {
      note_broadcast(qs.size());
      return merge_count(qs.size(), [&](const Structure& s) {
        return s.range_count_batch(qs);
      });
    }
    constexpr int d0 = Traits::kSplitDim;
    // Covered-shard fast path: a query box that fully covers a shard's
    // cover box is answered by that shard's live-record count up front —
    // the query is never routed there, so the shard's trees are not read at
    // all. The remaining (partially overlapping) shards are planned as
    // before. cover ⊇ live records, so the summed result is exact.
    std::vector<size_t> covered_base(qs.size(), 0);
    Plan plan = plan_batch(qs.size(), [&](size_t i) {
      uint64_t m = slab_mask(qs[i].lo[d0], qs[i].hi[d0]);
      uint64_t rest = 0;
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (!((m >> s) & 1)) continue;
        if (covers_shard(qs[i], s)) {
          covered_base[i] += shards_[s].size();
        } else {
          rest |= uint64_t{1} << s;
        }
      }
      return rest;
    });
    // One write per query for its covered-shard base count (the coverage
    // tests ride plan_batch's nq * S bulk read).
    asym::count_write(qs.size());
    note_plan(plan, qs.size());
    auto per = run_planned(plan, qs,
                           [](const Structure& s, const std::vector<B>& sub) {
                             return s.range_count_batch(sub);
                           });
    auto out = merge_planned_count(plan, per, qs.size());
    asym::count_read(qs.size());
    asym::count_write(qs.size());
    for (size_t q = 0; q < qs.size(); ++q) out[q] += covered_base[q];
    return out;
  }

  template <typename B>
  auto range_report_batch(const std::vector<B>& qs) const
    requires requires(const Structure& s) { s.range_report_batch(qs); }
  {
    if (!use_planner()) {
      note_broadcast(qs.size());
      return merge_report(
          qs.size(),
          [&](const Structure& s) { return s.range_report_batch(qs); },
          detail::CoordLess{});
    }
    constexpr int d0 = Traits::kSplitDim;
    Plan plan = plan_batch(qs.size(), [&](size_t i) {
      return slab_mask(qs[i].lo[d0], qs[i].hi[d0]);
    });
    note_plan(plan, qs.size());
    auto per = run_planned(plan, qs,
                           [](const Structure& s, const std::vector<B>& sub) {
                             return s.range_report_batch(sub);
                           });
    return merge_planned_report(plan, per, qs.size(), detail::CoordLess{});
  }

  // k-NN: each visited shard reports its min(k, shard-live) nearest
  // candidates in the canonical (distance, coordinates) order; the merge
  // keeps the k best per query, so the merged slice equals the unsharded
  // structure's min(k, live) nearest in the same order. The planner seeds
  // each query at its nearest shard (by slab distance along the partition
  // axis), then visits every other shard whose slab distance does not
  // exceed the current k-th candidate distance — a pruned shard's every
  // point is provably farther, so the routed top-k is bitwise-identical to
  // the broadcast top-k.
  template <typename P>
  auto knn_batch(const std::vector<P>& qs, size_t k) const
    requires requires(const Structure& s) { s.knn_batch(qs, k); }
  {
    using Result =
        std::decay_t<decltype(std::declval<const Structure&>().knn_batch(
            qs, k))>;
    using T = typename Result::value_type;
    size_t nq = qs.size();
    if (!use_planner()) {
      note_broadcast(nq);
      auto per = run_shards([&](const Structure& s) {
        return s.knn_batch(qs, k);
      });
      if (Status poison = first_poison(per); !poison.ok()) {
        return BatchResult<T>(std::move(poison));
      }
      std::vector<size_t> offsets(nq + 1, 0);
      for (size_t q = 0; q < nq; ++q) {
        size_t total = 0;
        for (const Result& r : per) total += r.count(q);
        offsets[q] = std::min(k, total);
      }
      asym::count_read(per.size() * nq);
      asym::count_write(nq);
      primitives::scan_exclusive(offsets);
      std::vector<T> items(offsets[nq]);
      parallel_for(
          0, nq,
          [&](size_t q) {
            std::vector<std::pair<double, T>> cand;
            for (const Result& r : per) {
              for (const T* it = r.begin(q); it != r.end(q); ++it) {
                cand.emplace_back(geom::squared_distance(*it, qs[q]), *it);
              }
            }
            top_k_into(cand, items.data() + offsets[q],
                       offsets[q + 1] - offsets[q]);
          },
          1);
      // Candidate gather + winner writes, charged in bulk (deterministic:
      // slice sizes are functions of the record set and k alone).
      size_t gathered = 0;
      for (const Result& r : per) gathered += r.total();
      asym::count_read(gathered);
      asym::count_write(items.size());
      return BatchResult<T>(std::move(items), std::move(offsets));
    }

    // Round 1: seed each query at its nearest shard by cover-box distance
    // (ties: lowest id).
    Plan p0 = plan_batch(nq, [&](size_t i) {
      return nearest_shard_mask(qs[i]);
    });
    note_plan(p0, nq);
    auto per0 = run_planned(p0, qs,
                            [&](const Structure& s, const std::vector<P>& sub) {
                              return s.knn_batch(sub, k);
                            });
    if (Status poison = first_poison(per0); !poison.ok()) {
      return BatchResult<T>(std::move(poison));
    }
    // Current k-th candidate distance per query — infinity when the seed
    // shard cannot supply k candidates (then no shard may be pruned).
    std::vector<double> thr(nq, std::numeric_limits<double>::infinity());
    for (size_t q = 0; q < nq; ++q) {
      if (p0.entries[q].empty()) continue;
      auto [s, j] = p0.entries[q][0];
      if (k > 0 && per0[s].count(j) == k) {
        thr[q] = geom::squared_distance(*(per0[s].end(j) - 1), qs[q]);
      }
    }
    asym::count_read(nq);
    asym::count_write(nq);
    // Round 2: every other shard whose cover box could still hold a
    // candidate at or below the threshold (<=: a tied candidate can win the
    // canonical order by coordinates). The bound-driven short-circuit: a
    // shard whose box is farther than the running k-th candidate distance
    // is never visited.
    Plan p1 = plan_batch(nq, [&](size_t i) {
      uint64_t seed = nearest_shard_mask(qs[i]);
      uint64_t m = 0;
      for (size_t s = 0; s < shards_.size(); ++s) {
        if ((seed >> s) & 1) continue;
        if (!shard_live(s)) continue;
        if (cover_d2(s, qs[i]) <= thr[i]) m |= uint64_t{1} << s;
      }
      return m;
    });
    note_plan(p1, 0);
    auto per1 = run_planned(p1, qs,
                            [&](const Structure& s, const std::vector<P>& sub) {
                              return s.knn_batch(sub, k);
                            });
    if (Status poison = first_poison(per1); !poison.ok()) {
      return BatchResult<T>(std::move(poison));
    }

    std::vector<size_t> offsets(nq + 1, 0);
    for (size_t q = 0; q < nq; ++q) {
      size_t total = 0;
      for (auto [s, j] : p0.entries[q]) total += per0[s].count(j);
      for (auto [s, j] : p1.entries[q]) total += per1[s].count(j);
      offsets[q] = std::min(k, total);
    }
    asym::count_read(p0.visits + p1.visits);
    asym::count_write(nq);
    primitives::scan_exclusive(offsets);
    std::vector<T> items(offsets[nq]);
    parallel_for(
        0, nq,
        [&](size_t q) {
          // Single-shard pass-through: with exactly one visited shard, that
          // shard's slice already is the merged answer in canonical order —
          // copy it, skipping the distance recompute and the merge sort.
          if (p0.entries[q].size() + p1.entries[q].size() == 1) {
            const Plan& plan = p0.entries[q].empty() ? p1 : p0;
            const std::vector<Result>& per =
                p0.entries[q].empty() ? per1 : per0;
            auto [s, j] = plan.entries[q][0];
            std::copy(per[s].begin(j), per[s].end(j),
                      items.data() + offsets[q]);
            return;
          }
          std::vector<std::pair<double, T>> cand;
          auto gather = [&](const Plan& plan, const std::vector<Result>& per) {
            for (auto [s, j] : plan.entries[q]) {
              for (const T* it = per[s].begin(j); it != per[s].end(j); ++it) {
                cand.emplace_back(geom::squared_distance(*it, qs[q]), *it);
              }
            }
          };
          gather(p0, per0);
          gather(p1, per1);
          top_k_into(cand, items.data() + offsets[q],
                     offsets[q + 1] - offsets[q]);
        },
        1);
    size_t gathered = 0;
    for (const Result& r : per0) gathered += r.total();
    for (const Result& r : per1) gathered += r.total();
    asym::count_read(gathered);
    asym::count_write(items.size());
    return BatchResult<T>(std::move(items), std::move(offsets));
  }

  // ANN: top-1 reduce — the best shard answer by (distance, coordinates).
  // Each shard answer is a (1+eps)-ANN of its subset, so the reduced answer
  // is a (1+eps)-ANN of the union; eps = 0 gives the exact NN. The planner
  // seeds at the nearest shard and visits only shards whose slab distance
  // does not exceed the seed answer's distance — a pruned shard's answer
  // would lose the reduce, so the routed answer equals the broadcast one.
  template <typename P>
  auto ann_batch(const std::vector<P>& qs, double eps = 0.0) const
    requires requires(const Structure& s) { s.ann_batch(qs, eps); }
  {
    using Vec =
        std::decay_t<decltype(std::declval<const Structure&>().ann_batch(
            qs, eps))>;
    size_t nq = qs.size();
    auto better = [&](const typename Vec::value_type& alt,
                      const typename Vec::value_type& cur, const P& q) {
      if (!alt.has_value()) return false;
      if (!cur.has_value()) return true;
      double da = geom::squared_distance(*alt, q);
      double dc = geom::squared_distance(*cur, q);
      return da < dc || (da == dc && (*alt).coords < (*cur).coords);
    };
    if (!use_planner()) {
      note_broadcast(nq);
      auto per = run_shards([&](const Structure& s) {
        return s.ann_batch(qs, eps);
      });
      Vec out(nq);
      parallel_for(
          0, nq,
          [&](size_t q) {
            for (const Vec& v : per) {
              if (better(v[q], out[q], qs[q])) out[q] = v[q];
            }
          },
          1);
      asym::count_read(per.size() * nq);
      asym::count_write(nq);
      return out;
    }

    Plan p0 = plan_batch(nq, [&](size_t i) {
      return nearest_shard_mask(qs[i]);
    });
    note_plan(p0, nq);
    auto per0 = run_planned(p0, qs,
                            [&](const Structure& s, const std::vector<P>& sub) {
                              return s.ann_batch(sub, eps);
                            });
    std::vector<double> thr(nq, std::numeric_limits<double>::infinity());
    for (size_t q = 0; q < nq; ++q) {
      if (p0.entries[q].empty()) continue;
      auto [s, j] = p0.entries[q][0];
      if (per0[s][j].has_value()) {
        thr[q] = geom::squared_distance(*per0[s][j], qs[q]);
      }
    }
    asym::count_read(nq);
    asym::count_write(nq);
    Plan p1 = plan_batch(nq, [&](size_t i) {
      uint64_t seed = nearest_shard_mask(qs[i]);
      uint64_t m = 0;
      for (size_t s = 0; s < shards_.size(); ++s) {
        if ((seed >> s) & 1) continue;
        if (!shard_live(s)) continue;
        if (cover_d2(s, qs[i]) <= thr[i]) m |= uint64_t{1} << s;
      }
      return m;
    });
    note_plan(p1, 0);
    auto per1 = run_planned(p1, qs,
                            [&](const Structure& s, const std::vector<P>& sub) {
                              return s.ann_batch(sub, eps);
                            });
    Vec out(nq);
    parallel_for(
        0, nq,
        [&](size_t q) {
          for (auto [s, j] : p0.entries[q]) {
            if (better(per0[s][j], out[q], qs[q])) out[q] = per0[s][j];
          }
          for (auto [s, j] : p1.entries[q]) {
            if (better(per1[s][j], out[q], qs[q])) out[q] = per1[s][j];
          }
        },
        1);
    asym::count_read(p0.visits + p1.visits);
    asym::count_write(nq);
    return out;
  }

 private:
  // Conservative per-shard data coverage box (Traits::kCoverDims axes;
  // dimension 0 is the partition axis). Extended on insert, never shrunk by
  // erase, recomputed exactly on rebalance — so it always contains every
  // live record's extent.
  struct Cover {
    std::array<double, Traits::kCoverDims> lo;
    std::array<double, Traits::kCoverDims> hi;
  };
  static Cover empty_cover() {
    Cover c;
    c.lo.fill(std::numeric_limits<double>::infinity());
    c.hi.fill(-std::numeric_limits<double>::infinity());
    return c;
  }

  bool use_planner() const {
    return routing_ == Routing::kRange && bounds_built_;
  }
  bool shard_live(size_t s) const { return shards_[s].size() > 0; }

  static size_t shard_by_key_in(const std::vector<double>& splits,
                                double key) {
    return static_cast<size_t>(
        std::upper_bound(splits.begin(), splits.end(), key) - splits.begin());
  }
  size_t shard_by_key(double key) const {
    return shard_by_key_in(splits_, key);
  }

  // --- planner predicates over the coverage bounds ---------------------

  uint64_t stab_mask(double x) const {
    uint64_t m = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shard_live(s) && cover_[s].lo[0] <= x && x <= cover_[s].hi[0]) {
        m |= uint64_t{1} << s;
      }
    }
    return m;
  }

  uint64_t slab_mask(double qlo, double qhi) const {
    uint64_t m = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shard_live(s) && qlo <= cover_[s].hi[0] && qhi >= cover_[s].lo[0]) {
        m |= uint64_t{1} << s;
      }
    }
    return m;
  }

  // Lower bound on the squared distance from query point q to any live
  // point of shard s: the full-dimensional cover-box distance (0 when q is
  // inside the box). Strictly tighter than the old partition-axis slab
  // distance, so kNN/ANN round-2 masks only shrink — and a pruned shard's
  // every point is still provably farther than the threshold.
  template <typename P>
  double cover_d2(size_t s, const P& q) const {
    const Cover& c = cover_[s];
    double d2 = 0;
    for (int d = 0; d < Traits::kCoverDims; ++d) {
      double diff = std::max({c.lo[d] - q[d], 0.0, q[d] - c.hi[d]});
      d2 += diff * diff;
    }
    return d2;
  }

  // True when the query box fully covers shard s's cover box: every live
  // record of the shard is then inside the query, so a count query is
  // answered by the shard's size without routing to it.
  template <typename B>
  bool covers_shard(const B& query, size_t s) const {
    const Cover& c = cover_[s];
    for (int d = 0; d < Traits::kCoverDims; ++d) {
      if (!(query.lo[d] <= c.lo[d] && c.hi[d] <= query.hi[d])) return false;
    }
    return true;
  }

  template <typename P>
  uint64_t nearest_shard_mask(const P& q) const {
    size_t best = shards_.size();
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!shard_live(s)) continue;
      double d2 = cover_d2(s, q);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = s;
      }
    }
    return best == shards_.size() ? 0 : uint64_t{1} << best;
  }

  // --- the plan ---------------------------------------------------------

  // A routed batch: per shard, the (deterministic) list of query indices
  // it must answer; per query, the (shard, sub-batch position) slots where
  // its per-shard answers land. Built by semisorting the batch by
  // target-shard mask, so queries sharing a shard set are contiguous and
  // each group is emitted into its shards' sub-batches in one run.
  struct Plan {
    std::vector<std::vector<uint32_t>> shard_queries;
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> entries;
    size_t visits = 0;
  };

  template <typename MaskFn>
  Plan plan_batch(size_t nq, MaskFn&& mask_of) const {
    size_t S = shards_.size();
    struct QM {
      uint32_t q;
      uint64_t mask;
    };
    std::vector<QM> qm(nq);
    for (size_t i = 0; i < nq; ++i) {
      qm[i].q = static_cast<uint32_t>(i);
      qm[i].mask = mask_of(i);
    }
    // Planner bookkeeping is bulk-charged: every query tests every shard's
    // bounds (nq * S reads, nq mask writes), and each (query, shard)
    // routing slot is written once (visits reads + writes below) — all
    // functions of the batch and the bounds alone, identical at every
    // worker count.
    asym::count_read(nq * S);
    asym::count_write(nq);
    // Shard-set masks are a tiny key universe (often one mask for a whole
    // batch): small batches take the classic hash-bucket path, large ones
    // the sampling plan, where every popular mask is a heavy key grouped
    // without any local sort.
    auto groups =
        primitives::semisort_by(qm, [](const QM& x) { return x.mask; });
    Plan plan;
    plan.shard_queries.assign(S, {});
    plan.entries.assign(nq, {});
    for (size_t g = 0; g + 1 < groups.size(); ++g) {
      uint64_t mask = qm[groups[g]].mask;
      if (mask == 0) continue;
      for (size_t s = 0; s < S; ++s) {
        if (!((mask >> s) & 1)) continue;
        for (size_t i = groups[g]; i < groups[g + 1]; ++i) {
          plan.entries[qm[i].q].push_back(
              {static_cast<uint32_t>(s),
               static_cast<uint32_t>(plan.shard_queries[s].size())});
          plan.shard_queries[s].push_back(qm[i].q);
        }
      }
      plan.visits += static_cast<size_t>(std::popcount(mask)) *
                     (groups[g + 1] - groups[g]);
    }
    asym::count_read(plan.visits);
    asym::count_write(plan.visits);
    return plan;
  }

  void note_plan(const Plan& plan, size_t new_queries) const {
    planner_visits_.fetch_add(plan.visits, std::memory_order_relaxed);
    if (new_queries > 0) {
      planner_queries_.fetch_add(new_queries, std::memory_order_relaxed);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!plan.shard_queries[s].empty()) {
        queries_routed_[s].fetch_add(plan.shard_queries[s].size(),
                                     std::memory_order_relaxed);
      }
    }
  }

  void note_broadcast(size_t nq) const {
    if (nq == 0) return;
    planner_visits_.fetch_add(nq * shards_.size(),
                              std::memory_order_relaxed);
    planner_queries_.fetch_add(nq, std::memory_order_relaxed);
    for (size_t s = 0; s < shards_.size(); ++s) {
      queries_routed_[s].fetch_add(nq, std::memory_order_relaxed);
    }
  }

  // Runs one targeted sub-batch per visited shard, all shards in parallel
  // (each call is itself parallel inside via the two-phase engine). Slot s
  // is written by shard s alone; unvisited shards keep a default result.
  // query_poison fault point (index = shard id): marks a shard's
  // BatchResult sub-batch poisoned so the merge-propagation path can be
  // driven deterministically. Families whose per-shard results carry no
  // Status (counting, ANN) have no poison carrier and skip the check.
  template <typename R>
  static void maybe_poison(R& result, size_t s) {
    if constexpr (requires { result.set_status(Status::Ok()); }) {
      if (fault::should_fail("query_poison", s)) {
        result.set_status(fault::injected("query_poison", s));
      }
    } else {
      (void)result;
      (void)s;
    }
  }

  template <typename Q, typename RunSub>
  auto run_planned(const Plan& plan, const std::vector<Q>& qs,
                   RunSub&& run) const {
    using R =
        std::invoke_result_t<RunSub&, const Structure&, const std::vector<Q>&>;
    std::vector<R> per(shards_.size());
    parallel_for(
        0, shards_.size(),
        [&](size_t s) {
          const std::vector<uint32_t>& qidx = plan.shard_queries[s];
          if (qidx.empty()) return;
          std::vector<Q> sub(qidx.size());
          for (size_t j = 0; j < qidx.size(); ++j) sub[j] = qs[qidx[j]];
          per[s] = run(shards_[s], sub);
          maybe_poison(per[s], s);
        },
        1);
    return per;
  }

  // First non-OK status across the per-shard results (lowest shard id, so
  // the propagated poison is deterministic), or OK.
  template <typename Result>
  static Status first_poison(const std::vector<Result>& per) {
    if constexpr (requires(const Result& r) { r.status(); }) {
      for (const Result& r : per) {
        if (!r.ok()) return r.status();
      }
    }
    return Status::Ok();
  }

  template <typename Result, typename Less>
  auto merge_planned_report(const Plan& plan, const std::vector<Result>& per,
                            size_t nq, Less less) const {
    using T = typename Result::value_type;
    if (Status poison = first_poison(per); !poison.ok()) {
      return BatchResult<T>(std::move(poison));
    }
    std::vector<size_t> offsets(nq + 1, 0);
    for (size_t q = 0; q < nq; ++q) {
      for (auto [s, j] : plan.entries[q]) offsets[q] += per[s].count(j);
    }
    asym::count_read(plan.visits);
    asym::count_write(nq);
    primitives::scan_exclusive(offsets);
    std::vector<T> items(offsets[nq]);
    parallel_for(
        0, nq,
        [&](size_t q) {
          T* out = items.data() + offsets[q];
          for (auto [s, j] : plan.entries[q]) {
            out = std::copy(per[s].begin(j), per[s].end(j), out);
          }
          std::sort(items.data() + offsets[q], out, less);
        },
        1);
    // One read + write per item for the concatenation and one more pair for
    // the canonicalizing sort pass, charged in bulk — a function of the
    // slice sizes alone, identical at every fanout and worker count.
    asym::count_read(2 * items.size());
    asym::count_write(2 * items.size());
    return BatchResult<T>(std::move(items), std::move(offsets));
  }

  std::vector<size_t> merge_planned_count(
      const Plan& plan, const std::vector<std::vector<size_t>>& per,
      size_t nq) const {
    std::vector<size_t> out(nq, 0);
    parallel_for(
        0, nq,
        [&](size_t q) {
          for (auto [s, j] : plan.entries[q]) out[q] += per[s][j];
        },
        1);
    asym::count_read(plan.visits);
    asym::count_write(nq);
    return out;
  }

  // Canonical top-k: `take` winners of (squared distance, coordinates).
  template <typename T>
  static void top_k_into(std::vector<std::pair<double, T>>& cand, T* out,
                         size_t take) {
    std::sort(cand.begin(), cand.end(),
              [](const std::pair<double, T>& a, const std::pair<double, T>& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second.coords < b.second.coords;
              });
    for (size_t j = 0; j < take; ++j) out[j] = cand[j].second;
  }

  // --- range bounds and rebalancing ------------------------------------

  // Equally-spaced quantiles of a sorted key sample become the S-1 split
  // points.
  std::vector<double> quantile_splits(
      const std::vector<double>& sorted_keys) const {
    size_t S = shards_.size();
    std::vector<double> sp(S - 1, 0.0);
    for (size_t s = 1; s < S; ++s) {
      sp[s - 1] = sorted_keys[s * sorted_keys.size() / S];
    }
    return sp;
  }
  void set_splits(const std::vector<double>& sorted_keys) {
    splits_ = quantile_splits(sorted_keys);
  }

  // Seeds the range partition from the first non-empty insert batch: a
  // deterministic evenly-strided sample of its partition keys, sorted, cut
  // at quantiles. Commit-time rebalancing corrects the seed as the record
  // set evolves.
  void ensure_bounds(const std::vector<Record>& recs) {
    if (routing_ != Routing::kRange || bounds_built_ || recs.empty()) return;
    size_t n = recs.size();
    size_t sample = std::min<size_t>(n, 4096);
    std::vector<double> keys(sample);
    for (size_t i = 0; i < sample; ++i) {
      keys[i] = Traits::partition_key(recs[i * n / sample]);
    }
    std::sort(keys.begin(), keys.end());
    set_splits(keys);
    bounds_built_ = true;
    asym::count_read(sample);
    asym::count_write(splits_.size() + 1);
  }

  static void extend_cover_with(Cover& c, const Record& r) {
    for (int d = 0; d < Traits::kCoverDims; ++d) {
      c.lo[d] = std::min(c.lo[d], Traits::cover_lo(r, d));
      c.hi[d] = std::max(c.hi[d], Traits::cover_hi(r, d));
    }
  }
  void extend_cover(size_t s, const Record& r) {
    extend_cover_with(cover_[s], r);
  }

  static constexpr uint64_t kRebalanceSlack = 64;

  // Commit-time load balancing (range policy): per-shard load = live
  // records + queries routed since the previous commit. When the heaviest
  // shard exceeds twice the mean load (plus slack so tiny sets never
  // thrash), the split points are recomputed as exact quantiles of the
  // live key set — the general form of splitting overloaded ranges and
  // merging underused neighbors — coverage is recomputed exactly, and the
  // records whose shard assignment changed migrate (each shard erases its
  // leavers and inserts its enterers; the sets are disjoint, so shards
  // migrate in parallel).
  void maybe_rebalance() {
    size_t S = shards_.size();
    std::vector<uint64_t> queries(S);
    for (size_t s = 0; s < S; ++s) {
      queries[s] = queries_routed_[s].exchange(0, std::memory_order_relaxed);
    }
    if (routing_ != Routing::kRange || !bounds_built_ || S == 1) return;
    uint64_t total = 0, max_load = 0;
    for (size_t s = 0; s < S; ++s) {
      uint64_t load = shards_[s].size() + queries[s];
      total += load;
      max_load = std::max(max_load, load);
    }
    if (max_load <= 2 * (total / S) + kRebalanceSlack) return;

    std::vector<std::vector<Record>> recs(S);
    parallel_for(
        0, S, [&](size_t s) { recs[s] = Traits::extract(shards_[s]); }, 1);
    size_t n = 0;
    for (const std::vector<Record>& v : recs) n += v.size();
    if (n == 0) return;
    std::vector<double> keys;
    keys.reserve(n);
    for (const std::vector<Record>& v : recs) {
      for (const Record& r : v) keys.push_back(Traits::partition_key(r));
    }
    std::sort(keys.begin(), keys.end());
    asym::count_read(n);
    asym::count_write(n);
    // Stage the new partition locally: splits_, cover_, and the shards are
    // only touched once the migration transaction has succeeded, so a
    // failed migration (injected fault, allocation failure) skips the
    // rebalance and leaves the just-committed epoch fully intact.
    std::vector<double> new_splits = quantile_splits(keys);
    if (new_splits == splits_) return;  // degenerate keys: no-op re-split

    std::vector<Cover> new_cover(S, empty_cover());
    std::vector<std::vector<Record>> leave(S), enter(S);
    for (size_t s = 0; s < S; ++s) {
      for (const Record& r : recs[s]) {
        size_t ns = shard_by_key_in(new_splits, Traits::partition_key(r));
        extend_cover_with(new_cover[ns], r);
        if (ns != s) {
          leave[s].push_back(r);
          enter[ns].push_back(r);
        }
      }
    }
    asym::count_read(n);
    // Migration order matters within the transaction's per-shard apply:
    // enterers insert first, then leavers erase (the sets are disjoint —
    // a record's old and new shard differ — so the order is safe and the
    // erase cannot miss).
    if (!apply_transaction(enter, leave).ok()) return;
    splits_ = std::move(new_splits);
    cover_ = std::move(new_cover);
    ++rebalances_;
  }

  // --- update routing ---------------------------------------------------

  // Routes one record batch into per-shard sub-batches (the read + write of
  // each record is the routing pass's bookkeeping charge).
  std::vector<std::vector<Record>> partition(
      const std::vector<Record>& recs) const {
    std::vector<std::vector<Record>> by(shards_.size());
    asym::count_read(recs.size());
    asym::count_write(recs.size());
    for (const Record& r : recs) by[shard_of(r)].push_back(r);
    return by;
  }

  // Post-publish coverage extension over a routed insert batch (the bounds
  // the planner prunes with). Runs only after a transaction succeeded, so a
  // rolled-back commit never widens a shard's pruning bounds.
  void extend_covers(const std::vector<std::vector<Record>>& by) {
    if (routing_ != Routing::kRange || !bounds_built_ || by.empty()) return;
    size_t n = 0;
    for (size_t s = 0; s < by.size(); ++s) {
      for (const Record& r : by[s]) extend_cover(s, r);
      n += by[s].size();
    }
    if (n == 0) return;
    asym::count_read(n);
    asym::count_write(by.size());
  }

  // --- staged-record validation -----------------------------------------

  // One record's well-formedness: finite coordinates, and l <= r for
  // interval-like records. A malformed record would corrupt BST key
  // comparisons inside the shard, so it is rejected before any shard work.
  static Status validate_record(const Record& rec, size_t ordinal,
                                const char* what) {
    if constexpr (requires { rec.l; rec.r; rec.id; }) {
      if (!std::isfinite(rec.l) || !std::isfinite(rec.r)) {
        return Status::InvalidArgument(
            std::string(what) + " record " + std::to_string(ordinal) +
            " (id " + std::to_string(rec.id) + "): non-finite endpoint");
      }
      if (rec.l > rec.r) {
        return Status::InvalidArgument(
            std::string(what) + " record " + std::to_string(ordinal) +
            " (id " + std::to_string(rec.id) + "): inverted interval [" +
            std::to_string(rec.l) + ", " + std::to_string(rec.r) + "]");
      }
    } else {
      for (double c : rec.coords) {
        if (!std::isfinite(c)) {
          return Status::InvalidArgument(std::string(what) + " record " +
                                         std::to_string(ordinal) +
                                         ": non-finite coordinate");
        }
      }
    }
    return Status::Ok();
  }

  // Validates one batch pre-transaction. Insert batches additionally check
  // the "validate" fault point (index = record ordinal) and reject ids
  // duplicated within the batch — the same id twice in one epoch has no
  // well-defined order, and the shard-level insert would silently clobber.
  // Ids already live in a shard are caught by that shard's own bulk_insert
  // during the shadow apply (and roll the transaction back). The scan is an
  // input-only bulk charge, so asym totals stay deterministic.
  Status validate_batch(const std::vector<Record>& recs, bool inserts) const {
    const char* what = inserts ? "staged insert" : "staged erase";
    asym::count_read(recs.size());
    for (size_t i = 0; i < recs.size(); ++i) {
      Status s = validate_record(recs[i], i, what);
      if (!s.ok()) return s;
      if (inserts && fault::should_fail("validate", i)) {
        return fault::injected("validate", i);
      }
    }
    if constexpr (requires(const Record& r) { r.id; }) {
      if (inserts) {
        std::unordered_set<uint32_t> seen;
        seen.reserve(recs.size());
        for (size_t i = 0; i < recs.size(); ++i) {
          if (!seen.insert(recs[i].id).second) {
            return Status::InvalidArgument(
                "staged insert record " + std::to_string(i) +
                ": duplicate id " + std::to_string(recs[i].id) +
                " within epoch");
          }
        }
      }
    }
    return Status::Ok();
  }

  Status validate_staged() const {
    Status s = validate_batch(staged_ins_, /*inserts=*/true);
    if (!s.ok()) return s;
    return validate_batch(staged_ers_, /*inserts=*/false);
  }

  // --- the transaction --------------------------------------------------

  // Applies per-shard insert then erase sub-batches all-or-nothing: every
  // shard with work stages into a shadow clone, and the clones replace the
  // live shards (a per-shard move) only after all of them succeeded. Empty
  // outer vectors mean "no batch of that kind". Failure modes per shard —
  // the "shard_apply" fault point (checked before the clone is even made),
  // a structure-level non-OK Status (id already live, "alloc" fault), or
  // std::bad_alloc thrown mid-apply — discard every clone and leave all
  // shards untouched; the first failing shard by id supplies the Status, so
  // the reported error is identical at every worker count. Returns the
  // total number of records actually erased on success.
  //
  // Cost: cloning charges one bulk read + write per live record of the
  // shards with work — the write-cost price of all-or-nothing publication;
  // shards without work are never cloned.
  Expected<size_t> apply_transaction(
      const std::vector<std::vector<Record>>& ins,
      const std::vector<std::vector<Record>>& ers) {
    size_t S = shards_.size();
    std::vector<std::unique_ptr<Structure>> shadow(S);
    std::vector<Status> status(S);
    std::vector<size_t> erased(S, 0);
    uint64_t cloned = 0;
    for (size_t s = 0; s < S; ++s) {
      bool has_ins = !ins.empty() && !ins[s].empty();
      bool has_ers = !ers.empty() && !ers[s].empty();
      if (has_ins || has_ers) cloned += shards_[s].size();
    }
    asym::count_read(cloned);
    asym::count_write(cloned);
    parallel_for(
        0, S,
        [&](size_t s) {
          bool has_ins = !ins.empty() && !ins[s].empty();
          bool has_ers = !ers.empty() && !ers[s].empty();
          if (!has_ins && !has_ers) return;
          if (fault::should_fail("shard_apply", s)) {
            status[s] = fault::injected("shard_apply", s);
            return;
          }
          try {
            shadow[s] = std::make_unique<Structure>(shards_[s]);
            if (has_ins) {
              Status r = shadow[s]->bulk_insert(ins[s]);
              if (!r.ok()) {
                status[s] = Status(r.code(), "shard " + std::to_string(s) +
                                                 ": " + r.message());
                return;
              }
            }
            if (has_ers) {
              Expected<size_t> r = shadow[s]->bulk_erase(ers[s]);
              if (!r.ok()) {
                status[s] =
                    Status(r.status().code(), "shard " + std::to_string(s) +
                                                  ": " + r.status().message());
                return;
              }
              erased[s] = r.value();
            }
          } catch (const std::bad_alloc&) {
            status[s] = Status::ResourceExhausted(
                "shard " + std::to_string(s) + ": allocation failed mid-apply");
          }
        },
        1);
    for (size_t s = 0; s < S; ++s) {
      if (!status[s].ok()) return status[s];  // clones discarded: rollback
    }
    size_t total = 0;
    for (size_t s = 0; s < S; ++s) {
      if (shadow[s] != nullptr) shards_[s] = std::move(*shadow[s]);
      total += erased[s];
    }
    return total;
  }

  // Runs one shard-level call on every shard concurrently (each call is
  // itself parallel inside via the two-phase engine; the scheduler nests
  // fork-join freely). Slot s is written by shard s alone.
  template <typename Run>
  auto run_shards(Run&& run) const {
    using R = std::invoke_result_t<Run&, const Structure&>;
    std::vector<R> per(shards_.size());
    parallel_for(
        0, shards_.size(),
        [&](size_t s) {
          per[s] = run(shards_[s]);
          maybe_poison(per[s], s);
        },
        1);
    return per;
  }

  // Counting family: merged count(q) = sum over shards.
  template <typename Run>
  std::vector<size_t> merge_count(size_t nq, Run&& run) const {
    auto per = run_shards(run);
    std::vector<size_t> out(nq, 0);
    parallel_for(
        0, nq,
        [&](size_t q) {
          for (const std::vector<size_t>& v : per) out[q] += v[q];
        },
        1);
    asym::count_read(per.size() * nq);
    asym::count_write(nq);
    return out;
  }

  // Reporting family: offset-arithmetic concatenation of the shard slices,
  // then the canonical per-slice sort.
  template <typename Run, typename Less>
  auto merge_report(size_t nq, Run&& run, Less less) const {
    using Result = std::invoke_result_t<Run&, const Structure&>;
    using T = typename Result::value_type;
    auto per = run_shards(run);
    if (Status poison = first_poison(per); !poison.ok()) {
      return BatchResult<T>(std::move(poison));
    }
    std::vector<size_t> offsets(nq + 1, 0);
    for (size_t q = 0; q < nq; ++q) {
      for (const Result& r : per) offsets[q] += r.count(q);
    }
    asym::count_read(per.size() * nq);
    asym::count_write(nq);
    primitives::scan_exclusive(offsets);
    std::vector<T> items(offsets[nq]);
    parallel_for(
        0, nq,
        [&](size_t q) {
          T* out = items.data() + offsets[q];
          for (const Result& r : per) {
            out = std::copy(r.begin(q), r.end(q), out);
          }
          std::sort(items.data() + offsets[q], out, less);
        },
        1);
    // One read + write per item for the concatenation and one more pair for
    // the canonicalizing sort pass, charged in bulk — a function of the
    // slice sizes alone, identical at every fanout and worker count.
    asym::count_read(2 * items.size());
    asym::count_write(2 * items.size());
    return BatchResult<T>(std::move(items), std::move(offsets));
  }

  std::vector<Structure> shards_;
  Routing routing_ = Routing::kHash;
  std::vector<Record> staged_ins_;
  std::vector<Record> staged_ers_;
  uint64_t version_ = 0;
  size_t last_commit_erased_ = 0;

  // Range-partition state (kRange only).
  bool bounds_built_ = false;
  std::vector<double> splits_;
  std::vector<Cover> cover_;
  size_t rebalances_ = 0;

  // Routing telemetry. Relaxed atomics: query wrappers are const and may
  // run concurrently; the counters are stats, not asym charges.
  mutable std::atomic<uint64_t> planner_queries_{0};
  mutable std::atomic<uint64_t> planner_visits_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> queries_routed_;
};

}  // namespace weg::parallel
