// Sharded serving layer over the batched-query engine.
//
// Sharded<Structure> splits the key space across S independent instances of
// one dynamic structure (fanout chosen at run time) with a per-structure
// key extractor (ShardTraits<Structure>::route_key): every record hashes to
// exactly one shard, so updates touch one instance and the instances share
// no state — shard-level work fans out on the scheduler with no locking.
//
// Queries: every batched query family the structure exposes is re-exposed
// here. The batch is broadcast to all S shards in parallel (each shard runs
// the existing two-phase engine over its subset), and the per-shard
// BatchResult slices are merged into one flat result by pure offset
// arithmetic: merged count(q) = sum over shards of count_s(q), an exclusive
// scan turns the counts into slice offsets, and each merged slice is filled
// by concatenating the shard slices. Each merged slice is then put into a
// canonical order — ascending ids for stabbing, lexicographic coordinates
// for range reports, (distance, coordinates) for kNN/ANN — so the merged
// result is a function of the *record set* alone: every fanout and every
// worker count returns bitwise-identical items, and the merge's asym
// read/write charges are bulk functions of the slice sizes (the same
// determinism contract the per-shard engines provide). kNN/ANN merge via a
// top-k (top-1) reduce over the per-shard candidate slices instead of plain
// concatenation.
//
// Epoch API: a serving loop alternates write batches and query batches
// without external locking by staging updates on the Sharded layer —
// begin_epoch() names the next version, stage_insert / stage_erase buffer
// records without touching any shard, and commit() partitions the staged
// batch by shard, applies every shard's bulk_insert + bulk_erase in
// parallel (insertions first, then erasures), and publishes the next
// version. Queries issued between commits read the last committed snapshot:
// staged records are invisible until their commit, so query batches may be
// freely interleaved with staging. The serving loop itself sequences
// commit() against in-flight query batches (phases, not locks); everything
// inside a phase parallelizes on the scheduler.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/asym/counters.h"
#include "src/augtree/interval_tree.h"
#include "src/geom/point.h"
#include "src/kdtree/dynamic.h"
#include "src/parallel/batch_query.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/sequence.h"

namespace weg::parallel {

// splitmix64 finalizer: the router's hash. Fanout is typically a small
// power of two, so the low bits must already be well mixed.
inline uint64_t shard_mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Per-structure key extraction: Record is the unit of update routing and
// route_key(rec) the 64-bit key the router hashes. Erasing a record must
// produce the same key as inserting it (routing is a pure function of the
// record), which is all the layer needs for correctness; the hash only
// affects balance.
template <typename Structure>
struct ShardTraits;

template <>
struct ShardTraits<augtree::DynamicIntervalTree> {
  using Record = augtree::Interval;
  static uint64_t route_key(const Record& iv) {
    uint64_t h = shard_mix(std::bit_cast<uint64_t>(iv.l));
    h = shard_mix(h ^ std::bit_cast<uint64_t>(iv.r));
    return shard_mix(h ^ iv.id);
  }
};

namespace detail {

template <int K>
struct PointRouteTraits {
  using Record = geom::PointK<K>;
  static uint64_t route_key(const Record& p) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int d = 0; d < K; ++d) {
      h = shard_mix(h ^ std::bit_cast<uint64_t>(p[d]));
    }
    return h;
  }
};

// Canonical slice orders for the merge.
struct IdLess {
  bool operator()(uint32_t a, uint32_t b) const { return a < b; }
};
struct CoordLess {
  template <typename P>
  bool operator()(const P& a, const P& b) const {
    return a.coords < b.coords;
  }
};

}  // namespace detail

template <int K>
struct ShardTraits<kdtree::LogForest<K>> : detail::PointRouteTraits<K> {};
template <int K>
struct ShardTraits<kdtree::DynamicKdTree<K>> : detail::PointRouteTraits<K> {};

template <typename Structure>
class Sharded {
 public:
  using Traits = ShardTraits<Structure>;
  using Record = typename Traits::Record;

  // Constructs `fanout` shards, each as Structure(args...). Fanout 0 is
  // clamped to 1 (the degenerate unsharded layout).
  template <typename... Args>
  explicit Sharded(size_t fanout, const Args&... args) {
    if (fanout == 0) fanout = 1;
    shards_.reserve(fanout);
    for (size_t s = 0; s < fanout; ++s) shards_.emplace_back(args...);
  }

  size_t fanout() const { return shards_.size(); }
  size_t shard_of(const Record& rec) const {
    return Traits::route_key(rec) % shards_.size();
  }
  Structure& shard(size_t s) { return shards_[s]; }
  const Structure& shard(size_t s) const { return shards_[s]; }
  size_t size() const {
    size_t total = 0;
    for (const Structure& s : shards_) total += s.size();
    return total;
  }

  // --- epoch-versioned updates -----------------------------------------

  uint64_t version() const { return version_; }
  size_t staged_inserts() const { return staged_ins_.size(); }
  size_t staged_erases() const { return staged_ers_.size(); }
  // Number of staged erasures the last commit() actually applied.
  size_t last_commit_erased() const { return last_commit_erased_; }

  // Names the epoch the next commit() will publish. Declarative: staging is
  // buffered either way; serving loops call this to label the write batch
  // they are filling.
  uint64_t begin_epoch() const { return version_ + 1; }

  void stage_insert(const Record& rec) { staged_ins_.push_back(rec); }
  void stage_erase(const Record& rec) { staged_ers_.push_back(rec); }

  // Applies the staged batch — every shard's share via bulk_insert then
  // bulk_erase, all shards in parallel — and publishes the next version.
  // A record staged for both insert and erase in one epoch is inserted,
  // then erased: the committed snapshot does not contain it.
  uint64_t commit() {
    last_commit_erased_ =
        apply_batches(partition(staged_ins_), partition(staged_ers_));
    staged_ins_.clear();
    staged_ers_.clear();
    return ++version_;
  }

  // Immediate one-batch epochs: route and apply `recs` in one step and
  // publish a version of their own. Records staged for the in-progress
  // epoch (if any) are left staged — only commit() consumes them.
  void bulk_insert(const std::vector<Record>& recs) {
    apply_batches(partition(recs), {});
    ++version_;
  }
  size_t bulk_erase(const std::vector<Record>& recs) {
    size_t erased = apply_batches({}, partition(recs));
    ++version_;
    return erased;
  }

  // --- batched queries --------------------------------------------------
  //
  // All wrappers are member templates constrained on the wrapped structure
  // actually exposing the family, so Sharded<DynamicIntervalTree> has stab
  // entry points and Sharded<LogForest<2>> has the spatial ones.

  template <typename Q>
  auto stab_batch(const std::vector<Q>& qs) const
    requires requires(const Structure& s) { s.stab_batch(qs); }
  {
    return merge_report(
        qs.size(), [&](const Structure& s) { return s.stab_batch(qs); },
        detail::IdLess{});
  }

  template <typename Q>
  auto stab_count_batch(const std::vector<Q>& qs) const
    requires requires(const Structure& s) { s.stab_count_batch(qs); }
  {
    return merge_count(qs.size(), [&](const Structure& s) {
      return s.stab_count_batch(qs);
    });
  }

  template <typename B>
  auto range_count_batch(const std::vector<B>& qs) const
    requires requires(const Structure& s) { s.range_count_batch(qs); }
  {
    return merge_count(qs.size(), [&](const Structure& s) {
      return s.range_count_batch(qs);
    });
  }

  template <typename B>
  auto range_report_batch(const std::vector<B>& qs) const
    requires requires(const Structure& s) { s.range_report_batch(qs); }
  {
    return merge_report(
        qs.size(),
        [&](const Structure& s) { return s.range_report_batch(qs); },
        detail::CoordLess{});
  }

  // k-NN: each shard reports its min(k, shard-live) nearest candidates in
  // the canonical (distance, coordinates) order; the merge keeps the k best
  // per query, so the merged slice equals the unsharded structure's
  // min(k, live) nearest in the same order.
  template <typename P>
  auto knn_batch(const std::vector<P>& qs, size_t k) const
    requires requires(const Structure& s) { s.knn_batch(qs, k); }
  {
    using Result =
        std::decay_t<decltype(std::declval<const Structure&>().knn_batch(
            qs, k))>;
    using T = typename Result::value_type;
    auto per = run_shards([&](const Structure& s) {
      return s.knn_batch(qs, k);
    });
    size_t nq = qs.size();
    std::vector<size_t> offsets(nq + 1, 0);
    for (size_t q = 0; q < nq; ++q) {
      size_t total = 0;
      for (const Result& r : per) total += r.count(q);
      offsets[q] = std::min(k, total);
    }
    asym::count_read(per.size() * nq);
    asym::count_write(nq);
    primitives::scan_exclusive(offsets);
    std::vector<T> items(offsets[nq]);
    parallel_for(
        0, nq,
        [&](size_t q) {
          std::vector<std::pair<double, T>> cand;
          for (const Result& r : per) {
            for (const T* it = r.begin(q); it != r.end(q); ++it) {
              cand.emplace_back(geom::squared_distance(*it, qs[q]), *it);
            }
          }
          std::sort(cand.begin(), cand.end(),
                    [](const std::pair<double, T>& a,
                       const std::pair<double, T>& b) {
                      if (a.first != b.first) return a.first < b.first;
                      return a.second.coords < b.second.coords;
                    });
          T* out = items.data() + offsets[q];
          size_t take = offsets[q + 1] - offsets[q];
          for (size_t j = 0; j < take; ++j) out[j] = cand[j].second;
        },
        1);
    // Candidate gather + winner writes, charged in bulk (deterministic:
    // slice sizes are functions of the record set and k alone).
    size_t gathered = 0;
    for (const Result& r : per) gathered += r.total();
    asym::count_read(gathered);
    asym::count_write(items.size());
    return BatchResult<T>(std::move(items), std::move(offsets));
  }

  // ANN: top-1 reduce — the best shard answer by (distance, coordinates).
  // Each shard answer is a (1+eps)-ANN of its subset, so the reduced answer
  // is a (1+eps)-ANN of the union; eps = 0 gives the exact NN.
  template <typename P>
  auto ann_batch(const std::vector<P>& qs, double eps = 0.0) const
    requires requires(const Structure& s) { s.ann_batch(qs, eps); }
  {
    auto per = run_shards([&](const Structure& s) {
      return s.ann_batch(qs, eps);
    });
    using Vec = std::decay_t<decltype(per[0])>;
    size_t nq = qs.size();
    Vec out(nq);
    parallel_for(
        0, nq,
        [&](size_t q) {
          for (const Vec& v : per) {
            if (!v[q].has_value()) continue;
            if (!out[q].has_value()) {
              out[q] = v[q];
              continue;
            }
            double cur = geom::squared_distance(*out[q], qs[q]);
            double alt = geom::squared_distance(*v[q], qs[q]);
            if (alt < cur ||
                (alt == cur && (*v[q]).coords < (*out[q]).coords)) {
              out[q] = v[q];
            }
          }
        },
        1);
    asym::count_read(per.size() * nq);
    asym::count_write(nq);
    return out;
  }

 private:
  // Routes one record batch into per-shard sub-batches (the read + write of
  // each record is the routing pass's bookkeeping charge).
  std::vector<std::vector<Record>> partition(
      const std::vector<Record>& recs) const {
    std::vector<std::vector<Record>> by(shards_.size());
    asym::count_read(recs.size());
    asym::count_write(recs.size());
    for (const Record& r : recs) by[shard_of(r)].push_back(r);
    return by;
  }

  // Applies per-shard insert then erase sub-batches, all shards in
  // parallel; empty outer vectors mean "no batch of that kind". Returns the
  // total number of records actually erased.
  size_t apply_batches(const std::vector<std::vector<Record>>& ins,
                       const std::vector<std::vector<Record>>& ers) {
    std::vector<size_t> erased(shards_.size(), 0);
    parallel_for(
        0, shards_.size(),
        [&](size_t s) {
          if (!ins.empty() && !ins[s].empty()) shards_[s].bulk_insert(ins[s]);
          if (!ers.empty() && !ers[s].empty()) {
            erased[s] = shards_[s].bulk_erase(ers[s]);
          }
        },
        1);
    size_t total = 0;
    for (size_t e : erased) total += e;
    return total;
  }

  // Runs one shard-level call on every shard concurrently (each call is
  // itself parallel inside via the two-phase engine; the scheduler nests
  // fork-join freely). Slot s is written by shard s alone.
  template <typename Run>
  auto run_shards(Run&& run) const {
    using R = std::invoke_result_t<Run&, const Structure&>;
    std::vector<R> per(shards_.size());
    parallel_for(
        0, shards_.size(), [&](size_t s) { per[s] = run(shards_[s]); }, 1);
    return per;
  }

  // Counting family: merged count(q) = sum over shards.
  template <typename Run>
  std::vector<size_t> merge_count(size_t nq, Run&& run) const {
    auto per = run_shards(run);
    std::vector<size_t> out(nq, 0);
    parallel_for(
        0, nq,
        [&](size_t q) {
          for (const std::vector<size_t>& v : per) out[q] += v[q];
        },
        1);
    asym::count_read(per.size() * nq);
    asym::count_write(nq);
    return out;
  }

  // Reporting family: offset-arithmetic concatenation of the shard slices,
  // then the canonical per-slice sort.
  template <typename Run, typename Less>
  auto merge_report(size_t nq, Run&& run, Less less) const {
    using Result = std::invoke_result_t<Run&, const Structure&>;
    using T = typename Result::value_type;
    auto per = run_shards(run);
    std::vector<size_t> offsets(nq + 1, 0);
    for (size_t q = 0; q < nq; ++q) {
      for (const Result& r : per) offsets[q] += r.count(q);
    }
    asym::count_read(per.size() * nq);
    asym::count_write(nq);
    primitives::scan_exclusive(offsets);
    std::vector<T> items(offsets[nq]);
    parallel_for(
        0, nq,
        [&](size_t q) {
          T* out = items.data() + offsets[q];
          for (const Result& r : per) {
            out = std::copy(r.begin(q), r.end(q), out);
          }
          std::sort(items.data() + offsets[q], out, less);
        },
        1);
    // One read + write per item for the concatenation and one more pair for
    // the canonicalizing sort pass, charged in bulk — a function of the
    // slice sizes alone, identical at every fanout and worker count.
    asym::count_read(2 * items.size());
    asym::count_write(2 * items.size());
    return BatchResult<T>(std::move(items), std::move(offsets));
  }

  std::vector<Structure> shards_;
  std::vector<Record> staged_ins_;
  std::vector<Record> staged_ers_;
  uint64_t version_ = 0;
  size_t last_commit_erased_ = 0;
};

}  // namespace weg::parallel
