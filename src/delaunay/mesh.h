// Triangle mesh substrate for the Delaunay algorithms (Section 5).
//
// Triangles are records in a pre-sized pool (parallel insertions allocate
// slots from an atomic counter). Each triangle stores its three vertices
// (CCW), the three neighbors across its edges, an aliveness flag, a
// reservation word for the deterministic-reservation parallel rounds, and
// its *history children*: when a cavity is retriangulated, every dead cavity
// triangle records all new triangles of that cavity as children. This yields
// the tracing structure of Section 5 / Figure 1 (a superset of its edges):
//   * traceable property: p encroaches a new triangle (u,w,v) only if it
//     encroached one of the two old triangles sharing (u,w) — the classical
//     disk lemma;
//   * descent property: if p encroaches a dead triangle it encroaches some
//     new triangle of the cavity that killed it (walk the segment towards p
//     through the cavity and apply the disk lemma at the crossed boundary
//     edge), so a root-to-leaf search by encroachment always succeeds.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/asym/counters.h"
#include "src/geom/predicates.h"

namespace weg::delaunay {

inline constexpr uint32_t kNoTri = UINT32_MAX;

struct Triangle {
  uint32_t v[3] = {0, 0, 0};        // CCW vertex ids
  // nbr[i] across edge (v[i], v[i+1])
  uint32_t nbr[3] = {kNoTri, kNoTri, kNoTri};
  std::atomic<uint32_t> reserve{UINT32_MAX};   // priority-write reservation
  std::atomic<bool> alive{false};
  std::vector<uint32_t> children;   // history successors (set at death)

  Triangle() = default;
};

class Mesh {
 public:
  // `capacity` bounds the total number of triangles ever created.
  Mesh(std::vector<geom::GridPoint> vertices, size_t capacity);

  const std::vector<geom::GridPoint>& vertices() const { return verts_; }
  size_t num_created() const { return next_.load(std::memory_order_relaxed); }
  uint32_t root() const { return root_; }

  Triangle& tri(uint32_t t) { return pool_[t]; }
  const Triangle& tri(uint32_t t) const { return pool_[t]; }

  // True iff vertex p encroaches triangle t (p strictly inside t's
  // circumcircle under symbolic perturbation). Charges one read.
  bool encroaches(uint32_t p, uint32_t t) const;

  // Creates the initial bounding triangle over the last three vertices
  // (which must be the bounding vertices) and returns its id.
  uint32_t init_bounding(uint32_t a, uint32_t b, uint32_t c);

  // Walks the history from `from` down to an alive triangle encroached by p.
  // Calls step(t) for every history node visited (for per-mode read/write
  // accounting). Returns kNoTri only if `from` itself is not encroached.
  template <typename Step>
  uint32_t descend(uint32_t p, uint32_t from, Step&& step) const {
    uint32_t t = from;
    if (!encroaches(p, t)) return kNoTri;
    while (!pool_[t].alive.load(std::memory_order_acquire)) {
      step(t);
      uint32_t next = kNoTri;
      for (uint32_t c : pool_[t].children) {
        if (encroaches(p, c)) {
          next = c;
          break;
        }
      }
      // Descent property guarantees progress (see file comment).
      if (next == kNoTri) return kNoTri;  // defensive: treat as retry
      t = next;
    }
    step(t);
    return t;
  }

  // Computes the cavity of vertex p seeded at alive encroached triangle
  // `seed`: BFS over alive neighbors by encroachment, then star-shape repair
  // (boundary edges must be CCW-visible from p; offending outside triangles
  // are absorbed). Outputs dead-triangle set and the boundary loop as
  // directed edges (u, w) with their outside triangle and its edge index.
  struct Boundary {
    uint32_t u, w;        // directed edge, cavity on the left
    uint32_t outside;     // triangle beyond (u, w); kNoTri at the hull
    int outside_edge;     // index of (w, u) in `outside`
  };
  void cavity(uint32_t p, uint32_t seed, std::vector<uint32_t>& dead,
              std::vector<Boundary>& boundary) const;

  // Replaces the cavity by the fan around p. Returns the new triangles.
  // Thread-safe for disjoint cavities (reservation protocol guarantees
  // exclusivity). Appends history children to every dead triangle.
  void retriangulate(uint32_t p, const std::vector<uint32_t>& dead,
                     const std::vector<Boundary>& boundary,
                     std::vector<uint32_t>& fresh);

  // All alive triangles (test/bench helper, uncounted).
  std::vector<uint32_t> alive_triangles() const;

  // Checks mesh consistency: neighbor symmetry, CCW orientation (under SoS),
  // and (expensive, optional) the empty-circle property of every alive
  // triangle not touching the last three (bounding) vertices against all
  // non-bounding vertices in `check_points`.
  bool validate(bool check_delaunay, const std::vector<uint32_t>* check_points
                                         = nullptr) const;

 private:
  uint32_t alloc() {
    uint32_t t = next_.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  std::vector<geom::GridPoint> verts_;
  std::vector<Triangle> pool_;
  std::atomic<uint32_t> next_{0};
  uint32_t root_ = kNoTri;
};

}  // namespace weg::delaunay
