#include "src/delaunay/mesh.h"

#include <algorithm>
#include <cassert>

namespace weg::delaunay {

Mesh::Mesh(std::vector<geom::GridPoint> vertices, size_t capacity)
    : verts_(std::move(vertices)), pool_(capacity) {}

bool Mesh::encroaches(uint32_t p, uint32_t t) const {
  asym::count_read();
  const Triangle& tr = pool_[t];
  return geom::in_circle_sos(verts_[tr.v[0]], verts_[tr.v[1]],
                             verts_[tr.v[2]], verts_[p]);
}

uint32_t Mesh::init_bounding(uint32_t a, uint32_t b, uint32_t c) {
  if (geom::orient2d_sos(verts_[a], verts_[b], verts_[c]) < 0) std::swap(b, c);
  uint32_t t = alloc();
  Triangle& tr = pool_[t];
  tr.v[0] = a;
  tr.v[1] = b;
  tr.v[2] = c;
  tr.alive.store(true, std::memory_order_release);
  asym::count_write();
  root_ = t;
  return t;
}

void Mesh::cavity(uint32_t p, uint32_t seed, std::vector<uint32_t>& dead,
                  std::vector<Boundary>& boundary) const {
  dead.clear();
  boundary.clear();
  auto in_dead = [&](uint32_t t) {
    return std::find(dead.begin(), dead.end(), t) != dead.end();
  };
  // BFS over alive encroached neighbors.
  dead.push_back(seed);
  for (size_t i = 0; i < dead.size(); ++i) {
    const Triangle& tr = pool_[dead[i]];
    for (int e = 0; e < 3; ++e) {
      uint32_t nb = tr.nbr[e];
      if (nb == kNoTri || in_dead(nb)) continue;
      if (encroaches(p, nb)) dead.push_back(nb);
    }
  }
  // Star-shape repair: every boundary edge (u, w) must be CCW-visible from
  // p; absorb offending outside triangles (rare, only under degeneracy).
  while (true) {
    boundary.clear();
    bool repaired = false;
    for (uint32_t t : dead) {
      const Triangle& tr = pool_[t];
      for (int e = 0; e < 3 && !repaired; ++e) {
        uint32_t nb = tr.nbr[e];
        if (nb != kNoTri && in_dead(nb)) continue;
        uint32_t u = tr.v[e], w = tr.v[(e + 1) % 3];
        if (geom::orient2d_sos(verts_[u], verts_[w], verts_[p]) <= 0) {
          // p not strictly left of u->w: absorb the outside triangle.
          assert(nb != kNoTri && "point escaped the bounding triangle");
          dead.push_back(nb);
          repaired = true;
          break;
        }
        int oe = -1;
        if (nb != kNoTri) {
          const Triangle& ot = pool_[nb];
          for (int k = 0; k < 3; ++k) {
            if (ot.v[k] == w && ot.v[(k + 1) % 3] == u) oe = k;
          }
          assert(oe >= 0);
        }
        boundary.push_back(Boundary{u, w, nb, oe});
      }
      if (repaired) break;
    }
    if (!repaired) break;
  }
  // Order the boundary into a cycle (w of one edge == u of the next).
  std::vector<Boundary> cycle;
  cycle.reserve(boundary.size());
  cycle.push_back(boundary[0]);
  while (cycle.size() < boundary.size()) {
    uint32_t want = cycle.back().w;
    bool found = false;
    for (const Boundary& b : boundary) {
      if (b.u == want) {
        cycle.push_back(b);
        found = true;
        break;
      }
    }
    assert(found && "cavity boundary is not a simple cycle");
    if (!found) break;
  }
  boundary.swap(cycle);
}

void Mesh::retriangulate(uint32_t p, const std::vector<uint32_t>& dead,
                         const std::vector<Boundary>& boundary,
                         std::vector<uint32_t>& fresh) {
  size_t k = boundary.size();
  fresh.clear();
  fresh.reserve(k);
  for (size_t i = 0; i < k; ++i) fresh.push_back(alloc());
  assert(fresh.back() < pool_.size() && "triangle pool exhausted");
  for (size_t i = 0; i < k; ++i) {
    const Boundary& b = boundary[i];
    Triangle& nt = pool_[fresh[i]];
    nt.v[0] = b.u;
    nt.v[1] = b.w;
    nt.v[2] = p;
    nt.nbr[0] = b.outside;
    nt.nbr[1] = fresh[(i + 1) % k];  // edge (w, p)
    nt.nbr[2] = fresh[(i + k - 1) % k];  // edge (p, u)
    nt.children.clear();
    asym::count_write(2);  // vertex + neighbor records
    if (b.outside != kNoTri) {
      pool_[b.outside].nbr[b.outside_edge] = fresh[i];
      asym::count_write();
    }
    nt.alive.store(true, std::memory_order_release);
  }
  for (uint32_t t : dead) {
    Triangle& tr = pool_[t];
    tr.children = fresh;  // all-to-all history linking (see header)
    tr.alive.store(false, std::memory_order_release);
    asym::count_write();
  }
}

std::vector<uint32_t> Mesh::alive_triangles() const {
  std::vector<uint32_t> out;
  uint32_t n = next_.load(std::memory_order_acquire);
  for (uint32_t t = 0; t < n; ++t) {
    if (pool_[t].alive.load(std::memory_order_relaxed)) out.push_back(t);
  }
  return out;
}

bool Mesh::validate(bool check_delaunay,
                    const std::vector<uint32_t>* check_points) const {
  auto alive = alive_triangles();
  size_t nb_verts = 3;  // bounding vertices are the last three
  uint32_t bound_lo = static_cast<uint32_t>(verts_.size() - nb_verts);
  for (uint32_t t : alive) {
    const Triangle& tr = pool_[t];
    // Orientation.
    if (geom::orient2d_sos(verts_[tr.v[0]], verts_[tr.v[1]],
                           verts_[tr.v[2]]) <= 0) {
      return false;
    }
    // Neighbor symmetry.
    for (int e = 0; e < 3; ++e) {
      uint32_t nb = tr.nbr[e];
      if (nb == kNoTri) continue;
      if (!pool_[nb].alive.load(std::memory_order_relaxed)) return false;
      uint32_t u = tr.v[e], w = tr.v[(e + 1) % 3];
      bool ok = false;
      for (int k = 0; k < 3; ++k) {
        if (pool_[nb].v[k] == w && pool_[nb].v[(k + 1) % 3] == u &&
            pool_[nb].nbr[k] == t) {
          ok = true;
        }
      }
      if (!ok) return false;
    }
  }
  if (check_delaunay && check_points) {
    for (uint32_t t : alive) {
      const Triangle& tr = pool_[t];
      bool touches_bounding = tr.v[0] >= bound_lo || tr.v[1] >= bound_lo ||
                              tr.v[2] >= bound_lo;
      if (touches_bounding) continue;
      for (uint32_t p : *check_points) {
        if (p == tr.v[0] || p == tr.v[1] || p == tr.v[2]) continue;
        if (geom::in_circle_sos(verts_[tr.v[0]], verts_[tr.v[1]],
                                verts_[tr.v[2]], verts_[p])) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace weg::delaunay
