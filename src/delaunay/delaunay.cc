#include "src/delaunay/delaunay.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "src/core/prefix_doubling.h"
#include "src/parallel/parallel_for.h"
#include "src/parallel/priority_write.h"
#include "src/primitives/sequence.h"

namespace weg::delaunay {

namespace {

constexpr int64_t kGrid = int64_t{1} << 24;  // coordinates in [0, 2^24)

struct PerPoint {
  uint32_t seed = kNoTri;
  std::vector<uint32_t> dead;
  std::vector<Mesh::Boundary> boundary;
  bool won = false;
};

// Fixed block size for the uncounted bookkeeping passes (bounding box,
// active-set compaction): never a function of the worker count, so the
// rounds — and every counted access they make — are identical at every
// WEG_NUM_THREADS. These passes mirror primitives::reduce/pack but stay
// local: the shared helpers charge asym counts and take whole sequences,
// while these are uncounted bookkeeping over subranges/scratch.
constexpr size_t kBlock = primitives::kBlockSize;

}  // namespace

std::vector<geom::GridPoint> quantize(const std::vector<geom::Point2>& pts,
                                      size_t* duplicates_dropped) {
  double minx = 0, maxx = 1, miny = 0, maxy = 1;
  if (!pts.empty()) {
    // Blocked parallel min/max reduction (partials live in symmetric
    // memory: uncounted, like the serial pass it replaces).
    size_t n = pts.size();
    size_t nb = (n + kBlock - 1) / kBlock;
    std::vector<std::array<double, 4>> partial(nb);
    parallel::parallel_for(
        0, nb,
        [&](size_t b) {
          size_t lo = b * kBlock, hi = std::min(n, lo + kBlock);
          std::array<double, 4> acc = {pts[lo][0], pts[lo][0], pts[lo][1],
                                       pts[lo][1]};
          for (size_t i = lo + 1; i < hi; ++i) {
            acc[0] = std::min(acc[0], pts[i][0]);
            acc[1] = std::max(acc[1], pts[i][0]);
            acc[2] = std::min(acc[2], pts[i][1]);
            acc[3] = std::max(acc[3], pts[i][1]);
          }
          partial[b] = acc;
        },
        1);
    minx = maxx = pts[0][0];
    miny = maxy = pts[0][1];
    for (const auto& acc : partial) {
      minx = std::min(minx, acc[0]);
      maxx = std::max(maxx, acc[1]);
      miny = std::min(miny, acc[2]);
      maxy = std::max(maxy, acc[3]);
    }
  }
  double sx = (maxx > minx) ? (static_cast<double>(kGrid - 1) / (maxx - minx))
                            : 0.0;
  double sy = (maxy > miny) ? (static_cast<double>(kGrid - 1) / (maxy - miny))
                            : 0.0;
  std::vector<geom::GridPoint> out;
  out.reserve(pts.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(2 * pts.size());
  size_t dropped = 0;
  for (const auto& p : pts) {
    int64_t x = static_cast<int64_t>(std::llround((p[0] - minx) * sx));
    int64_t y = static_cast<int64_t>(std::llround((p[1] - miny) * sy));
    uint64_t key = (static_cast<uint64_t>(x) << 32) | static_cast<uint64_t>(y);
    if (!seen.insert(key).second) {
      ++dropped;
      continue;
    }
    out.push_back(
        geom::GridPoint{x, y, static_cast<uint32_t>(out.size())});
  }
  if (duplicates_dropped) *duplicates_dropped = dropped;
  return out;
}

std::unique_ptr<Mesh> triangulate(const std::vector<geom::GridPoint>& pts,
                                  Mode mode, DTStats* stats) {
  size_t n = pts.size();
  DTStats local{};
  asym::Region region;

  // Vertex array: points then the three bounding vertices (far outside the
  // grid but within the exact-predicate coordinate bound).
  std::vector<geom::GridPoint> verts = pts;
  uint32_t ba = static_cast<uint32_t>(n), bb = ba + 1, bc = ba + 2;
  verts.push_back(geom::GridPoint{-3 * kGrid, -3 * kGrid, ba});
  verts.push_back(geom::GridPoint{7 * kGrid, -3 * kGrid, bb});
  verts.push_back(geom::GridPoint{-3 * kGrid, 7 * kGrid, bc});

  auto mesh = std::make_unique<Mesh>(std::move(verts), 12 * n + 64);
  mesh->init_bounding(ba, bb, bc);

  std::vector<std::pair<size_t, size_t>> batches;
  if (mode == Mode::kWriteEfficient) {
    batches = core::prefix_doubling_rounds(n);
  } else if (n > 0) {
    batches.emplace_back(0, n);
  }
  local.prefix_rounds = batches.size();

  std::vector<PerPoint> state(n);
  std::atomic<uint64_t> history_steps{0};
  std::atomic<uint64_t> cavity_total{0};
  std::atomic<size_t> retries{0};

  for (auto [blo, bhi] : batches) {
    std::vector<uint32_t> active(bhi - blo);
    parallel::parallel_for(blo, bhi, [&](size_t i) {
      active[i - blo] = static_cast<uint32_t>(i);
      state[i].seed = mesh->root();
    });
    size_t inserted_in_batch = 0;
    while (!active.empty()) {
      ++local.sub_rounds;
      // Only a prefix of the active points proportional to the current mesh
      // size attempts insertion this round (the standard deterministic-
      // reservation prefix): waiting points do no work and incur no traffic,
      // and their eventual descent visits the same history nodes regardless
      // of when it runs, so the per-mode write accounting is unchanged.
      size_t attempt = std::min(
          active.size(),
          std::max<size_t>(64, 2 * (blo + inserted_in_batch) + 2));
      parallel::parallel_for(0, attempt, [&](size_t i) {
        uint32_t p = active[i];
        PerPoint& st = state[p];
        uint64_t steps = 0;
        uint32_t start = st.seed;
        uint32_t found = mesh->descend(p, start, [&](uint32_t) {
          ++steps;
          if (mode == Mode::kBaseline) {
            // Algorithm 2: the point is rewritten into the encroached set of
            // the next triangle at every step of its descent.
            asym::count_write();
          }
        });
        if (found == kNoTri) {
          // Defensive: restart from the root (cannot happen for consistent
          // predicates; kept for robustness).
          found = mesh->descend(p, mesh->root(), [&](uint32_t) { ++steps; });
          assert(found != kNoTri);
        }
        history_steps.fetch_add(steps, std::memory_order_relaxed);
        if (mode == Mode::kWriteEfficient && found != start) {
          // DAG tracing: one write to record the new placement.
          asym::count_write();
        }
        st.seed = found;
        mesh->cavity(p, st.seed, st.dead, st.boundary);
      });
      // Phase 2: reserve cavity + boundary outside triangles.
      parallel::parallel_for(0, attempt, [&](size_t i) {
        uint32_t p = active[i];
        PerPoint& st = state[p];
        for (uint32_t t : st.dead) {
          asym::count_write();
          parallel::write_min(&mesh->tri(t).reserve, p);
        }
        for (const auto& b : st.boundary) {
          if (b.outside != kNoTri) {
            asym::count_write();
            parallel::write_min(&mesh->tri(b.outside).reserve, p);
          }
        }
      });
      // Phase 3: winners commit.
      std::vector<uint8_t> done(attempt, 0);
      parallel::parallel_for(0, attempt, [&](size_t i) {
        uint32_t p = active[i];
        PerPoint& st = state[p];
        bool win = true;
        for (uint32_t t : st.dead) {
          asym::count_read();
          if (mesh->tri(t).reserve.load(std::memory_order_acquire) != p) {
            win = false;
            break;
          }
        }
        if (win) {
          for (const auto& b : st.boundary) {
            asym::count_read();
            if (b.outside != kNoTri &&
                mesh->tri(b.outside).reserve.load(std::memory_order_acquire) !=
                    p) {
              win = false;
              break;
            }
          }
        }
        if (!win) {
          retries.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::vector<uint32_t> fresh;
        mesh->retriangulate(p, st.dead, st.boundary, fresh);
        cavity_total.fetch_add(st.dead.size(), std::memory_order_relaxed);
        done[i] = 1;
      });
      // Phase 4: clear reservations and compact the active set.
      parallel::parallel_for(0, attempt, [&](size_t i) {
        uint32_t p = active[i];
        PerPoint& st = state[p];
        for (uint32_t t : st.dead) {
          mesh->tri(t).reserve.store(UINT32_MAX, std::memory_order_relaxed);
        }
        for (const auto& b : st.boundary) {
          if (b.outside != kNoTri) {
            mesh->tri(b.outside).reserve.store(UINT32_MAX,
                                               std::memory_order_relaxed);
          }
        }
      });
      // Compact the round's survivors with a blocked stable pack (pure
      // bookkeeping over symmetric-memory scratch: uncounted, like the
      // serial loop it replaces).
      size_t nb = (attempt + kBlock - 1) / kBlock;
      std::vector<size_t> offs(nb, 0);
      parallel::parallel_for(
          0, nb,
          [&](size_t b) {
            size_t lo = b * kBlock, hi = std::min(attempt, lo + kBlock);
            size_t c = 0;
            for (size_t i = lo; i < hi; ++i) c += done[i] ? 0 : 1;
            offs[b] = c;
          },
          1);
      size_t kept = 0;
      for (size_t b = 0; b < nb; ++b) {
        size_t c = offs[b];
        offs[b] = kept;
        kept += c;
      }
      std::vector<uint32_t> next(kept + (active.size() - attempt));
      parallel::parallel_for(
          0, nb,
          [&](size_t b) {
            size_t lo = b * kBlock, hi = std::min(attempt, lo + kBlock);
            size_t pos = offs[b];
            for (size_t i = lo; i < hi; ++i) {
              if (!done[i]) next[pos++] = active[i];
            }
          },
          1);
      parallel::parallel_for(attempt, active.size(), [&](size_t i) {
        next[kept + (i - attempt)] = active[i];
      });
      inserted_in_batch += attempt - kept;
      active.swap(next);
    }
  }

  local.cost = region.delta();
  local.history_steps = history_steps.load();
  local.cavity_triangles = cavity_total.load();
  local.retries = retries.load();
  local.triangles_created = mesh->num_created();
  local.points_inserted = n;
  if (stats) *stats = local;
  return mesh;
}

std::unique_ptr<Mesh> triangulate(const std::vector<geom::Point2>& pts,
                                  Mode mode, DTStats* stats) {
  size_t dropped = 0;
  auto grid = quantize(pts, &dropped);
  auto mesh = triangulate(grid, mode, stats);
  if (stats) stats->duplicates_dropped = dropped;
  return mesh;
}

}  // namespace weg::delaunay
