// Planar Delaunay triangulation (Section 5, Theorem 5.1).
//
// Both variants run the same deterministic-reservation parallel engine (the
// formulation of BGSS [16] used in the authors' benchmark suite): in every
// sub-round each yet-uninserted point locates an alive triangle its
// insertion conflicts with, computes its cavity, reserves the cavity plus
// the boundary's outside triangles with priority-writes, and the points
// that win all reservations commit (retriangulate) atomically. The final
// mesh is the unique Delaunay triangulation of the (symbolically perturbed)
// grid points regardless of scheduling.
//
// The two modes differ exactly where the paper's algorithms differ:
//  * kBaseline (Algorithm 2): every point is "stored" in the encroached
//    set E(t) of its current triangle and *moves down* the history DAG as
//    triangles are replaced — every history step the point takes is a
//    large-memory write, Θ(n log n) writes in total. All n points are
//    processed in one batch.
//  * kWriteEfficient (Theorem 5.1): prefix doubling — an initial batch of
//    n / log^2 n points, then doubling batches. A point entering a batch
//    traces the history structure with *reads only* (Section 3.1) and
//    performs one write to record its placement; subsequent displacements
//    (expected O(1) per point, by the E[C] = O(m) dependence bound in the
//    proof of Theorem 5.1) cost one write each. Total O(n) writes.
//
// Inputs are quantized to a 2^24 grid (exact 128-bit predicates with
// symbolic perturbation; see geom/predicates.h), and duplicate grid points
// are dropped. The caller supplies points in the random insertion order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/delaunay/mesh.h"
#include "src/geom/point.h"

namespace weg::delaunay {

enum class Mode { kBaseline, kWriteEfficient };

struct DTStats {
  asym::Counts cost;
  size_t prefix_rounds = 0;      // batches (1 for the baseline)
  size_t sub_rounds = 0;         // reservation rounds across all batches
  size_t retries = 0;            // failed commit attempts
  size_t triangles_created = 0;  // history size
  uint64_t history_steps = 0;    // total descent steps (|R| proxy, Fig. 1)
  uint64_t cavity_triangles = 0; // total cavity sizes (|S| proxy, Fig. 1)
  size_t points_inserted = 0;
  size_t duplicates_dropped = 0;
};

// Quantizes points into the [0, 2^24) grid (scaled to the bounding box) and
// drops duplicates, preserving first-occurrence order; ids are assigned
// 0..m-1 in that order.
std::vector<geom::GridPoint> quantize(const std::vector<geom::Point2>& pts,
                                      size_t* duplicates_dropped = nullptr);

// Triangulates grid points (ids must be 0..n-1 in insertion order). The
// returned mesh's vertex array has three bounding vertices appended at the
// end.
std::unique_ptr<Mesh> triangulate(const std::vector<geom::GridPoint>& pts,
                                  Mode mode, DTStats* stats = nullptr);

// Convenience: quantize + triangulate.
std::unique_ptr<Mesh> triangulate(const std::vector<geom::Point2>& pts,
                                  Mode mode, DTStats* stats = nullptr);

}  // namespace weg::delaunay
