// Semisorting and integer (counting/radix) sort.
//
// The paper uses two grouping black boxes:
//  * parallel semisort [34]: group records with equal keys in linear expected
//    work/writes and O(log^2 n) depth (used to deliver points to triangles /
//    kd-tree leaves in the incremental rounds);
//  * radix sort over a key range of O(n log n) [48] (used by the post-sorted
//    interval-tree construction in Section 7.2).
//
// Both are implemented here as a stable blocked counting sort over bounded
// integer keys: per-block histograms, a scan over (block x bucket) counters,
// and a scatter pass. For keys bounded by O(n log n) this is linear work and
// writes with O(log n)-ish depth, exactly the budget the paper allots. For
// semisort of arbitrary hashable keys we first hash keys into a bounded range
// and then group, resolving collisions within a group locally (collisions are
// vanishingly rare with 64-bit hashing over <= 2^40 records and do not affect
// grouping correctness: groups are formed on the original key).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/asym/counters.h"
#include "src/parallel/parallel_for.h"

namespace weg::primitives {

// Stable counting sort of `records` by key(record) in [0, num_buckets).
// Returns the bucket start offsets (size num_buckets + 1).
// Work O(n + num_buckets), writes O(n + num_buckets), depth O(log n) given
// num_buckets blocks fit the machine.
template <typename T, typename KeyFn>
std::vector<size_t> counting_sort(std::vector<T>& records, size_t num_buckets,
                                  KeyFn key) {
  size_t n = records.size();
  constexpr size_t kBlock = 1 << 14;
  size_t nb = (n + kBlock - 1) / kBlock;
  if (nb == 0) nb = 1;
  asym::count_read(n);

  // hist[b * num_buckets + k] = #records with key k in block b.
  std::vector<size_t> hist(nb * num_buckets, 0);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlock, hi = std::min(n, lo + kBlock);
        size_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) ++h[key(records[i])];
      },
      1);

  // Column-major scan so each bucket's blocks are contiguous in rank order.
  std::vector<size_t> offsets(num_buckets + 1, 0);
  size_t total = 0;
  for (size_t k = 0; k < num_buckets; ++k) {
    offsets[k] = total;
    for (size_t b = 0; b < nb; ++b) {
      size_t c = hist[b * num_buckets + k];
      hist[b * num_buckets + k] = total;
      total += c;
    }
  }
  offsets[num_buckets] = total;
  asym::count_write(num_buckets);

  std::vector<T> out(n);
  asym::count_write(n);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlock, hi = std::min(n, lo + kBlock);
        size_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) out[h[key(records[i])]++] = records[i];
      },
      1);
  records.swap(out);
  return offsets;
}

// LSD radix sort by key(record) in [0, range). Uses 16-bit digits, so for
// range = O(n log n) this is a constant number of counting-sort passes —
// matching the [48] black box the paper invokes.
template <typename T, typename KeyFn>
void radix_sort(std::vector<T>& records, uint64_t range, KeyFn key) {
  constexpr uint64_t kDigit = 1 << 16;
  uint64_t shifted = 1;
  for (int shift = 0; shifted < range; shift += 16, shifted <<= 16) {
    counting_sort(records, static_cast<size_t>(std::min<uint64_t>(
                               kDigit, (range >> shift) + 1)),
                  [&](const T& r) {
                    return static_cast<size_t>((key(r) >> shift) &
                                               (kDigit - 1));
                  });
  }
}

// Groups records by an arbitrary integer key (not necessarily bounded):
// semisort per [34]. Keys are hashed into ~2n buckets; each bucket is then
// locally grouped by exact key. Returns (records permuted so equal keys are
// adjacent, group start offsets). Clients include the incremental-round
// point delivery and the sharded layer's query planner (key = the query's
// target-shard bitmask, so queries sharing a shard set form one group).
template <typename T, typename KeyFn>
std::vector<size_t> semisort_by(std::vector<T>& records, KeyFn key) {
  size_t n = records.size();
  if (n == 0) return {0};
  // Bucket count ~ n/4, capped at 2^16: expected bucket sizes stay O(1)
  // (the local per-bucket sort regroups in any case) while the bucket-offset
  // writes stay well below n — the [34] linear-write cost profile.
  size_t buckets = 1;
  while (buckets < n / 4 + 16 && buckets < (1u << 16)) buckets <<= 1;
  auto hash64 = [](uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  };
  auto offsets = counting_sort(records, buckets, [&](const T& r) {
    return static_cast<size_t>(hash64(static_cast<uint64_t>(key(r))) &
                               (buckets - 1));
  });
  // Within each hash bucket, group by exact key (buckets have expected O(1)
  // size; a local sort keeps the worst case tame). Then emit group offsets.
  std::vector<size_t> group_starts;
  group_starts.reserve(n / 4 + 4);
  for (size_t b = 0; b < buckets; ++b) {
    size_t lo = offsets[b], hi = offsets[b + 1];
    if (lo == hi) continue;
    std::sort(records.begin() + lo, records.begin() + hi,
              [&](const T& x, const T& y) { return key(x) < key(y); });
  }
  asym::count_read(n);
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || key(records[i]) != key(records[i - 1])) {
      group_starts.push_back(i);
    }
  }
  group_starts.push_back(n);
  asym::count_write(group_starts.size());
  return group_starts;
}

}  // namespace weg::primitives
