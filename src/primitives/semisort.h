// Semisorting and integer (counting/radix) sort.
//
// The paper uses two grouping black boxes:
//  * parallel semisort [34]: group records with equal keys in linear expected
//    work/writes and O(log^2 n) depth (used to deliver points to triangles /
//    kd-tree leaves in the incremental rounds);
//  * radix sort over a key range of O(n log n) [48] (used by the post-sorted
//    interval-tree construction in Section 7.2).
//
// The integer sorts are a stable blocked counting sort over bounded keys:
// per-block histograms, a transposed parallel scan over the (block x bucket)
// counters, and a scatter pass into pre-claimed slices. For keys bounded by
// O(n log n) this is linear work and writes with O(log n)-ish depth, exactly
// the budget the paper allots.
//
// Semisort of arbitrary hashable keys dispatches on size:
//  * large inputs take the sample-based heavy/light plan in
//    semisort_sample.h (hash, sample at rate 1/log n, dedicated buckets for
//    keys with sample frequency >= log n, analytically sized light buckets);
//  * small inputs keep the classic hash-bucket path below, where the plan
//    overhead would dominate.
// Both paths share one contract, load-bearing for every consumer (pbatched
// k-d builds, incremental-sort rounds, the shard-pruning planner): the same
// (records permuted, group start offsets) API, output and bulk asym
// read/write totals bitwise identical at every worker count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/asym/counters.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/semisort_sample.h"
#include "src/primitives/sequence.h"

namespace weg::primitives {

// Stable counting sort of `records` by key(record) in [0, num_buckets).
// Returns the bucket start offsets (size num_buckets + 1).
// Work O(n + num_buckets), writes O(n + num_buckets), depth O(log n).
//
// There is no hard bucket cap (the old 2^16 ceiling silently coarsened
// grouping for n >> 2^18): instead the block size adapts to the bucket
// count, so the (block x bucket) counter matrix stays at O(n + num_buckets)
// words — ~16 bytes of bookkeeping per record worst case including the
// transposed scan copy. The trade is parallelism granularity: very wide
// bucket spaces mean fewer, larger blocks (fewer steallable chunks but no
// counter blowup); callers wanting finer placement chunks should narrow the
// key space instead.
template <typename T, typename KeyFn>
std::vector<size_t> counting_sort(std::vector<T>& records, size_t num_buckets,
                                  KeyFn key) {
  size_t n = records.size();
  constexpr size_t kMinBlock = 1 << 14;
  size_t block = std::max(kMinBlock, num_buckets);
  size_t nb = (n + block - 1) / block;
  if (nb == 0) nb = 1;
  asym::count_read(n);

  // hist[b * num_buckets + k] = #records with key k in block b.
  std::vector<size_t> hist(nb * num_buckets, 0);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * block, hi = std::min(n, lo + block);
        size_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) ++h[key(records[i])];
      },
      1);

  // Column-major (bucket-major) offset scan so each bucket's blocks land in
  // rank order — parallelized via the shared blocked scan core: transpose,
  // scan, transpose back. The counters are bookkeeping and stay uncharged;
  // only the bucket-offset output is charged, as before.
  std::vector<size_t> offsets(num_buckets + 1);
  if (nb == 1) {
    detail::scan_exclusive_raw(hist.data(), num_buckets);
    for (size_t k = 0; k < num_buckets; ++k) offsets[k] = hist[k];
  } else {
    std::vector<size_t> col(nb * num_buckets);
    parallel::parallel_for(0, num_buckets, [&](size_t k) {
      for (size_t b = 0; b < nb; ++b) {
        col[k * nb + b] = hist[b * num_buckets + k];
      }
    });
    detail::scan_exclusive_raw(col.data(), col.size());
    parallel::parallel_for(0, num_buckets, [&](size_t k) {
      offsets[k] = col[k * nb];
      for (size_t b = 0; b < nb; ++b) {
        hist[b * num_buckets + k] = col[k * nb + b];
      }
    });
  }
  offsets[num_buckets] = n;
  asym::count_write(num_buckets);

  std::vector<T> out(n);
  asym::count_write(n);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * block, hi = std::min(n, lo + block);
        size_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) out[h[key(records[i])]++] = records[i];
      },
      1);
  records.swap(out);
  return offsets;
}

// LSD radix sort by key(record) in [0, range). Uses 16-bit digits, so for
// range = O(n log n) this is a constant number of counting-sort passes —
// matching the [48] black box the paper invokes.
template <typename T, typename KeyFn>
void radix_sort(std::vector<T>& records, uint64_t range, KeyFn key) {
  constexpr uint64_t kDigit = 1 << 16;
  uint64_t shifted = 1;
  for (int shift = 0; shifted < range; shift += 16, shifted <<= 16) {
    counting_sort(records, static_cast<size_t>(std::min<uint64_t>(
                               kDigit, (range >> shift) + 1)),
                  [&](const T& r) {
                    return static_cast<size_t>((key(r) >> shift) &
                                               (kDigit - 1));
                  });
  }
}

namespace detail {

// Classic small-n semisort: hash keys into ~n/4 buckets (expected O(1)
// size), group each bucket locally, emit boundaries. Below
// kSemisortSampledMinN a sampling plan costs more than it saves.
template <typename T, typename KeyFn, typename HashFn>
std::vector<size_t> semisort_classic(std::vector<T>& records, KeyFn key,
                                     HashFn hash, SemisortStats* stats) {
  size_t n = records.size();
  size_t buckets = 1;
  while (buckets < n / 4 + 16 && buckets < (1u << 16)) buckets <<= 1;
  auto offsets = counting_sort(records, buckets, [&](const T& r) {
    return static_cast<size_t>(hash(static_cast<uint64_t>(key(r))) &
                               (buckets - 1));
  });
  asym::count_read(n);  // the grouping sweep over the bucketed records
  group_buckets(records, offsets, key);
  auto starts = emit_group_starts(records, key);
  if (stats != nullptr) {
    *stats = SemisortStats{};
    stats->n = n;
    stats->light_buckets = buckets;
    stats->groups = starts.size() - 1;
  }
  return starts;
}

}  // namespace detail

// Groups records by an arbitrary integer key (not necessarily bounded):
// semisort per [34]. `hash` must map equal keys to equal 64-bit
// fingerprints (the default is the usual invertible mix); `stats`, when
// non-null, receives the plan shape. Returns (records permuted so equal
// keys are adjacent, group start offsets). Clients include the pbatched
// k-d incremental rounds, the incremental-sort bucket rounds, and the
// sharded layer's query planner (key = the query's target-shard bitmask,
// so queries sharing a shard set form one group).
template <typename T, typename KeyFn, typename HashFn>
std::vector<size_t> semisort_by_hashed(std::vector<T>& records, KeyFn key,
                                       HashFn hash,
                                       SemisortStats* stats = nullptr) {
  size_t n = records.size();
  if (n == 0) {
    if (stats != nullptr) *stats = SemisortStats{};
    return {0};
  }
  if (n < detail::kSemisortSampledMinN) {
    return detail::semisort_classic(records, key, hash, stats);
  }
  return detail::semisort_sampled(records, key, hash, stats);
}

template <typename T, typename KeyFn>
std::vector<size_t> semisort_by(std::vector<T>& records, KeyFn key,
                                SemisortStats* stats = nullptr) {
  return semisort_by_hashed(
      records, key, [](uint64_t x) { return hash64(x); }, stats);
}

}  // namespace weg::primitives
