// Core parallel sequence primitives: reduce, scan, pack/filter. These are the
// building blocks the paper assumes from prior work ([9], [14]): all run in
// linear work / reads-writes and O(log n) (reduce) or O(log n) levels (scan)
// depth on the binary fork-join model.
//
// Instrumentation: each primitive charges its large-memory traffic in bulk
// through asym::count_read / asym::count_write (n reads + O(n / block) +
// output writes), which matches the per-operation counting a fully
// element-instrumented version would produce while keeping the inner loops
// branch-free.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/asym/counters.h"
#include "src/parallel/parallel_for.h"

namespace weg::primitives {

inline constexpr size_t kBlockSize = 2048;

inline size_t num_blocks(size_t n) { return (n + kBlockSize - 1) / kBlockSize; }

// Parallel reduction with an associative combiner. O(n) work, O(log n) depth,
// no large-memory writes (the partial results live in symmetric memory).
template <typename T, typename Combine>
T reduce(const std::vector<T>& a, T identity, Combine combine) {
  size_t n = a.size();
  if (n == 0) return identity;
  asym::count_read(n);
  size_t nb = num_blocks(n);
  std::vector<T> partial(nb, identity);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlockSize, hi = std::min(n, lo + kBlockSize);
        T acc = identity;
        for (size_t i = lo; i < hi; ++i) acc = combine(acc, a[i]);
        partial[b] = acc;
      },
      1);
  T total = identity;
  for (size_t b = 0; b < nb; ++b) total = combine(total, partial[b]);
  return total;
}

template <typename T>
T reduce_add(const std::vector<T>& a) {
  return reduce(a, T{}, std::plus<T>{});
}

namespace detail {

// Core of the two-pass blocked exclusive scan, without asym charging: the
// shared engine for scan_exclusive below (which charges its traffic) and for
// scans over uncharged bookkeeping buffers — the per-block histogram offsets
// in counting_sort / the sampling semisort, which model scratch counters the
// same way the histograms themselves always have.
template <typename T>
T scan_exclusive_raw(T* a, size_t n) {
  if (n == 0) return T{};
  size_t nb = num_blocks(n);
  std::vector<T> sums(nb);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlockSize, hi = std::min(n, lo + kBlockSize);
        T acc{};
        for (size_t i = lo; i < hi; ++i) acc += a[i];
        sums[b] = acc;
      },
      1);
  T total{};
  for (size_t b = 0; b < nb; ++b) {
    T s = sums[b];
    sums[b] = total;
    total += s;
  }
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlockSize, hi = std::min(n, lo + kBlockSize);
        T acc = sums[b];
        for (size_t i = lo; i < hi; ++i) {
          T v = a[i];
          a[i] = acc;
          acc += v;
        }
      },
      1);
  return total;
}

}  // namespace detail

// Exclusive prefix sum, in place; returns the overall total. Two-pass blocked
// scan: O(n) work (n reads + n writes to large memory), O(log n) depth.
template <typename T>
T scan_exclusive(std::vector<T>& a) {
  size_t n = a.size();
  if (n == 0) return T{};
  asym::count_read(n);
  asym::count_write(n);
  return detail::scan_exclusive_raw(a.data(), n);
}

// Stable parallel pack: keeps a[i] where flag(i) is true. O(n) reads, output-
// sized writes plus O(n / kBlockSize) bookkeeping. Depth O(log n).
template <typename T, typename Flag>
std::vector<T> pack(const std::vector<T>& a, Flag flag) {
  size_t n = a.size();
  size_t nb = num_blocks(n);
  std::vector<size_t> counts(nb, 0);
  asym::count_read(n);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlockSize, hi = std::min(n, lo + kBlockSize);
        size_t c = 0;
        for (size_t i = lo; i < hi; ++i) c += flag(i) ? 1 : 0;
        counts[b] = c;
      },
      1);
  size_t total = 0;
  for (size_t b = 0; b < nb; ++b) {
    size_t c = counts[b];
    counts[b] = total;
    total += c;
  }
  std::vector<T> out(total);
  asym::count_write(total);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlockSize, hi = std::min(n, lo + kBlockSize);
        size_t pos = counts[b];
        for (size_t i = lo; i < hi; ++i) {
          if (flag(i)) out[pos++] = a[i];
        }
      },
      1);
  return out;
}

template <typename T, typename Pred>
std::vector<T> filter(const std::vector<T>& a, Pred pred) {
  return pack(a, [&](size_t i) { return pred(a[i]); });
}

// Parallel map producing a new sequence. n reads + n writes.
template <typename T, typename F>
auto map(const std::vector<T>& a, F f) -> std::vector<decltype(f(a[0]))> {
  using R = decltype(f(a[0]));
  std::vector<R> out(a.size());
  asym::count_read(a.size());
  asym::count_write(a.size());
  parallel::parallel_for(0, a.size(), [&](size_t i) { out[i] = f(a[i]); });
  return out;
}

// Parallel tabulate.
template <typename F>
auto tabulate(size_t n, F f) -> std::vector<decltype(f(size_t{0}))> {
  using R = decltype(f(size_t{0}));
  std::vector<R> out(n);
  asym::count_write(n);
  parallel::parallel_for(0, n, [&](size_t i) { out[i] = f(i); });
  return out;
}

}  // namespace weg::primitives
