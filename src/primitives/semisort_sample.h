// Sample-based heavy/light semisort (ROADMAP item 3): the sampling plan
// of the Gu–Shun–Sun–Blelloch semisort (cf. the ParlaySemisort reference
// code), kept under this repo's determinism contract.
//
// Plan (a pure function of the input — no time(0) seeding, no CAS scatter):
//  1. Sample positions at rate ~1/log2 n with a fixed salt: position i is
//     sampled iff hash64(i ^ kSemisortSampleSalt) < 2^64/log2 n. The sample
//     is therefore identical at every worker count, and per-position (not
//     per-key) sampling is what makes key frequencies estimable.
//  2. Count sample frequencies of the *hashed* keys. A hash whose sample
//     count reaches log2 n has true frequency ≈ log2^2 n in expectation
//     (rate 1/log n × threshold log n) and becomes "heavy": one dedicated
//     bucket per heavy hash. Everything else is "light" and is sprayed by
//     hash bits into ~n/4 analytically sized light buckets (expected O(1)
//     keys per bucket), so no light bucket needs more than a tiny local
//     sort and no heavy key can degrade one.
//  3. Place records with per-block histograms + a transposed parallel
//     exclusive scan + pre-claimed scatter slices. Every record's slot is a
//     function of (input order, plan), so the permutation — and the bulk
//     asym charges — are bitwise identical at every worker count. The
//     snippet's atomic-CAS scatter retry loop is schedule-dependent and
//     would charge nondeterministic write totals; pre-claimed slices cost
//     one extra scan instead.
//  4. Group within buckets block-parallel over buckets. A bucket holding a
//     single distinct key (every heavy bucket under an injective hash, and
//     most light buckets) is recognized with one linear equality check and
//     skips its sort — this removes the old O(g log g) serial tail on
//     Zipf / all-equal keys. Buckets that do mix keys (hash collisions,
//     crowded light buckets) sort locally by exact key.
//  5. Emit group boundaries with a parallel block pass + scan (shared with
//     the classic small-n path in semisort.h).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/asym/counters.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/random.h"
#include "src/primitives/sequence.h"

namespace weg::primitives {

// Observable shape of a semisort run, for tests and benches: how the plan
// classified the input. Filled by semisort_by_hashed when a non-null pointer
// is passed; all fields are pure functions of the input.
struct SemisortStats {
  size_t n = 0;
  size_t sample_size = 0;    // positions sampled (fixed for a given n)
  size_t heavy_keys = 0;     // distinct hashes with dedicated buckets
  size_t heavy_records = 0;  // records routed to heavy buckets
  size_t light_buckets = 0;  // analytically sized light-bucket count
  size_t groups = 0;         // equal-key groups emitted
  bool sampled = false;      // false: classic small-n hash-bucket path
};

namespace detail {

// Salt for the positional sample; any fixed odd-ish constant works, it only
// has to be independent of the key-fingerprint mix so sampling never
// correlates with bucket placement.
inline constexpr uint64_t kSemisortSampleSalt = 0x5bd1e995a4c2f1d3ULL;

// Below this size the sampling machinery costs more than it saves and the
// classic hash-bucket path (semisort.h) runs instead; its buckets stay O(1)
// expected without a plan.
inline constexpr size_t kSemisortSampledMinN = 4096;

// Group-boundary emission, parallel (the old serial O(n) tail): per-block
// boundary counts, an exclusive scan, and pre-claimed emission slices.
// Charges n reads + (groups + 1) writes — the same totals the serial loop
// charged, still a pure function of the grouped sequence.
template <typename T, typename KeyFn>
std::vector<size_t> emit_group_starts(const std::vector<T>& records,
                                      KeyFn key) {
  size_t n = records.size();
  if (n == 0) return {0};
  size_t nb = num_blocks(n);
  std::vector<size_t> counts(nb, 0);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlockSize, hi = std::min(n, lo + kBlockSize);
        size_t c = 0;
        for (size_t i = lo; i < hi; ++i) {
          c += (i == 0 || key(records[i]) != key(records[i - 1])) ? 1 : 0;
        }
        counts[b] = c;
      },
      1);
  size_t total = scan_exclusive_raw(counts.data(), nb);
  std::vector<size_t> starts(total + 1);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlockSize, hi = std::min(n, lo + kBlockSize);
        size_t pos = counts[b];
        for (size_t i = lo; i < hi; ++i) {
          if (i == 0 || key(records[i]) != key(records[i - 1])) {
            starts[pos++] = i;
          }
        }
      },
      1);
  starts[total] = n;
  asym::count_read(n);
  asym::count_write(total + 1);
  return starts;
}

// Local per-bucket grouping, block-parallel over buckets (the old code ran
// this as one serial loop). Single-key buckets are detected with a linear
// equality sweep and skip the sort; mixed buckets sort by exact key and
// charge their record moves. The caller charges the n-read sweep in bulk.
template <typename T, typename KeyFn>
void group_buckets(std::vector<T>& records, const std::vector<size_t>& offsets,
                   KeyFn key) {
  parallel::parallel_for(0, offsets.size() - 1, [&](size_t b) {
    size_t lo = offsets[b], hi = offsets[b + 1];
    if (hi - lo <= 1) return;
    auto k0 = key(records[lo]);
    bool uniform = true;
    for (size_t i = lo + 1; i < hi && uniform; ++i) {
      uniform = key(records[i]) == k0;
    }
    if (uniform) return;
    std::sort(records.begin() + static_cast<ptrdiff_t>(lo),
              records.begin() + static_cast<ptrdiff_t>(hi),
              [&](const T& x, const T& y) { return key(x) < key(y); });
    asym::count_write(hi - lo);
  });
}

// Open-addressing map from heavy hash -> dedicated bucket id. Sized at 4x
// the heavy count (load <= 1/4, short linear probes) and built serially in
// ascending-hash order, so slot contents are deterministic. Symmetric-memory
// scratch: O(sample / log n) entries, never charged.
struct HeavyTable {
  struct Slot {
    uint64_t hash = 0;
    uint32_t id = UINT32_MAX;
  };
  std::vector<Slot> slots;
  uint64_t mask = 0;

  explicit HeavyTable(const std::vector<uint64_t>& heavy_sorted) {
    size_t cap = 16;
    while (cap < 4 * heavy_sorted.size()) cap <<= 1;
    slots.assign(cap, Slot{});
    mask = cap - 1;
    for (size_t i = 0; i < heavy_sorted.size(); ++i) {
      size_t idx = heavy_sorted[i] & mask;
      while (slots[idx].id != UINT32_MAX) idx = (idx + 1) & mask;
      slots[idx] = Slot{heavy_sorted[i], static_cast<uint32_t>(i)};
    }
  }

  // Returns the dedicated bucket id or UINT32_MAX.
  uint32_t lookup(uint64_t h) const {
    size_t idx = h & mask;
    while (true) {
      const Slot& s = slots[idx];
      if (s.id == UINT32_MAX || s.hash == h) return s.id;
      idx = (idx + 1) & mask;
    }
  }
};

// Hashes appearing >= threshold times in the sample, ascending. Serial over
// the O(n / log n) sample with an open-addressing counter table (symmetric
// scratch, uncharged); deterministic because the sample order and the final
// sort are.
inline std::vector<uint64_t> heavy_hashes(const std::vector<uint64_t>& sample,
                                          size_t threshold) {
  size_t cap = 16;
  while (cap < 2 * sample.size()) cap <<= 1;
  struct Cell {
    uint64_t hash = 0;
    uint32_t count = 0;
  };
  std::vector<Cell> table(cap);
  uint64_t mask = cap - 1;
  std::vector<uint64_t> heavy;
  for (uint64_t h : sample) {
    size_t idx = h & mask;
    while (table[idx].count != 0 && table[idx].hash != h) {
      idx = (idx + 1) & mask;
    }
    table[idx].hash = h;
    if (++table[idx].count == threshold) heavy.push_back(h);
  }
  std::sort(heavy.begin(), heavy.end());
  return heavy;
}

// The sampled heavy/light semisort. Requires n >= kSemisortSampledMinN (the
// dispatcher in semisort.h guarantees it); HashFn must map equal keys to
// equal 64-bit fingerprints.
template <typename T, typename KeyFn, typename HashFn>
std::vector<size_t> semisort_sampled(std::vector<T>& records, KeyFn key,
                                     HashFn hash, SemisortStats* stats) {
  size_t n = records.size();
  size_t logn = std::bit_width(n);  // >= 13 for n >= 4096
  size_t nb = num_blocks(n);

  // --- 1. Deterministic positional sample at rate 1/log2 n. --------------
  uint64_t limit = UINT64_MAX / logn;
  auto sampled_at = [&](size_t i) {
    return hash64(static_cast<uint64_t>(i) ^ kSemisortSampleSalt) < limit;
  };
  std::vector<size_t> scount(nb, 0);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlockSize, hi = std::min(n, lo + kBlockSize);
        size_t c = 0;
        for (size_t i = lo; i < hi; ++i) c += sampled_at(i) ? 1 : 0;
        scount[b] = c;
      },
      1);
  size_t sample_size = scan_exclusive_raw(scount.data(), nb);
  std::vector<uint64_t> sample(sample_size);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlockSize, hi = std::min(n, lo + kBlockSize);
        size_t pos = scount[b];
        for (size_t i = lo; i < hi; ++i) {
          if (sampled_at(i)) {
            sample[pos++] = hash(static_cast<uint64_t>(key(records[i])));
          }
        }
      },
      1);
  asym::count_read(sample_size);  // only sampled records are fetched

  // --- 2. Heavy/light split. ---------------------------------------------
  // Sample count >= log2 n  =>  estimated true frequency >= log2^2 n.
  auto heavy = heavy_hashes(sample, logn);
  size_t num_heavy = heavy.size();
  HeavyTable heavy_table(heavy);
  // Light buckets: expected O(1) keys per bucket (~n/4 of them, like the
  // classic path) but capped at 2^18 instead of the old 2^16 — the adaptive
  // block below keeps the counter bookkeeping at O(n) words regardless, so
  // the cap is purely a memory-vs-locality knob, not a correctness cliff.
  size_t num_light = 1;
  while (num_light < n / 4 + 16 && num_light < (1u << 18)) num_light <<= 1;
  size_t num_buckets = num_heavy + num_light;

  // --- 3. Placement: per-block histograms + transposed scan + scatter. ---
  // Blocks adapt to the bucket count so the (block x bucket) counter matrix
  // stays at <= ~2n + O(buckets) uint32 words; at least 4 blocks keeps the
  // placement passes steallable.
  size_t pb = (n + kSemisortSampledMinN - 1) / kSemisortSampledMinN;
  size_t max_pb = std::max<size_t>(4, (2 * n) / num_buckets);
  if (pb > max_pb) pb = max_pb;
  size_t block = (n + pb - 1) / pb;
  pb = (n + block - 1) / block;

  std::vector<uint32_t> bucket_of(n);
  std::vector<uint32_t> hist(pb * num_buckets, 0);
  parallel::parallel_for(
      0, pb,
      [&](size_t b) {
        size_t lo = b * block, hi = std::min(n, lo + block);
        uint32_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) {
          uint64_t hv = hash(static_cast<uint64_t>(key(records[i])));
          uint32_t id = num_heavy != 0 ? heavy_table.lookup(hv) : UINT32_MAX;
          if (id == UINT32_MAX) {
            id = static_cast<uint32_t>(num_heavy + (hv & (num_light - 1)));
          }
          bucket_of[i] = id;
          ++h[id];
        }
      },
      1);
  asym::count_read(n);

  // Transposed exclusive scan: column-major (bucket-major) order gives each
  // bucket its blocks in rank order; the scan itself is the shared blocked
  // parallel core. Counter matrices are bookkeeping, uncharged as always.
  std::vector<uint32_t> col(pb * num_buckets);
  parallel::parallel_for(0, num_buckets, [&](size_t k) {
    for (size_t b = 0; b < pb; ++b) {
      col[k * pb + b] = hist[b * num_buckets + k];
    }
  });
  scan_exclusive_raw(col.data(), col.size());
  std::vector<size_t> offsets(num_buckets + 1);
  parallel::parallel_for(0, num_buckets,
                         [&](size_t k) { offsets[k] = col[k * pb]; });
  offsets[num_buckets] = n;
  parallel::parallel_for(0, num_buckets, [&](size_t k) {
    for (size_t b = 0; b < pb; ++b) {
      hist[b * num_buckets + k] = col[k * pb + b];
    }
  });
  asym::count_write(num_buckets);

  std::vector<T> out(n);
  parallel::parallel_for(
      0, pb,
      [&](size_t b) {
        size_t lo = b * block, hi = std::min(n, lo + block);
        uint32_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) out[h[bucket_of[i]]++] = records[i];
      },
      1);
  asym::count_write(n);
  records.swap(out);

  // --- 4./5. Local grouping + boundary emission. -------------------------
  asym::count_read(n);  // the equality sweep / sort-key fetches, in bulk
  group_buckets(records, offsets, key);
  auto starts = emit_group_starts(records, key);

  if (stats != nullptr) {
    *stats = SemisortStats{};
    stats->n = n;
    stats->sample_size = sample_size;
    stats->heavy_keys = num_heavy;
    stats->heavy_records = offsets[num_heavy];
    stats->light_buckets = num_light;
    stats->groups = starts.size() - 1;
    stats->sampled = true;
  }
  return starts;
}

}  // namespace detail

}  // namespace weg::primitives
