// Deterministic pseudo-random utilities: SplitMix64 generator, uniform
// helpers, and random permutation. Random permutations seed every randomized
// incremental algorithm in the paper; a sequential Knuth shuffle is O(n)
// reads/writes (and is only used in un-measured setup code — the measured
// algorithms receive an already-permuted input, as the paper assumes a
// "random order" input).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace weg::primitives {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  uint64_t next_bounded(uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

// Stateless hash usable as a per-index random value (deterministic across
// runs and thread schedules).
inline uint64_t hash64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Zipf(s) sampler over the key universe [0, num_keys): key k is drawn with
// probability proportional to 1/(k+1)^s. Inverse-CDF over a precomputed
// cumulative table — O(num_keys) setup, O(log num_keys) per draw, and fully
// deterministic given the Rng. This is the skewed-key workload generator for
// the semisort distribution matrix (tests and bench_semisort): Zipf(1.0) is
// exactly the heavy/light mix the sampling plan must split well.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t num_keys, double s) : cdf_(num_keys) {
    double acc = 0;
    for (size_t k = 0; k < num_keys; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = acc;
    }
    for (auto& c : cdf_) c /= acc;
  }

  uint64_t operator()(Rng& rng) const {
    double u = rng.next_double();
    return static_cast<uint64_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// In-place Knuth shuffle.
template <typename T>
void shuffle(std::vector<T>& a, Rng& rng) {
  for (size_t i = a.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.next_bounded(i));
    std::swap(a[i - 1], a[j]);
  }
}

// Random permutation of [0, n).
inline std::vector<uint32_t> random_permutation(size_t n, uint64_t seed) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(seed);
  shuffle(perm, rng);
  return perm;
}

}  // namespace weg::primitives
