// Parallel comparison sort (merge-sort with parallel merges) used as the
// low-depth sorting black box the paper cites ([14], [24]). O(n log n) work,
// O(log^2 n) depth. Note this baseline performs Θ(n log n) large-memory
// writes; the paper's write-efficient sort (src/sort/) gets that down to
// O(n). We charge one read and one write per element per merge level.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <vector>

#include "src/asym/counters.h"
#include "src/parallel/parallel_for.h"

namespace weg::primitives {

namespace detail {

// Base-case size shares the scheduler-wide sequential cutoff: with the
// lock-free deque a fork is cheap enough to split runs twice as fine as the
// mutex-era 4096, exposing more parallelism in the merge tree.
inline constexpr size_t kSortBase = parallel::kSeqCutoff;

// Merges a[alo,ahi) and a[blo,bhi) into out[olo,...). Parallel: splits the
// larger run at its midpoint and binary-searches the split key in the other.
template <typename T, typename Less>
void parallel_merge(const T* a, size_t alo, size_t ahi, size_t blo, size_t bhi,
                    T* out, size_t olo, Less less) {
  size_t an = ahi - alo, bn = bhi - blo;
  if (an + bn <= kSortBase) {
    std::merge(a + alo, a + ahi, a + blo, a + bhi, out + olo, less);
    return;
  }
  if (an < bn) {
    parallel_merge(a, blo, bhi, alo, ahi, out, olo, less);
    return;
  }
  size_t amid = alo + an / 2;
  size_t bmid = static_cast<size_t>(
      std::lower_bound(a + blo, a + bhi, a[amid], less) - a);
  size_t omid = olo + (amid - alo) + (bmid - blo);
  parallel::par_do(
      [&] { parallel_merge(a, alo, amid, blo, bmid, out, olo, less); },
      [&] {
        // a[amid] goes first in the right half to keep stability.
        out[omid] = a[amid];
        parallel_merge(a, amid + 1, ahi, bmid, bhi, out, omid + 1, less);
      });
}

template <typename T, typename Less>
void merge_sort_rec(T* a, T* buf, size_t lo, size_t hi, bool to_buf,
                    Less less) {
  size_t n = hi - lo;
  if (n <= kSortBase) {
    // The run is sorted with std::sort for speed, but charged at the
    // model's rate: the symmetric memory holds only O(log n) words, so a
    // faithful mergesort still writes each element once per level inside
    // this run.
    uint64_t levels =
        static_cast<uint64_t>(std::bit_width(std::max<size_t>(n, 1) - 1));
    asym::count_read(n * levels);
    asym::count_write(n * levels);
    std::sort(a + lo, a + hi, less);
    if (to_buf) std::copy(a + lo, a + hi, buf + lo);
    return;
  }
  size_t mid = lo + n / 2;
  parallel::par_do(
      [&] { merge_sort_rec(a, buf, lo, mid, !to_buf, less); },
      [&] { merge_sort_rec(a, buf, mid, hi, !to_buf, less); });
  asym::count_read(n);
  asym::count_write(n);
  if (to_buf) {
    parallel_merge(a, lo, mid, mid, hi, buf, lo, less);
  } else {
    parallel_merge(buf, lo, mid, mid, hi, a, lo, less);
  }
}

}  // namespace detail

// In-place parallel stable sort. Charges one read + one write per element per
// merge level (Θ(n log n) writes — this is the non-write-efficient baseline).
template <typename T, typename Less = std::less<T>>
void sort_inplace(std::vector<T>& a, Less less = Less{}) {
  if (a.size() <= 1) return;
  std::vector<T> buf(a.size());
  detail::merge_sort_rec(a.data(), buf.data(), 0, a.size(), false, less);
}

template <typename T, typename Less = std::less<T>>
std::vector<T> sorted(std::vector<T> a, Less less = Less{}) {
  sort_inplace(a, less);
  return a;
}

}  // namespace weg::primitives
