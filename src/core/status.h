// Structured error propagation for the serving stack.
//
// weg::Status carries an error code + human-readable message; weg::Expected<T>
// is a Status-or-value sum type (the subset of std::expected the serving
// layer needs, buildable on C++20). The contract every Status-returning
// mutation in this repo follows:
//
//   * An OK return means the operation completed in full.
//   * A non-OK return from a bulk update means the structure was NOT
//     modified: validation and injected-fault checks run before the first
//     write, so callers can retry, drop the batch, or surface the error
//     without rebuilding anything. (Exceptions thrown mid-apply — real
//     allocation failure, or a fault injected below the entry checks — are
//     the one escape hatch; the sharded layer's shadow-apply commit converts
//     those into a rolled-back non-OK Status at the transaction boundary.)
//
// Codes follow the absl/gRPC canonical-space naming so readers map them
// instantly; only the subset this codebase produces is defined.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace weg {

enum class StatusCode : uint8_t {
  kOk = 0,
  // Caller-supplied data is malformed (NaN/inf coordinate, inverted
  // interval, duplicate record id). Retrying the identical call fails again.
  kInvalidArgument = 1,
  // An allocation or capacity budget was exhausted. Retrying may succeed
  // once resources free up.
  kResourceExhausted = 2,
  // The operation requires state the object is not in (e.g. a poisoned
  // sub-batch consumed as if it were a result).
  kFailedPrecondition = 3,
  // A deadline (scheduler watchdog) expired before the operation finished.
  kDeadlineExceeded = 4,
  // A deterministic test fault (src/parallel/fault.h) tripped. Never
  // produced in production configurations.
  kFaultInjected = 5,
  // Invariant violation inside the library.
  kInternal = 6,
};

inline const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kFaultInjected:
      return "FAULT_INJECTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status FaultInjected(std::string msg) {
    return Status(StatusCode::kFaultInjected, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // messages are diagnostics, not identity
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Status-or-value. Construction from a value yields ok(); construction from
// a non-OK Status yields an error (constructing from an OK Status without a
// value is an internal error and is normalized to kInternal so value() can
// keep its no-value precondition).
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)), has_value_(true) {}
  Expected(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Expected constructed from OK status");
    }
  }

  bool ok() const { return has_value_; }
  explicit operator bool() const { return has_value_; }

  // Precondition: ok(). The Status of an ok() Expected is OK.
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }
  T value_or(T fallback) const {
    return has_value_ ? value_ : std::move(fallback);
  }

  Status status() const { return has_value_ ? Status::Ok() : status_; }
  StatusCode code() const {
    return has_value_ ? StatusCode::kOk : status_.code();
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace weg
