// The prefix-doubling driver (Section 3.2). A randomized incremental
// algorithm over n objects is split into an initial round of n / log^2 n
// objects processed by the standard (write-inefficient) algorithm, followed
// by O(log log n) incremental rounds, the i-th processing the next
// 2^{i-1} * n / log^2 n objects — i.e., each round doubles the structure.
#pragma once

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

namespace weg::core {

// Half-open object ranges [begin, end) for each round. `initial` defaults to
// max(1, n / log^2 n) per the paper; rounds then double until n is covered.
inline std::vector<std::pair<size_t, size_t>> prefix_doubling_rounds(
    size_t n, size_t initial = 0) {
  std::vector<std::pair<size_t, size_t>> rounds;
  if (n == 0) return rounds;
  if (initial == 0) {
    double lg = std::log2(static_cast<double>(n) + 1.0);
    initial = static_cast<size_t>(static_cast<double>(n) / (lg * lg));
    if (initial == 0) initial = 1;
  }
  initial = std::min(initial, n);
  size_t done = initial;
  rounds.emplace_back(0, initial);
  while (done < n) {
    size_t next = std::min(n, 2 * done);
    rounds.emplace_back(done, next);
    done = next;
  }
  return rounds;
}

}  // namespace weg::core
