// The DAG tracing framework (Section 3.1, Definition 3.1 / Theorem 3.1).
//
// Given a history DAG G with root r, an element x, and a predicate
// f(x, v) ("v is visible to x") satisfying the tracable property (a visible
// vertex has at least one visible direct predecessor), compute
//   S(G, x) = { v : f(x, v) and out-degree(v) = 0 }
// in O(|R(G,x)|) work, O(D(G)) depth and O(|S(G,x)|) writes, where R is the
// set of all visible vertices.
//
// Write-efficiency comes from the deterministic search-tree rule: a visible
// vertex v is visited only from its highest-priority visible direct
// predecessor. That check needs only reads (the DAG has constant in-degree),
// so no visited-marks are written; the only writes are the emitted outputs.
//
// Graph concept (all constant-time):
//   size_t out_degree(V v)            number of direct successors
//   V      out_neighbor(V v, size_t k)
//   size_t in_degree(V v)             constant-bounded
//   V      in_neighbor(V v, size_t k)
//   bool   higher_priority(V u, V w)  strict total order on vertices
// Element-visibility is a callable visible(v) for the fixed element x; the
// caller charges asym reads inside it as appropriate.
#pragma once

#include <cstddef>

#include "src/parallel/parallel_for.h"

namespace weg::core {

namespace detail {

// True iff u is the highest-priority visible direct predecessor of v.
template <typename Graph, typename V, typename Visible>
bool is_designated_parent(const Graph& g, V u, V v, const Visible& visible) {
  size_t indeg = g.in_degree(v);
  for (size_t k = 0; k < indeg; ++k) {
    V w = g.in_neighbor(v, k);
    if (w == u) continue;
    if (visible(w) && g.higher_priority(w, u)) return false;
  }
  return true;
}

template <typename Graph, typename V, typename Visible, typename Emit>
void trace_rec(const Graph& g, V v, const Visible& visible, const Emit& emit,
               size_t depth_budget) {
  size_t deg = g.out_degree(v);
  if (deg == 0) {
    emit(v);
    return;
  }
  // Fork over the (constantly many) children that we are designated to
  // visit. Sequential below a small depth budget to bound task overhead.
  auto visit_child = [&](size_t k) {
    V c = g.out_neighbor(v, k);
    if (visible(c) && is_designated_parent(g, v, c, visible)) {
      trace_rec(g, c, visible, emit, depth_budget > 0 ? depth_budget - 1 : 0);
    }
  };
  if (deg == 1 || depth_budget == 0) {
    for (size_t k = 0; k < deg; ++k) visit_child(k);
  } else {
    parallel::parallel_for(0, deg, visit_child, 1);
  }
}

}  // namespace detail

// Traces element x (captured in `visible`) through the DAG from `root`,
// calling emit(v) on every visible sink. `parallel_depth` bounds the number
// of DAG levels that fork tasks (deeper levels run sequentially); pass 0 for
// a fully sequential trace.
template <typename Graph, typename V, typename Visible, typename Emit>
void dag_trace(const Graph& g, V root, const Visible& visible,
               const Emit& emit, size_t parallel_depth = 0) {
  if (!visible(root)) return;
  detail::trace_rec(g, root, visible, emit, parallel_depth);
}

}  // namespace weg::core
