// Bounded multi-producer admission queue for the serving engine.
//
// Many producer threads try_push concurrently; one batcher drains. Admission
// control is the point: a full queue rejects (try_push returns false, the
// item is left with the caller) instead of blocking or growing, so overload
// sheds load at the front door with an immediate, observable decision — the
// caller completes the request with kResourceExhausted and the client can
// back off. Mutex-guarded rather than lock-free: the hand-off is the only
// cross-thread synchronization the serving pipeline needs (commit and read
// touch disjoint replicas, see src/serve/engine.h), and a lock held for one
// push or one bounded drain is nanoseconds against a millisecond batch.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace weg::serve {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return capacity_; }

  // Producer side. Moves `item` in and returns true, or returns false with
  // `item` untouched when the queue is full (the request is rejected and
  // the caller still owns its completion handle).
  bool try_push(T& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    return true;
  }

  // Consumer (batcher) side: moves out up to `max_n` items in FIFO order,
  // appending to `out`. Returns how many were taken.
  size_t drain_into(std::vector<T>& out, size_t max_n) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    while (n < max_n && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++n;
    }
    return n;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace weg::serve
