// Asynchronous pipelined serving engine over the sharded epoch layer.
//
// The synchronous loop in examples/sharded_server.cpp (stage -> commit ->
// query) serializes updates against reads. This engine pipelines them:
//
//   producers --try_push--> [bounded MPSC queues]      (admission control)
//                               |
//                           batcher thread             (size/deadline flush)
//                   query batches     |  epoch hand-off
//                   on replica[read]  |  to committer thread
//                           |         |         |
//                     double-buffered Sharded replicas
//
// Double-buffered epochs: the engine owns TWO identical Sharded replicas.
// Queries always run against replica[read] — an immutable epoch-N snapshot —
// while the committer applies epoch N+1 (validation + shadow-clone apply,
// plain Sharded::commit()) to the other replica. When the commit lands, the
// batcher flips `read` between query batches, completes the epoch's update
// requests, and the committer replays the same delta into the now-stale twin
// so both replicas publish the same version sequence. Commit and read touch
// disjoint replicas at all times, so the only synchronization is the queue
// hand-off plus one small mutex around the commit phase transitions.
//
// Per-request failure isolation: each request completes with its own
// weg::Expected<T>. Malformed update records (non-finite coordinates,
// inverted intervals, ids duplicated within the forming epoch) are screened
// at admission-to-epoch time and fail only their own request; a poisoned
// query batch (fault injection) falls back to per-query re-execution so only
// the requests whose own sub-batch trips the fault see its Status. Structure-
// level rejects the engine cannot pre-screen (an id already live in a shard)
// still fail the whole epoch after cfg.commit_retries attempts — a
// documented limitation (docs/SERVING.md).
//
// Determinism contract: run_trace() replays a fixed request trace with a
// logical (injected) clock, single-threaded on the caller — admission
// decisions, batch boundaries, versions, and query results are a pure
// function of (trace, config), bitwise-identical at every WEG_NUM_THREADS.
// Live mode (start()/submit_*) uses the same flush logic against the wall
// clock: deadlines then affect batching boundaries, never results.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/status.h"
#include "src/parallel/sharded.h"
#include "src/serve/bounded_queue.h"

namespace weg::serve {

// Tuning knobs. docs/SERVING.md discusses the trade-offs.
struct Config {
  size_t queue_capacity = 4096;  // per admission queue (queries, updates)
  size_t max_batch = 256;        // size-triggered flush threshold
  uint64_t max_delay_us = 500;   // deadline flush: oldest waiter's max wait
  size_t knn_k = 8;              // k served by point engines' kNN family
  int commit_retries = 2;        // extra commit attempts before propagating
};

// The query family one engine serves per structure: Query in, a slice of
// Items out, executed through the sharded layer's batch API.
template <typename Structure>
struct ServeTraits;

template <>
struct ServeTraits<augtree::DynamicIntervalTree> {
  using Query = double;    // 1D stabbing query
  using Item = uint32_t;   // ids of stabbed intervals
  static parallel::BatchResult<Item> run(
      const parallel::Sharded<augtree::DynamicIntervalTree>& layer,
      const std::vector<Query>& qs, const Config&) {
    return layer.stab_batch(qs);
  }
};

template <int K>
struct ServeTraits<kdtree::LogForest<K>> {
  using Query = geom::PointK<K>;  // kNN probe point
  using Item = geom::PointK<K>;
  static parallel::BatchResult<Item> run(
      const parallel::Sharded<kdtree::LogForest<K>>& layer,
      const std::vector<Query>& qs, const Config& cfg) {
    return layer.knn_batch(qs, cfg.knn_k);
  }
};

// A completed query: the result slice plus the epoch it was served at.
template <typename Item>
struct QueryReplyT {
  std::vector<Item> items;
  uint64_t version = 0;
};

enum class RequestKind : uint8_t { kQuery, kInsert, kErase };

// One event of a deterministic replay trace: at logical time `at_us`, a
// producer submits a query or an update.
template <typename Structure>
struct TraceEvent {
  RequestKind kind = RequestKind::kQuery;
  uint64_t at_us = 0;
  typename ServeTraits<Structure>::Query query{};
  typename parallel::Sharded<Structure>::Record rec{};
};

// Per-request completion of a trace replay. `status` is the request's own
// outcome (admission reject, validation reject, commit/query failure);
// `version` is the snapshot a query ran against or the epoch an update
// committed at; `completed_at_us` is the logical flush time (== the event
// time for admission rejects).
template <typename Structure>
struct TraceOutcome {
  Status status = Status::Ok();
  std::vector<typename ServeTraits<Structure>::Item> items;
  uint64_t version = 0;
  uint64_t admitted_at_us = 0;
  uint64_t completed_at_us = 0;
};

// Engine statistics. Plain-value snapshot; collected with stats().
struct Stats {
  uint64_t queries_admitted = 0;
  uint64_t queries_rejected = 0;  // admission-queue full
  uint64_t updates_admitted = 0;
  uint64_t updates_rejected = 0;
  uint64_t requests_failed = 0;  // completed with a non-OK Status
  uint64_t query_batches = 0;
  uint64_t size_flushes = 0;      // batch reached max_batch
  uint64_t deadline_flushes = 0;  // oldest waiter reached max_delay_us
  uint64_t drain_flushes = 0;     // shutdown / trace-end drain
  uint64_t epochs_committed = 0;
  uint64_t epochs_failed = 0;
  uint64_t commit_retries = 0;
  uint64_t catchup_abandoned = 0;
  // Query batches that ran while a commit was in flight on the twin
  // replica — the pipeline-overlap evidence the bench reports.
  uint64_t overlap_batches = 0;
  // Bucket b counts flushed batches with bit_width(size) == b (size 1 ->
  // bucket 1, 2-3 -> 2, 4-7 -> 3, ...).
  std::array<uint64_t, 20> batch_size_hist{};

  double epoch_overlap_ratio() const {
    return query_batches == 0
               ? 0.0
               : static_cast<double>(overlap_batches) /
                     static_cast<double>(query_batches);
  }
};

// The serving engine. One instance serves one Structure family; see
// ServeTraits for the query each family answers. Control calls (start,
// stop, bulk_load, run_trace) must come from one thread; submit_* may be
// called from any number of producer threads while running.
template <typename Structure>
class Engine {
 public:
  using Traits = ServeTraits<Structure>;
  using Record = typename parallel::Sharded<Structure>::Record;
  using Query = typename Traits::Query;
  using Item = typename Traits::Item;
  using QueryReply = QueryReplyT<Item>;
  using Event = TraceEvent<Structure>;
  using Outcome = TraceOutcome<Structure>;

  template <typename... Args>
  Engine(const Config& cfg, parallel::Routing routing, size_t fanout,
         const Args&... args)
      : cfg_(cfg),
        query_q_(cfg.queue_capacity),
        update_q_(cfg.queue_capacity),
        start_tp_(std::chrono::steady_clock::now()) {
    // Sharded is pinned in place (atomics inside), so the twin replicas
    // live behind unique_ptrs. Identical construction + identical delta
    // sequence keeps their version counters in lockstep.
    rep_[0] = std::make_unique<parallel::Sharded<Structure>>(routing, fanout,
                                                             args...);
    rep_[1] = std::make_unique<parallel::Sharded<Structure>>(routing, fanout,
                                                             args...);
  }
  template <typename... Args>
  Engine(const Config& cfg, size_t fanout, const Args&... args)
      : Engine(cfg, parallel::Routing::kHash, fanout, args...) {}

  ~Engine() { stop(); }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Initial data load, applied identically to both replicas. Engine must
  // be stopped.
  Status bulk_load(const std::vector<Record>& recs) {
    assert(!running_);
    for (auto& rep : rep_) {
      if (Status s = rep->bulk_insert(recs); !s.ok()) return s;
    }
    return Status::Ok();
  }

  // --- live mode --------------------------------------------------------

  // Spawns the batcher + committer threads (two scheduler-external root
  // threads, see src/parallel/scheduler.h). No-op if already running or
  // after an abandoned catch-up left the replicas diverged (degraded()).
  void start() {
    if (running_ || degraded_) return;
    stop_requested_.store(false, std::memory_order_release);
    accepting_.store(true, std::memory_order_release);
    batcher_ = std::thread([this] { batcher_loop(); });
    committer_ = std::thread([this] { committer_loop(); });
    running_ = true;
  }

  // Drains both queues, flushes the forming batches, completes every
  // in-flight request, finishes (or abandons, see degraded()) the replica
  // catch-up, and joins both threads. Idempotent.
  void stop() {
    if (!running_) return;
    accepting_.store(false, std::memory_order_release);
    stop_requested_.store(true, std::memory_order_release);
    poke();
    batcher_.join();  // signals committer exit after the final epoch
    committer_.join();
    running_ = false;
    {
      std::lock_guard<std::mutex> lk(commit_mu_);
      committer_exit_ = false;  // allow a restart
    }
    // A producer racing stop() may have slipped a request in after the
    // batcher's final drain; fail it rather than leave its future hanging.
    std::vector<PendingQuery> leftq;
    query_q_.drain_into(leftq, ~size_t{0});
    for (PendingQuery& r : leftq) {
      r.done.set_value(Expected<QueryReply>(
          Status::FailedPrecondition("serving engine stopped")));
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
    }
    std::vector<PendingUpdate> leftu;
    update_q_.drain_into(leftu, ~size_t{0});
    for (PendingUpdate& r : leftu) {
      r.done.set_value(Expected<uint64_t>(
          Status::FailedPrecondition("serving engine stopped")));
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool running() const { return running_; }
  // True after a shutdown had to abandon a replica catch-up: the twins'
  // versions diverged, so the engine refuses to restart. Only reachable
  // while a persistent injected fault is armed across stop().
  bool degraded() const { return degraded_; }

  std::future<Expected<QueryReply>> submit_query(const Query& q) {
    PendingQuery r;
    r.query = q;
    r.admitted_us = now_us();
    auto fut = r.done.get_future();
    if (!accepting_.load(std::memory_order_acquire)) {
      r.done.set_value(Expected<QueryReply>(
          Status::FailedPrecondition("serving engine is not running")));
      return fut;
    }
    if (!query_q_.try_push(r)) {
      queries_rejected_.fetch_add(1, std::memory_order_relaxed);
      r.done.set_value(Expected<QueryReply>(
          Status::ResourceExhausted("query admission queue full")));
      return fut;
    }
    queries_admitted_.fetch_add(1, std::memory_order_relaxed);
    poke();
    return fut;
  }

  std::future<Expected<uint64_t>> submit_insert(const Record& rec) {
    return submit_update(RequestKind::kInsert, rec);
  }
  std::future<Expected<uint64_t>> submit_erase(const Record& rec) {
    return submit_update(RequestKind::kErase, rec);
  }

  // --- trace mode -------------------------------------------------------

  // Deterministic replay: processes `trace` (non-decreasing at_us) inline
  // on the calling thread with the trace's logical clock — before admitting
  // the event at time T, every flush whose deadline falls at or before T
  // fires in deadline order (queries before updates on ties). Admission
  // rejects when the pending batch already holds queue_capacity requests.
  // The result is a pure function of (trace, config): bitwise-identical at
  // every worker count. Engine must be stopped.
  std::vector<Outcome> run_trace(const std::vector<Event>& trace) {
    assert(!running_);
    std::vector<Outcome> out(trace.size());
    std::vector<TraceReq> pq, pu;
    constexpr uint64_t kNever = ~uint64_t{0};
    auto deadline = [&](const std::vector<TraceReq>& pend) {
      return pend.empty() ? kNever : pend.front().at + cfg_.max_delay_us;
    };

    uint64_t prev_at = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
      const Event& ev = trace[i];
      assert(ev.at_us >= prev_at && "trace timestamps must be sorted");
      prev_at = ev.at_us;
      (void)prev_at;
      out[i].admitted_at_us = ev.at_us;
      for (;;) {  // fire every deadline due by now, chronologically
        uint64_t dq = deadline(pq), du = deadline(pu);
        if (std::min(dq, du) > ev.at_us) break;
        if (dq <= du) {
          trace_flush_queries(pq, out, dq, &deadline_flushes_);
        } else {
          trace_flush_updates(pu, out, du, &deadline_flushes_);
        }
      }
      std::vector<TraceReq>& pend = ev.kind == RequestKind::kQuery ? pq : pu;
      if (pend.size() >= cfg_.queue_capacity) {
        out[i].status = Status::ResourceExhausted(
            ev.kind == RequestKind::kQuery ? "query admission queue full"
                                           : "update admission queue full");
        out[i].completed_at_us = ev.at_us;
        auto& ctr = ev.kind == RequestKind::kQuery ? queries_rejected_
                                                   : updates_rejected_;
        ctr.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      pend.push_back(TraceReq{ev.kind, ev.at_us, i, ev.query, ev.rec});
      auto& ctr = ev.kind == RequestKind::kQuery ? queries_admitted_
                                                 : updates_admitted_;
      ctr.fetch_add(1, std::memory_order_relaxed);
      if (ev.kind == RequestKind::kQuery) {
        if (pq.size() >= cfg_.max_batch) {
          trace_flush_queries(pq, out, ev.at_us, &size_flushes_);
        }
      } else if (pu.size() >= cfg_.max_batch) {
        trace_flush_updates(pu, out, ev.at_us, &size_flushes_);
      }
    }
    while (!pq.empty() || !pu.empty()) {  // end-of-trace drain
      uint64_t dq = deadline(pq), du = deadline(pu);
      if (dq <= du) {
        trace_flush_queries(pq, out, dq, &drain_flushes_);
      } else {
        trace_flush_updates(pu, out, du, &drain_flushes_);
      }
    }
    return out;
  }

  // --- introspection ----------------------------------------------------

  // Stable only while the engine is stopped or between epochs; live-mode
  // callers race the batcher's flip and should go through submit_query.
  parallel::ShardedSnapshot<Structure> snapshot() const {
    return rep_[read_idx()]->snapshot();
  }
  uint64_t version() const { return rep_[read_idx()]->version(); }
  size_t size() const { return rep_[read_idx()]->size(); }

  Stats stats() const {
    Stats s;
    auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    s.queries_admitted = ld(queries_admitted_);
    s.queries_rejected = ld(queries_rejected_);
    s.updates_admitted = ld(updates_admitted_);
    s.updates_rejected = ld(updates_rejected_);
    s.requests_failed = ld(requests_failed_);
    s.query_batches = ld(query_batches_);
    s.size_flushes = ld(size_flushes_);
    s.deadline_flushes = ld(deadline_flushes_);
    s.drain_flushes = ld(drain_flushes_);
    s.epochs_committed = ld(epochs_committed_);
    s.epochs_failed = ld(epochs_failed_);
    s.commit_retries = ld(commit_retries_);
    s.catchup_abandoned = ld(catchup_abandoned_);
    s.overlap_batches = ld(overlap_batches_);
    for (size_t b = 0; b < s.batch_size_hist.size(); ++b) {
      s.batch_size_hist[b] = ld(batch_size_hist_[b]);
    }
    return s;
  }

 private:
  // --- shared plumbing --------------------------------------------------

  enum class CommitPhase : uint8_t { kIdle, kApplying, kApplied, kCatchingUp };

  struct PendingQuery {
    Query query{};
    uint64_t admitted_us = 0;
    std::promise<Expected<QueryReply>> done;
  };
  struct PendingUpdate {
    RequestKind kind = RequestKind::kInsert;
    Record rec{};
    uint64_t admitted_us = 0;
    std::promise<Expected<uint64_t>> done;
  };
  struct TraceReq {
    RequestKind kind;
    uint64_t at;
    size_t idx;  // position in the trace / outcome array
    Query query;
    Record rec;
  };
  // One epoch in flight between batcher and committer, guarded by
  // commit_mu_. inserts/erases survive until the catch-up replay lands so
  // the twin replica receives the identical delta.
  struct Epoch {
    std::vector<Record> inserts, erases;
    std::vector<PendingUpdate> requests;
    Status status = Status::Ok();
    uint64_t version = 0;
  };

  size_t read_idx() const { return read_idx_.load(std::memory_order_relaxed); }
  parallel::Sharded<Structure>& write_rep() {
    return *rep_[1 - read_idx()];
  }

  uint64_t now_us() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_tp_)
            .count());
  }

  void note_batch(size_t n, std::atomic<uint64_t>* trigger_ctr) {
    trigger_ctr->fetch_add(1, std::memory_order_relaxed);
    size_t b = std::min<size_t>(std::bit_width(n), batch_size_hist_.size() - 1);
    batch_size_hist_[b].fetch_add(1, std::memory_order_relaxed);
  }

  // Stages ins+ers into `rep` and commits, retrying the commit up to
  // cfg_.commit_retries extra times (transient faults); on final failure
  // the staged buffers are dropped and the replica still serves its old
  // epoch (Sharded's all-or-nothing contract).
  Expected<uint64_t> apply_delta(parallel::Sharded<Structure>& rep,
                                 const std::vector<Record>& ins,
                                 const std::vector<Record>& ers) {
    for (const Record& r : ins) rep.stage_insert(r);
    for (const Record& r : ers) rep.stage_erase(r);
    for (int attempt = 0;; ++attempt) {
      Expected<uint64_t> v = rep.commit();
      if (v.ok()) return v;
      if (attempt >= cfg_.commit_retries) {
        rep.discard_staged();
        return v;
      }
      commit_retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Admission-to-epoch screening: validates each record and rejects ids
  // duplicated within the forming epoch, so a malformed request fails alone
  // instead of poisoning the commit. Returns the per-request Status, OK for
  // records that made it into the epoch.
  template <typename GetRec>
  static std::vector<Status> screen(size_t n, GetRec&& get,
                                    std::vector<Record>* ins,
                                    std::vector<Record>* ers) {
    std::vector<Status> verdict(n);
    std::unordered_set<uint32_t> epoch_ids;
    for (size_t i = 0; i < n; ++i) {
      auto [kind, rec] = get(i);
      Status s = parallel::Sharded<Structure>::validate(rec, i);
      if constexpr (requires(const Record& r) { r.id; }) {
        if (s.ok() && kind == RequestKind::kInsert &&
            !epoch_ids.insert(rec.id).second) {
          s = Status::InvalidArgument("submitted record " + std::to_string(i) +
                                      ": duplicate id " +
                                      std::to_string(rec.id) +
                                      " within epoch");
        }
      }
      if (s.ok()) {
        (kind == RequestKind::kInsert ? ins : ers)->push_back(rec);
      }
      verdict[i] = std::move(s);
    }
    return verdict;
  }

  // --- trace-mode internals ---------------------------------------------

  void trace_flush_queries(std::vector<TraceReq>& pq, std::vector<Outcome>& out,
                           uint64_t when, std::atomic<uint64_t>* trigger_ctr) {
    if (pq.empty()) return;
    note_batch(pq.size(), trigger_ctr);
    auto snap = rep_[read_idx()]->snapshot();
    std::vector<Query> qs;
    qs.reserve(pq.size());
    for (const TraceReq& r : pq) qs.push_back(r.query);
    parallel::BatchResult<Item> res = Traits::run(*snap, qs, cfg_);
    for (size_t i = 0; i < pq.size(); ++i) {
      Outcome& o = out[pq[i].idx];
      o.completed_at_us = when;
      o.version = snap.version();
      if (res.ok()) {
        o.items = res.result(i);
      } else {
        // Poisoned batch: per-request isolation by re-running each query
        // alone, so only requests whose own sub-batch trips see the fault.
        parallel::BatchResult<Item> one = Traits::run(*snap, {qs[i]}, cfg_);
        if (one.ok()) {
          o.items = one.result(0);
        } else {
          o.status = one.status();
          requests_failed_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    assert(snap.valid());
    query_batches_.fetch_add(1, std::memory_order_relaxed);
    pq.clear();
  }

  void trace_flush_updates(std::vector<TraceReq>& pu, std::vector<Outcome>& out,
                           uint64_t when, std::atomic<uint64_t>* trigger_ctr) {
    if (pu.empty()) return;
    note_batch(pu.size(), trigger_ctr);
    // A failed catch-up replay from the previous epoch must land before a
    // new epoch may start (the twins' versions would diverge otherwise).
    if (catchup_pending_) {
      Expected<uint64_t> c =
          apply_delta(write_rep(), inflight_.inserts, inflight_.erases);
      if (c.ok()) {
        catchup_pending_ = false;
        inflight_.inserts.clear();
        inflight_.erases.clear();
      } else {
        for (const TraceReq& r : pu) {
          out[r.idx].status = c.status();
          out[r.idx].completed_at_us = when;
          requests_failed_.fetch_add(1, std::memory_order_relaxed);
        }
        pu.clear();
        return;
      }
    }
    std::vector<Record> ins, ers;
    std::vector<Status> verdict = screen(
        pu.size(),
        [&](size_t i) {
          return std::pair<RequestKind, const Record&>(pu[i].kind, pu[i].rec);
        },
        &ins, &ers);
    std::vector<size_t> live;
    for (size_t i = 0; i < pu.size(); ++i) {
      if (verdict[i].ok()) {
        live.push_back(pu[i].idx);
        continue;
      }
      out[pu[i].idx].status = std::move(verdict[i]);
      out[pu[i].idx].completed_at_us = when;
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
    }
    pu.clear();
    if (live.empty()) return;
    Expected<uint64_t> r = apply_delta(write_rep(), ins, ers);
    if (r.ok()) {
      read_idx_.store(1 - read_idx(), std::memory_order_relaxed);
      epochs_committed_.fetch_add(1, std::memory_order_relaxed);
      for (size_t idx : live) {
        out[idx].version = r.value();
        out[idx].completed_at_us = when;
      }
      // Catch-up replay of the same delta into the now-stale twin.
      Expected<uint64_t> c = apply_delta(write_rep(), ins, ers);
      if (!c.ok()) {
        inflight_.inserts = std::move(ins);
        inflight_.erases = std::move(ers);
        catchup_pending_ = true;
      }
    } else {
      epochs_failed_.fetch_add(1, std::memory_order_relaxed);
      for (size_t idx : live) {
        out[idx].status = r.status();
        out[idx].completed_at_us = when;
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // --- live-mode internals ----------------------------------------------

  std::future<Expected<uint64_t>> submit_update(RequestKind kind,
                                                const Record& rec) {
    PendingUpdate r;
    r.kind = kind;
    r.rec = rec;
    r.admitted_us = now_us();
    auto fut = r.done.get_future();
    if (!accepting_.load(std::memory_order_acquire)) {
      r.done.set_value(Expected<uint64_t>(
          Status::FailedPrecondition("serving engine is not running")));
      return fut;
    }
    if (!update_q_.try_push(r)) {
      updates_rejected_.fetch_add(1, std::memory_order_relaxed);
      r.done.set_value(Expected<uint64_t>(
          Status::ResourceExhausted("update admission queue full")));
      return fut;
    }
    updates_admitted_.fetch_add(1, std::memory_order_relaxed);
    poke();
    return fut;
  }

  void poke() {
    {
      std::lock_guard<std::mutex> lk(wake_mu_);
      wake_pending_ = true;
    }
    wake_cv_.notify_all();
  }

  CommitPhase phase() const {
    return phase_.load(std::memory_order_relaxed);
  }

  void batcher_loop() {
    std::vector<PendingQuery> pq;
    std::vector<PendingUpdate> pu;
    int stop_catchup_attempts = 0;
    for (;;) {
      pump_commit_completion();
      bool stopping = stop_requested_.load(std::memory_order_acquire);
      if (pq.size() < cfg_.max_batch) {
        query_q_.drain_into(pq, cfg_.max_batch - pq.size());
      }
      if (pu.size() < cfg_.max_batch) {
        update_q_.drain_into(pu, cfg_.max_batch - pu.size());
      }
      uint64_t now = now_us();
      if (!pq.empty()) {
        bool full = pq.size() >= cfg_.max_batch;
        bool late = now >= pq.front().admitted_us + cfg_.max_delay_us;
        if (full || late || stopping) {
          run_query_batch(pq, full     ? &size_flushes_
                              : late   ? &deadline_flushes_
                                       : &drain_flushes_);
        }
      }
      bool commit_ready = phase() == CommitPhase::kIdle && !catchup_pending();
      if (!pu.empty() && commit_ready) {
        bool full = pu.size() >= cfg_.max_batch;
        bool late = now >= pu.front().admitted_us + cfg_.max_delay_us;
        if (full || late || stopping) {
          hand_off_epoch(pu, full     ? &size_flushes_
                             : late   ? &deadline_flushes_
                                      : &drain_flushes_);
        }
      }
      maybe_retry_catchup(now, stopping, &stop_catchup_attempts);
      if (stopping && pq.empty() && pu.empty() && query_q_.empty() &&
          update_q_.empty() && phase() == CommitPhase::kIdle &&
          !catchup_pending()) {
        break;
      }
      wait_for_work(pq, pu, stopping);
    }
    {
      std::lock_guard<std::mutex> lk(commit_mu_);
      committer_exit_ = true;
    }
    commit_cv_.notify_all();
  }

  bool catchup_pending() const {
    std::lock_guard<std::mutex> lk(commit_mu_);
    return catchup_pending_;
  }

  void run_query_batch(std::vector<PendingQuery>& batch,
                       std::atomic<uint64_t>* trigger_ctr) {
    note_batch(batch.size(), trigger_ctr);
    bool overlap = phase() != CommitPhase::kIdle;
    auto snap = rep_[read_idx()]->snapshot();
    std::vector<Query> qs;
    qs.reserve(batch.size());
    for (const PendingQuery& r : batch) qs.push_back(r.query);
    parallel::BatchResult<Item> res = Traits::run(*snap, qs, cfg_);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (res.ok()) {
        batch[i].done.set_value(
            Expected<QueryReply>(QueryReply{res.result(i), snap.version()}));
        continue;
      }
      parallel::BatchResult<Item> one = Traits::run(*snap, {qs[i]}, cfg_);
      if (one.ok()) {
        batch[i].done.set_value(
            Expected<QueryReply>(QueryReply{one.result(0), snap.version()}));
      } else {
        batch[i].done.set_value(Expected<QueryReply>(one.status()));
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    assert(snap.valid());
    if (overlap) overlap_batches_.fetch_add(1, std::memory_order_relaxed);
    query_batches_.fetch_add(1, std::memory_order_relaxed);
    batch.clear();
  }

  void hand_off_epoch(std::vector<PendingUpdate>& pu,
                      std::atomic<uint64_t>* trigger_ctr) {
    note_batch(pu.size(), trigger_ctr);
    Epoch ep;
    std::vector<Status> verdict = screen(
        pu.size(),
        [&](size_t i) {
          return std::pair<RequestKind, const Record&>(pu[i].kind, pu[i].rec);
        },
        &ep.inserts, &ep.erases);
    for (size_t i = 0; i < pu.size(); ++i) {
      if (verdict[i].ok()) {
        ep.requests.push_back(std::move(pu[i]));
        continue;
      }
      pu[i].done.set_value(Expected<uint64_t>(std::move(verdict[i])));
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
    }
    pu.clear();
    if (ep.requests.empty()) return;
    {
      std::lock_guard<std::mutex> lk(commit_mu_);
      inflight_ = std::move(ep);
      phase_.store(CommitPhase::kApplying, std::memory_order_relaxed);
    }
    commit_cv_.notify_all();
  }

  // Batcher side of the commit hand-shake: when the committer parked the
  // epoch in kApplied, flip the read replica (between query batches, so no
  // reader ever observes a mutation), complete the epoch's requests, and
  // release the committer into the catch-up replay.
  void pump_commit_completion() {
    std::vector<PendingUpdate> done;
    Status st;
    uint64_t ver = 0;
    {
      std::lock_guard<std::mutex> lk(commit_mu_);
      if (phase_.load(std::memory_order_relaxed) != CommitPhase::kApplied) {
        return;
      }
      st = inflight_.status;
      ver = inflight_.version;
      done = std::move(inflight_.requests);
      inflight_.requests.clear();
      if (st.ok()) {
        read_idx_.store(1 - read_idx(), std::memory_order_relaxed);
        epochs_committed_.fetch_add(1, std::memory_order_relaxed);
        phase_.store(CommitPhase::kCatchingUp, std::memory_order_relaxed);
      } else {
        epochs_failed_.fetch_add(1, std::memory_order_relaxed);
        inflight_.inserts.clear();
        inflight_.erases.clear();
        phase_.store(CommitPhase::kIdle, std::memory_order_relaxed);
      }
    }
    commit_cv_.notify_all();
    for (PendingUpdate& r : done) {
      if (st.ok()) {
        r.done.set_value(Expected<uint64_t>(ver));
      } else {
        r.done.set_value(Expected<uint64_t>(st));
        requests_failed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  void maybe_retry_catchup(uint64_t now, bool stopping,
                           int* stop_catchup_attempts) {
    std::unique_lock<std::mutex> lk(commit_mu_);
    if (!catchup_pending_ || phase() != CommitPhase::kIdle) return;
    if (stopping && ++*stop_catchup_attempts > 2) {
      // Persistent failure across shutdown: give up so stop() terminates.
      // The committed data is fully served by the read replica; only the
      // stale twin is short one delta, so the engine marks itself degraded
      // and refuses to restart.
      inflight_.inserts.clear();
      inflight_.erases.clear();
      catchup_pending_ = false;
      degraded_ = true;
      catchup_abandoned_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!stopping && now < last_catchup_us_ + cfg_.max_delay_us) return;
    phase_.store(CommitPhase::kCatchingUp, std::memory_order_relaxed);
    lk.unlock();
    commit_cv_.notify_all();
  }

  void committer_loop() {
    std::unique_lock<std::mutex> lk(commit_mu_);
    for (;;) {
      commit_cv_.wait(lk, [&] {
        CommitPhase ph = phase_.load(std::memory_order_relaxed);
        return committer_exit_ || ph == CommitPhase::kApplying ||
               ph == CommitPhase::kCatchingUp;
      });
      CommitPhase ph = phase_.load(std::memory_order_relaxed);
      if (ph == CommitPhase::kApplying) {
        std::vector<Record> ins = inflight_.inserts;
        std::vector<Record> ers = inflight_.erases;
        lk.unlock();
        Expected<uint64_t> r = apply_delta(write_rep(), ins, ers);
        lk.lock();
        inflight_.status = r.status();
        inflight_.version = r.ok() ? r.value() : 0;
        phase_.store(CommitPhase::kApplied, std::memory_order_relaxed);
        // poke() takes wake_mu_; never hold commit_mu_ across it (the
        // batcher takes the two locks separately, in either order).
        lk.unlock();
        poke();  // batcher flips + completes
        lk.lock();
      } else if (ph == CommitPhase::kCatchingUp) {
        std::vector<Record> ins = inflight_.inserts;
        std::vector<Record> ers = inflight_.erases;
        lk.unlock();
        Expected<uint64_t> r = apply_delta(write_rep(), ins, ers);
        lk.lock();
        if (r.ok()) {
          inflight_.inserts.clear();
          inflight_.erases.clear();
          catchup_pending_ = false;
        } else {
          catchup_pending_ = true;
          last_catchup_us_ = now_us();
        }
        phase_.store(CommitPhase::kIdle, std::memory_order_relaxed);
        lk.unlock();
        poke();
        lk.lock();
      } else if (committer_exit_) {
        break;
      }
    }
  }

  void wait_for_work(const std::vector<PendingQuery>& pq,
                     const std::vector<PendingUpdate>& pu, bool stopping) {
    // Evaluated before wake_mu_ is taken: catchup_pending() locks
    // commit_mu_, and commit_mu_ must never nest inside wake_mu_.
    bool commit_ready =
        phase() == CommitPhase::kIdle && !catchup_pending();
    std::unique_lock<std::mutex> lk(wake_mu_);
    if (wake_pending_) {
      wake_pending_ = false;
      return;
    }
    uint64_t now = now_us();
    constexpr uint64_t kIdleWaitUs = 5000;
    uint64_t next = now + kIdleWaitUs;
    if (!pq.empty()) {
      next = std::min(next, pq.front().admitted_us + cfg_.max_delay_us);
    }
    // An update deadline only matters when the committer could accept the
    // epoch; otherwise the committer's completion poke is the wake signal.
    if (!pu.empty() && commit_ready) {
      next = std::min(next, pu.front().admitted_us + cfg_.max_delay_us);
    }
    if (stopping) next = std::min(next, now + 200);
    if (next <= now) return;
    wake_cv_.wait_for(lk, std::chrono::microseconds(next - now));
    wake_pending_ = false;
  }

  // --- members ----------------------------------------------------------

  const Config cfg_;
  std::unique_ptr<parallel::Sharded<Structure>> rep_[2];
  std::atomic<size_t> read_idx_{0};

  BoundedMpscQueue<PendingQuery> query_q_;
  BoundedMpscQueue<PendingUpdate> update_q_;

  std::thread batcher_, committer_;
  bool running_ = false;
  bool degraded_ = false;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_requested_{false};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool wake_pending_ = false;

  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::atomic<CommitPhase> phase_{CommitPhase::kIdle};
  bool committer_exit_ = false;
  bool catchup_pending_ = false;
  uint64_t last_catchup_us_ = 0;
  Epoch inflight_;

  std::chrono::steady_clock::time_point start_tp_;

  std::atomic<uint64_t> queries_admitted_{0}, queries_rejected_{0};
  std::atomic<uint64_t> updates_admitted_{0}, updates_rejected_{0};
  std::atomic<uint64_t> requests_failed_{0};
  std::atomic<uint64_t> query_batches_{0};
  std::atomic<uint64_t> size_flushes_{0}, deadline_flushes_{0},
      drain_flushes_{0};
  std::atomic<uint64_t> epochs_committed_{0}, epochs_failed_{0};
  std::atomic<uint64_t> commit_retries_{0}, catchup_abandoned_{0};
  std::atomic<uint64_t> overlap_batches_{0};
  std::array<std::atomic<uint64_t>, 20> batch_size_hist_{};
};

}  // namespace weg::serve
