// Instrumented array that lives in the simulated large asymmetric memory.
// Element reads/writes are counted through asym::count_read/count_write.
// Access is funneled through get()/set() (plus a counted reference proxy for
// operator[]) so the instrumentation points are explicit in algorithm code.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/asym/counters.h"

namespace weg::asym {

template <typename T>
class Array {
 public:
  Array() = default;
  explicit Array(size_t n) : data_(n) {}
  Array(size_t n, const T& init) : data_(n, init) {
    // Initialization writes n values to large memory.
    count_write(n);
  }

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Counted element access.
  const T& get(size_t i) const {
    assert(i < data_.size());
    count_read();
    return data_[i];
  }
  void set(size_t i, T v) {
    assert(i < data_.size());
    count_write();
    data_[i] = std::move(v);
  }

  // Uncounted access, for verification/test code that inspects results
  // without charging the algorithm.
  const T& peek(size_t i) const { return data_[i]; }
  T& raw(size_t i) { return data_[i]; }
  const std::vector<T>& vec() const { return data_; }
  std::vector<T>& vec() { return data_; }

  void resize(size_t n) { data_.resize(n); }
  void push_back_counted(T v) {
    count_write();
    data_.push_back(std::move(v));
  }

 private:
  std::vector<T> data_;
};

}  // namespace weg::asym
