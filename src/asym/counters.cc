#include "src/asym/counters.h"

#include <mutex>
#include <vector>

namespace weg::asym {
namespace detail {

namespace {

std::mutex registry_mu;
std::vector<ThreadCounter*>& registry() {
  static std::vector<ThreadCounter*> r;
  return r;
}

}  // namespace

ThreadCounter& local_counter() {
  // Registered thread-locals outlive any measurement because threads are
  // owned by the process-lifetime scheduler singleton. Counter storage leaks
  // intentionally at thread exit to keep aggregation race-free.
  thread_local ThreadCounter* tc = [] {
    auto* c = new ThreadCounter();
    std::lock_guard<std::mutex> lk(registry_mu);
    registry().push_back(c);
    return c;
  }();
  return *tc;
}

}  // namespace detail

Counts total() {
  Counts t;
  std::lock_guard<std::mutex> lk(detail::registry_mu);
  for (auto* c : detail::registry()) {
    t.reads += c->reads;
    t.writes += c->writes;
  }
  return t;
}

void reset() {
  std::lock_guard<std::mutex> lk(detail::registry_mu);
  for (auto* c : detail::registry()) {
    c->reads = 0;
    c->writes = 0;
  }
}

}  // namespace weg::asym
