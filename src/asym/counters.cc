#include "src/asym/counters.h"

#include <mutex>
#include <vector>

namespace weg::asym {
namespace detail {

namespace {

// Both statics are deliberately immortal (never destroyed): threads may
// still register and count during static destruction, and keeping the
// vector alive keeps the leaked per-thread counters reachable so
// LeakSanitizer stays quiet about them.
std::mutex& registry_mu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::vector<ThreadCounter*>& registry() {
  static std::vector<ThreadCounter*>* r = new std::vector<ThreadCounter*>();
  return *r;
}

}  // namespace

ThreadCounter* register_counter() {
  // Registered thread-locals outlive any measurement because threads are
  // owned by the process-lifetime scheduler singleton. Counter storage leaks
  // intentionally at thread exit to keep aggregation race-free.
  auto* c = new ThreadCounter();
  {
    std::lock_guard<std::mutex> lk(registry_mu());
    registry().push_back(c);
  }
  tl_counter = c;
  return c;
}

}  // namespace detail

Counts total() {
  Counts t;
  std::lock_guard<std::mutex> lk(detail::registry_mu());
  for (auto* c : detail::registry()) {
    t.reads += c->reads.load(std::memory_order_relaxed);
    t.writes += c->writes.load(std::memory_order_relaxed);
  }
  return t;
}

void reset() {
  std::lock_guard<std::mutex> lk(detail::registry_mu());
  for (auto* c : detail::registry()) {
    c->reads.store(0, std::memory_order_relaxed);
    c->writes.store(0, std::memory_order_relaxed);
  }
}

}  // namespace weg::asym
