// Simulated asymmetric memory (Section 2.1): reads from the large memory
// cost 1, writes cost ω. The paper's results are statements about the number
// of reads and writes an algorithm performs on the large asymmetric memory,
// so we reproduce them by *counting* instrumented accesses rather than by
// emulating NVM latencies. ω is applied at report time, so one run yields an
// entire ω sweep.
//
// Counting conventions (matching the model):
//  * Only accesses made through asym::read / asym::write / asym::Array are
//    counted — these are the algorithm's large-memory accesses.
//  * Stack locals and bounded scratch buffers model the small symmetric
//    memory and are never counted.
//  * Counters are per-thread (padded to a cache line) and aggregated on
//    demand, so counting is cheap and exact under parallel execution.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace weg::asym {

struct Counts {
  uint64_t reads = 0;
  uint64_t writes = 0;

  Counts operator-(const Counts& o) const {
    return Counts{reads - o.reads, writes - o.writes};
  }
  Counts operator+(const Counts& o) const {
    return Counts{reads + o.reads, writes + o.writes};
  }
  // Work in the Asymmetric NP model for write cost omega (arithmetic /
  // symmetric-memory operations excluded; the paper's bounds count those
  // separately as O(reads) in all our algorithms).
  double work(double omega) const {
    return static_cast<double>(reads) + omega * static_cast<double>(writes);
  }
};

namespace detail {

// Relaxed atomics, each written by its owning thread alone: the increment
// compiles to a plain load/add/store (no lock prefix), and aggregation from
// another thread (total() — e.g. a Region constructed on a worker thread
// inside a sharded bulk commit) is well-defined instead of a data race.
struct alignas(64) ThreadCounter {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
};

// Allocates and registers the calling thread's counter slot, caching it in
// tl_counter; called at most once per thread.
ThreadCounter* register_counter();

// Cached pointer to this thread's slot. Keeping the cache as a plain
// thread_local pointer in the header means the per-access hot path below is
// a single TLS load + increment; the registration path (lock, allocation)
// is only ever taken on a thread's first counted access.
inline thread_local ThreadCounter* tl_counter = nullptr;

inline ThreadCounter& local_counter() {
  ThreadCounter* c = tl_counter;
  return c != nullptr ? *c : *register_counter();
}

}  // namespace detail

inline void count_read(uint64_t n = 1) {
  std::atomic<uint64_t>& c = detail::local_counter().reads;
  c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}
inline void count_write(uint64_t n = 1) {
  std::atomic<uint64_t>& c = detail::local_counter().writes;
  c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

// Aggregate counts over all threads that ever counted.
Counts total();

// Resets all thread counters to zero. Must not race with counting threads.
void reset();

// Instrumented single-word accessors.
template <typename T>
inline const T& read(const T& loc) {
  count_read();
  return loc;
}

template <typename T, typename U>
inline void write(T& loc, U&& value) {
  count_write();
  loc = static_cast<T>(std::forward<U>(value));
}

// Measures the reads/writes performed between construction and stop()/
// destruction. Nested/overlapping regions simply see the shared counters, so
// deltas compose additively.
class Region {
 public:
  Region() : start_(total()) {}
  Counts delta() const { return total() - start_; }

 private:
  Counts start_;
};

}  // namespace weg::asym
