// Planar convex hull (Section 2.2): sort the points by x, then Graham's
// scan. With the write-efficient sorter the whole construction performs
// O(n log n + ωn) work — O(n) writes — versus Θ(n log n) writes when the
// sort is a standard mergesort (the classic baseline). The scan itself is
// O(n) reads and writes (each point is pushed/popped at most once).
#pragma once

#include <cstdint>
#include <vector>

#include "src/asym/counters.h"
#include "src/geom/point.h"

namespace weg::hull {

enum class SortMode { kClassic, kWriteEfficient };

struct HullStats {
  asym::Counts cost;
  size_t hull_size = 0;
};

// Returns the indices of the convex hull vertices in counterclockwise
// order, starting from the leftmost point. Collinear boundary points are
// excluded.
std::vector<uint32_t> convex_hull(const std::vector<geom::Point2>& pts,
                                  SortMode mode = SortMode::kWriteEfficient,
                                  HullStats* stats = nullptr);

}  // namespace weg::hull
