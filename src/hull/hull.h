// Planar convex hull (Section 2.2): sort the points by x, then Graham's
// scan. With the write-efficient sorter the whole construction performs
// O(n log n + ωn) work — O(n) writes — versus Θ(n log n) writes when the
// sort is a standard mergesort (the classic baseline). The scan itself is
// O(n) reads and writes (each point is pushed/popped at most once).
//
// Above a fixed block threshold the scan runs as a parallel filter on the
// work-stealing scheduler: the sorted order is cut into fixed-size blocks,
// each block's monotone chains are built concurrently (every global chain
// vertex is a vertex of its block's chain), and a short serial scan over the
// surviving candidates finishes the hull. The decomposition depends only on
// n, so the asym read/write totals are identical at every worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "src/asym/counters.h"
#include "src/geom/point.h"

namespace weg::hull {

enum class SortMode { kClassic, kWriteEfficient };

struct HullStats {
  asym::Counts cost;
  size_t hull_size = 0;
  // Points surviving the per-block chain filter (== n when the input is too
  // small for the parallel path and the scan runs in one piece).
  size_t candidates = 0;
};

// Returns the indices of the convex hull vertices in counterclockwise
// order, starting from the leftmost point. Collinear boundary points are
// excluded.
std::vector<uint32_t> convex_hull(const std::vector<geom::Point2>& pts,
                                  SortMode mode = SortMode::kWriteEfficient,
                                  HullStats* stats = nullptr);

}  // namespace weg::hull
