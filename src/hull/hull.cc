#include "src/hull/hull.h"

#include <algorithm>

#include "src/parallel/parallel_for.h"
#include "src/primitives/sort.h"
#include "src/sort/incremental_sort.h"

namespace weg::hull {

namespace {

double cross(const geom::Point2& o, const geom::Point2& a,
             const geom::Point2& b) {
  return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]);
}

// Monotone-chain scan over an index iterator range, appending to `chain`
// starting at its current size. Each point costs one read and (if pushed)
// one write; each point is popped at most once, so the scan is O(n) reads
// and writes.
template <typename It>
void chain_scan(const std::vector<geom::Point2>& pts, It begin, It end,
                std::vector<uint32_t>& chain) {
  size_t start = chain.size();
  for (It it = begin; it != end; ++it) {
    uint32_t idx = *it;
    asym::count_read();
    while (chain.size() >= start + 2 &&
           cross(pts[chain[chain.size() - 2]], pts[chain.back()],
                 pts[idx]) <= 0) {
      chain.pop_back();
    }
    asym::count_write();
    chain.push_back(idx);
  }
}

// Block size of the parallel filter. Fixed (never a function of the worker
// count) so the asym read/write totals are bit-identical at every
// WEG_NUM_THREADS — the decomposition, and hence every counted access, is a
// function of n alone.
constexpr size_t kBlock = parallel::kSeqCutoff;

}  // namespace

std::vector<uint32_t> convex_hull(const std::vector<geom::Point2>& pts,
                                  SortMode mode, HullStats* stats) {
  asym::Region region;
  size_t n = pts.size();
  std::vector<uint32_t> order;
  if (mode == SortMode::kWriteEfficient) {
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = sort::double_to_sortable(pts[i][0]);
    }
    asym::count_read(n);
    order = sort::incremental_sort_we_order(keys);
    // The chain needs (x, y)-lexicographic order; fix equal-x runs locally.
    // Two phases so no iteration writes `order` while another reads it: a
    // read-only parallel pass marks run starts, then the multi-element runs
    // are sorted in parallel over disjoint spans. The marking pass charges
    // one read per element — it really inspects every element — where the
    // old serial loop charged one read per *run*; the golden counts were
    // recaptured for this deliberate accounting change.
    std::vector<uint8_t> run_start(n);
    parallel::parallel_for(0, n, [&](size_t i) {
      asym::count_read();
      run_start[i] = i == 0 || pts[order[i]][0] != pts[order[i - 1]][0];
    });
    std::vector<std::pair<size_t, size_t>> runs;  // equal-x runs of length > 1
    size_t run_lo = 0;
    for (size_t i = 1; i <= n; ++i) {
      if (i == n || run_start[i]) {
        if (i - run_lo > 1) runs.emplace_back(run_lo, i);
        run_lo = i;
      }
    }
    parallel::parallel_for(
        0, runs.size(),
        [&](size_t r) {
          auto [lo, hi] = runs[r];
          std::sort(order.begin() + static_cast<long>(lo),
                    order.begin() + static_cast<long>(hi),
                    [&](uint32_t a, uint32_t b) {
                      return pts[a][1] < pts[b][1];
                    });
          asym::count_write(hi - lo);
        },
        1);
  } else {
    order.resize(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    asym::count_read(n);
    primitives::sort_inplace(order, [&](uint32_t a, uint32_t b) {
      return pts[a][0] < pts[b][0] ||
             (pts[a][0] == pts[b][0] && pts[a][1] < pts[b][1]);
    });
  }
  // Andrew's monotone chain over the sorted order. Above 2*kBlock points the
  // scan runs as a parallel filter: the order is cut into fixed-size blocks,
  // each block's lower/upper chains are built concurrently (a global chain
  // vertex is always a vertex of its block's chain), and the final serial
  // scan only touches the surviving candidates — O(n) work split across
  // blocks with an O(candidates) sequential tail.
  std::vector<uint32_t> hull;
  size_t candidates = n;
  if (n >= 2 * kBlock) {
    size_t nb = (n + kBlock - 1) / kBlock;
    std::vector<std::vector<uint32_t>> lower(nb), upper(nb);
    parallel::parallel_for(
        0, nb,
        [&](size_t b) {
          size_t lo = b * kBlock, hi = std::min(n, lo + kBlock);
          chain_scan(pts, order.begin() + static_cast<long>(lo),
                     order.begin() + static_cast<long>(hi), lower[b]);
          chain_scan(pts,
                     std::make_reverse_iterator(order.begin() +
                                                static_cast<long>(hi)),
                     std::make_reverse_iterator(order.begin() +
                                                static_cast<long>(lo)),
                     upper[b]);
        },
        1);
    // Concatenated block chains are globally x-ascending (lower) and
    // x-descending (upper), so one scan over each candidate sequence yields
    // the global chains.
    std::vector<uint32_t> cand_lo, cand_hi;
    for (size_t b = 0; b < nb; ++b) {
      cand_lo.insert(cand_lo.end(), lower[b].begin(), lower[b].end());
    }
    for (size_t b = nb; b-- > 0;) {
      cand_hi.insert(cand_hi.end(), upper[b].begin(), upper[b].end());
    }
    candidates = cand_lo.size() + cand_hi.size();
    chain_scan(pts, cand_lo.begin(), cand_lo.end(), hull);
    hull.pop_back();  // last point repeats as the start of the upper chain
    chain_scan(pts, cand_hi.begin(), cand_hi.end(), hull);
    hull.pop_back();
  } else if (n >= 2) {
    chain_scan(pts, order.begin(), order.end(), hull);
    hull.pop_back();
    chain_scan(pts, order.rbegin(), order.rend(), hull);
    hull.pop_back();
  } else {
    hull = order;
  }
  if (stats) {
    stats->cost = region.delta();
    stats->hull_size = hull.size();
    stats->candidates = candidates;
  }
  return hull;
}

}  // namespace weg::hull
