#include "src/hull/hull.h"

#include <algorithm>

#include "src/primitives/sort.h"
#include "src/sort/incremental_sort.h"

namespace weg::hull {

namespace {

double cross(const geom::Point2& o, const geom::Point2& a,
             const geom::Point2& b) {
  return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]);
}

}  // namespace

std::vector<uint32_t> convex_hull(const std::vector<geom::Point2>& pts,
                                  SortMode mode, HullStats* stats) {
  asym::Region region;
  size_t n = pts.size();
  std::vector<uint32_t> order;
  if (mode == SortMode::kWriteEfficient) {
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = sort::double_to_sortable(pts[i][0]);
    asym::count_read(n);
    order = sort::incremental_sort_we_order(keys);
    // The chain needs (x, y)-lexicographic order; fix equal-x runs locally.
    size_t i = 0;
    while (i < order.size()) {
      size_t j = i + 1;
      asym::count_read();
      while (j < order.size() && pts[order[j]][0] == pts[order[i]][0]) ++j;
      if (j - i > 1) {
        std::sort(order.begin() + static_cast<long>(i),
                  order.begin() + static_cast<long>(j),
                  [&](uint32_t a, uint32_t b) { return pts[a][1] < pts[b][1]; });
        asym::count_write(j - i);
      }
      i = j;
    }
  } else {
    order.resize(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    asym::count_read(n);
    primitives::sort_inplace(order, [&](uint32_t a, uint32_t b) {
      return pts[a][0] < pts[b][0] ||
             (pts[a][0] == pts[b][0] && pts[a][1] < pts[b][1]);
    });
  }
  // Andrew's monotone chain (Graham scan over the sorted order): each point
  // is pushed once and popped at most once — O(n) reads and writes.
  std::vector<uint32_t> hull;
  if (n >= 2) {
    auto build_chain = [&](auto begin, auto end) {
      size_t start = hull.size();
      for (auto it = begin; it != end; ++it) {
        uint32_t idx = *it;
        asym::count_read();
        while (hull.size() >= start + 2 &&
               cross(pts[hull[hull.size() - 2]], pts[hull.back()],
                     pts[idx]) <= 0) {
          hull.pop_back();
        }
        asym::count_write();
        hull.push_back(idx);
      }
    };
    build_chain(order.begin(), order.end());
    hull.pop_back();  // last point repeats as the start of the upper chain
    build_chain(order.rbegin(), order.rend());
    hull.pop_back();
  } else {
    hull = order;
  }
  if (stats) {
    stats->cost = region.delta();
    stats->hull_size = hull.size();
  }
  return hull;
}

}  // namespace weg::hull
