#include "src/geom/predicates.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>

namespace weg::geom {

namespace {

int sign_of(int128 v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }

int128 orient_det(const GridPoint& a, const GridPoint& b, const GridPoint& c) {
  int128 abx = b.x - a.x, aby = b.y - a.y;
  int128 acx = c.x - a.x, acy = c.y - a.y;
  return abx * acy - aby * acx;
}

// --- SoS machinery for orient2d ---------------------------------------------
//
// Infinitesimal a_i (x-perturbation of point id i) has exponent 2*i, b_i
// (y-perturbation) exponent 2*i + 1, under a super-exponential weight scale
// (think eps^{4^e}), so a monomial's magnitude is compared by its sorted
// exponent list, descending, lexicographically: fewer/lower exponents =
// larger magnitude. The multilinear expansion of the orientation determinant
// in the perturbations has these 13 terms (derived in predicates.h header
// comment's scheme; D = exact determinant):
//   1                     : D
//   a1 : y2-y3   a2 : y3-y1   a3 : y1-y2
//   b1 : x3-x2   b2 : x1-x3   b3 : x2-x1
//   a1b2:+1  a1b3:-1  a2b1:-1  a2b3:+1  a3b1:+1  a3b2:-1
// Terms are evaluated from largest magnitude down; the first nonzero
// coefficient decides. The +-1 coefficients guarantee termination.

struct SosTerm {
  // Exponents of the (at most two) infinitesimals in this monomial, sorted
  // descending; kNone for unused slots. Smaller-exponent monomials are larger.
  int64_t e0, e1;
  int128 coeff;
};

constexpr int64_t kNone = -1;

// Magnitude order: m1 "larger" than m2 if its sorted-descending exponent list
// is lexicographically smaller (comparing missing entries as -inf, i.e., a
// shorter list is larger when prefixes agree).
bool larger_magnitude(const SosTerm& t1, const SosTerm& t2) {
  if (t1.e0 != t2.e0) return t1.e0 < t2.e0;
  return t1.e1 < t2.e1;
}

int orient2d_sos_impl(const GridPoint& p1, const GridPoint& p2,
                      const GridPoint& p3) {
  auto ax = [](const GridPoint& p) { return 2 * static_cast<int64_t>(p.id); };
  auto by = [](const GridPoint& p) {
    return 2 * static_cast<int64_t>(p.id) + 1;
  };
  std::array<SosTerm, 13> terms = {{
      {kNone, kNone, orient_det(p1, p2, p3)},
      {ax(p1), kNone, static_cast<int128>(p2.y) - p3.y},
      {ax(p2), kNone, static_cast<int128>(p3.y) - p1.y},
      {ax(p3), kNone, static_cast<int128>(p1.y) - p2.y},
      {by(p1), kNone, static_cast<int128>(p3.x) - p2.x},
      {by(p2), kNone, static_cast<int128>(p1.x) - p3.x},
      {by(p3), kNone, static_cast<int128>(p2.x) - p1.x},
      {std::max(ax(p1), by(p2)), std::min(ax(p1), by(p2)), 1},
      {std::max(ax(p1), by(p3)), std::min(ax(p1), by(p3)), -1},
      {std::max(ax(p2), by(p1)), std::min(ax(p2), by(p1)), -1},
      {std::max(ax(p2), by(p3)), std::min(ax(p2), by(p3)), 1},
      {std::max(ax(p3), by(p1)), std::min(ax(p3), by(p1)), 1},
      {std::max(ax(p3), by(p2)), std::min(ax(p3), by(p2)), -1},
  }};
  std::sort(terms.begin() + 1, terms.end(),
            [](const SosTerm& x, const SosTerm& y) {
              return larger_magnitude(x, y);
            });
  for (const SosTerm& t : terms) {
    if (t.coeff != 0) return sign_of(t.coeff);
  }
  return 0;  // unreachable for distinct ids
}

}  // namespace

int orient2d_exact(const GridPoint& a, const GridPoint& b, const GridPoint& c) {
  return sign_of(orient_det(a, b, c));
}

int orient2d_sos(const GridPoint& a, const GridPoint& b, const GridPoint& c) {
  assert(!(a.id == b.id || b.id == c.id || a.id == c.id));
  return orient2d_sos_impl(a, b, c);
}

int in_circle_exact(const GridPoint& a, const GridPoint& b, const GridPoint& c,
                    const GridPoint& d) {
  // 3x3 determinant of rows (p - d, |p - d|^2) for p in {a, b, c}.
  // With |coords| < 2^29, diffs < 2^30, lifts < 2^61, each of the six
  // products < 2^121, so the sum fits comfortably in 128 bits.
  int128 adx = a.x - d.x, ady = a.y - d.y;
  int128 bdx = b.x - d.x, bdy = b.y - d.y;
  int128 cdx = c.x - d.x, cdy = c.y - d.y;
  int128 alift = adx * adx + ady * ady;
  int128 blift = bdx * bdx + bdy * bdy;
  int128 clift = cdx * cdx + cdy * cdy;
  int128 det = alift * (bdx * cdy - bdy * cdx) -
               blift * (adx * cdy - ady * cdx) +
               clift * (adx * bdy - ady * bdx);
  return sign_of(det);
}

bool in_circle_sos(const GridPoint& a, const GridPoint& b, const GridPoint& c,
                   const GridPoint& d) {
  int s = in_circle_exact(a, b, c, d);
  if (s != 0) return s > 0;
  // Cocircular: perturb lifts by eps_id, larger for smaller id. The first
  // point in increasing id order whose orientation coefficient is nonzero
  // decides (see header). Coefficients:
  //   a: +orient(d,b,c)  b: +orient(d,c,a)  c: +orient(d,a,b)
  //   d: -orient(a,b,c)
  struct Cand {
    uint32_t id;
    int coeff;
  };
  std::array<Cand, 4> cands = {{
      {a.id, orient2d_exact(d, b, c)},
      {b.id, orient2d_exact(d, c, a)},
      {c.id, orient2d_exact(d, a, b)},
      {d.id, -orient2d_exact(a, b, c)},
  }};
  std::sort(cands.begin(), cands.end(),
            [](const Cand& x, const Cand& y) { return x.id < y.id; });
  for (const Cand& cd : cands) {
    if (cd.coeff != 0) return cd.coeff > 0;
  }
  // All four points collinear: no circle even symbolically; treat as outside.
  return false;
}

bool in_triangle_sos(const GridPoint& a, const GridPoint& b,
                     const GridPoint& c, const GridPoint& d) {
  return orient2d_sos(a, b, d) > 0 && orient2d_sos(b, c, d) > 0 &&
         orient2d_sos(c, a, d) > 0;
}

}  // namespace weg::geom
