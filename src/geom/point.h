// Geometric point types. The Delaunay module works on integer grid points
// (exact predicates via 128-bit arithmetic); k-d trees and range structures
// work on k-dimensional double points.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace weg::geom {

// 2D point on an integer grid (coordinates must satisfy |x|,|y| < 2^30 so
// that the in-circle determinant fits in 128 bits; see predicates.h).
struct GridPoint {
  int64_t x = 0;
  int64_t y = 0;
  uint32_t id = 0;  // distinct per point; used for symbolic perturbation

  friend bool operator==(const GridPoint& a, const GridPoint& b) {
    return a.x == b.x && a.y == b.y;
  }
};

// k-dimensional double point.
template <int K>
struct PointK {
  std::array<double, K> coords{};

  double operator[](int d) const { return coords[static_cast<size_t>(d)]; }
  double& operator[](int d) { return coords[static_cast<size_t>(d)]; }

  friend bool operator==(const PointK& a, const PointK& b) {
    return a.coords == b.coords;
  }
};

using Point2 = PointK<2>;
using Point3 = PointK<3>;

template <int K>
double squared_distance(const PointK<K>& a, const PointK<K>& b) {
  double s = 0;
  for (int d = 0; d < K; ++d) {
    double diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

template <int K>
double distance(const PointK<K>& a, const PointK<K>& b) {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace weg::geom
