// Exact geometric predicates on integer grid points, with symbolic
// perturbation so every predicate is decided (general position is simulated,
// matching the paper's "points in general position" assumption in Section 5).
//
//  * orient2d: exact sign via 128-bit integers; ties broken by
//    Simulation-of-Simplicity on the (x, y) coordinates — point with id i is
//    conceptually displaced by infinitesimals (a_i, b_i) whose magnitudes
//    decrease super-exponentially in id, and the first nonzero coefficient of
//    the multilinear expansion decides the sign. The expansion's final terms
//    have coefficient ±1, so the perturbed predicate is never zero for
//    distinct points.
//  * in_circle: exact sign via 128-bit integers (valid for |coords| < 2^29);
//    ties broken by perturbing the *lift* coordinate x^2+y^2 of point id i by
//    eps_i with eps decreasing in id. This is exactly a regular triangulation
//    with infinitesimal weights; the perturbed determinant expands linearly:
//       D' = D + eps_a*orient(d,b,c) + eps_b*orient(d,c,a)
//              + eps_c*orient(d,a,b) - eps_d*orient(a,b,c),
//    so the first point (in increasing id) with a nonzero orientation
//    coefficient decides.
#pragma once

#include "src/geom/point.h"

namespace weg::geom {

using int128 = __int128;

// Exact orientation sign: >0 if a,b,c counterclockwise, <0 clockwise,
// 0 collinear. Requires |coords| < 2^31 (products fit in 128 bits).
int orient2d_exact(const GridPoint& a, const GridPoint& b, const GridPoint& c);

// Perturbed orientation: never returns 0 for points with distinct ids.
int orient2d_sos(const GridPoint& a, const GridPoint& b, const GridPoint& c);

// Exact in-circle sign relative to the CCW triangle (a,b,c): >0 if d strictly
// inside the circumcircle, <0 outside, 0 cocircular.
// Requires |coords| < 2^29 so the determinant fits in 128 bits.
int in_circle_exact(const GridPoint& a, const GridPoint& b, const GridPoint& c,
                    const GridPoint& d);

// Perturbed in-circle: true iff d is inside the circumcircle of CCW triangle
// (a,b,c) after symbolic perturbation. If a,b,c,d are all collinear (so no
// circle exists even symbolically under lift perturbation) returns false.
bool in_circle_sos(const GridPoint& a, const GridPoint& b, const GridPoint& c,
                   const GridPoint& d);

// Point-in-triangle test under the SoS orientation (true if d is inside or on
// the perturbed-open triangle abc, which must be CCW under SoS).
bool in_triangle_sos(const GridPoint& a, const GridPoint& b,
                     const GridPoint& c, const GridPoint& d);

}  // namespace weg::geom
