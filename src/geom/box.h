// Axis-aligned boxes over k-dimensional double points.
#pragma once

#include <algorithm>
#include <limits>

#include "src/geom/point.h"

namespace weg::geom {

template <int K>
struct BoxK {
  PointK<K> lo;
  PointK<K> hi;

  static BoxK empty() {
    BoxK b;
    for (int d = 0; d < K; ++d) {
      b.lo[d] = std::numeric_limits<double>::infinity();
      b.hi[d] = -std::numeric_limits<double>::infinity();
    }
    return b;
  }

  void extend(const PointK<K>& p) {
    for (int d = 0; d < K; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }

  void extend(const BoxK& o) {
    for (int d = 0; d < K; ++d) {
      lo[d] = std::min(lo[d], o.lo[d]);
      hi[d] = std::max(hi[d], o.hi[d]);
    }
  }

  bool contains(const PointK<K>& p) const {
    for (int d = 0; d < K; ++d) {
      if (p[d] < lo[d] || p[d] > hi[d]) return false;
    }
    return true;
  }

  bool intersects(const BoxK& o) const {
    for (int d = 0; d < K; ++d) {
      if (o.hi[d] < lo[d] || o.lo[d] > hi[d]) return false;
    }
    return true;
  }

  // True iff this box is fully inside `o`. Positive formulation so NaN
  // bounds in `o` never satisfy containment — the covered-subtree fast
  // paths must agree with the (NaN-rejecting) split-plane traversal.
  bool inside(const BoxK& o) const {
    for (int d = 0; d < K; ++d) {
      if (!(o.lo[d] <= lo[d] && hi[d] <= o.hi[d])) return false;
    }
    return true;
  }

  // Squared distance from p to the box (0 if inside).
  double squared_distance(const PointK<K>& p) const {
    double s = 0;
    for (int d = 0; d < K; ++d) {
      double diff = std::max({lo[d] - p[d], 0.0, p[d] - hi[d]});
      s += diff * diff;
    }
    return s;
  }

  double extent(int d) const { return hi[d] - lo[d]; }

  int longest_dimension() const {
    int best = 0;
    for (int d = 1; d < K; ++d) {
      if (extent(d) > extent(best)) best = d;
    }
    return best;
  }
};

using Box2 = BoxK<2>;

}  // namespace weg::geom
