// Write-efficient parallel comparison sorting (Section 4).
//
// Both variants insert keys into a binary search tree with no rebalancing
// (Algorithm 1), processing all uninserted keys in parallel rounds with a
// priority-write on the contended child slot (the key earliest in the random
// insertion order wins).
//
//  * Classic (Algorithm 1, parallel): every active key attempts one
//    priority-write per round while descending one level per round, so the
//    total number of large-memory writes is Θ(n log n) whp — this is the
//    baseline the paper improves on.
//  * Write-efficient (Theorem 4.1): prefix doubling. The initial round
//    builds the tree on the first n/log^2 n keys with the classic algorithm;
//    each subsequent round doubles the tree. Within a round, each new key
//    first *traces* down the existing tree (reads only — the tree is the
//    history DAG of Section 3.1, with the search path as the unique visible
//    path) to its empty leaf slot, keys are semisorted by slot ("bucket"),
//    and each bucket is resolved locally with one write per key. Buckets
//    whose resolution exceeds c3*log log n BST levels are frozen and their
//    keys (plus any later keys entering the frozen subtree) are postponed to
//    a final classic round, giving O(log^2 n) depth overall with o(n) extra
//    writes (Theorem 4.1).
//
// Keys are uint64_t; ties are broken by insertion position, so duplicate
// keys are fully supported.
#pragma once

#include <cstdint>
#include <vector>

#include "src/asym/counters.h"

namespace weg::sort {

struct SortStats {
  asym::Counts cost;        // large-memory reads/writes of the measured sort
  size_t rounds = 0;        // parallel rounds (depth proxy)
  size_t postponed = 0;     // keys deferred to the final round (WE variant)
  size_t tree_height = 0;   // height of the resulting BST
};

// Algorithm 1, parallel rounds with priority-writes. Θ(n log n) writes.
std::vector<uint64_t> incremental_sort_classic(
    const std::vector<uint64_t>& keys, SortStats* stats = nullptr);

// Theorem 4.1: prefix doubling + DAG tracing + bucket finishing. O(n) writes,
// O(n log n) reads in expectation. `cutoff` is the bucket finishing depth
// c3*log log n; 0 selects it automatically.
std::vector<uint64_t> incremental_sort_we(const std::vector<uint64_t>& keys,
                                          SortStats* stats = nullptr,
                                          size_t cutoff = 0);

// Same algorithm, but returns the sorted *permutation*: order[i] is the index
// of the i-th smallest key (ties by index). Used by the post-sorted
// constructions of Section 7.2, which need ranks rather than values.
std::vector<uint32_t> incremental_sort_we_order(
    const std::vector<uint64_t>& keys, SortStats* stats = nullptr,
    size_t cutoff = 0);

// Variant for callers whose input order is NOT random (e.g. keys collected
// from an existing structure during a reconstruction): applies an O(m)-write
// deterministic shuffle first, restoring the random-order precondition of
// Theorem 4.1, then composes the permutations.
std::vector<uint32_t> incremental_sort_we_order_anyorder(
    const std::vector<uint64_t>& keys, SortStats* stats = nullptr);

// Maps a finite double to a uint64 whose unsigned order matches the double
// order (standard sign-flip trick), so double sequences can be sorted with
// the write-efficient integer-keyed sorter.
uint64_t double_to_sortable(double d);

}  // namespace weg::sort
