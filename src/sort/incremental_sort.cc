#include "src/sort/incremental_sort.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <memory>

#include "src/core/prefix_doubling.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/random.h"
#include "src/primitives/semisort.h"

namespace weg::sort {

namespace {

constexpr uint32_t kEmpty = UINT32_MAX;

// BST node for element e (node index == element index == insertion priority;
// lower index wins priority-writes). `placed` marks slots sealed in earlier
// rounds so late insertions (the WE final round) never displace a real node.
struct Node {
  uint64_t key = 0;
  std::atomic<uint32_t> child[2] = {kEmpty, kEmpty};
  std::atomic<bool> placed{false};
  std::atomic<bool> frozen{false};
};

struct Tree {
  explicit Tree(const std::vector<uint64_t>& keys) : nodes(keys.size()) {
    parallel::parallel_for(0, keys.size(),
                           [&](size_t i) { nodes[i].key = keys[i]; });
  }

  std::vector<Node> nodes;
  std::atomic<uint32_t> root{kEmpty};

  // Strict order on elements: by key, ties by index (so duplicates work).
  bool goes_left(uint32_t e, uint32_t at) const {
    const Node& n = nodes[at];
    return nodes[e].key < n.key || (nodes[e].key == n.key && e < at);
  }

  // Slot encoding: 0 = root, else (node << 1 | side) + 1.
  std::atomic<uint32_t>* slot(uint64_t s) {
    if (s == 0) return &root;
    uint64_t v = s - 1;
    return &nodes[v >> 1].child[v & 1];
  }
  static uint64_t pack_slot(uint32_t node, int side) {
    return ((static_cast<uint64_t>(node) << 1) | static_cast<uint64_t>(side)) +
           1;
  }

  // Priority-write of element e into slot s: wins against empty and against
  // unsealed candidates with larger index; never displaces a placed node.
  // Counting follows Algorithm 1: an element at a slot that was empty at the
  // start of the round executes line 7 and is charged one write (even if a
  // concurrent higher-priority element wins); an element at an occupied slot
  // only reads and descends.
  void attempt(std::atomic<uint32_t>* s, uint32_t e) {
    uint32_t cur = s->load(std::memory_order_relaxed);
    asym::count_read();
    if (cur != kEmpty && nodes[cur].placed.load(std::memory_order_relaxed)) {
      return;  // slot sealed in an earlier round: descend without writing
    }
    asym::count_write();
    while (true) {
      if (cur != kEmpty &&
          (nodes[cur].placed.load(std::memory_order_relaxed) || cur < e)) {
        return;  // lost the priority-write
      }
      if (s->compare_exchange_weak(cur, e, std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
        return;
      }
    }
  }

  size_t height() const {
    // Iterative post-order height (uncounted verification helper).
    if (root.load() == kEmpty) return 0;
    struct Frame {
      uint32_t node;
      size_t depth;
    };
    std::vector<Frame> stack{{root.load(), 1}};
    size_t h = 0;
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      h = std::max(h, f.depth);
      for (int s = 0; s < 2; ++s) {
        uint32_t c = nodes[f.node].child[s].load(std::memory_order_relaxed);
        if (c != kEmpty) stack.push_back({c, f.depth + 1});
      }
    }
    return h;
  }

  // In-order traversal of node ids (charged as output writes by the caller).
  void inorder_ids(std::vector<uint32_t>& out) const {
    out.clear();
    out.reserve(nodes.size());
    std::vector<uint32_t> stack;
    uint32_t cur = root.load();
    while (cur != kEmpty || !stack.empty()) {
      while (cur != kEmpty) {
        stack.push_back(cur);
        cur = nodes[cur].child[0].load(std::memory_order_relaxed);
      }
      cur = stack.back();
      stack.pop_back();
      out.push_back(cur);
      cur = nodes[cur].child[1].load(std::memory_order_relaxed);
    }
  }

  void inorder(std::vector<uint64_t>& out) const {
    std::vector<uint32_t> ids;
    inorder_ids(ids);
    out.resize(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) out[i] = nodes[ids[i]].key;
  }
};

// Runs Algorithm 1 in parallel rounds over `elems` (element ids, already in
// priority order by construction since ids are priorities). Every active
// element attempts a priority-write each round and descends one level on
// loss. Returns the number of rounds.
size_t classic_rounds(Tree& tree, std::vector<uint32_t> elems) {
  std::vector<uint64_t> cur_slot(tree.nodes.size());  // task register state
  for (uint32_t e : elems) cur_slot[e] = 0;
  size_t rounds = 0;
  while (!elems.empty()) {
    ++rounds;
    parallel::parallel_for(0, elems.size(), [&](size_t i) {
      uint32_t e = elems[i];
      tree.attempt(tree.slot(cur_slot[e]), e);
    });
    std::vector<uint8_t> done(elems.size());
    parallel::parallel_for(0, elems.size(), [&](size_t i) {
      uint32_t e = elems[i];
      asym::count_read(2);  // slot winner + its key
      uint32_t w = tree.slot(cur_slot[e])->load(std::memory_order_acquire);
      if (w == e) {
        tree.nodes[e].placed.store(true, std::memory_order_release);
        done[i] = 1;
      } else {
        int side = tree.goes_left(e, w) ? 0 : 1;
        cur_slot[e] = Tree::pack_slot(w, side);
        done[i] = 0;
      }
    });
    std::vector<uint32_t> next;
    next.reserve(elems.size());
    for (size_t i = 0; i < elems.size(); ++i) {
      if (!done[i]) next.push_back(elems[i]);
    }
    elems.swap(next);
  }
  return rounds;
}

}  // namespace

std::vector<uint64_t> incremental_sort_classic(
    const std::vector<uint64_t>& keys, SortStats* stats) {
  asym::Region region;
  Tree tree(keys);
  std::vector<uint32_t> elems(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) elems[i] = static_cast<uint32_t>(i);
  size_t rounds = classic_rounds(tree, std::move(elems));
  std::vector<uint64_t> out;
  tree.inorder(out);
  asym::count_write(out.size());  // output
  if (stats) {
    stats->cost = region.delta();
    stats->rounds = rounds;
    stats->postponed = 0;
    stats->tree_height = tree.height();
  }
  return out;
}

namespace {

// Shared body of the write-efficient variants: builds the BST with prefix
// doubling + tracing + bucket finishing. Fills rounds/postponed counters.
std::unique_ptr<Tree> build_we_tree(const std::vector<uint64_t>& keys,
                                    size_t cutoff, size_t* total_rounds_out,
                                    size_t* postponed_out);

}  // namespace

std::vector<uint64_t> incremental_sort_we(const std::vector<uint64_t>& keys,
                                          SortStats* stats, size_t cutoff) {
  size_t n = keys.size();
  if (n == 0) {
    if (stats) *stats = SortStats{};
    return {};
  }
  asym::Region region;
  size_t rounds = 0, postponed = 0;
  auto tree = build_we_tree(keys, cutoff, &rounds, &postponed);
  std::vector<uint64_t> out;
  tree->inorder(out);
  asym::count_write(out.size());
  if (stats) {
    stats->cost = region.delta();
    stats->rounds = rounds;
    stats->postponed = postponed;
    stats->tree_height = tree->height();
  }
  return out;
}

std::vector<uint32_t> incremental_sort_we_order(
    const std::vector<uint64_t>& keys, SortStats* stats, size_t cutoff) {
  size_t n = keys.size();
  if (n == 0) {
    if (stats) *stats = SortStats{};
    return {};
  }
  asym::Region region;
  size_t rounds = 0, postponed = 0;
  auto tree = build_we_tree(keys, cutoff, &rounds, &postponed);
  std::vector<uint32_t> out;
  tree->inorder_ids(out);
  asym::count_write(out.size());
  if (stats) {
    stats->cost = region.delta();
    stats->rounds = rounds;
    stats->postponed = postponed;
    stats->tree_height = tree->height();
  }
  return out;
}

std::vector<uint32_t> incremental_sort_we_order_anyorder(
    const std::vector<uint64_t>& keys, SortStats* stats) {
  size_t n = keys.size();
  auto perm = primitives::random_permutation(n, 0x5eedb0a7ULL + n);
  std::vector<uint64_t> shuffled(n);
  asym::count_read(n);
  asym::count_write(n);  // the shuffle pass
  for (size_t i = 0; i < n; ++i) shuffled[i] = keys[perm[i]];
  auto order = incremental_sort_we_order(shuffled, stats);
  asym::count_read(n);
  asym::count_write(n);  // compose the permutations
  for (size_t i = 0; i < n; ++i) order[i] = perm[order[i]];
  return order;
}

uint64_t double_to_sortable(double d) {
  uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  // Negative doubles: flip all bits; non-negative: flip the sign bit.
  return (bits & 0x8000000000000000ULL) ? ~bits
                                        : bits | 0x8000000000000000ULL;
}

namespace {

std::unique_ptr<Tree> build_we_tree(const std::vector<uint64_t>& keys,
                                    size_t cutoff, size_t* total_rounds_out,
                                    size_t* postponed_out) {
  size_t n = keys.size();
  if (cutoff == 0) {
    double ll = std::log2(std::max(2.0, std::log2(static_cast<double>(n) + 2)));
    cutoff = static_cast<size_t>(4.0 * ll) + 4;  // c3 * log log n
  }
  auto tree_ptr = std::make_unique<Tree>(keys);
  Tree& tree = *tree_ptr;
  auto rounds_spec = core::prefix_doubling_rounds(n);
  size_t total_rounds = 0;
  std::vector<uint32_t> postponed;

  // Initial round: classic Algorithm 1 on the first n/log^2 n keys.
  {
    auto [lo, hi] = rounds_spec[0];
    std::vector<uint32_t> elems(hi - lo);
    for (size_t i = lo; i < hi; ++i) elems[i - lo] = static_cast<uint32_t>(i);
    total_rounds += classic_rounds(tree, std::move(elems));
  }

  // Incremental rounds: trace to bucket, semisort by bucket, resolve buckets.
  for (size_t r = 1; r < rounds_spec.size(); ++r) {
    auto [lo, hi] = rounds_spec[r];
    ++total_rounds;
    struct Traced {
      uint64_t bucket;  // slot encoding; kPostponed for frozen paths
      uint32_t elem;
    };
    constexpr uint64_t kPostponed = UINT64_MAX;
    std::vector<Traced> traced(hi - lo);
    // Step 1 — DAG tracing down the search tree: reads only, one bookkeeping
    // write per element to record its bucket.
    parallel::parallel_for(lo, hi, [&](size_t i) {
      uint32_t e = static_cast<uint32_t>(i);
      uint64_t bucket = kPostponed;
      uint32_t w = tree.root.load(std::memory_order_relaxed);
      assert(w != kEmpty);
      while (true) {
        asym::count_read(2);  // node key (+frozen bit) and child slot
        if (tree.nodes[w].frozen.load(std::memory_order_relaxed)) {
          bucket = kPostponed;
          break;
        }
        int side = tree.goes_left(e, w) ? 0 : 1;
        uint32_t c = tree.nodes[w].child[side].load(std::memory_order_relaxed);
        if (c == kEmpty) {
          bucket = Tree::pack_slot(w, side);
          break;
        }
        w = c;
      }
      asym::count_write();  // record (bucket, element)
      traced[i - lo] = Traced{bucket, e};
    });

    // Step 2 — semisort by bucket id. Late rounds trace most keys into few
    // buckets (and frozen paths all share kPostponed), exactly the skew the
    // sampling semisort's heavy-key buckets absorb in O(n).
    auto groups = primitives::semisort_by(
        traced, [](const Traced& t) { return t.bucket; });

    // Step 3 — resolve each bucket locally: sequential BST insertion in
    // priority order starting at the bucket slot (one write per placement).
    // A bucket whose chain exceeds `cutoff` levels freezes its subtree root
    // and postpones the rest.
    std::vector<std::vector<uint32_t>> postponed_per_group(groups.size() - 1);
    parallel::parallel_for(
        0, groups.size() - 1,
        [&](size_t g) {
          size_t glo = groups[g], ghi = groups[g + 1];
          uint64_t bucket = traced[glo].bucket;
          if (bucket == kPostponed) {
            for (size_t i = glo; i < ghi; ++i) {
              postponed_per_group[g].push_back(traced[i].elem);
            }
            return;
          }
          // Bucket contents fit in symmetric memory whp (O(log^2 n)); sort by
          // priority there.
          std::vector<uint32_t> elems;
          elems.reserve(ghi - glo);
          for (size_t i = glo; i < ghi; ++i) elems.push_back(traced[i].elem);
          std::sort(elems.begin(), elems.end());
          uint32_t bucket_root = kEmpty;
          bool frozen = false;
          for (size_t i = 0; i < elems.size(); ++i) {
            uint32_t e = elems[i];
            if (frozen) {
              postponed_per_group[g].push_back(e);
              continue;
            }
            if (bucket_root == kEmpty) {
              asym::count_write();
              tree.slot(bucket)->store(e, std::memory_order_relaxed);
              tree.nodes[e].placed.store(true, std::memory_order_relaxed);
              bucket_root = e;
              continue;
            }
            uint32_t w = bucket_root;
            size_t depth = 1;
            while (true) {
              if (depth > cutoff) {
                frozen = true;
                asym::count_write();
                tree.nodes[bucket_root].frozen.store(
                    true, std::memory_order_relaxed);
                postponed_per_group[g].push_back(e);
                break;
              }
              asym::count_read(2);
              int side = tree.goes_left(e, w) ? 0 : 1;
              uint32_t c =
                  tree.nodes[w].child[side].load(std::memory_order_relaxed);
              if (c == kEmpty) {
                asym::count_write();
                tree.nodes[w].child[side].store(e, std::memory_order_relaxed);
                tree.nodes[e].placed.store(true, std::memory_order_relaxed);
                break;
              }
              w = c;
              ++depth;
            }
          }
        },
        1);
    for (auto& pg : postponed_per_group) {
      postponed.insert(postponed.end(), pg.begin(), pg.end());
    }
  }

  // Final round: insert all postponed keys with the classic algorithm.
  size_t num_postponed = postponed.size();
  if (!postponed.empty()) {
    std::sort(postponed.begin(), postponed.end());
    total_rounds += classic_rounds(tree, std::move(postponed));
  }
  *total_rounds_out = total_rounds;
  *postponed_out = num_postponed;
  return tree_ptr;
}

}  // namespace

}  // namespace weg::sort
