// k-d trees (Section 6.1): classic median-split construction (the baseline,
// Θ(n log n) reads and writes) plus range and (1+eps)-approximate
// nearest-neighbor queries shared by every construction variant.
//
// Splitting cycles through the k dimensions (the analysis of Lemma 6.1
// assumes each axis is partitioned once every k consecutive levels).
// Interior nodes store the splitting hyperplane and the region box induced
// by the splits above (used for query pruning); leaves store up to
// `leaf_size` points.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/asym/counters.h"
#include "src/geom/box.h"
#include "src/geom/point.h"
#include "src/parallel/batch_query.h"

namespace weg::kdtree {

struct BuildStats {
  asym::Counts cost;   // large-memory traffic of the build
  size_t height = 0;   // tree height (nodes on longest root-leaf path)
  size_t nodes = 0;    // total tree nodes
  // p-batched only: number of leaf-settle events and max buffer size seen at
  // settle time (Figure 2 / Lemma 6.3 series).
  size_t settles = 0;
  size_t max_settle_buffer = 0;
};

struct QueryStats {
  size_t nodes_visited = 0;
  size_t points_scanned = 0;
};

inline constexpr uint32_t kNullNode = UINT32_MAX;

// Exact node count of the classic median-split recursion over m points
// (count(m) = 1 for m <= leaf_size, else 1 + count(floor(m/2)) +
// count(ceil(m/2)); an empty range still makes one leaf node). Splits are at
// the exact median, so the count is a function of (m, leaf_size) alone —
// this is what lets the parallel builds pre-claim deterministic id slices
// instead of drawing from a scheduling-dependent atomic allocator. O(log m):
// subtree sizes at each recursion depth take at most two distinct values.
size_t classic_node_count(size_t m, size_t leaf_size);

template <int K>
class KdTree {
 public:
  using Point = geom::PointK<K>;
  using Box = geom::BoxK<K>;

  struct Node {
    int dim = 0;                 // splitting dimension (interior)
    double split = 0;            // splitting coordinate (interior)
    uint32_t left = kNullNode;   // kNullNode for leaves
    uint32_t right = kNullNode;
    uint32_t begin = 0, end = 0;  // leaf: range in points_
    bool is_leaf() const { return left == kNullNode; }
  };

  KdTree() = default;

  // Classic construction: recursive exact-median split, cycling dimensions.
  // Charges one read + one write per point per level (Θ(n log n) writes).
  static KdTree build_classic(std::vector<Point> points, size_t leaf_size = 8,
                              BuildStats* stats = nullptr);

  // --- queries ---------------------------------------------------------

  // Count / report points inside the axis-aligned box.
  size_t range_count(const Box& query, QueryStats* qs = nullptr) const;
  std::vector<Point> range_report(const Box& query,
                                  QueryStats* qs = nullptr) const;

  // (1+eps)-approximate nearest neighbor; eps = 0 gives the exact NN.
  // Returns the index into points() of the neighbor (SIZE_MAX if empty).
  size_t ann(const Point& q, double eps = 0.0, QueryStats* qs = nullptr) const;

  // k nearest neighbors (exact), returned sorted by distance.
  std::vector<size_t> knn(const Point& q, size_t k,
                          QueryStats* qs = nullptr) const;

  // --- batched queries (shared two-phase engine) -----------------------

  std::vector<size_t> range_count_batch(const std::vector<Box>& qs) const;
  parallel::BatchResult<Point> range_report_batch(
      const std::vector<Box>& qs) const;
  // Flat k-NN over all queries: query i's neighbors (indices into points(),
  // sorted by distance) occupy slice i; every query yields exactly
  // min(k, size()) results, so the count pass is free.
  parallel::BatchResult<size_t> knn_batch(const std::vector<Point>& qs,
                                          size_t k) const;
  std::vector<size_t> ann_batch(const std::vector<Point>& qs,
                                double eps = 0.0) const;

  // --- templated traversals (the visitor core) -------------------------
  //
  // Each query family has exactly one traversal; the public count/report/
  // batch entry points (and the dynamic structures layered on this tree)
  // instantiate them with different visitors.

  // Calls vis(i) for every point index i inside `query`, in deterministic
  // DFS order (equivalently: ascending i, since leaves partition points_
  // in order).
  template <typename V>
  void range_visit(const Box& query, V&& vis, QueryStats* qs = nullptr) const {
    if (root_ != kNullNode) range_visit_rec(root_, query, vis, qs);
  }

  // Nearest-neighbor traversal with box pruning and near-side-first order.
  // The visitor owns the candidate set:
  //   vis.bound()      — current squared-distance pruning radius,
  //   vis.offer(i, d2) — consider points_[i] at squared distance d2.
  template <typename V>
  void nn_visit(const Point& q, V&& vis, QueryStats* qs = nullptr) const {
    if (root_ != kNullNode) nn_visit_rec(root_, whole_space(), q, vis, qs);
  }

  // Index of a point equal to p (SIZE_MAX if absent). Descends the splits,
  // exploring both sides when p lies exactly on a splitting hyperplane.
  size_t find(const Point& p) const;

  // --- introspection ------------------------------------------------------

  size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t height() const;

  // Structural invariants: every leaf point lies on the correct side of all
  // ancestor splits; leaf ranges partition points_. Returns false on any
  // violation (test helper, uncounted).
  bool validate() const;

  // --- internals shared with the other construction algorithms ------------
  std::vector<Node>& nodes() { return nodes_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  uint32_t& root() { return root_; }
  uint32_t root() const { return root_; }
  std::vector<Point>& mutable_points() { return points_; }

  // Builds a subtree over points_[lo, hi) (reordering in place) and returns
  // its node index. `charge` toggles asym counting (the p-batched finishing
  // step builds small subtrees inside the symmetric memory and charges only
  // the O(p) input reads / output writes itself). The subtree occupies the
  // pre-claimed slice nodes_[id_base, id_base + classic_node_count(hi - lo))
  // in pre-order (nodes_ must be pre-sized); sibling slices are disjoint, so
  // subtrees above the sequential cutoff fork on the scheduler and node ids
  // are identical at every worker count.
  uint32_t build_recursive(size_t lo, size_t hi, int depth, size_t leaf_size,
                           bool charge, uint32_t id_base);

 private:
  static Box whole_space() {
    Box all;
    for (int d = 0; d < K; ++d) {
      all.lo[d] = -std::numeric_limits<double>::infinity();
      all.hi[d] = std::numeric_limits<double>::infinity();
    }
    return all;
  }

  template <typename V>
  void range_visit_rec(uint32_t node, const Box& query, V& vis,
                       QueryStats* qs) const {
    if (qs) ++qs->nodes_visited;
    asym::count_read();  // fetch the node
    const Node& nd = nodes_[node];
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        asym::count_read();
        if (qs) ++qs->points_scanned;
        if (query.contains(points_[i])) vis(i);
      }
      return;
    }
    if (query.lo[nd.dim] <= nd.split) {
      range_visit_rec(nd.left, query, vis, qs);
    }
    if (query.hi[nd.dim] >= nd.split) {
      range_visit_rec(nd.right, query, vis, qs);
    }
  }

  template <typename V>
  void nn_visit_rec(uint32_t node, const Box& region, const Point& q, V& vis,
                    QueryStats* qs) const {
    if (region.squared_distance(q) > vis.bound()) return;
    if (qs) ++qs->nodes_visited;
    asym::count_read();
    const Node& nd = nodes_[node];
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        asym::count_read();
        if (qs) ++qs->points_scanned;
        vis.offer(i, geom::squared_distance(points_[i], q));
      }
      return;
    }
    Box left_region = region;
    left_region.hi[nd.dim] = nd.split;
    Box right_region = region;
    right_region.lo[nd.dim] = nd.split;
    if (q[nd.dim] <= nd.split) {
      nn_visit_rec(nd.left, left_region, q, vis, qs);
      nn_visit_rec(nd.right, right_region, q, vis, qs);
    } else {
      nn_visit_rec(nd.right, right_region, q, vis, qs);
      nn_visit_rec(nd.left, left_region, q, vis, qs);
    }
  }

  std::vector<Node> nodes_;
  std::vector<Point> points_;
  uint32_t root_ = kNullNode;
  size_t leaf_size_ = 8;

  template <int K2>
  friend class PBatchedBuilder;
};

using KdTree2 = KdTree<2>;
using KdTree3 = KdTree<3>;

}  // namespace weg::kdtree
