// k-d trees (Section 6.1): classic median-split construction (the baseline,
// Θ(n log n) reads and writes) plus range and (1+eps)-approximate
// nearest-neighbor queries shared by every construction variant.
//
// Splitting cycles through the k dimensions (the analysis of Lemma 6.1
// assumes each axis is partitioned once every k consecutive levels).
// Every node stores its subtree's slice [begin, end) of the DFS-ordered
// point array and the tight bounding box of that slice. The slice doubles
// as a live-subtree count (end - begin, free at build time from the
// pre-claimed slice sizes), and the box drives the covered-subtree fast
// path: a query box that fully covers a node's bounding box answers
// range_count in O(1) and range_report by a bulk slice copy, without
// descending further (Lemma 6.1's count bound made concrete). Leaves store
// up to `leaf_size` points.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "src/asym/counters.h"
#include "src/geom/box.h"
#include "src/geom/point.h"
#include "src/parallel/batch_query.h"

namespace weg::kdtree {

struct BuildStats {
  asym::Counts cost;   // large-memory traffic of the build
  size_t height = 0;   // tree height (nodes on longest root-leaf path)
  size_t nodes = 0;    // total tree nodes
  // p-batched only: number of leaf-settle events and max buffer size seen at
  // settle time (Figure 2 / Lemma 6.3 series).
  size_t settles = 0;
  size_t max_settle_buffer = 0;
};

struct QueryStats {
  size_t nodes_visited = 0;
  size_t points_scanned = 0;
  // Subtrees answered by the covered fast path (query box ⊇ node box): the
  // whole subtree contributed without visiting its nodes.
  size_t covered_subtrees = 0;
};

// The one options bag threaded through every query entry point (serial and
// batch) of the k-d family. Replaces the old `QueryStats* qs = nullptr`
// trailing pointer; thin deprecated shims keep the pointer spelling alive
// for one PR.
struct QueryOptions {
  QueryStats* stats = nullptr;
  // Kill-switch for the covered-subtree fast path (A/B benching: off
  // reproduces the plain leaf-scan traversal and its asym charges). Results
  // are identical either way.
  bool count_fast_path = true;
};

namespace detail {

// Deterministic stats aggregation for batch entry points: each query writes
// a private QueryStats slot during the parallel batch, and the slots sum
// serially afterwards — the totals are a function of the batch alone, not
// of the work-stealing schedule. When no sink is set, at() hands out
// stat-free options and the scope is free.
class BatchStatsScope {
 public:
  BatchStatsScope(size_t nq, const QueryOptions& opts) : opts_(opts) {
    if (opts_.stats != nullptr) per_.resize(nq);
  }
  BatchStatsScope(const BatchStatsScope&) = delete;
  BatchStatsScope& operator=(const BatchStatsScope&) = delete;
  QueryOptions at(size_t i) {
    QueryOptions o = opts_;
    o.stats = per_.empty() ? nullptr : &per_[i];
    return o;
  }
  ~BatchStatsScope() {
    if (opts_.stats == nullptr) return;
    for (const QueryStats& s : per_) {
      opts_.stats->nodes_visited += s.nodes_visited;
      opts_.stats->points_scanned += s.points_scanned;
      opts_.stats->covered_subtrees += s.covered_subtrees;
    }
  }

 private:
  const QueryOptions opts_;
  std::vector<QueryStats> per_;
};

// True iff V exposes the covered-subtree hook `covered(begin, end)` — the
// visitor-side half of the fast path. Visitors without it (liveness-filtered
// forest levels, plain lambdas) always take the per-point traversal.
template <typename V>
concept CoveredVisitor = requires(V v, size_t b, size_t e) { v.covered(b, e); };

}  // namespace detail

inline constexpr uint32_t kNullNode = UINT32_MAX;

// Exact node count of the classic median-split recursion over m points
// (count(m) = 1 for m <= leaf_size, else 1 + count(floor(m/2)) +
// count(ceil(m/2)); an empty range still makes one leaf node). Splits are at
// the exact median, so the count is a function of (m, leaf_size) alone —
// this is what lets the parallel builds pre-claim deterministic id slices
// instead of drawing from a scheduling-dependent atomic allocator. O(log m):
// subtree sizes at each recursion depth take at most two distinct values.
size_t classic_node_count(size_t m, size_t leaf_size);

template <int K>
class KdTree {
 public:
  using Point = geom::PointK<K>;
  using Box = geom::BoxK<K>;

  struct Node {
    int dim = 0;                 // splitting dimension (interior)
    double split = 0;            // splitting coordinate (interior)
    uint32_t left = kNullNode;   // kNullNode for leaves
    uint32_t right = kNullNode;
    // Subtree slice in points_ (leaves partition points_ in DFS order, so
    // every subtree is contiguous). end - begin is the subtree's point
    // count — the count augmentation is free at build time.
    uint32_t begin = 0, end = 0;
    // Tight bounding box of points_[begin, end) (empty() for an empty
    // leaf). Derived bookkeeping maintained by every builder; the covered
    // fast path and the nn short-circuit read it with the node itself.
    Box box = Box::empty();
    bool is_leaf() const { return left == kNullNode; }
  };

  KdTree() = default;

  // Classic construction: recursive exact-median split, cycling dimensions.
  // Charges one read + one write per point per level (Θ(n log n) writes).
  static KdTree build_classic(std::vector<Point> points, size_t leaf_size = 8,
                              BuildStats* stats = nullptr);

  // --- queries ---------------------------------------------------------

  // Count / report points inside the axis-aligned box.
  size_t range_count(const Box& query, const QueryOptions& opts = {}) const;
  std::vector<Point> range_report(const Box& query,
                                  const QueryOptions& opts = {}) const;

  // (1+eps)-approximate nearest neighbor; eps = 0 gives the exact NN.
  // Returns the index into points() of the neighbor (SIZE_MAX if empty).
  size_t ann(const Point& q, double eps = 0.0,
             const QueryOptions& opts = {}) const;

  // k nearest neighbors (exact), returned sorted by distance.
  std::vector<size_t> knn(const Point& q, size_t k,
                          const QueryOptions& opts = {}) const;

  // Deprecated QueryStats* shims (kept for one PR; migrate to
  // QueryOptions{stats}).
  [[deprecated("pass QueryOptions{stats} instead")]]
  size_t range_count(const Box& query, QueryStats* qs) const {
    return range_count(query, QueryOptions{qs});
  }
  [[deprecated("pass QueryOptions{stats} instead")]]
  std::vector<Point> range_report(const Box& query, QueryStats* qs) const {
    return range_report(query, QueryOptions{qs});
  }
  [[deprecated("pass QueryOptions{stats} instead")]]
  size_t ann(const Point& q, double eps, QueryStats* qs) const {
    return ann(q, eps, QueryOptions{qs});
  }
  [[deprecated("pass QueryOptions{stats} instead")]]
  std::vector<size_t> knn(const Point& q, size_t k, QueryStats* qs) const {
    return knn(q, k, QueryOptions{qs});
  }

  // --- batched queries (shared two-phase engine) -----------------------
  //
  // Unified contract shared by every k-d structure family (see
  // docs/ARCHITECTURE.md "Count augmentation & pruning"):
  //   range_count_batch  -> std::vector<size_t>
  //   range_report_batch -> parallel::BatchResult<Point>
  //   knn_batch          -> parallel::BatchResult<Point>
  //   ann_batch          -> std::vector<std::optional<Point>>

  std::vector<size_t> range_count_batch(const std::vector<Box>& qs,
                                        const QueryOptions& opts = {}) const;
  parallel::BatchResult<Point> range_report_batch(
      const std::vector<Box>& qs, const QueryOptions& opts = {}) const;
  // Flat k-NN over all queries: query i's neighbors (points sorted by the
  // canonical (distance^2, coords) order) occupy slice i; every query
  // yields exactly min(k, size()) results, so the count pass is free.
  parallel::BatchResult<Point> knn_batch(const std::vector<Point>& qs,
                                         size_t k,
                                         const QueryOptions& opts = {}) const;
  std::vector<std::optional<Point>> ann_batch(
      const std::vector<Point>& qs, double eps = 0.0,
      const QueryOptions& opts = {}) const;

  // --- templated traversals (the visitor core) -------------------------
  //
  // Each query family has exactly one traversal; the public count/report/
  // batch entry points (and the dynamic structures layered on this tree)
  // instantiate them with different visitors.

  // Calls vis(i) for every point index i inside `query`, in deterministic
  // DFS order (equivalently: ascending i, since leaves partition points_
  // in order). If the visitor models detail::CoveredVisitor and the fast
  // path is enabled, a node whose box is fully inside `query` is answered
  // by one vis.covered(begin, end) call instead of descending — O(1) reads
  // for counting visitors.
  template <typename V>
  void range_visit(const Box& query, V&& vis,
                   const QueryOptions& opts = {}) const {
    if (root_ != kNullNode) range_visit_rec(root_, query, vis, opts);
  }

  // Nearest-neighbor traversal with box pruning and near-side-first order.
  // The visitor owns the candidate set:
  //   vis.bound()      — current squared-distance pruning radius,
  //   vis.offer(i, d2) — consider points_[i] at squared distance d2.
  // Pruning is two-tier: the split-induced region box prunes before the
  // node is fetched (free), and the node's tight bounding box short-circuits
  // after one read — strictly tighter, so whole subtrees farther than the
  // bound cost one read instead of a descent. Both prune strictly (`>`), so
  // distance-tied candidates still reach offer() and the canonical
  // (d2, coords) order decides — results are traversal-independent.
  template <typename V>
  void nn_visit(const Point& q, V&& vis, const QueryOptions& opts = {}) const {
    if (root_ != kNullNode) nn_visit_rec(root_, whole_space(), q, vis, opts);
  }

  // Index of a point equal to p (SIZE_MAX if absent). Descends the splits,
  // exploring both sides when p lies exactly on a splitting hyperplane.
  size_t find(const Point& p) const;

  // --- introspection ------------------------------------------------------

  size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t height() const;

  // Structural invariants: every leaf point lies on the correct side of all
  // ancestor splits; leaf ranges partition points_; every node's [begin,
  // end) slice is the union of its children's and its box bounds the slice.
  // Returns false on any violation (test helper, uncounted).
  bool validate() const;

  // --- internals shared with the other construction algorithms ------------
  std::vector<Node>& nodes() { return nodes_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  uint32_t& root() { return root_; }
  uint32_t root() const { return root_; }
  std::vector<Point>& mutable_points() { return points_; }

  // Builds a subtree over points_[lo, hi) (reordering in place) and returns
  // its node index. `charge` toggles asym counting (the p-batched finishing
  // step builds small subtrees inside the symmetric memory and charges only
  // the O(p) input reads / output writes itself). The subtree occupies the
  // pre-claimed slice nodes_[id_base, id_base + classic_node_count(hi - lo))
  // in pre-order (nodes_ must be pre-sized); sibling slices are disjoint, so
  // subtrees above the sequential cutoff fork on the scheduler and node ids
  // are identical at every worker count.
  uint32_t build_recursive(size_t lo, size_t hi, int depth, size_t leaf_size,
                           bool charge, uint32_t id_base);

 private:
  static Box whole_space() {
    Box all;
    for (int d = 0; d < K; ++d) {
      all.lo[d] = -std::numeric_limits<double>::infinity();
      all.hi[d] = std::numeric_limits<double>::infinity();
    }
    return all;
  }

  template <typename V>
  void range_visit_rec(uint32_t node, const Box& query, V& vis,
                       const QueryOptions& opts) const {
    if (opts.stats) ++opts.stats->nodes_visited;
    asym::count_read();  // fetch the node (split, slice, and box together)
    const Node& nd = nodes_[node];
    if constexpr (detail::CoveredVisitor<V>) {
      if (opts.count_fast_path && nd.box.inside(query)) {
        // Whole subtree inside the query: one covered() call replaces the
        // descent. Counting visitors add end - begin in O(1) reads; the
        // reporting visitor bulk-copies the slice without per-point
        // containment tests.
        if (opts.stats) ++opts.stats->covered_subtrees;
        vis.covered(nd.begin, nd.end);
        return;
      }
    }
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        asym::count_read();
        if (opts.stats) ++opts.stats->points_scanned;
        if (query.contains(points_[i])) vis(i);
      }
      return;
    }
    if (query.lo[nd.dim] <= nd.split) {
      range_visit_rec(nd.left, query, vis, opts);
    }
    if (query.hi[nd.dim] >= nd.split) {
      range_visit_rec(nd.right, query, vis, opts);
    }
  }

  template <typename V>
  void nn_visit_rec(uint32_t node, const Box& region, const Point& q, V& vis,
                    const QueryOptions& opts) const {
    if (region.squared_distance(q) > vis.bound()) return;
    if (opts.stats) ++opts.stats->nodes_visited;
    asym::count_read();
    const Node& nd = nodes_[node];
    // Tight-box short-circuit: the subtree's bounding box lower-bounds every
    // point distance in it, and is never looser than the split region.
    if (opts.count_fast_path && nd.box.squared_distance(q) > vis.bound()) {
      if (opts.stats) ++opts.stats->covered_subtrees;
      return;
    }
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        asym::count_read();
        if (opts.stats) ++opts.stats->points_scanned;
        vis.offer(i, geom::squared_distance(points_[i], q));
      }
      return;
    }
    Box left_region = region;
    left_region.hi[nd.dim] = nd.split;
    Box right_region = region;
    right_region.lo[nd.dim] = nd.split;
    if (q[nd.dim] <= nd.split) {
      nn_visit_rec(nd.left, left_region, q, vis, opts);
      nn_visit_rec(nd.right, right_region, q, vis, opts);
    } else {
      nn_visit_rec(nd.right, right_region, q, vis, opts);
      nn_visit_rec(nd.left, left_region, q, vis, opts);
    }
  }

  std::vector<Node> nodes_;
  std::vector<Point> points_;
  uint32_t root_ = kNullNode;
  size_t leaf_size_ = 8;

  template <int K2>
  friend class PBatchedBuilder;
};

using KdTree2 = KdTree<2>;
using KdTree3 = KdTree<3>;

}  // namespace weg::kdtree
