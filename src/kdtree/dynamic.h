// Dynamic k-d trees (Section 6.2). k-d tree nodes represent subspaces, so
// rotations are impossible; both update strategies in the paper are
// reconstruction-based:
//
//  * LogForest — logarithmic reconstruction [46]: at most log2 n static
//    trees of sizes that are increasing powers of two. An insertion creates
//    a size-1 tree and repeatedly merges equal-sized trees (flatten +
//    rebuild). Queries search all O(log n) trees. Insertion costs
//    O(log^2 n) reads and writes; rebuilding with the p-batched constructor
//    (RebuildMode::PBatched) cuts the *writes* per insertion to O(log n)
//    while reads stay O(log^2 n), exactly the trade the paper describes.
//    Deletions mark points dead and the forest is compacted once half of
//    all points are dead (amortized O(1) writes per deletion).
//
//  * DynamicKdTree — single-tree version: subtree sizes are maintained and a
//    subtree is reconstructed whenever the weights of its two children
//    differ beyond the mode's tolerance. Mode::RangeOptimal keeps the
//    imbalance at O(1/log n) so the height stays log2 n + O(1) (preserving
//    the O(n^((k-1)/k)) range query bound) at O(log^3 n) amortized work per
//    insertion; Mode::AnnOnly tolerates a constant-factor imbalance (height
//    O(log n)) at O(log^2 n) amortized work.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/status.h"
#include "src/kdtree/kdtree.h"
#include "src/kdtree/pbatched.h"

namespace weg::kdtree {

namespace detail {

// Forest-level covered hook: vis.covered(pts, b, e) consumes the slice
// pts[b, e) of one fully-covered level subtree wholesale (only sound when
// the level has no dead points). Visitors without it always take the
// per-point path.
template <typename V, typename Point>
concept LevelCoveredVisitor =
    requires(V v, const std::vector<Point>& pts, size_t b, size_t e) {
      v.covered(pts, b, e);
    };

}  // namespace detail

template <int K>
class LogForest {
 public:
  using Point = geom::PointK<K>;
  using Box = geom::BoxK<K>;

  enum class RebuildMode { kClassic, kPBatched };

  explicit LogForest(RebuildMode mode = RebuildMode::kClassic,
                     size_t leaf_size = 8)
      : mode_(mode), leaf_size_(leaf_size) {}

  void insert(const Point& p);
  // Batched insertion: gathers the carry chain once for the whole batch and
  // performs a single (parallel, p-batched when large) rebuild at the first
  // level that both clears the occupied prefix and is large enough for the
  // batch — one tree build instead of up to |pts| carry-chain merges.
  // Validates the batch up front (finite coordinates) and checks the
  // "alloc" fault point; any non-OK return happens before the first write,
  // leaving the forest unchanged.
  Status bulk_insert(const std::vector<Point>& pts);
  // Removes one point equal to p; returns false if absent.
  bool erase(const Point& p);
  // Batched deletion: marks every present point of the batch dead, deferring
  // the half-dead forest compaction check to the end — one compaction per
  // batch instead of up to |pts| piecemeal rebuilds. Returns the number of
  // points actually erased; a non-finite record is rejected pre-mutation.
  Expected<size_t> bulk_erase(const std::vector<Point>& pts);

  size_t range_count(const Box& query, const QueryOptions& opts = {}) const;
  std::vector<Point> range_report(const Box& query,
                                  const QueryOptions& opts = {}) const;
  // (1+eps)-ANN over the whole forest; returns the point itself. A
  // non-finite query yields nullopt (distances to NaN are unordered).
  std::optional<Point> ann(const Point& q, double eps = 0.0,
                           const QueryOptions& opts = {}) const;
  // Exact k nearest neighbors over the live points of all levels, returned
  // as points sorted by (squared distance, coordinates) — the canonical
  // order the sharded layer's top-k merge assumes. Returns exactly
  // min(k, size()) points; k == 0 or a non-finite query yields none.
  std::vector<Point> knn(const Point& q, size_t k,
                         const QueryOptions& opts = {}) const;

  // Deprecated QueryStats* shims (kept for one PR; migrate to
  // QueryOptions{stats}).
  [[deprecated("pass QueryOptions{stats} instead")]]
  size_t range_count(const Box& query, QueryStats* qs) const {
    return range_count(query, QueryOptions{qs});
  }
  [[deprecated("pass QueryOptions{stats} instead")]]
  std::vector<Point> range_report(const Box& query, QueryStats* qs) const {
    return range_report(query, QueryOptions{qs});
  }
  [[deprecated("pass QueryOptions{stats} instead")]]
  std::optional<Point> ann(const Point& q, double eps, QueryStats* qs) const {
    return ann(q, eps, QueryOptions{qs});
  }
  [[deprecated("pass QueryOptions{stats} instead")]]
  std::vector<Point> knn(const Point& q, size_t k, QueryStats* qs) const {
    return knn(q, k, QueryOptions{qs});
  }

  // Batched queries on the shared two-phase engine (the unified contract —
  // see docs/ARCHITECTURE.md "Count augmentation & pruning").
  std::vector<size_t> range_count_batch(const std::vector<Box>& qs,
                                        const QueryOptions& opts = {}) const;
  parallel::BatchResult<Point> range_report_batch(
      const std::vector<Box>& qs, const QueryOptions& opts = {}) const;
  std::vector<std::optional<Point>> ann_batch(
      const std::vector<Point>& qs, double eps = 0.0,
      const QueryOptions& opts = {}) const;
  // Flat k-NN over all queries: query i's neighbors occupy slice i; every
  // query yields exactly min(k, size()) results, so the count pass is free.
  parallel::BatchResult<Point> knn_batch(const std::vector<Point>& qs,
                                         size_t k,
                                         const QueryOptions& opts = {}) const;

  size_t size() const { return live_; }
  size_t num_trees() const;
  // Every live point, level by level — the record extraction hook the
  // sharded layer's commit-time rebalancing uses.
  std::vector<Point> live_points() const { return flatten_alive(); }

 private:
  struct Level {
    KdTree<K> tree;
    std::vector<uint8_t> alive;  // parallel to tree.points()
    size_t dead = 0;
    bool used = false;
  };

  // The single templated range traversal: calls vis(pt) for every live point
  // inside `query`, level by level (each level delegates to the static
  // tree's range_visit and filters by liveness). range_count, range_report,
  // and the batch variants all instantiate it. A level without dead points
  // keeps the static tree's covered-subtree fast path alive: when the
  // visitor exposes the level hook (detail::LevelCoveredVisitor), covered
  // slices are forwarded wholesale instead of per point. A level with dead
  // points always takes the filtered per-point path (a slice copy would
  // resurrect its dead points).
  template <typename V>
  void range_visit(const Box& query, V&& vis, const QueryOptions& opts) const {
    for (const Level& L : levels_) {
      if (!L.used) continue;
      const auto& tree_pts = L.tree.points();
      if constexpr (detail::LevelCoveredVisitor<std::remove_reference_t<V>,
                                                Point>) {
        if (L.dead == 0) {
          struct Wrap {
            const std::vector<Point>* pts;
            std::remove_reference_t<V>* vis;
            void operator()(size_t i) { (*vis)((*pts)[i]); }
            void covered(size_t b, size_t e) { vis->covered(*pts, b, e); }
          } w{&tree_pts, &vis};
          L.tree.range_visit(query, w, opts);
          continue;
        }
      }
      L.tree.range_visit(
          query,
          [&](size_t i) {
            if (L.dead == 0 || L.alive[i]) vis(tree_pts[i]);
          },
          opts);
    }
  }

  std::vector<Point> flatten_alive() const;
  void rebuild_from(std::vector<Point> pts);
  KdTree<K> build(std::vector<Point> pts);
  // Marks one point dead without the trailing compaction check (erase and
  // bulk_erase share it; only the compaction cadence differs).
  bool erase_mark(const Point& p);
  void maybe_compact();
  // k-NN candidates as (squared distance, point), sorted by (distance,
  // coordinates) and truncated to min(k, size()) entries. knn and knn_batch
  // both instantiate the per-level gathering; output writes are charged by
  // the callers.
  std::vector<std::pair<double, Point>> knn_candidates(
      const Point& q, size_t k, const QueryOptions& opts) const;

  RebuildMode mode_;
  size_t leaf_size_;
  std::vector<Level> levels_;
  size_t live_ = 0;
  size_t dead_ = 0;
};

template <int K>
class DynamicKdTree {
 public:
  using Point = geom::PointK<K>;
  using Box = geom::BoxK<K>;

  enum class Mode { kRangeOptimal, kAnnOnly };

  explicit DynamicKdTree(Mode mode = Mode::kRangeOptimal,
                         size_t leaf_size = 8)
      : mode_(mode), leaf_size_(leaf_size) {}

  void insert(const Point& p);
  bool erase(const Point& p);
  // Batched insertion: routes every point to its leaf buffer first (weights
  // maintained along the paths), then runs one top-down restructuring pass
  // that rebuilds every violated subtree — oversized leaf buffers, imbalance
  // beyond the mode's tolerance, dead-point majorities — through the shared
  // pre-claim slot path (parallel::claim_build_slots via rebuild_subtree),
  // instead of the per-element alloc-one-node leaf splits of insert().
  // Validates the batch up front (finite coordinates) and checks the
  // "alloc" fault point; any non-OK return happens before the first write,
  // leaving the tree unchanged.
  Status bulk_insert(const std::vector<Point>& pts);
  // Batched deletion: marks every present point of the batch dead, then runs
  // the same single restructuring pass. Returns the number erased; a
  // non-finite record is rejected pre-mutation.
  Expected<size_t> bulk_erase(const std::vector<Point>& pts);

  size_t range_count(const Box& query, const QueryOptions& opts = {}) const;
  std::vector<Point> range_report(const Box& query,
                                  const QueryOptions& opts = {}) const;
  // A non-finite query yields nullopt (distances to NaN are unordered).
  std::optional<Point> ann(const Point& q, double eps = 0.0,
                           const QueryOptions& opts = {}) const;
  // Exact k nearest live neighbors, returned as points sorted by (squared
  // distance, coordinates) — the canonical order the sharded layer's top-k
  // merge assumes. Returns exactly min(k, size()) points; k == 0 or a
  // non-finite query yields none.
  std::vector<Point> knn(const Point& q, size_t k,
                         const QueryOptions& opts = {}) const;

  // Deprecated QueryStats* shims (kept for one PR; migrate to
  // QueryOptions{stats}).
  [[deprecated("pass QueryOptions{stats} instead")]]
  size_t range_count(const Box& query, QueryStats* qs) const {
    return range_count(query, QueryOptions{qs});
  }
  [[deprecated("pass QueryOptions{stats} instead")]]
  std::vector<Point> range_report(const Box& query, QueryStats* qs) const {
    return range_report(query, QueryOptions{qs});
  }
  [[deprecated("pass QueryOptions{stats} instead")]]
  std::optional<Point> ann(const Point& q, double eps, QueryStats* qs) const {
    return ann(q, eps, QueryOptions{qs});
  }

  // Batched queries on the shared two-phase engine (the unified contract —
  // see docs/ARCHITECTURE.md "Count augmentation & pruning").
  std::vector<size_t> range_count_batch(const std::vector<Box>& qs,
                                        const QueryOptions& opts = {}) const;
  parallel::BatchResult<Point> range_report_batch(
      const std::vector<Box>& qs, const QueryOptions& opts = {}) const;
  std::vector<std::optional<Point>> ann_batch(
      const std::vector<Point>& qs, double eps = 0.0,
      const QueryOptions& opts = {}) const;
  // Flat k-NN over all queries: query i's neighbors occupy slice i; every
  // query yields exactly min(k, size()) results, so the count pass is free.
  parallel::BatchResult<Point> knn_batch(const std::vector<Point>& qs,
                                         size_t k,
                                         const QueryOptions& opts = {}) const;

  size_t size() const { return live_; }
  // Every live point, in deterministic DFS order — the record extraction
  // hook the sharded layer's commit-time rebalancing uses.
  std::vector<Point> live_points() const;
  size_t height() const;
  // Number of subtree reconstructions triggered so far (test/bench hook).
  size_t rebuilds() const { return rebuilds_; }
  bool validate() const;

 private:
  struct Node {
    int dim = 0;
    double split = 0;
    int depth = 0;
    uint32_t left = kNullNode;
    uint32_t right = kNullNode;
    uint32_t live = 0;   // live points in subtree
    uint32_t total = 0;  // live + dead points in subtree
    // Conservative bounding box of every point routed into this subtree
    // (exact after a rebuild, extended on insertion paths, never shrunk by
    // erasure — so it always contains all live points). Drives the covered
    // count fast path (box ⊆ query ⇒ contribute `live` in O(1)) and the
    // nn bound short-circuit.
    Box box = Box::empty();
    std::vector<std::pair<Point, bool>> leaf_pts;  // (point, alive)
    bool is_leaf() const { return left == kNullNode; }
  };

  double imbalance_tolerance() const;
  uint32_t alloc_node();
  void free_subtree(uint32_t v);
  // The single templated range traversal: calls vis(pt) for every live point
  // inside `query`, in deterministic DFS order. range_count, range_report,
  // and the batch variants all instantiate it. A visitor exposing
  // `covered(size_t live)` gets the O(1) covered-subtree fast path: a node
  // whose box is inside the query contributes its live weight without a
  // descent (reporting keeps the per-point path — a slice copy would
  // resurrect dead points).
  template <typename V>
  void range_visit(const Box& query, V&& vis, const QueryOptions& opts) const;
  void collect_alive(uint32_t v, std::vector<Point>& out) const;
  // Reconstruction entry point: pre-claims the exact (size-determined) node
  // count through parallel::claim_build_slots, then recurses over id slices
  // so sibling subtrees fork on the scheduler without touching the shared
  // allocator.
  uint32_t rebuild_subtree(std::vector<Point>& pts, size_t lo, size_t hi,
                           int depth);
  uint32_t rebuild_subtree_ids(std::vector<Point>& pts, size_t lo, size_t hi,
                               int depth, const uint32_t* ids);
  void maybe_rebalance(const std::vector<uint32_t>& path);
  // Marks one point dead (decrementing live weights along its path) without
  // rebalancing; erase and the bulk paths share it.
  bool erase_mark(const Point& p, std::vector<uint32_t>* path);
  // The reconstruction trigger shared by maybe_rebalance (per-element) and
  // restructure_rec (bulk): children's live weights differ beyond the
  // mode's tolerance, or dead points outnumber live ones.
  bool interior_violated(const Node& nd) const;
  // Post-bulk restructuring: descends only into subtrees the bulk pass
  // touched (touched[v] != 0 — weights elsewhere are unchanged, so no new
  // violation is possible there), rebuilds every violated subtree via
  // rebuild_subtree (stopping the descent there), and refreshes interior
  // live/total weights on the way back up. Cost: O(batch * height) plus the
  // rebuilt subtree sizes, not O(n). Returns the (possibly fresh) subtree
  // id.
  uint32_t restructure_rec(uint32_t v, const std::vector<uint8_t>& touched);

  Mode mode_;
  size_t leaf_size_;
  std::vector<Node> pool_;
  std::vector<uint32_t> free_list_;
  uint32_t root_ = kNullNode;
  size_t live_ = 0;
  size_t dead_ = 0;
  size_t rebuilds_ = 0;
};

}  // namespace weg::kdtree
