#include "src/kdtree/pbatched.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "src/core/prefix_doubling.h"
#include "src/parallel/parallel_for.h"
#include "src/primitives/semisort.h"

namespace weg::kdtree {

namespace {

// Construction-time node: leaves own a point buffer.
template <int K>
struct BNode {
  int dim = 0;
  double split = 0;
  int depth = 0;  // root = 0; fixes the cycling split dimension
  uint32_t left = kNullNode;
  uint32_t right = kNullNode;
  std::vector<geom::PointK<K>> buffer;
  bool is_leaf() const { return left == kNullNode; }
};

template <int K>
struct Builder {
  using Point = geom::PointK<K>;

  SplitRule rule = SplitRule::kMedianCycling;
  std::vector<BNode<K>> pool;
  std::atomic<uint32_t> alloc{0};
  uint32_t root = kNullNode;
  size_t p;
  std::atomic<size_t> settles{0};
  std::atomic<size_t> max_settle_buffer{0};

  uint32_t new_node() {
    uint32_t id = alloc.fetch_add(1, std::memory_order_relaxed);
    assert(id < pool.size());
    return id;
  }

  // Chooses the splitting (dimension, position) for pts[lo, hi) per the
  // configured rule (Section 6.3: any heuristic linear in the buffered set)
  // and partitions the range so [lo, mid) goes left. Returns (dim, mid).
  std::pair<int, size_t> choose_split(std::vector<Point>& pts, size_t lo,
                                      size_t hi, int depth) {
    size_t m = hi - lo;
    if (rule == SplitRule::kMedianCycling) {
      int dim = depth % K;
      size_t mid = lo + m / 2;
      std::nth_element(pts.begin() + static_cast<long>(lo),
                       pts.begin() + static_cast<long>(mid),
                       pts.begin() + static_cast<long>(hi),
                       [dim](const Point& a, const Point& b) {
                         return a[dim] < b[dim];
                       });
      return {dim, mid};
    }
    // Tight bounding box of the buffered piece selects the dimension.
    auto box = geom::BoxK<K>::empty();
    for (size_t i = lo; i < hi; ++i) box.extend(pts[i]);
    int dim = box.longest_dimension();
    if (rule == SplitRule::kLongestDim) {
      size_t mid = lo + m / 2;
      std::nth_element(pts.begin() + static_cast<long>(lo),
                       pts.begin() + static_cast<long>(mid),
                       pts.begin() + static_cast<long>(hi),
                       [dim](const Point& a, const Point& b) {
                         return a[dim] < b[dim];
                       });
      return {dim, mid};
    }
    // Surface-area heuristic [30]: sort along dim, sweep prefix/suffix
    // boxes, minimize SA(L)*|L| + SA(R)*|R|.
    std::sort(pts.begin() + static_cast<long>(lo),
              pts.begin() + static_cast<long>(hi),
              [dim](const Point& a, const Point& b) {
                return a[dim] < b[dim];
              });
    auto half_area = [](const geom::BoxK<K>& b) {
      // Sum of pairwise extent products (surface area up to a constant).
      double sa = 0;
      for (int d1 = 0; d1 < K; ++d1) {
        for (int d2 = d1 + 1; d2 < K; ++d2) sa += b.extent(d1) * b.extent(d2);
      }
      if constexpr (K == 2) {
        // In 2D, use perimeter instead of the single product.
        sa = b.extent(0) + b.extent(1);
      }
      return sa;
    };
    std::vector<double> suffix(m + 1, 0.0);
    {
      auto b = geom::BoxK<K>::empty();
      for (size_t i = m; i-- > 1;) {
        b.extend(pts[lo + i]);
        suffix[i] = half_area(b);
      }
    }
    // Clamp the candidate range to the middle half: keeps every piece at
    // least m/4 points, bounding the node count (and the tree height).
    auto bl = geom::BoxK<K>::empty();
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best = lo + m / 2;
    size_t cand_lo = std::max<size_t>(1, m / 4);
    size_t cand_hi = m - cand_lo;
    for (size_t i = 1; i <= cand_hi; ++i) {
      bl.extend(pts[lo + i - 1]);
      if (i < cand_lo) continue;
      double cost = half_area(bl) * double(i) + suffix[i] * double(m - i);
      if (cost < best_cost) {
        best_cost = cost;
        best = lo + i;
      }
    }
    return {dim, best};
  }

  // Splits points[lo, hi) recursively until every piece is <= p, buffering
  // the pieces in fresh leaves. Used for both the initial round and settles.
  // Charges one read + one write per point per split level. Sibling pieces
  // are disjoint subranges writing disjoint pool slots, so subtrees above
  // the sequential cutoff fork on the scheduler (ids come from the atomic
  // allocator — scheduling-dependent, which is why the rounds key points on
  // DFS leaf ranks rather than on ids).
  uint32_t split_down(std::vector<Point>& pts, size_t lo, size_t hi,
                      int depth) {
    uint32_t id = new_node();
    pool[id].depth = depth;
    size_t m = hi - lo;
    if (m <= p) {
      asym::count_write(m);  // buffer the piece
      pool[id].buffer.assign(pts.begin() + static_cast<long>(lo),
                             pts.begin() + static_cast<long>(hi));
      return id;
    }
    asym::count_read(m);
    asym::count_write(m);
    auto [dim, mid] = choose_split(pts, lo, hi, depth);
    pool[id].dim = dim;
    pool[id].split = pts[mid][dim];
    uint32_t l = kNullNode, r = kNullNode;
    parallel::par_do_if(
        m > parallel::kSeqCutoff,
        [&] { l = split_down(pts, lo, mid, depth + 1); },
        [&] { r = split_down(pts, mid, hi, depth + 1); });
    pool[id].left = l;  // pool is pre-sized: slots never move
    pool[id].right = r;
    return id;
  }

  // Settles an overflowed leaf (Figure 2c): splits its buffer by the median,
  // recursively while a side still exceeds p.
  void settle(uint32_t leaf) {
    BNode<K>& nd = pool[leaf];
    assert(nd.is_leaf());
    std::vector<Point> pts;
    pts.swap(nd.buffer);
    settles.fetch_add(1, std::memory_order_relaxed);
    size_t cur = max_settle_buffer.load(std::memory_order_relaxed);
    while (pts.size() > cur && !max_settle_buffer.compare_exchange_weak(
                                   cur, pts.size(),
                                   std::memory_order_relaxed)) {
    }
    size_t m = pts.size();
    asym::count_read(m);
    asym::count_write(m);
    auto [dim, mid] = choose_split(pts, 0, m, pool[leaf].depth);
    pool[leaf].dim = dim;
    pool[leaf].split = pts[mid][dim];
    int depth = pool[leaf].depth;
    uint32_t l = new_node();
    uint32_t r = new_node();
    pool[l].depth = depth + 1;
    pool[r].depth = depth + 1;
    pool[l].buffer.assign(pts.begin(), pts.begin() + static_cast<long>(mid));
    pool[r].buffer.assign(pts.begin() + static_cast<long>(mid), pts.end());
    pool[leaf].left = l;
    pool[leaf].right = r;
    parallel::par_do_if(
        pool[l].buffer.size() + pool[r].buffer.size() > parallel::kSeqCutoff,
        [&] {
          if (pool[l].buffer.size() > p) settle(l);
        },
        [&] {
          if (pool[r].buffer.size() > p) settle(r);
        });
  }

  // Descends the current splits to the leaf containing pt (reads only).
  uint32_t locate(const Point& pt) const {
    uint32_t cur = root;
    while (!pool[cur].is_leaf()) {
      asym::count_read();
      cur = pt[pool[cur].dim] < pool[cur].split ? pool[cur].left
                                                : pool[cur].right;
    }
    asym::count_read();
    return cur;
  }
};

}  // namespace

template <int K>
KdTree<K> PBatchedBuilder<K>::build(const std::vector<Point>& points, size_t p,
                                    size_t leaf_size, BuildStats* stats,
                                    SplitRule rule) {
  size_t n = points.size();
  if (n == 0) {
    if (stats) *stats = BuildStats{};
    return KdTree<K>{};
  }
  if (p == 0) {
    double lg = std::log2(static_cast<double>(n) + 2.0);
    p = static_cast<size_t>(lg * lg * lg) + 8;  // Omega(log^3 n), Lemma 6.2
  }
  asym::Region region;

  Builder<K> b;
  b.rule = rule;
  b.p = p;
  // Leaves hold >= p/2 points each after any settle, so the node count is
  // bounded by ~4n/p plus slack for the initial round and final partial
  // buffers.
  b.pool.resize(16 * (n / std::max<size_t>(1, p) + 1) + 128);

  auto rounds = core::prefix_doubling_rounds(n);

  // Initial round: standard construction (split down to <= p buffers) on the
  // first n/log^2 n points.
  {
    auto [lo, hi] = rounds[0];
    std::vector<Point> prefix(points.begin() + static_cast<long>(lo),
                              points.begin() + static_cast<long>(hi));
    asym::count_read(hi - lo);
    b.root = b.split_down(prefix, 0, prefix.size(), 0);
  }

  // Incremental rounds (Figure 2).
  for (size_t r = 1; r < rounds.size(); ++r) {
    auto [lo, hi] = rounds[r];
    // BNode ids are handed out by the atomic allocator, so they depend on
    // how settles were scheduled. The tree *structure* is deterministic, so
    // an in-order DFS rank per leaf restores a worker-count-independent key:
    // the semisorted group order — and with it every buffer's contents,
    // every settle, and every counted access — is a function of the input
    // alone. Bookkeeping over the O(n/p) skeleton: uncounted.
    std::vector<uint32_t> leaf_rank(b.alloc.load(std::memory_order_relaxed),
                                    kNullNode);
    {
      uint32_t next = 0;
      std::vector<uint32_t> stack{b.root};
      while (!stack.empty()) {
        uint32_t v = stack.back();
        stack.pop_back();
        const BNode<K>& nd = b.pool[v];
        if (nd.is_leaf()) {
          leaf_rank[v] = next++;
        } else {
          stack.push_back(nd.right);
          stack.push_back(nd.left);
        }
      }
    }
    struct Located {
      uint32_t rank;  // DFS rank of the leaf (the deterministic sort key)
      uint32_t leaf;  // BNode id of the leaf
      uint32_t idx;   // index into `points`
    };
    std::vector<Located> located(hi - lo);
    // (a) locate leaves: reads only plus one bookkeeping write per point.
    parallel::parallel_for(lo, hi, [&](size_t i) {
      asym::count_read();  // fetch the point
      uint32_t leaf = b.locate(points[i]);
      asym::count_write();
      located[i - lo] =
          Located{leaf_rank[leaf], leaf, static_cast<uint32_t>(i)};
    });
    // (b) semisort by leaf rank. Rounds are large, so this rides the
    // sample-based heavy/light plan: a dense leaf (many points landing in
    // one buffer) becomes a heavy key with a dedicated bucket and is
    // grouped without the old O(g log g) local-sort tail.
    auto groups = primitives::semisort_by(
        located, [](const Located& l) { return l.rank; });
    // (c) append each group to its leaf buffer; settle overflows.
    parallel::parallel_for(
        0, groups.size() - 1,
        [&](size_t g) {
          size_t glo = groups[g], ghi = groups[g + 1];
          uint32_t leaf = located[glo].leaf;
          auto& buf = b.pool[leaf].buffer;
          asym::count_write(ghi - glo);
          buf.reserve(buf.size() + (ghi - glo));
          for (size_t i = glo; i < ghi; ++i) {
            buf.push_back(points[located[i].idx]);
          }
          if (buf.size() > b.p) b.settle(leaf);
        },
        1);
  }

  // Finishing: convert to the compact KdTree, building each remaining buffer
  // into a subtree inside the symmetric memory (charge O(m) per leaf).
  KdTree<K> t;
  t.leaf_size_ = leaf_size;
  size_t num_bnodes = b.alloc.load();

  // DFS order: assign each construction leaf its compact point range.
  std::vector<std::pair<uint32_t, size_t>> leaf_offsets;  // (bnode, offset)
  size_t total_points = 0;
  {
    std::vector<uint32_t> stack{b.root};
    while (!stack.empty()) {
      uint32_t v = stack.back();
      stack.pop_back();
      const BNode<K>& nd = b.pool[v];
      if (nd.is_leaf()) {
        leaf_offsets.emplace_back(v, total_points);
        total_points += nd.buffer.size();
      } else {
        stack.push_back(nd.right);
        stack.push_back(nd.left);
      }
    }
  }
  assert(total_points == n);
  t.points_.resize(n);
  asym::count_read(n);
  asym::count_write(n);
  parallel::parallel_for(
      0, leaf_offsets.size(),
      [&](size_t i) {
        auto [v, off] = leaf_offsets[i];
        const auto& buf = b.pool[v].buffer;
        std::copy(buf.begin(), buf.end(),
                  t.points_.begin() + static_cast<long>(off));
      },
      1);

  // Compact structure: interior BNodes map 1:1; leaf BNodes become finished
  // subtrees built in small-memory (uncharged internal shuffles, one write
  // per created node charged below). Interior compact ids come from a
  // sequential DFS and every leaf subtree gets a pre-claimed id slice of its
  // exact (size-determined) node count, so compact node ids are identical at
  // every worker count — no atomic allocator anywhere in the finish.
  std::vector<uint32_t> compact_id(num_bnodes, kNullNode);
  struct LeafTask {
    uint32_t bnode;
    size_t lo, hi;
    int depth;
  };
  std::vector<LeafTask> leaf_tasks;
  uint32_t interior_count = 0;
  {
    size_t leaf_i = 0;
    std::vector<uint32_t> stack{b.root};
    while (!stack.empty()) {
      uint32_t v = stack.back();
      stack.pop_back();
      const BNode<K>& nd = b.pool[v];
      if (nd.is_leaf()) {
        auto [lv, off] = leaf_offsets[leaf_i++];
        assert(lv == v);
        leaf_tasks.push_back(
            LeafTask{v, off, off + nd.buffer.size(), nd.depth});
        continue;
      }
      compact_id[v] = interior_count++;
      stack.push_back(nd.right);
      stack.push_back(nd.left);
    }
  }
  // Slice layout: interiors first, then each leaf subtree's exact extent.
  std::vector<size_t> slice_base(leaf_tasks.size() + 1);
  slice_base[0] = interior_count;
  for (size_t i = 0; i < leaf_tasks.size(); ++i) {
    slice_base[i + 1] =
        slice_base[i] +
        classic_node_count(leaf_tasks[i].hi - leaf_tasks[i].lo, leaf_size);
  }
  t.nodes_.resize(slice_base.back());
  // Fill interior nodes (children patched below: leaf children need built
  // subtrees first).
  for (uint32_t v = 0; v < num_bnodes; ++v) {
    if (compact_id[v] == kNullNode) continue;
    const BNode<K>& nd = b.pool[v];
    auto& cn = t.nodes_[compact_id[v]];
    cn.dim = nd.dim;
    cn.split = nd.split;
  }
  // Build leaf subtrees in parallel over their pre-claimed slices, then
  // patch parents. An empty buffer (only the root of an empty round set)
  // becomes an empty leaf node via the m == 0 base case.
  std::vector<uint32_t> leaf_root(num_bnodes, kNullNode);
  parallel::parallel_for(
      0, leaf_tasks.size(),
      [&](size_t i) {
        const LeafTask& lt = leaf_tasks[i];
        leaf_root[lt.bnode] =
            t.build_recursive(lt.lo, lt.hi, lt.depth, leaf_size, false,
                              static_cast<uint32_t>(slice_base[i]));
      },
      1);
  asym::count_write(t.nodes_.size() - interior_count);  // created nodes
  for (uint32_t v = 0; v < num_bnodes; ++v) {
    if (compact_id[v] == kNullNode) continue;
    const BNode<K>& nd = b.pool[v];
    auto child = [&](uint32_t c) {
      return b.pool[c].is_leaf() ? leaf_root[c] : compact_id[c];
    };
    t.nodes_[compact_id[v]].left = child(nd.left);
    t.nodes_[compact_id[v]].right = child(nd.right);
  }
  t.root_ = b.pool[b.root].is_leaf() ? leaf_root[b.root] : compact_id[b.root];

  // Count augmentation: leaf-subtree roots already carry begin/end/box from
  // build_recursive; fill the interior skeleton bottom-up (min/max of the
  // children's slices is robust to child order, box is their union). Derived
  // bookkeeping over already-charged nodes — uncounted like the other
  // skeleton passes.
  if (t.root_ != kNullNode) {
    auto fill = [&](auto&& self, uint32_t v) -> void {
      auto& nd = t.nodes_[v];
      if (nd.is_leaf()) return;
      self(self, nd.left);
      self(self, nd.right);
      const auto& l = t.nodes_[nd.left];
      const auto& r = t.nodes_[nd.right];
      nd.begin = std::min(l.begin, r.begin);
      nd.end = std::max(l.end, r.end);
      auto bx = l.box;
      bx.extend(r.box);
      nd.box = bx;
    };
    fill(fill, t.root_);
  }

  if (stats) {
    stats->cost = region.delta();
    stats->height = t.height();
    stats->nodes = t.nodes_.size();
    stats->settles = b.settles.load();
    stats->max_settle_buffer = b.max_settle_buffer.load();
  }
  return t;
}

template class PBatchedBuilder<2>;
template class PBatchedBuilder<3>;

}  // namespace kdtree
