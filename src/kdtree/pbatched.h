// The p-batched incremental k-d tree construction (Section 6.1, Figure 2,
// Theorem 6.1).
//
// Classic construction writes every point once per level (Θ(n log n)
// writes). The p-batched variant instead inserts points incrementally with
// prefix doubling; each leaf *buffers* up to p points, and only when a leaf
// overflows is it settled: the buffered points are split by their median
// (recursively while a side still exceeds p). Each point is therefore
// written O(1) times amortized: once into a buffer, and O(p) settle writes
// are paid for by >= p/2 buffered points per created leaf, giving O(n)
// writes total. Lemma 6.2: p = Omega(log^3 n) keeps the tree height at
// log2 n + O(1) whp, preserving the O(n^((k-1)/k)) range query bound;
// p = Omega(log n) suffices for ANN.
//
// Rounds proceed as in Figure 2: (a) every round point locates its leaf by
// descending the current splits (reads only), (b) points are semisorted by
// leaf, (c) groups are appended to leaf buffers and overflowed leaves are
// settled in parallel. After the last round, leaves with non-empty buffers
// finish their subtrees inside the symmetric memory (small-memory size
// Omega(p)), charging only the O(p) input reads / output writes.
#pragma once

#include "src/kdtree/kdtree.h"

namespace weg::kdtree {

// Splitter selection (Section 6.3): the p-batched technique applies to any
// heuristic that is linear in the object set — the splitter is computed from
// the <= O(p) buffered objects only.
//  * kMedianCycling — exact median, dimensions cycled (the Section 6.1
//    default; Lemma 6.1's range-query analysis assumes it);
//  * kLongestDim    — median along the buffer's longest extent (classic
//    spatial-median variant);
//  * kSurfaceAreaHeuristic — the SAH of [30]: minimize
//    SA(left bbox)*|left| + SA(right bbox)*|right| over candidate split
//    positions along the longest dimension, evaluated on the buffer.
enum class SplitRule { kMedianCycling, kLongestDim, kSurfaceAreaHeuristic };

template <int K>
class PBatchedBuilder {
 public:
  using Point = geom::PointK<K>;

  // Builds the tree over `points` (already in random order, as the paper
  // assumes). `p` is the buffer capacity; 0 selects log^3 n automatically.
  static KdTree<K> build(const std::vector<Point>& points, size_t p = 0,
                         size_t leaf_size = 8, BuildStats* stats = nullptr,
                         SplitRule rule = SplitRule::kMedianCycling);
};

using PBatched2 = PBatchedBuilder<2>;
using PBatched3 = PBatchedBuilder<3>;

}  // namespace weg::kdtree
