#include "src/kdtree/dynamic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <utility>

#include "src/parallel/fault.h"
#include "src/parallel/par_build.h"
#include "src/primitives/random.h"

namespace weg::kdtree {

namespace {

// A record or query point with a NaN/inf coordinate breaks every comparison
// the traversals rely on; bulk mutation paths reject such records before the
// first write, and query paths define the result (empty / nullopt) instead.
template <int K>
bool finite_point(const geom::PointK<K>& p) {
  for (int d = 0; d < K; ++d) {
    if (!std::isfinite(p[d])) return false;
  }
  return true;
}

// Shared pre-mutation validation of a bulk batch: one charged scan.
template <int K>
Status check_points(const std::vector<geom::PointK<K>>& pts, const char* op) {
  asym::count_read(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    if (!finite_point<K>(pts[i])) {
      return Status::InvalidArgument(std::string(op) +
                                     ": non-finite coordinate at record " +
                                     std::to_string(i));
    }
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// LogForest
// ---------------------------------------------------------------------------

template <int K>
KdTree<K> LogForest<K>::build(std::vector<Point> pts) {
  // Below this size the classic builder is cheaper (few levels, and the
  // p-batched machinery has per-batch overheads); the write savings of the
  // p-batched builder only materialize on the large levels, which dominate
  // the forest's total cost anyway.
  constexpr size_t kPBatchedThreshold = 512;
  if (mode_ == RebuildMode::kPBatched && pts.size() >= kPBatchedThreshold) {
    // The p-batched constructor expects a random insertion order; shuffle in
    // one linear pass (counted).
    asym::count_read(pts.size());
    asym::count_write(pts.size());
    primitives::Rng rng(0x5eedULL + pts.size());
    primitives::shuffle(pts, rng);
    return PBatchedBuilder<K>::build(pts, /*p=*/0, leaf_size_);
  }
  return KdTree<K>::build_classic(std::move(pts), leaf_size_);
}

template <int K>
void LogForest<K>::insert(const Point& p) {
  // Gather the carry chain: level 0, 1, ... while occupied.
  std::vector<Point> pts{p};
  asym::count_write();
  size_t lvl = 0;
  while (lvl < levels_.size() && levels_[lvl].used) {
    Level& L = levels_[lvl];
    asym::count_read(L.tree.size());
    for (size_t i = 0; i < L.tree.size(); ++i) {
      if (L.alive[i]) pts.push_back(L.tree.points()[i]);
    }
    dead_ -= L.dead;
    L = Level{};
    ++lvl;
  }
  if (lvl >= levels_.size()) levels_.resize(lvl + 1);
  Level& dst = levels_[lvl];
  dst.tree = build(std::move(pts));
  dst.alive.assign(dst.tree.size(), 1);
  dst.dead = 0;
  dst.used = true;
  ++live_;
}

template <int K>
Status LogForest<K>::bulk_insert(const std::vector<Point>& points) {
  if (points.empty()) return Status::Ok();
  Status s = check_points<K>(points, "bulk_insert");
  if (!s.ok()) return s;
  // Allocation fault point: index = the batch's node demand.
  if (fault::should_fail("alloc", points.size())) {
    return fault::injected("alloc", points.size());
  }
  std::vector<Point> pts = points;
  asym::count_write(pts.size());
  // Absorb the occupied prefix (as a chain of single inserts would) plus any
  // occupied level whose nominal capacity 2^lvl is below the batch size, so
  // the merged tree lands at a level that can hold it.
  size_t lvl = 0;
  while ((lvl < levels_.size() && levels_[lvl].used) ||
         (size_t{1} << lvl) < pts.size()) {
    if (lvl < levels_.size() && levels_[lvl].used) {
      Level& L = levels_[lvl];
      asym::count_read(L.tree.size());
      for (size_t i = 0; i < L.tree.size(); ++i) {
        if (L.alive[i]) pts.push_back(L.tree.points()[i]);
      }
      dead_ -= L.dead;
      L = Level{};
    }
    ++lvl;
  }
  if (lvl >= levels_.size()) levels_.resize(lvl + 1);
  Level& dst = levels_[lvl];
  dst.tree = build(std::move(pts));
  dst.alive.assign(dst.tree.size(), 1);
  dst.dead = 0;
  dst.used = true;
  live_ += points.size();
  return Status::Ok();
}

template <int K>
bool LogForest<K>::erase_mark(const Point& p) {
  for (Level& L : levels_) {
    if (!L.used) continue;
    size_t i = L.tree.find(p);  // O(log n) descent
    if (i == SIZE_MAX || !L.alive[i]) continue;
    asym::count_write();
    L.alive[i] = 0;
    ++L.dead;
    ++dead_;
    --live_;
    return true;
  }
  return false;
}

template <int K>
void LogForest<K>::maybe_compact() {
  if (dead_ * 2 >= live_ + dead_ && live_ + dead_ > 8) {
    rebuild_from(flatten_alive());
  }
}

template <int K>
bool LogForest<K>::erase(const Point& p) {
  if (!erase_mark(p)) return false;
  maybe_compact();
  return true;
}

template <int K>
Expected<size_t> LogForest<K>::bulk_erase(const std::vector<Point>& pts) {
  Status s = check_points<K>(pts, "bulk_erase");
  if (!s.ok()) return s;
  size_t erased = 0;
  for (const Point& p : pts) {
    if (erase_mark(p)) ++erased;
  }
  if (erased > 0) maybe_compact();
  return erased;
}

template <int K>
std::vector<typename LogForest<K>::Point> LogForest<K>::flatten_alive() const {
  std::vector<Point> out;
  out.reserve(live_);
  for (const Level& L : levels_) {
    if (!L.used) continue;
    asym::count_read(L.tree.size());
    for (size_t i = 0; i < L.tree.size(); ++i) {
      if (L.alive[i]) out.push_back(L.tree.points()[i]);
    }
  }
  asym::count_write(out.size());
  return out;
}

template <int K>
void LogForest<K>::rebuild_from(std::vector<Point> pts) {
  levels_.clear();
  live_ = pts.size();
  dead_ = 0;
  if (pts.empty()) return;
  size_t lvl = 0;
  while ((size_t{1} << (lvl + 1)) <= pts.size()) ++lvl;
  levels_.resize(lvl + 1);
  Level& dst = levels_[lvl];
  dst.tree = build(std::move(pts));
  dst.alive.assign(dst.tree.size(), 1);
  dst.used = true;
}

namespace {

// Forest range visitors with the level-covered hook: a dead-free level whose
// subtree box is inside the query hands its slice over wholesale (see
// LogForest::range_visit). The counting hook is O(1); the reporting hooks
// bulk-copy the slice (one read + one write per reported point, no
// containment tests).
template <typename Point>
struct ForestCountVisitor {
  size_t count = 0;
  void operator()(const Point&) { ++count; }
  void covered(const std::vector<Point>&, size_t b, size_t e) {
    count += e - b;
  }
};

template <typename Point>
struct ForestReportAppendVisitor {
  std::vector<Point>* out;
  void operator()(const Point& p) {
    asym::count_write();
    out->push_back(p);
  }
  void covered(const std::vector<Point>& pts, size_t b, size_t e) {
    asym::count_read(e - b);
    asym::count_write(e - b);
    out->insert(out->end(), pts.begin() + static_cast<long>(b),
                pts.begin() + static_cast<long>(e));
  }
};

template <typename Point>
struct ForestReportIntoVisitor {
  Point* out;
  void operator()(const Point& p) {
    asym::count_write();
    *out++ = p;
  }
  void covered(const std::vector<Point>& pts, size_t b, size_t e) {
    asym::count_read(e - b);
    asym::count_write(e - b);
    out = std::copy(pts.begin() + static_cast<long>(b),
                    pts.begin() + static_cast<long>(e), out);
  }
};

}  // namespace

template <int K>
size_t LogForest<K>::range_count(const Box& query,
                                 const QueryOptions& opts) const {
  ForestCountVisitor<Point> vis;
  range_visit(query, vis, opts);
  return vis.count;
}

template <int K>
std::vector<typename LogForest<K>::Point> LogForest<K>::range_report(
    const Box& query, const QueryOptions& opts) const {
  std::vector<Point> out;
  ForestReportAppendVisitor<Point> vis{&out};
  range_visit(query, vis, opts);
  return out;
}

template <int K>
std::vector<size_t> LogForest<K>::range_count_batch(
    const std::vector<Box>& qs, const QueryOptions& opts) const {
  detail::BatchStatsScope bs(qs.size(), opts);
  return parallel::batch_map<size_t>(
      qs.size(), [&](size_t i) { return range_count(qs[i], bs.at(i)); });
}

template <int K>
parallel::BatchResult<typename LogForest<K>::Point>
LogForest<K>::range_report_batch(const std::vector<Box>& qs,
                                 const QueryOptions& opts) const {
  detail::BatchStatsScope bs(qs.size(), opts);
  // Stats from the count pass are not double-counted: only the report pass
  // feeds the per-query slots.
  QueryOptions count_opts = opts;
  count_opts.stats = nullptr;
  return parallel::batch_two_phase<Point>(
      qs.size(), [&](size_t i) { return range_count(qs[i], count_opts); },
      [&](size_t i, Point* out) {
        ForestReportIntoVisitor<Point> vis{out};
        range_visit(qs[i], vis, bs.at(i));
      });
}

template <int K>
std::vector<std::optional<typename LogForest<K>::Point>>
LogForest<K>::ann_batch(const std::vector<Point>& qs, double eps,
                        const QueryOptions& opts) const {
  detail::BatchStatsScope bs(qs.size(), opts);
  return parallel::batch_map<std::optional<Point>>(
      qs.size(), [&](size_t i) { return ann(qs[i], eps, bs.at(i)); });
}

template <int K>
std::optional<typename LogForest<K>::Point> LogForest<K>::ann(
    const Point& q, double eps, const QueryOptions& opts) const {
  if (!finite_point<K>(q)) return std::nullopt;
  std::optional<Point> best;
  double best_sq = std::numeric_limits<double>::infinity();
  for (const Level& L : levels_) {
    if (!L.used) continue;
    if (L.dead == 0) {
      size_t idx = L.tree.ann(q, eps, opts);
      if (idx == SIZE_MAX) continue;
      double d2 = geom::squared_distance(L.tree.points()[idx], q);
      // Canonical (distance, coordinates) order on cross-level ties.
      if (d2 < best_sq || (d2 == best_sq && best &&
                           L.tree.points()[idx].coords < best->coords)) {
        best_sq = d2;
        best = L.tree.points()[idx];
      }
    } else {
      // With dead points, fall back to k-NN enumeration until a live point
      // is found (dead fraction < 1/2, so expected O(1) extra candidates).
      const auto& pts = L.tree.points();
      size_t k = 2;
      while (k < 2 * pts.size()) {
        auto cand = L.tree.knn(q, k, opts);
        bool found = false;
        for (size_t idx : cand) {
          if (L.alive[idx]) {
            double d2 = geom::squared_distance(pts[idx], q);
            if (d2 < best_sq ||
                (d2 == best_sq && best && pts[idx].coords < best->coords)) {
              best_sq = d2;
              best = pts[idx];
            }
            found = true;
            break;
          }
        }
        if (found || cand.size() < k) break;
        k *= 2;
      }
    }
  }
  return best;
}

template <int K>
std::vector<std::pair<double, typename LogForest<K>::Point>>
LogForest<K>::knn_candidates(const Point& q, size_t k,
                             const QueryOptions& opts) const {
  std::vector<std::pair<double, Point>> cand;
  if (k == 0 || live_ == 0 || !finite_point<K>(q)) return cand;
  for (const Level& L : levels_) {
    if (!L.used) continue;
    const auto& pts = L.tree.points();
    if (L.dead == 0) {
      for (size_t idx : L.tree.knn(q, k, opts)) {
        cand.emplace_back(geom::squared_distance(pts[idx], q), pts[idx]);
      }
      continue;
    }
    // Dead points present: enumerate with doubling k until the level yields
    // its min(k, live-here) nearest live points (dead fraction < 1/2, so
    // expected O(1) doubling rounds).
    size_t live_here = pts.size() - L.dead;
    size_t want = std::min(k, live_here);
    if (want == 0) continue;
    size_t kk = k;
    while (true) {
      auto res = L.tree.knn(q, kk, opts);
      std::vector<size_t> live_idx;
      for (size_t idx : res) {
        if (L.alive[idx]) live_idx.push_back(idx);
      }
      if (live_idx.size() >= want || res.size() == pts.size()) {
        for (size_t j = 0; j < want; ++j) {
          size_t idx = live_idx[j];
          cand.emplace_back(geom::squared_distance(pts[idx], q), pts[idx]);
        }
        break;
      }
      kk *= 2;
    }
  }
  // Canonical order: (squared distance, coordinates lexicographic). Distance
  // ties between bitwise-identical points are order-irrelevant; ties between
  // distinct points are broken by coordinates so every fanout agrees.
  std::sort(cand.begin(), cand.end(),
            [](const std::pair<double, Point>& a,
               const std::pair<double, Point>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.coords < b.second.coords;
            });
  size_t per = std::min(k, live_);
  if (cand.size() > per) cand.resize(per);
  return cand;
}

template <int K>
std::vector<typename LogForest<K>::Point> LogForest<K>::knn(
    const Point& q, size_t k, const QueryOptions& opts) const {
  auto cand = knn_candidates(q, k, opts);
  std::vector<Point> out;
  out.reserve(cand.size());
  asym::count_write(cand.size());
  for (const auto& [d2, p] : cand) out.push_back(p);
  return out;
}

template <int K>
parallel::BatchResult<typename LogForest<K>::Point> LogForest<K>::knn_batch(
    const std::vector<Point>& qs, size_t k, const QueryOptions& opts) const {
  // A finite query returns exactly min(k, live) neighbors, so the count
  // pass is nearly free: slice sizes are a function of k, the forest, and
  // the query's finiteness alone (a non-finite query yields an empty slice,
  // matching knn_candidates' guard).
  size_t per = std::min(k, live_);
  detail::BatchStatsScope bs(qs.size(), opts);
  return parallel::batch_two_phase<Point>(
      qs.size(),
      [&](size_t i) { return finite_point<K>(qs[i]) ? per : size_t{0}; },
      [&](size_t i, Point* out) {
        if (per == 0 || !finite_point<K>(qs[i])) return;
        auto cand = knn_candidates(qs[i], k, bs.at(i));
        asym::count_write(cand.size());
        for (const auto& [d2, p] : cand) *out++ = p;
      });
}

template <int K>
size_t LogForest<K>::num_trees() const {
  size_t c = 0;
  for (const Level& L : levels_) c += L.used ? 1 : 0;
  return c;
}

// ---------------------------------------------------------------------------
// DynamicKdTree (single-tree version)
// ---------------------------------------------------------------------------

template <int K>
double DynamicKdTree<K>::imbalance_tolerance() const {
  if (mode_ == Mode::kAnnOnly) return 0.40;  // constant-factor imbalance
  // O(1/log n) imbalance keeps the height at log2 n + O(1) (Lemma 6.2's
  // regime applied to rebalancing).
  double lg = std::log2(static_cast<double>(std::max<size_t>(live_, 4)));
  return std::min(0.40, 1.0 / lg);
}

template <int K>
uint32_t DynamicKdTree<K>::alloc_node() {
  if (!free_list_.empty()) {
    uint32_t v = free_list_.back();
    free_list_.pop_back();
    pool_[v] = Node{};
    return v;
  }
  pool_.push_back(Node{});
  return static_cast<uint32_t>(pool_.size() - 1);
}

template <int K>
void DynamicKdTree<K>::free_subtree(uint32_t v) {
  if (v == kNullNode) return;
  free_subtree(pool_[v].left);
  free_subtree(pool_[v].right);
  pool_[v] = Node{};
  free_list_.push_back(v);
}

template <int K>
std::vector<typename DynamicKdTree<K>::Point> DynamicKdTree<K>::live_points()
    const {
  std::vector<Point> out;
  out.reserve(live_);
  collect_alive(root_, out);
  asym::count_write(out.size());
  return out;
}

template <int K>
void DynamicKdTree<K>::collect_alive(uint32_t v,
                                     std::vector<Point>& out) const {
  if (v == kNullNode) return;
  const Node& nd = pool_[v];
  asym::count_read();
  if (nd.is_leaf()) {
    asym::count_read(nd.leaf_pts.size());
    for (const auto& [pt, alive] : nd.leaf_pts) {
      if (alive) out.push_back(pt);
    }
    return;
  }
  collect_alive(nd.left, out);
  collect_alive(nd.right, out);
}

template <int K>
uint32_t DynamicKdTree<K>::rebuild_subtree(std::vector<Point>& pts, size_t lo,
                                           size_t hi, int depth) {
  // Pre-claim every slot of the reconstruction (exact: the median-split
  // recursion's node count is a function of the point count alone), so the
  // recursion below never touches pool_'s allocator and sibling subtrees can
  // fork. Slot assignment is deterministic at every worker count.
  std::vector<uint32_t> ids = parallel::claim_build_slots(
      pool_, free_list_, classic_node_count(hi - lo, leaf_size_));
  return rebuild_subtree_ids(pts, lo, hi, depth, ids.data());
}

template <int K>
uint32_t DynamicKdTree<K>::rebuild_subtree_ids(std::vector<Point>& pts,
                                               size_t lo, size_t hi, int depth,
                                               const uint32_t* ids) {
  // Pre-order slice: ids[0] is this node, the left subtree's slice follows,
  // then the right's (offset by the left's size-determined node count).
  uint32_t id = ids[0];
  Node& nd_init = pool_[id];
  nd_init.depth = depth;
  size_t m = hi - lo;
  nd_init.live = nd_init.total = static_cast<uint32_t>(m);
  if (m <= leaf_size_) {
    asym::count_write(m);
    auto& nd = pool_[id];
    nd.leaf_pts.reserve(m);
    // Exact box of the just-written leaf contents (derived bookkeeping over
    // data already charged above, uncounted).
    Box bx = Box::empty();
    for (size_t i = lo; i < hi; ++i) {
      nd.leaf_pts.emplace_back(pts[i], true);
      bx.extend(pts[i]);
    }
    nd.box = bx;
    return id;
  }
  int dim = depth % K;
  size_t mid = lo + m / 2;
  asym::count_read(m);
  asym::count_write(m);
  std::nth_element(
      pts.begin() + static_cast<long>(lo), pts.begin() + static_cast<long>(mid),
      pts.begin() + static_cast<long>(hi),
      [dim](const Point& a, const Point& b) { return a[dim] < b[dim]; });
  pool_[id].dim = dim;
  pool_[id].split = pts[mid][dim];
  const uint32_t* lids = ids + 1;
  const uint32_t* rids = lids + classic_node_count(m / 2, leaf_size_);
  uint32_t l = kNullNode, r = kNullNode;
  parallel::par_do_if(
      m > parallel::kSeqCutoff,
      [&] { l = rebuild_subtree_ids(pts, lo, mid, depth + 1, lids); },
      [&] { r = rebuild_subtree_ids(pts, mid, hi, depth + 1, rids); });
  pool_[id].left = l;
  pool_[id].right = r;
  // Exact box: union of the freshly built children's (uncounted
  // bookkeeping, like the slice boxes of the static builders).
  Box bx = pool_[l].box;
  bx.extend(pool_[r].box);
  pool_[id].box = bx;
  return id;
}

template <int K>
void DynamicKdTree<K>::maybe_rebalance(const std::vector<uint32_t>& path) {
  // Find the highest node on the path whose children's live weights differ
  // beyond the tolerance (or with too many dead points), and reconstruct it.
  for (uint32_t v : path) {
    const Node& nd = pool_[v];
    if (nd.is_leaf()) break;
    if (interior_violated(nd)) {
      ++rebuilds_;
      std::vector<Point> pts;
      pts.reserve(nd.live);
      collect_alive(v, pts);
      int depth = nd.depth;
      // Find parent link.
      uint32_t parent = kNullNode;
      int side = -1;
      for (uint32_t u : path) {
        if (u == v) break;
        parent = u;
      }
      if (parent != kNullNode) {
        side = (pool_[parent].left == v) ? 0 : 1;
      }
      free_subtree(v);
      uint32_t fresh =
          pts.empty()
              ? alloc_node()  // empty leaf placeholder
              : rebuild_subtree(pts, 0, pts.size(), depth);
      if (pts.empty()) pool_[fresh].depth = depth;
      if (parent == kNullNode) {
        root_ = fresh;
      } else if (side == 0) {
        pool_[parent].left = fresh;
      } else {
        pool_[parent].right = fresh;
      }
      return;  // only the topmost violated node is reconstructed
    }
  }
}

template <int K>
void DynamicKdTree<K>::insert(const Point& p) {
  ++live_;
  if (root_ == kNullNode) {
    root_ = alloc_node();
    pool_[root_].leaf_pts.emplace_back(p, true);
    pool_[root_].live = pool_[root_].total = 1;
    pool_[root_].box.extend(p);
    asym::count_write();
    return;
  }
  std::vector<uint32_t> path;
  uint32_t cur = root_;
  while (true) {
    path.push_back(cur);
    Node& nd = pool_[cur];
    asym::count_read();
    asym::count_write();  // subtree weight update (box rides the same write)
    ++nd.live;
    ++nd.total;
    nd.box.extend(p);
    if (nd.is_leaf()) break;
    cur = p[nd.dim] < nd.split ? nd.left : nd.right;
  }
  Node& leaf = pool_[cur];
  asym::count_write();
  leaf.leaf_pts.emplace_back(p, true);
  if (leaf.leaf_pts.size() > leaf_size_) {
    // Split the leaf by the median of its (live and dead) points.
    std::vector<std::pair<Point, bool>> pts;
    pts.swap(leaf.leaf_pts);
    int dim = leaf.depth % K;
    size_t mid = pts.size() / 2;
    asym::count_read(pts.size());
    asym::count_write(pts.size());
    std::nth_element(pts.begin(), pts.begin() + static_cast<long>(mid),
                     pts.end(), [dim](const auto& a, const auto& b) {
                       return a.first[dim] < b.first[dim];
                     });
    uint32_t l = alloc_node();
    uint32_t r = alloc_node();
    Node& nd = pool_[cur];  // re-fetch (alloc_node may reallocate the pool)
    nd.dim = dim;
    nd.split = pts[mid].first[dim];
    nd.left = l;
    nd.right = r;
    pool_[l].depth = nd.depth + 1;
    pool_[r].depth = nd.depth + 1;
    auto fill = [&](uint32_t child, size_t lo, size_t hi) {
      Node& c = pool_[child];
      c.leaf_pts.assign(pts.begin() + static_cast<long>(lo),
                        pts.begin() + static_cast<long>(hi));
      c.total = static_cast<uint32_t>(hi - lo);
      c.live = 0;
      Box bx = Box::empty();
      for (size_t i = lo; i < hi; ++i) {
        c.live += pts[i].second ? 1 : 0;
        bx.extend(pts[i].first);  // dead points included: conservative
      }
      c.box = bx;
    };
    fill(l, 0, mid);
    fill(r, mid, pts.size());
  }
  maybe_rebalance(path);
}

template <int K>
bool DynamicKdTree<K>::erase_mark(const Point& p,
                                  std::vector<uint32_t>* path_out) {
  if (root_ == kNullNode) return false;
  // Recursive locate that explores both sides when p lies exactly on a
  // splitting hyperplane (partitioning does not fix the side of ties).
  std::vector<uint32_t> path;
  auto rec = [&](auto&& self, uint32_t v) -> bool {
    path.push_back(v);
    Node& nd = pool_[v];
    asym::count_read();
    if (nd.is_leaf()) {
      for (auto& [pt, alive] : nd.leaf_pts) {
        asym::count_read();
        if (alive && pt == p) {
          asym::count_write();
          alive = false;
          return true;
        }
      }
      path.pop_back();
      return false;
    }
    bool found;
    if (p[nd.dim] < nd.split) {
      found = self(self, nd.left);
    } else if (p[nd.dim] > nd.split) {
      found = self(self, nd.right);
    } else {
      found = self(self, nd.left);
      if (!found) found = self(self, nd.right);
    }
    if (!found) path.pop_back();
    return found;
  };
  if (!rec(rec, root_)) return false;
  --live_;
  ++dead_;
  for (uint32_t v : path) {
    asym::count_write();
    --pool_[v].live;
  }
  if (path_out != nullptr) *path_out = std::move(path);
  return true;
}

template <int K>
bool DynamicKdTree<K>::erase(const Point& p) {
  std::vector<uint32_t> path;
  if (!erase_mark(p, &path)) return false;
  maybe_rebalance(path);
  return true;
}

template <int K>
Status DynamicKdTree<K>::bulk_insert(const std::vector<Point>& pts) {
  if (pts.empty()) return Status::Ok();
  Status s = check_points<K>(pts, "bulk_insert");
  if (!s.ok()) return s;
  // Allocation fault point: index = the batch's node demand.
  if (fault::should_fail("alloc", pts.size())) {
    return fault::injected("alloc", pts.size());
  }
  asym::count_read(pts.size());
  if (root_ == kNullNode) {
    live_ += pts.size();
    std::vector<Point> copy = pts;
    root_ = rebuild_subtree(copy, 0, copy.size(), 0);
    return Status::Ok();
  }
  live_ += pts.size();
  // Route every point to its leaf buffer, maintaining the live/total weights
  // along the path exactly as insert() does — but with no per-element leaf
  // split or rebalance; the single restructuring pass below repairs every
  // violated subtree through the shared pre-claim slot path. Routing cannot
  // allocate, so pool ids are stable and the touched flags index the pool.
  std::vector<uint8_t> touched(pool_.size(), 0);
  for (const Point& p : pts) {
    uint32_t cur = root_;
    while (true) {
      Node& nd = pool_[cur];
      touched[cur] = 1;
      asym::count_read();
      asym::count_write();  // subtree weight update (box rides the same write)
      ++nd.live;
      ++nd.total;
      nd.box.extend(p);
      if (nd.is_leaf()) break;
      cur = p[nd.dim] < nd.split ? nd.left : nd.right;
    }
    asym::count_write();
    pool_[cur].leaf_pts.emplace_back(p, true);
  }
  root_ = restructure_rec(root_, touched);
  return Status::Ok();
}

template <int K>
Expected<size_t> DynamicKdTree<K>::bulk_erase(const std::vector<Point>& pts) {
  Status s = check_points<K>(pts, "bulk_erase");
  if (!s.ok()) return s;
  if (root_ == kNullNode) return size_t{0};
  std::vector<uint8_t> touched(pool_.size(), 0);
  size_t erased = 0;
  std::vector<uint32_t> path;
  for (const Point& p : pts) {
    path.clear();
    if (!erase_mark(p, &path)) continue;
    ++erased;
    for (uint32_t v : path) touched[v] = 1;
  }
  if (erased > 0) root_ = restructure_rec(root_, touched);
  return erased;
}

template <int K>
bool DynamicKdTree<K>::interior_violated(const Node& nd) const {
  uint32_t l = pool_[nd.left].live, r = pool_[nd.right].live;
  uint32_t total_live = l + r;
  double tol = imbalance_tolerance();
  bool unbalanced =
      total_live > 2 * leaf_size_ &&
      (std::max(l, r) >
       static_cast<uint32_t>((0.5 + tol) * static_cast<double>(total_live)));
  bool too_dead = nd.total > 2 * nd.live && nd.total > 2 * leaf_size_;
  return unbalanced || too_dead;
}

template <int K>
uint32_t DynamicKdTree<K>::restructure_rec(
    uint32_t v, const std::vector<uint8_t>& touched) {
  // Untouched subtree: no weight changed below it, so no check can newly
  // fire — leave it (and its exact weights) alone.
  if (!touched[v]) return v;
  asym::count_read();
  bool violated;
  int depth = pool_[v].depth;
  if (pool_[v].is_leaf()) {
    violated = pool_[v].leaf_pts.size() > leaf_size_;
  } else {
    violated = interior_violated(pool_[v]);
  }
  if (violated) {
    std::vector<Point> pts;
    pts.reserve(pool_[v].live);
    collect_alive(v, pts);
    free_subtree(v);
    ++rebuilds_;
    if (pts.empty()) {
      uint32_t fresh = alloc_node();  // empty leaf placeholder
      pool_[fresh].depth = depth;
      return fresh;
    }
    return rebuild_subtree(pts, 0, pts.size(), depth);
  }
  if (!pool_[v].is_leaf()) {
    uint32_t l = pool_[v].left, r = pool_[v].right;
    uint32_t nl = restructure_rec(l, touched);
    uint32_t nr = restructure_rec(r, touched);
    // Re-fetch through pool_ (the child rebuilds may reallocate it) and
    // refresh the weights from the children: a descendant rebuild drops its
    // dead points, and keeping ancestor totals exact stops the too_dead
    // check from re-firing forever on stale counts.
    Node& nd = pool_[v];
    nd.left = nl;
    nd.right = nr;
    asym::count_write();
    nd.live = pool_[nl].live + pool_[nr].live;
    nd.total = pool_[nl].total + pool_[nr].total;
    // Box refresh rides the same weight write: rebuilt children carry exact
    // boxes, so the union tightens ancestors instead of growing forever.
    Box bx = pool_[nl].box;
    bx.extend(pool_[nr].box);
    nd.box = bx;
  }
  return v;
}

template <int K>
template <typename V>
void DynamicKdTree<K>::range_visit(const Box& query, V&& vis,
                                   const QueryOptions& opts) const {
  if (root_ == kNullNode) return;
  auto rec = [&](auto&& self, uint32_t v) -> void {
    const Node& nd = pool_[v];
    if (opts.stats) ++opts.stats->nodes_visited;
    asym::count_read();
    if constexpr (requires { vis.covered(size_t{}); }) {
      // The node box bounds every live point of the subtree, so full
      // coverage answers the subtree with its live weight in O(1) —
      // counting only (a reporting slice copy would resurrect dead points).
      if (opts.count_fast_path && nd.box.inside(query)) {
        if (opts.stats) ++opts.stats->covered_subtrees;
        vis.covered(static_cast<size_t>(nd.live));
        return;
      }
    }
    if (nd.is_leaf()) {
      for (const auto& [pt, alive] : nd.leaf_pts) {
        asym::count_read();
        if (opts.stats) ++opts.stats->points_scanned;
        if (alive && query.contains(pt)) vis(pt);
      }
      return;
    }
    if (query.lo[nd.dim] <= nd.split) self(self, nd.left);
    if (query.hi[nd.dim] >= nd.split) self(self, nd.right);
  };
  rec(rec, root_);
}

namespace {

// Counting visitor for DynamicKdTree::range_visit: covered subtrees
// contribute their live weight without a descent.
template <typename Point>
struct DynCountVisitor {
  size_t count = 0;
  void operator()(const Point&) { ++count; }
  void covered(size_t live) { count += live; }
};

}  // namespace

template <int K>
size_t DynamicKdTree<K>::range_count(const Box& query,
                                     const QueryOptions& opts) const {
  DynCountVisitor<Point> vis;
  range_visit(query, vis, opts);
  return vis.count;
}

template <int K>
std::vector<typename DynamicKdTree<K>::Point> DynamicKdTree<K>::range_report(
    const Box& query, const QueryOptions& opts) const {
  std::vector<Point> out;
  range_visit(
      query,
      [&](const Point& pt) {
        asym::count_write();
        out.push_back(pt);
      },
      opts);
  return out;
}

template <int K>
std::vector<size_t> DynamicKdTree<K>::range_count_batch(
    const std::vector<Box>& qs, const QueryOptions& opts) const {
  detail::BatchStatsScope bs(qs.size(), opts);
  return parallel::batch_map<size_t>(
      qs.size(), [&](size_t i) { return range_count(qs[i], bs.at(i)); });
}

template <int K>
parallel::BatchResult<typename DynamicKdTree<K>::Point>
DynamicKdTree<K>::range_report_batch(const std::vector<Box>& qs,
                                     const QueryOptions& opts) const {
  detail::BatchStatsScope bs(qs.size(), opts);
  QueryOptions count_opts = opts;
  count_opts.stats = nullptr;
  return parallel::batch_two_phase<Point>(
      qs.size(), [&](size_t i) { return range_count(qs[i], count_opts); },
      [&](size_t i, Point* out) {
        QueryOptions o = bs.at(i);
        range_visit(
            qs[i],
            [&](const Point& pt) {
              asym::count_write();
              *out++ = pt;
            },
            o);
      });
}

template <int K>
std::vector<std::optional<typename DynamicKdTree<K>::Point>>
DynamicKdTree<K>::ann_batch(const std::vector<Point>& qs, double eps,
                            const QueryOptions& opts) const {
  detail::BatchStatsScope bs(qs.size(), opts);
  return parallel::batch_map<std::optional<Point>>(
      qs.size(), [&](size_t i) { return ann(qs[i], eps, bs.at(i)); });
}

template <int K>
std::optional<typename DynamicKdTree<K>::Point> DynamicKdTree<K>::ann(
    const Point& q, double eps, const QueryOptions& opts) const {
  if (root_ == kNullNode || live_ == 0 || !finite_point<K>(q)) {
    return std::nullopt;
  }
  double best_sq = std::numeric_limits<double>::infinity();
  std::optional<Point> best;
  double prune = 1.0 / ((1.0 + eps) * (1.0 + eps));
  Box all;
  for (int d = 0; d < K; ++d) {
    all.lo[d] = -std::numeric_limits<double>::infinity();
    all.hi[d] = std::numeric_limits<double>::infinity();
  }
  auto rec = [&](auto&& self, uint32_t v, Box region) -> void {
    if (region.squared_distance(q) > best_sq * prune) return;
    const Node& nd = pool_[v];
    if (opts.stats) ++opts.stats->nodes_visited;
    asym::count_read();
    // Tight-box short-circuit: the node box lower-bounds every live-point
    // distance in the subtree and is never looser than the split region.
    if (opts.count_fast_path &&
        nd.box.squared_distance(q) > best_sq * prune) {
      if (opts.stats) ++opts.stats->covered_subtrees;
      return;
    }
    if (nd.is_leaf()) {
      for (const auto& [pt, alive] : nd.leaf_pts) {
        asym::count_read();
        if (opts.stats) ++opts.stats->points_scanned;
        if (!alive) continue;
        double d2 = geom::squared_distance(pt, q);
        // Canonical (distance, coordinates) order on ties, matching the
        // static tree's visitors and the sharded top-1 merge.
        if (d2 < best_sq ||
            (d2 == best_sq && best && pt.coords < best->coords)) {
          best_sq = d2;
          best = pt;
        }
      }
      return;
    }
    Box lr = region, rr = region;
    lr.hi[nd.dim] = nd.split;
    rr.lo[nd.dim] = nd.split;
    if (q[nd.dim] <= nd.split) {
      self(self, nd.left, lr);
      self(self, nd.right, rr);
    } else {
      self(self, nd.right, rr);
      self(self, nd.left, lr);
    }
  };
  rec(rec, root_, all);
  return best;
}

template <int K>
std::vector<typename DynamicKdTree<K>::Point> DynamicKdTree<K>::knn(
    const Point& q, size_t k, const QueryOptions& opts) const {
  std::vector<Point> out;
  if (k == 0 || live_ == 0 || root_ == kNullNode || !finite_point<K>(q)) {
    return out;
  }
  // Max-heap of (distance^2, point) under the canonical (d2, coords) order,
  // matching the static tree's KnnVisitor and the sharded top-k merge.
  using Entry = std::pair<double, Point>;
  auto canon = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.coords < b.second.coords;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(canon)> heap(canon);
  size_t want = std::min(k, live_);
  auto bound = [&] {
    return heap.size() < want ? std::numeric_limits<double>::infinity()
                              : heap.top().first;
  };
  Box all;
  for (int d = 0; d < K; ++d) {
    all.lo[d] = -std::numeric_limits<double>::infinity();
    all.hi[d] = std::numeric_limits<double>::infinity();
  }
  auto rec = [&](auto&& self, uint32_t v, Box region) -> void {
    if (region.squared_distance(q) > bound()) return;
    const Node& nd = pool_[v];
    if (opts.stats) ++opts.stats->nodes_visited;
    asym::count_read();
    // Tight-box short-circuit (strict, so distance-tied candidates still
    // reach the heap and the canonical order decides).
    if (opts.count_fast_path && nd.box.squared_distance(q) > bound()) {
      if (opts.stats) ++opts.stats->covered_subtrees;
      return;
    }
    if (nd.is_leaf()) {
      for (const auto& [pt, alive] : nd.leaf_pts) {
        asym::count_read();
        if (opts.stats) ++opts.stats->points_scanned;
        if (!alive) continue;
        Entry e{geom::squared_distance(pt, q), pt};
        if (heap.size() < want) {
          heap.push(e);
        } else if (canon(e, heap.top())) {
          heap.push(e);
          heap.pop();
        }
      }
      return;
    }
    Box lr = region, rr = region;
    lr.hi[nd.dim] = nd.split;
    rr.lo[nd.dim] = nd.split;
    if (q[nd.dim] <= nd.split) {
      self(self, nd.left, lr);
      self(self, nd.right, rr);
    } else {
      self(self, nd.right, rr);
      self(self, nd.left, lr);
    }
  };
  rec(rec, root_, all);
  out.resize(heap.size());
  asym::count_write(out.size());
  for (size_t i = out.size(); i-- > 0;) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

template <int K>
parallel::BatchResult<typename DynamicKdTree<K>::Point>
DynamicKdTree<K>::knn_batch(const std::vector<Point>& qs, size_t k,
                            const QueryOptions& opts) const {
  // A finite query returns exactly min(k, live) neighbors, so the count
  // pass is nearly free (mirrors LogForest::knn_batch).
  size_t per = std::min(k, live_);
  detail::BatchStatsScope bs(qs.size(), opts);
  return parallel::batch_two_phase<Point>(
      qs.size(),
      [&](size_t i) { return finite_point<K>(qs[i]) ? per : size_t{0}; },
      [&](size_t i, Point* out) {
        if (per == 0 || !finite_point<K>(qs[i])) return;
        for (const Point& p : knn(qs[i], k, bs.at(i))) *out++ = p;
      });
}

template <int K>
size_t DynamicKdTree<K>::height() const {
  if (root_ == kNullNode) return 0;
  auto rec = [&](auto&& self, uint32_t v) -> size_t {
    const Node& nd = pool_[v];
    if (nd.is_leaf()) return 1;
    return 1 + std::max(self(self, nd.left), self(self, nd.right));
  };
  return rec(rec, root_);
}

template <int K>
bool DynamicKdTree<K>::validate() const {
  if (root_ == kNullNode) return live_ == 0;
  bool ok = true;
  size_t live_seen = 0;
  auto rec = [&](auto&& self, uint32_t v, Box region) -> uint32_t {
    const Node& nd = pool_[v];
    if (nd.is_leaf()) {
      uint32_t live = 0;
      for (const auto& [pt, alive] : nd.leaf_pts) {
        if (!region.contains(pt)) ok = false;
        if (alive) {
          // The covered fast path relies on the (conservative) node box
          // containing every live point of the subtree.
          if (!nd.box.contains(pt)) ok = false;
          ++live;
          ++live_seen;
        }
      }
      if (live != nd.live) ok = false;
      return live;
    }
    if (!pool_[nd.left].box.inside(nd.box) ||
        !pool_[nd.right].box.inside(nd.box))
      ok = false;
    Box lr = region, rr = region;
    lr.hi[nd.dim] = nd.split;
    rr.lo[nd.dim] = nd.split;
    uint32_t l = self(self, nd.left, lr);
    uint32_t r = self(self, nd.right, rr);
    if (l + r != nd.live) ok = false;
    return l + r;
  };
  Box all;
  for (int d = 0; d < K; ++d) {
    all.lo[d] = -std::numeric_limits<double>::infinity();
    all.hi[d] = std::numeric_limits<double>::infinity();
  }
  rec(rec, root_, all);
  return ok && live_seen == live_;
}

template class LogForest<2>;
template class LogForest<3>;
template class DynamicKdTree<2>;
template class DynamicKdTree<3>;

}  // namespace weg::kdtree
