#include "src/kdtree/kdtree.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "src/parallel/parallel_for.h"

namespace weg::kdtree {

namespace {
// Below this, build sequentially: shares the scheduler-wide cutoff tuned for
// the lock-free deque's fork cost.
constexpr size_t kSeqCutoff = parallel::kSeqCutoff;
}

size_t classic_node_count(size_t m, size_t leaf_size) {
  if (m <= leaf_size) return 1;
  // At recursion depth d every subtree holds floor(m/2^d) or that plus one
  // points, so a level is two (size, multiplicity) pairs. Walk levels until
  // both sizes fit a leaf, accumulating interior nodes; remaining pairs are
  // leaves.
  size_t total = 0;
  // sizes[0] = smaller size, sizes[1] = sizes[0] + 1 (multiplicity 0 if
  // absent).
  size_t size = m;
  uint64_t cnt_lo = 1, cnt_hi = 0;  // multiplicities of `size` and `size + 1`
  while (size > leaf_size || (cnt_hi > 0 && size + 1 > leaf_size)) {
    // Split every subtree still above the leaf threshold; subtrees already
    // at or below it become leaves now.
    uint64_t leaves_lo = size <= leaf_size ? cnt_lo : 0;
    uint64_t leaves_hi = (size + 1) <= leaf_size ? cnt_hi : 0;
    total += leaves_lo + leaves_hi;
    uint64_t split_lo = cnt_lo - leaves_lo;  // subtrees of `size` that split
    uint64_t split_hi = cnt_hi - leaves_hi;  // subtrees of `size+1` that split
    total += split_lo + split_hi;  // one interior node per split
    // size -> floor(size/2) + ceil(size/2); size+1 likewise.
    uint64_t nlo, nhi;
    size_t nsize;
    if (size % 2 == 0) {
      // size: {size/2, size/2}; size+1: {size/2, size/2 + 1}
      nsize = size / 2;
      nlo = 2 * split_lo + split_hi;
      nhi = split_hi;
    } else {
      // size: {size/2, size/2 + 1}; size+1: {size/2 + 1, size/2 + 1}
      nsize = size / 2;
      nlo = split_lo;
      nhi = split_lo + 2 * split_hi;
    }
    size = nsize;
    cnt_lo = nlo;
    cnt_hi = nhi;
    if (cnt_lo == 0) {  // renormalize so `size` always has multiplicity
      size += 1;
      cnt_lo = cnt_hi;
      cnt_hi = 0;
    }
    if (cnt_lo == 0 && cnt_hi == 0) break;
  }
  total += cnt_lo + cnt_hi;  // all remaining subtrees are leaves
  return total;
}

template <int K>
uint32_t KdTree<K>::build_recursive(size_t lo, size_t hi, int depth,
                                    size_t leaf_size, bool charge,
                                    uint32_t id_base) {
  assert(hi >= lo);
  uint32_t id = id_base;
  size_t m = hi - lo;
  if (m <= leaf_size) {
    if (charge) asym::count_write(m);  // write out the leaf contents
    nodes_[id] = Node{};
    nodes_[id].begin = static_cast<uint32_t>(lo);
    nodes_[id].end = static_cast<uint32_t>(hi);
    return id;
  }
  int dim = depth % K;
  size_t mid = lo + m / 2;
  // Exact median partition: one pass of reads and writes over the range.
  if (charge) {
    asym::count_read(m);
    asym::count_write(m);
  }
  std::nth_element(points_.begin() + static_cast<long>(lo),
                   points_.begin() + static_cast<long>(mid),
                   points_.begin() + static_cast<long>(hi),
                   [dim](const Point& a, const Point& b) {
                     return a[dim] < b[dim];
                   });
  nodes_[id] = Node{};
  nodes_[id].dim = dim;
  nodes_[id].split = points_[mid][dim];
  // Pre-order slice layout: left subtree right after this node, right
  // subtree after the left's (size-determined) slice.
  uint32_t lbase = id_base + 1;
  uint32_t rbase =
      lbase + static_cast<uint32_t>(classic_node_count(m / 2, leaf_size));
  uint32_t l, r;
  parallel::par_do_if(
      m > kSeqCutoff,
      [&] {
        l = build_recursive(lo, mid, depth + 1, leaf_size, charge, lbase);
      },
      [&] {
        r = build_recursive(mid, hi, depth + 1, leaf_size, charge, rbase);
      });
  nodes_[id].left = l;
  nodes_[id].right = r;
  return id;
}

template <int K>
KdTree<K> KdTree<K>::build_classic(std::vector<Point> points,
                                   size_t leaf_size, BuildStats* stats) {
  asym::Region region;
  KdTree t;
  t.leaf_size_ = leaf_size;
  t.points_ = std::move(points);
  if (!t.points_.empty()) {
    // The node count is a function of (n, leaf_size) alone, so the pool is
    // sized exactly and the build forks over pre-claimed id slices.
    t.nodes_.resize(classic_node_count(t.points_.size(), leaf_size));
    t.root_ = t.build_recursive(0, t.points_.size(), 0, leaf_size, true, 0);
  }
  if (stats) {
    stats->cost = region.delta();
    stats->height = t.height();
    stats->nodes = t.nodes_.size();
  }
  return t;
}

template <int K>
void KdTree<K>::range_rec(uint32_t node, const Box& region, const Box& query,
                          bool count_only, size_t& count,
                          std::vector<Point>* out, QueryStats* qs) const {
  if (qs) ++qs->nodes_visited;
  asym::count_read();  // fetch the node
  const Node& nd = nodes_[node];
  if (nd.is_leaf()) {
    for (uint32_t i = nd.begin; i < nd.end; ++i) {
      asym::count_read();
      if (qs) ++qs->points_scanned;
      if (query.contains(points_[i])) {
        ++count;
        if (!count_only && out) {
          asym::count_write();  // output write
          out->push_back(points_[i]);
        }
      }
    }
    return;
  }
  if (region.inside(query) && count_only) {
    // Whole region inside query: for counting we could stop here with a
    // subtree count; without stored counts we still scan, but callers that
    // need the Lemma 6.1 bound use nodes_visited which already stops growing
    // along this branch in the analysis. We descend only the needed side(s).
  }
  Box left_region = region;
  left_region.hi[nd.dim] = nd.split;
  Box right_region = region;
  right_region.lo[nd.dim] = nd.split;
  if (query.lo[nd.dim] <= nd.split) {
    range_rec(nd.left, left_region, query, count_only, count, out, qs);
  }
  if (query.hi[nd.dim] >= nd.split) {
    range_rec(nd.right, right_region, query, count_only, count, out, qs);
  }
}

template <int K>
size_t KdTree<K>::range_count(const Box& query, QueryStats* qs) const {
  if (root_ == kNullNode) return 0;
  size_t count = 0;
  Box all;
  for (int d = 0; d < K; ++d) {
    all.lo[d] = -std::numeric_limits<double>::infinity();
    all.hi[d] = std::numeric_limits<double>::infinity();
  }
  range_rec(root_, all, query, true, count, nullptr, qs);
  return count;
}

template <int K>
std::vector<typename KdTree<K>::Point> KdTree<K>::range_report(
    const Box& query, QueryStats* qs) const {
  std::vector<Point> out;
  if (root_ == kNullNode) return out;
  size_t count = 0;
  Box all;
  for (int d = 0; d < K; ++d) {
    all.lo[d] = -std::numeric_limits<double>::infinity();
    all.hi[d] = std::numeric_limits<double>::infinity();
  }
  range_rec(root_, all, query, false, count, &out, qs);
  return out;
}

namespace {

// Best-first ANN helper state shared across recursion.
template <int K>
struct AnnState {
  const geom::PointK<K>* q;
  double best_sq = std::numeric_limits<double>::infinity();
  size_t best_idx = SIZE_MAX;
  double prune_factor = 1.0;  // 1/(1+eps)^2
  QueryStats* qs = nullptr;
};

}  // namespace

template <int K>
size_t KdTree<K>::ann(const Point& q, double eps, QueryStats* qs) const {
  if (root_ == kNullNode) return SIZE_MAX;
  AnnState<K> st;
  st.q = &q;
  st.prune_factor = 1.0 / ((1.0 + eps) * (1.0 + eps));
  st.qs = qs;

  Box all;
  for (int d = 0; d < K; ++d) {
    all.lo[d] = -std::numeric_limits<double>::infinity();
    all.hi[d] = std::numeric_limits<double>::infinity();
  }
  // Recursive depth-first with near-side-first ordering and box pruning.
  auto rec = [&](auto&& self, uint32_t node, Box region) -> void {
    if (region.squared_distance(q) > st.best_sq * st.prune_factor) return;
    if (st.qs) ++st.qs->nodes_visited;
    asym::count_read();
    const Node& nd = nodes_[node];
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        asym::count_read();
        if (st.qs) ++st.qs->points_scanned;
        double d2 = geom::squared_distance(points_[i], q);
        if (d2 < st.best_sq) {
          st.best_sq = d2;
          st.best_idx = i;
        }
      }
      return;
    }
    Box left_region = region;
    left_region.hi[nd.dim] = nd.split;
    Box right_region = region;
    right_region.lo[nd.dim] = nd.split;
    if (q[nd.dim] <= nd.split) {
      self(self, nd.left, left_region);
      self(self, nd.right, right_region);
    } else {
      self(self, nd.right, right_region);
      self(self, nd.left, left_region);
    }
  };
  rec(rec, root_, all);
  return st.best_idx;
}

template <int K>
std::vector<size_t> KdTree<K>::knn(const Point& q, size_t k,
                                   QueryStats* qs) const {
  std::vector<size_t> result;
  if (root_ == kNullNode || k == 0) return result;
  // Max-heap of (distance^2, index) of the current k best.
  using Entry = std::pair<double, size_t>;
  std::priority_queue<Entry> heap;
  Box all;
  for (int d = 0; d < K; ++d) {
    all.lo[d] = -std::numeric_limits<double>::infinity();
    all.hi[d] = std::numeric_limits<double>::infinity();
  }
  auto worst = [&] {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.top().first;
  };
  auto rec = [&](auto&& self, uint32_t node, Box region) -> void {
    if (region.squared_distance(q) > worst()) return;
    if (qs) ++qs->nodes_visited;
    asym::count_read();
    const Node& nd = nodes_[node];
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        asym::count_read();
        if (qs) ++qs->points_scanned;
        double d2 = geom::squared_distance(points_[i], q);
        if (d2 < worst()) {
          heap.emplace(d2, i);
          if (heap.size() > k) heap.pop();
        }
      }
      return;
    }
    Box left_region = region;
    left_region.hi[nd.dim] = nd.split;
    Box right_region = region;
    right_region.lo[nd.dim] = nd.split;
    if (q[nd.dim] <= nd.split) {
      self(self, nd.left, left_region);
      self(self, nd.right, right_region);
    } else {
      self(self, nd.right, right_region);
      self(self, nd.left, left_region);
    }
  };
  rec(rec, root_, all);
  result.resize(heap.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = heap.top().second;
    heap.pop();
  }
  return result;
}

template <int K>
size_t KdTree<K>::find(const Point& p) const {
  if (root_ == kNullNode) return SIZE_MAX;
  size_t result = SIZE_MAX;
  auto rec = [&](auto&& self, uint32_t v) -> void {
    if (result != SIZE_MAX) return;
    asym::count_read();
    const Node& nd = nodes_[v];
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        asym::count_read();
        if (points_[i] == p) {
          result = i;
          return;
        }
      }
      return;
    }
    if (p[nd.dim] < nd.split) {
      self(self, nd.left);
    } else if (p[nd.dim] > nd.split) {
      self(self, nd.right);
    } else {  // on the hyperplane: the build may have put it on either side
      self(self, nd.left);
      self(self, nd.right);
    }
  };
  rec(rec, root_);
  return result;
}

template <int K>
size_t KdTree<K>::height() const {
  if (root_ == kNullNode) return 0;
  struct Frame {
    uint32_t node;
    size_t depth;
  };
  std::vector<Frame> stack{{root_, 1}};
  size_t h = 0;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    h = std::max(h, f.depth);
    const Node& nd = nodes_[f.node];
    if (!nd.is_leaf()) {
      stack.push_back({nd.left, f.depth + 1});
      stack.push_back({nd.right, f.depth + 1});
    }
  }
  return h;
}

template <int K>
bool KdTree<K>::validate() const {
  if (root_ == kNullNode) return points_.empty();
  size_t total = 0;
  struct Frame {
    uint32_t node;
    Box region;
  };
  Box all;
  for (int d = 0; d < K; ++d) {
    all.lo[d] = -std::numeric_limits<double>::infinity();
    all.hi[d] = std::numeric_limits<double>::infinity();
  }
  std::vector<Frame> stack{{root_, all}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[f.node];
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        ++total;
        for (int d = 0; d < K; ++d) {
          if (points_[i][d] < f.region.lo[d] || points_[i][d] > f.region.hi[d])
            return false;
        }
      }
      continue;
    }
    Box lr = f.region, rr = f.region;
    lr.hi[nd.dim] = nd.split;
    rr.lo[nd.dim] = nd.split;
    stack.push_back({nd.left, lr});
    stack.push_back({nd.right, rr});
  }
  return total == points_.size();
}

template class KdTree<2>;
template class KdTree<3>;

}  // namespace weg::kdtree
