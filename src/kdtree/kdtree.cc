#include "src/kdtree/kdtree.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "src/parallel/parallel_for.h"

namespace weg::kdtree {

namespace {
// Below this, build sequentially: shares the scheduler-wide cutoff tuned for
// the lock-free deque's fork cost.
constexpr size_t kSeqCutoff = parallel::kSeqCutoff;
}

size_t classic_node_count(size_t m, size_t leaf_size) {
  if (m <= leaf_size) return 1;
  // At recursion depth d every subtree holds floor(m/2^d) or that plus one
  // points, so a level is two (size, multiplicity) pairs. Walk levels until
  // both sizes fit a leaf, accumulating interior nodes; remaining pairs are
  // leaves.
  size_t total = 0;
  // sizes[0] = smaller size, sizes[1] = sizes[0] + 1 (multiplicity 0 if
  // absent).
  size_t size = m;
  uint64_t cnt_lo = 1, cnt_hi = 0;  // multiplicities of `size` and `size + 1`
  while (size > leaf_size || (cnt_hi > 0 && size + 1 > leaf_size)) {
    // Split every subtree still above the leaf threshold; subtrees already
    // at or below it become leaves now.
    uint64_t leaves_lo = size <= leaf_size ? cnt_lo : 0;
    uint64_t leaves_hi = (size + 1) <= leaf_size ? cnt_hi : 0;
    total += leaves_lo + leaves_hi;
    uint64_t split_lo = cnt_lo - leaves_lo;  // subtrees of `size` that split
    uint64_t split_hi = cnt_hi - leaves_hi;  // subtrees of `size+1` that split
    total += split_lo + split_hi;  // one interior node per split
    // size -> floor(size/2) + ceil(size/2); size+1 likewise.
    uint64_t nlo, nhi;
    size_t nsize;
    if (size % 2 == 0) {
      // size: {size/2, size/2}; size+1: {size/2, size/2 + 1}
      nsize = size / 2;
      nlo = 2 * split_lo + split_hi;
      nhi = split_hi;
    } else {
      // size: {size/2, size/2 + 1}; size+1: {size/2 + 1, size/2 + 1}
      nsize = size / 2;
      nlo = split_lo;
      nhi = split_lo + 2 * split_hi;
    }
    size = nsize;
    cnt_lo = nlo;
    cnt_hi = nhi;
    if (cnt_lo == 0) {  // renormalize so `size` always has multiplicity
      size += 1;
      cnt_lo = cnt_hi;
      cnt_hi = 0;
    }
    if (cnt_lo == 0 && cnt_hi == 0) break;
  }
  total += cnt_lo + cnt_hi;  // all remaining subtrees are leaves
  return total;
}

template <int K>
uint32_t KdTree<K>::build_recursive(size_t lo, size_t hi, int depth,
                                    size_t leaf_size, bool charge,
                                    uint32_t id_base) {
  assert(hi >= lo);
  uint32_t id = id_base;
  size_t m = hi - lo;
  if (m <= leaf_size) {
    if (charge) asym::count_write(m);  // write out the leaf contents
    nodes_[id] = Node{};
    nodes_[id].begin = static_cast<uint32_t>(lo);
    nodes_[id].end = static_cast<uint32_t>(hi);
    // Tight box of the just-written leaf contents: derived bookkeeping over
    // data already charged above, uncounted like the other skeleton passes.
    Box bx = Box::empty();
    for (size_t i = lo; i < hi; ++i) bx.extend(points_[i]);
    nodes_[id].box = bx;
    return id;
  }
  int dim = depth % K;
  size_t mid = lo + m / 2;
  // Exact median partition: one pass of reads and writes over the range.
  if (charge) {
    asym::count_read(m);
    asym::count_write(m);
  }
  std::nth_element(points_.begin() + static_cast<long>(lo),
                   points_.begin() + static_cast<long>(mid),
                   points_.begin() + static_cast<long>(hi),
                   [dim](const Point& a, const Point& b) {
                     return a[dim] < b[dim];
                   });
  nodes_[id] = Node{};
  nodes_[id].dim = dim;
  nodes_[id].split = points_[mid][dim];
  // Pre-order slice layout: left subtree right after this node, right
  // subtree after the left's (size-determined) slice.
  uint32_t lbase = id_base + 1;
  uint32_t rbase =
      lbase + static_cast<uint32_t>(classic_node_count(m / 2, leaf_size));
  uint32_t l, r;
  parallel::par_do_if(
      m > kSeqCutoff,
      [&] {
        l = build_recursive(lo, mid, depth + 1, leaf_size, charge, lbase);
      },
      [&] {
        r = build_recursive(mid, hi, depth + 1, leaf_size, charge, rbase);
      });
  nodes_[id].left = l;
  nodes_[id].right = r;
  // Count augmentation for free: the pre-claimed slice bounds are the
  // subtree's point count, and the box is the union of the children's
  // (bookkeeping over already-built children, uncounted).
  nodes_[id].begin = static_cast<uint32_t>(lo);
  nodes_[id].end = static_cast<uint32_t>(hi);
  Box bx = nodes_[l].box;
  bx.extend(nodes_[r].box);
  nodes_[id].box = bx;
  return id;
}

template <int K>
KdTree<K> KdTree<K>::build_classic(std::vector<Point> points,
                                   size_t leaf_size, BuildStats* stats) {
  asym::Region region;
  KdTree t;
  t.leaf_size_ = leaf_size;
  t.points_ = std::move(points);
  if (!t.points_.empty()) {
    // The node count is a function of (n, leaf_size) alone, so the pool is
    // sized exactly and the build forks over pre-claimed id slices.
    t.nodes_.resize(classic_node_count(t.points_.size(), leaf_size));
    t.root_ = t.build_recursive(0, t.points_.size(), 0, leaf_size, true, 0);
  }
  if (stats) {
    stats->cost = region.delta();
    stats->height = t.height();
    stats->nodes = t.nodes_.size();
  }
  return t;
}

namespace {

// Range visitors with the covered-subtree hook. The counting visitor's
// covered() adds the slice size with no further reads (the O(1) fast path);
// the reporting visitors bulk-copy the slice — the per-point output charges
// stay (every reported point is read and written once), but the per-point
// containment tests and the subtree's node reads disappear.
struct CountCoveredVisitor {
  size_t count = 0;
  void operator()(size_t) { ++count; }
  void covered(size_t b, size_t e) { count += e - b; }
};

template <typename Point>
struct ReportAppendVisitor {
  const std::vector<Point>* pts;
  std::vector<Point>* out;
  void operator()(size_t i) {
    asym::count_write();  // output write
    out->push_back((*pts)[i]);
  }
  void covered(size_t b, size_t e) {
    asym::count_read(e - b);
    asym::count_write(e - b);
    out->insert(out->end(), pts->begin() + static_cast<long>(b),
                pts->begin() + static_cast<long>(e));
  }
};

template <typename Point>
struct ReportIntoVisitor {
  const std::vector<Point>* pts;
  Point* out;
  void operator()(size_t i) {
    asym::count_write();
    *out++ = (*pts)[i];
  }
  void covered(size_t b, size_t e) {
    asym::count_read(e - b);
    asym::count_write(e - b);
    out = std::copy(pts->begin() + static_cast<long>(b),
                    pts->begin() + static_cast<long>(e), out);
  }
};

}  // namespace

template <int K>
size_t KdTree<K>::range_count(const Box& query,
                              const QueryOptions& opts) const {
  CountCoveredVisitor vis;
  range_visit(query, vis, opts);
  return vis.count;
}

template <int K>
std::vector<typename KdTree<K>::Point> KdTree<K>::range_report(
    const Box& query, const QueryOptions& opts) const {
  std::vector<Point> out;
  ReportAppendVisitor<Point> vis{&points_, &out};
  range_visit(query, vis, opts);
  return out;
}

namespace {

// Candidate-set visitors for the shared nn_visit traversal. Both order
// candidates under the canonical (distance^2, coordinates-lexicographic)
// total order: distance ties between distinct points are resolved by the
// points themselves, not by traversal order, so the kept candidates are a
// function of the point set alone. (The box pruning in nn_visit_rec is
// strict — a box at exactly the bound is still explored — so every
// distance-tied candidate reaches offer().) The sharded layer's top-k/top-1
// merges assume exactly this order.
template <typename Point>
struct AnnVisitor {
  double prune_factor;  // 1/(1+eps)^2
  const std::vector<Point>* pts;
  double best_sq = std::numeric_limits<double>::infinity();
  size_t best_idx = SIZE_MAX;

  double bound() const { return best_sq * prune_factor; }
  void offer(size_t i, double d2) {
    if (d2 < best_sq ||
        (d2 == best_sq && best_idx != SIZE_MAX &&
         (*pts)[i].coords < (*pts)[best_idx].coords)) {
      best_sq = d2;
      best_idx = i;
    }
  }
};

template <typename Point>
struct KnnVisitor {
  // Max-heap of (distance^2, index) of the current k best under the
  // canonical order.
  using Entry = std::pair<double, size_t>;
  struct Canon {
    const std::vector<Point>* pts;
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.first != b.first) return a.first < b.first;
      return (*pts)[a.second].coords < (*pts)[b.second].coords;
    }
  };

  KnnVisitor(size_t k_in, const std::vector<Point>& pts)
      : k(k_in), canon{&pts}, heap(canon) {}

  size_t k;
  Canon canon;
  std::priority_queue<Entry, std::vector<Entry>, Canon> heap;

  double bound() const {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.top().first;
  }
  void offer(size_t i, double d2) {
    Entry e{d2, i};
    if (heap.size() < k) {
      heap.push(e);
      return;
    }
    if (canon(e, heap.top())) {
      heap.push(e);
      heap.pop();
    }
  }
  // Drains the heap into indices sorted ascending in the canonical order.
  std::vector<size_t> take_sorted() {
    std::vector<size_t> result(heap.size());
    for (size_t i = result.size(); i-- > 0;) {
      result[i] = heap.top().second;
      heap.pop();
    }
    return result;
  }
};

}  // namespace

template <int K>
size_t KdTree<K>::ann(const Point& q, double eps,
                      const QueryOptions& opts) const {
  AnnVisitor<Point> vis{1.0 / ((1.0 + eps) * (1.0 + eps)), &points_};
  nn_visit(q, vis, opts);
  return vis.best_idx;
}

template <int K>
std::vector<size_t> KdTree<K>::knn(const Point& q, size_t k,
                                   const QueryOptions& opts) const {
  if (k == 0) return {};
  KnnVisitor<Point> vis(k, points_);
  nn_visit(q, vis, opts);
  return vis.take_sorted();
}

template <int K>
std::vector<size_t> KdTree<K>::range_count_batch(
    const std::vector<Box>& qs, const QueryOptions& opts) const {
  detail::BatchStatsScope bs(qs.size(), opts);
  return parallel::batch_map<size_t>(
      qs.size(), [&](size_t i) { return range_count(qs[i], bs.at(i)); });
}

template <int K>
parallel::BatchResult<typename KdTree<K>::Point> KdTree<K>::range_report_batch(
    const std::vector<Box>& qs, const QueryOptions& opts) const {
  detail::BatchStatsScope bs(qs.size(), opts);
  // Stats from the count pass are not double-counted: only the report pass
  // feeds the per-query slots.
  QueryOptions count_opts = opts;
  count_opts.stats = nullptr;
  return parallel::batch_two_phase<Point>(
      qs.size(), [&](size_t i) { return range_count(qs[i], count_opts); },
      [&](size_t i, Point* out) {
        ReportIntoVisitor<Point> vis{&points_, out};
        range_visit(qs[i], vis, bs.at(i));
      });
}

template <int K>
parallel::BatchResult<typename KdTree<K>::Point> KdTree<K>::knn_batch(
    const std::vector<Point>& qs, size_t k, const QueryOptions& opts) const {
  // Every query returns exactly min(k, n) neighbors, so the count pass costs
  // nothing: the slice sizes are a function of k and n alone.
  size_t per = std::min(k, points_.size());
  detail::BatchStatsScope bs(qs.size(), opts);
  return parallel::batch_two_phase<Point>(
      qs.size(), [&](size_t) { return per; },
      [&](size_t i, Point* out) {
        if (per == 0) return;
        KnnVisitor<Point> vis(k, points_);
        nn_visit(qs[i], vis, bs.at(i));
        auto nn = vis.take_sorted();
        asym::count_write(nn.size());
        for (size_t j : nn) *out++ = points_[j];
      });
}

template <int K>
std::vector<std::optional<typename KdTree<K>::Point>> KdTree<K>::ann_batch(
    const std::vector<Point>& qs, double eps, const QueryOptions& opts) const {
  detail::BatchStatsScope bs(qs.size(), opts);
  return parallel::batch_map<std::optional<Point>>(
      qs.size(), [&](size_t i) -> std::optional<Point> {
        size_t idx = ann(qs[i], eps, bs.at(i));
        if (idx == SIZE_MAX) return std::nullopt;
        return points_[idx];
      });
}

template <int K>
size_t KdTree<K>::find(const Point& p) const {
  if (root_ == kNullNode) return SIZE_MAX;
  size_t result = SIZE_MAX;
  auto rec = [&](auto&& self, uint32_t v) -> void {
    if (result != SIZE_MAX) return;
    asym::count_read();
    const Node& nd = nodes_[v];
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        asym::count_read();
        if (points_[i] == p) {
          result = i;
          return;
        }
      }
      return;
    }
    if (p[nd.dim] < nd.split) {
      self(self, nd.left);
    } else if (p[nd.dim] > nd.split) {
      self(self, nd.right);
    } else {  // on the hyperplane: the build may have put it on either side
      self(self, nd.left);
      self(self, nd.right);
    }
  };
  rec(rec, root_);
  return result;
}

template <int K>
size_t KdTree<K>::height() const {
  if (root_ == kNullNode) return 0;
  struct Frame {
    uint32_t node;
    size_t depth;
  };
  std::vector<Frame> stack{{root_, 1}};
  size_t h = 0;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    h = std::max(h, f.depth);
    const Node& nd = nodes_[f.node];
    if (!nd.is_leaf()) {
      stack.push_back({nd.left, f.depth + 1});
      stack.push_back({nd.right, f.depth + 1});
    }
  }
  return h;
}

template <int K>
bool KdTree<K>::validate() const {
  if (root_ == kNullNode) return points_.empty();
  size_t total = 0;
  struct Frame {
    uint32_t node;
    Box region;
  };
  std::vector<Frame> stack{{root_, whole_space()}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[f.node];
    // Count augmentation: every node's slice must bound its subtree and its
    // box must contain every point of the slice (tightness is not required
    // for correctness of the covered fast path, containment is).
    if (nd.end < nd.begin || nd.end > points_.size()) return false;
    for (uint32_t i = nd.begin; i < nd.end; ++i) {
      if (!nd.box.contains(points_[i])) return false;
    }
    if (nd.is_leaf()) {
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        ++total;
        for (int d = 0; d < K; ++d) {
          if (points_[i][d] < f.region.lo[d] || points_[i][d] > f.region.hi[d])
            return false;
        }
      }
      continue;
    }
    // An interior slice is exactly the union of its children's (the two
    // child slices are adjacent in DFS order).
    const Node& l = nodes_[nd.left];
    const Node& r = nodes_[nd.right];
    if (nd.begin != std::min(l.begin, r.begin) ||
        nd.end != std::max(l.end, r.end))
      return false;
    if (l.end != r.begin && r.end != l.begin) return false;
    Box lr = f.region, rr = f.region;
    lr.hi[nd.dim] = nd.split;
    rr.lo[nd.dim] = nd.split;
    stack.push_back({nd.left, lr});
    stack.push_back({nd.right, rr});
  }
  return total == points_.size();
}

template class KdTree<2>;
template class KdTree<3>;

}  // namespace weg::kdtree
