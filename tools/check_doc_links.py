#!/usr/bin/env python3
"""Fail if docs reference repo paths that do not exist.

Scans docs/*.md and README.md for tokens that look like repo paths
(src/..., tests/..., bench/..., examples/..., docs/..., tools/...), strips
any :line suffix, and exits 1 listing every path that is missing from the
tree — so file moves and renames cannot silently strand the documentation.
Glob-ish tokens (containing * or <) are skipped.
"""
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
# The lookbehind keeps /usr/src/... and build/tests/... from matching on
# their src/ / tests/ substring: a repo path must not be preceded by a path
# character.
TOKEN = re.compile(
    r"(?<![A-Za-z0-9_./-])"
    r"((?:src|tests|bench|examples|docs|tools)/[A-Za-z0-9_./*<>-]+)")

missing = []
for md in sorted(ROOT.glob("docs/*.md")) + [ROOT / "README.md"]:
    for lineno, line in enumerate(md.read_text().splitlines(), 1):
        for tok in TOKEN.findall(line):
            if "*" in tok or "<" in tok:
                continue  # glob / placeholder, not a concrete path
            path = re.sub(r":\d+(-\d+)?$", "", tok).rstrip(".,;:)")
            if not (ROOT / path).exists():
                missing.append(f"{md.relative_to(ROOT)}:{lineno}: {path}")

if missing:
    print("stale doc links (path does not exist):")
    print("\n".join(missing))
    sys.exit(1)
print("doc links OK")
