// Experiment THM-6.1 + FIG-2 (Theorem 6.1, Lemmas 6.2/6.3, Figure 2): k-d
// tree construction. Classic median-split writes every point once per level
// (Θ(n log n)); the p-batched incremental construction writes O(n). The p
// sweep regenerates the Lemma 6.2 trade-off: tiny p hurts the tree height /
// range-query cost, p = Θ(log^3 n) matches the classic height; the settle
// statistics are the Figure 2 / Lemma 6.3 series (max buffer ~ O(p)).
#include <cmath>

#include "bench/common.h"
#include "src/kdtree/kdtree.h"
#include "src/kdtree/pbatched.h"

namespace weg {
namespace {

void BM_KdClassic(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto pts = bench::uniform_points(n, 0x6d + n);
  kdtree::BuildStats st{};
  for (auto _ : state) {
    auto t = kdtree::KdTree<2>::build_classic(pts, 8, &st);
    benchmark::DoNotOptimize(t);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["height"] = double(st.height);
}

void BM_KdPBatched(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto pts = bench::uniform_points(n, 0x6d + n);
  kdtree::BuildStats st{};
  for (auto _ : state) {
    auto t = kdtree::PBatchedBuilder<2>::build(pts, 0, 8, &st);
    benchmark::DoNotOptimize(t);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["height"] = double(st.height);
  state.counters["settles"] = double(st.settles);
  state.counters["max_settle_buf"] = double(st.max_settle_buffer);
}

// FIG-2 / Lemma 6.2: sweep the buffer size p at fixed n; report height,
// range-query node visits, and settle-buffer statistics.
void BM_KdPSweep(benchmark::State& state) {
  size_t n = 1 << 17;
  size_t p = size_t(state.range(0));
  auto pts = bench::uniform_points(n, 0x77);
  kdtree::BuildStats st{};
  kdtree::KdTree<2> tree;
  for (auto _ : state) {
    tree = kdtree::PBatchedBuilder<2>::build(pts, p, 8, &st);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["height"] = double(st.height);
  state.counters["max_settle_buf"] = double(st.max_settle_buffer);
  // Range query structural cost (thin slab; Lemma 6.1 predicts O(sqrt n)
  // node visits when the height is log2 n + O(1)).
  kdtree::QueryStats qs;
  geom::Box2 slab;
  slab.lo[0] = 0.5;
  slab.hi[0] = 0.501;
  slab.lo[1] = -1;
  slab.hi[1] = 2;
  tree.range_count(slab, kdtree::QueryOptions{&qs});
  state.counters["slab_nodes_visited"] = double(qs.nodes_visited);
}

BENCHMARK(BM_KdClassic)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_KdPBatched)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
// p sweep: 1 (pure incremental), log n, log^2 n, log^3 n, n/16.
BENCHMARK(BM_KdPSweep)
    ->Arg(1)
    ->Arg(17)
    ->Arg(289)
    ->Arg(4913)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "THM-6.1 + FIG-2  |  k-d tree construction (Section 6.1)",
      "Counters are per point. Claims: classic writes/pt grow with log n, p-\n"
      "batched stays ~constant; with p >= log^3 n the height matches classic\n"
      "(+O(1)) so the slab range query keeps its O(sqrt n) node visits; the\n"
      "settle buffers stay O(p) (Lemma 6.3).");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
