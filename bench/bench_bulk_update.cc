// Experiment §7.3.5: bulk updates. Inserting a batch of m intervals into an
// n-interval dynamic tree in one merge costs fewer writes than m single
// insertions; the advantage grows with m/n.
#include "bench/common.h"
#include "src/augtree/interval_tree.h"

namespace weg {
namespace {

void BM_BulkInsert(benchmark::State& state) {
  size_t n = 1 << 15;
  size_t m = size_t(state.range(0));
  asym::Counts cost;
  for (auto _ : state) {
    auto base = bench::uniform_intervals(n, 0x51);
    auto batch = bench::uniform_intervals(m, 0x52);
    for (auto& iv : batch) iv.id += uint32_t(n);
    augtree::DynamicIntervalTree t(4);
    for (auto& iv : base) t.insert(iv);
    asym::Region r;
    (void)t.bulk_insert(batch);
    cost = r.delta();
  }
  bench::report_cost(state, cost, double(m));
}

void BM_OneByOneInsert(benchmark::State& state) {
  size_t n = 1 << 15;
  size_t m = size_t(state.range(0));
  asym::Counts cost;
  for (auto _ : state) {
    auto base = bench::uniform_intervals(n, 0x51);
    auto batch = bench::uniform_intervals(m, 0x52);
    for (auto& iv : batch) iv.id += uint32_t(n);
    augtree::DynamicIntervalTree t(4);
    for (auto& iv : base) t.insert(iv);
    asym::Region r;
    for (auto& iv : batch) t.insert(iv);
    cost = r.delta();
  }
  bench::report_cost(state, cost, double(m));
}

BENCHMARK(BM_BulkInsert)
    ->Arg(1 << 10)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_OneByOneInsert)
    ->Arg(1 << 10)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "EXP §7.3.5  |  bulk updates on the dynamic interval tree",
      "Counters are per batch element (batch of m into n = 2^15). Claim:\n"
      "bulk insertion writes per element are below one-by-one insertion and\n"
      "the gap widens as m approaches n.");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
