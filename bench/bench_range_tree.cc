// Experiment T1-range (Table 1, 2D range tree rows): classic vs α-labeled
// range trees on construction, mixed updates, and range-report queries.
#include "bench/common.h"
#include "src/augtree/range_tree.h"

namespace weg {
namespace {

void BM_RangeMix(benchmark::State& state) {
  uint64_t alpha = uint64_t(state.range(0));
  double update_frac = double(state.range(1)) / 100.0;
  size_t n = 1 << 15, ops = 3000;
  asym::Counts upd, qry;
  for (auto _ : state) {
    auto base = bench::uniform_ppoints(n, 0x37);
    auto t = augtree::AlphaRangeTree::build(base, alpha);
    primitives::Rng rng(0x38);
    uint32_t next_id = uint32_t(n);
    size_t k = 0;
    upd = asym::Counts{};
    qry = asym::Counts{};
    for (size_t op = 0; op < ops; ++op) {
      if (rng.next_double() < update_frac) {
        asym::Region r;
        t.insert(augtree::PPoint{rng.next_double(), rng.next_double(),
                                 next_id++});
        upd = upd + r.delta();
      } else {
        asym::Region r;
        double xl = rng.next_double() * 0.9, yb = rng.next_double() * 0.9;
        k += t.query_count(xl, xl + 0.05, yb, yb + 0.05);
        qry = qry + r.delta();
      }
    }
    benchmark::DoNotOptimize(k);
  }
  asym::Counts total = upd + qry;
  bench::report_cost(state, total, 3000.0);
  state.counters["upd_writes"] =
      double(upd.writes) / (3000.0 * update_frac + 1);
  state.counters["qry_reads"] =
      double(qry.reads) / (3000.0 * (1 - update_frac) + 1);
}

BENCHMARK(BM_RangeMix)
    ->ArgsProduct({{2, 4, 8, 16}, {10, 50, 90}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "T1-range  |  2D range tree alpha trade-off (Table 1, last rows)",
      "Counters are per operation over n = 2^15 points. Claims: update\n"
      "writes scale as O(log_alpha n) (shrink with alpha); query reads grow\n"
      "~alpha (more inner trees probed: O(alpha log_alpha n log n)); total\n"
      "work at omega = 10/40 shows the predicted optimum shift.");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
