// Experiment §6.2: dynamic k-d trees. Logarithmic reconstruction (classic vs
// p-batched rebuilds — the p-batched mode cuts insertion *writes* by a log
// factor) versus the single-tree reconstruction variant (one tree to query,
// higher update cost). Reported costs are per operation.
#include "bench/common.h"
#include "src/kdtree/dynamic.h"

namespace weg {
namespace {

template <typename S>
void run_updates(benchmark::State& state, S& s, size_t n) {
  auto pts = bench::uniform_points(n, 0xd1 + n);
  asym::Counts cost;
  for (auto _ : state) {
    asym::Region r;
    for (auto& p : pts) s.insert(p);
    for (size_t i = 0; i < n / 4; ++i) s.erase(pts[i]);
    cost = r.delta();
  }
  bench::report_cost(state, cost, double(n + n / 4));
}

void BM_ForestClassicRebuild(benchmark::State& state) {
  kdtree::LogForest<2> f(kdtree::LogForest<2>::RebuildMode::kClassic);
  run_updates(state, f, size_t(state.range(0)));
  state.counters["trees"] = double(f.num_trees());
}

void BM_ForestPBatchedRebuild(benchmark::State& state) {
  kdtree::LogForest<2> f(kdtree::LogForest<2>::RebuildMode::kPBatched);
  run_updates(state, f, size_t(state.range(0)));
  state.counters["trees"] = double(f.num_trees());
}

void BM_SingleTreeRangeOptimal(benchmark::State& state) {
  kdtree::DynamicKdTree<2> t(kdtree::DynamicKdTree<2>::Mode::kRangeOptimal);
  run_updates(state, t, size_t(state.range(0)));
  state.counters["height"] = double(t.height());
  state.counters["rebuilds"] = double(t.rebuilds());
}

void BM_SingleTreeAnnOnly(benchmark::State& state) {
  kdtree::DynamicKdTree<2> t(kdtree::DynamicKdTree<2>::Mode::kAnnOnly);
  run_updates(state, t, size_t(state.range(0)));
  state.counters["height"] = double(t.height());
  state.counters["rebuilds"] = double(t.rebuilds());
}

// Query cost comparison at a fixed size: the forest queries O(log n) trees,
// the single tree only one.
void BM_QueryForestVsSingle(benchmark::State& state) {
  size_t n = 1 << 15;
  auto pts = bench::uniform_points(n, 0x11);
  kdtree::LogForest<2> f;
  kdtree::DynamicKdTree<2> t;
  for (auto& p : pts) {
    f.insert(p);
    t.insert(p);
  }
  geom::Box2 q;
  q.lo[0] = q.lo[1] = 0.4;
  q.hi[0] = q.hi[1] = 0.6;
  kdtree::QueryStats qf, qt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.range_count(q, kdtree::QueryOptions{&qf}));
    benchmark::DoNotOptimize(t.range_count(q, kdtree::QueryOptions{&qt}));
  }
  state.counters["forest_nodes"] = double(qf.nodes_visited);
  state.counters["single_nodes"] = double(qt.nodes_visited);
}

BENCHMARK(BM_ForestClassicRebuild)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_ForestPBatchedRebuild)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SingleTreeRangeOptimal)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SingleTreeAnnOnly)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_QueryForestVsSingle)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "EXP §6.2  |  dynamic k-d trees",
      "Counters are per update. Claims: the p-batched rebuild mode performs\n"
      "fewer writes per insertion than classic rebuilds; the AnnOnly single\n"
      "tree updates cheaper than RangeOptimal (constant vs 1/log n imbalance\n"
      "tolerance); forest queries visit more nodes than the single tree.");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
