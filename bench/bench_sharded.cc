// Sharded serving layer throughput: queries/sec and updates/sec versus
// shard fanout (1/2/4/8) x batch size. The BM_Sharded* query rows broadcast
// one batch to every shard in parallel (each shard runs the two-phase
// engine over its subset) and merge the slices by offset arithmetic; the
// BM_Planned* rows run the same batches under Routing::kRange, where the
// shard-pruning planner routes each query only to its overlapping shards.
// Every query row reports a shards_visited_per_query counter: broadcast
// rows sit exactly at the fanout, planned rows below it — the gap is the
// fan-out work the planner saves. Fanout 1 is the unsharded baseline, so
// sharding overhead / speedup is the fanout-1 row over the fanout-S row at
// equal batch size. The commit rows measure the epoch API: stage one insert
// batch + one erase batch, then commit (every shard applies its share via
// bulk_insert/bulk_erase in parallel). run_benches.sh records
// BENCH_sharded.json plus a WEG_NUM_THREADS=1 baseline
// (BENCH_sharded_serial.json) for the parallel-speedup trajectory.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/augtree/interval_tree.h"
#include "src/kdtree/dynamic.h"
#include "src/parallel/sharded.h"
#include "src/primitives/random.h"

namespace {

using namespace weg;
using augtree::DynamicIntervalTree;
using augtree::Interval;
using kdtree::LogForest;
using parallel::Routing;
using parallel::Sharded;

constexpr size_t kIndexN = size_t{1} << 17;
constexpr size_t kCommitN = size_t{1} << 16;

Sharded<DynamicIntervalTree>& iv_index(size_t fanout) {
  static std::unique_ptr<Sharded<DynamicIntervalTree>> cache[9];
  auto& slot = cache[fanout];
  if (!slot) {
    slot = std::make_unique<Sharded<DynamicIntervalTree>>(fanout, 4);
    (void)slot->bulk_insert(bench::uniform_intervals(kIndexN, 43, 0.0005));
  }
  return *slot;
}

Sharded<LogForest<2>>& forest_index(size_t fanout) {
  static std::unique_ptr<Sharded<LogForest<2>>> cache[9];
  auto& slot = cache[fanout];
  if (!slot) {
    slot = std::make_unique<Sharded<LogForest<2>>>(fanout);
    (void)slot->bulk_insert(bench::uniform_points(kIndexN, 42));
  }
  return *slot;
}

// Range-routed twins of the cached indexes (same record sets), for the
// planner rows.
Sharded<DynamicIntervalTree>& iv_index_routed(size_t fanout) {
  static std::unique_ptr<Sharded<DynamicIntervalTree>> cache[9];
  auto& slot = cache[fanout];
  if (!slot) {
    slot = std::make_unique<Sharded<DynamicIntervalTree>>(Routing::kRange,
                                                          fanout, 4);
    (void)slot->bulk_insert(bench::uniform_intervals(kIndexN, 43, 0.0005));
  }
  return *slot;
}

Sharded<LogForest<2>>& forest_index_routed(size_t fanout) {
  static std::unique_ptr<Sharded<LogForest<2>>> cache[9];
  auto& slot = cache[fanout];
  if (!slot) {
    slot = std::make_unique<Sharded<LogForest<2>>>(Routing::kRange, fanout);
    (void)slot->bulk_insert(bench::uniform_points(kIndexN, 42));
  }
  return *slot;
}

// Surfaces shard visits per planned query over the timed loop: broadcast
// rows report exactly the fanout, planner rows however many shards the
// bounds couldn't prune.
template <typename Index>
class VisitCounter {
 public:
  explicit VisitCounter(const Index& idx)
      : idx_(idx),
        queries0_(idx.planner_queries()),
        visits0_(idx.planner_shard_visits()) {}
  void report(benchmark::State& state) const {
    double dq = static_cast<double>(idx_.planner_queries() - queries0_);
    if (dq > 0) {
      state.counters["shards_visited_per_query"] =
          static_cast<double>(idx_.planner_shard_visits() - visits0_) / dq;
    }
  }

 private:
  const Index& idx_;
  uint64_t queries0_;
  uint64_t visits0_;
};

std::vector<geom::Box2> make_boxes(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::Box2> boxes(q);
  for (auto& b : boxes) {
    for (int d = 0; d < 2; ++d) {
      b.lo[d] = rng.next_double() * 0.98;
      b.hi[d] = b.lo[d] + 0.02;
    }
  }
  return boxes;
}

std::vector<double> make_stabs(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<double> qs(q);
  for (double& x : qs) x = rng.next_double();
  return qs;
}

void ShardedArgs(benchmark::internal::Benchmark* b) {
  for (int fanout : {1, 2, 4, 8}) {
    for (int batch : {256, 4096}) b->Args({fanout, batch});
  }
}

void BM_ShardedStabBatch(benchmark::State& state) {
  auto& idx = iv_index(static_cast<size_t>(state.range(0)));
  size_t q = static_cast<size_t>(state.range(1));
  auto qs = make_stabs(q, 11);
  VisitCounter counter(idx);
  for (auto _ : state) {
    auto r = idx.stab_batch(qs);
    benchmark::DoNotOptimize(r.total());
  }
  counter.report(state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_ShardedStabBatch)->Apply(ShardedArgs)->UseRealTime();

void BM_PlannedStabBatch(benchmark::State& state) {
  auto& idx = iv_index_routed(static_cast<size_t>(state.range(0)));
  size_t q = static_cast<size_t>(state.range(1));
  auto qs = make_stabs(q, 11);
  VisitCounter counter(idx);
  for (auto _ : state) {
    auto r = idx.stab_batch(qs);
    benchmark::DoNotOptimize(r.total());
  }
  counter.report(state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_PlannedStabBatch)->Apply(ShardedArgs)->UseRealTime();

void BM_ShardedRangeReportBatch(benchmark::State& state) {
  auto& idx = forest_index(static_cast<size_t>(state.range(0)));
  size_t q = static_cast<size_t>(state.range(1));
  auto boxes = make_boxes(q, 7);
  VisitCounter counter(idx);
  for (auto _ : state) {
    auto r = idx.range_report_batch(boxes);
    benchmark::DoNotOptimize(r.total());
  }
  counter.report(state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_ShardedRangeReportBatch)->Apply(ShardedArgs)->UseRealTime();

void BM_PlannedRangeReportBatch(benchmark::State& state) {
  auto& idx = forest_index_routed(static_cast<size_t>(state.range(0)));
  size_t q = static_cast<size_t>(state.range(1));
  auto boxes = make_boxes(q, 7);
  VisitCounter counter(idx);
  for (auto _ : state) {
    auto r = idx.range_report_batch(boxes);
    benchmark::DoNotOptimize(r.total());
  }
  counter.report(state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_PlannedRangeReportBatch)->Apply(ShardedArgs)->UseRealTime();

void BM_ShardedKnnBatch(benchmark::State& state) {
  auto& idx = forest_index(static_cast<size_t>(state.range(0)));
  size_t q = static_cast<size_t>(state.range(1));
  auto pts = bench::uniform_points(q, 13);
  VisitCounter counter(idx);
  for (auto _ : state) {
    auto r = idx.knn_batch(pts, 8);
    benchmark::DoNotOptimize(r.total());
  }
  counter.report(state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_ShardedKnnBatch)->Apply(ShardedArgs)->UseRealTime();

void BM_PlannedKnnBatch(benchmark::State& state) {
  auto& idx = forest_index_routed(static_cast<size_t>(state.range(0)));
  size_t q = static_cast<size_t>(state.range(1));
  auto pts = bench::uniform_points(q, 13);
  VisitCounter counter(idx);
  for (auto _ : state) {
    auto r = idx.knn_batch(pts, 8);
    benchmark::DoNotOptimize(r.total());
  }
  counter.report(state);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_PlannedKnnBatch)->Apply(ShardedArgs)->UseRealTime();

// Clustered twin for the bound-driven knn pruning row: records concentrate
// in four clusters along the routing dimension, so each range shard's cover
// box is tight and probes near cluster centers let the planner's cover-box
// distance bound skip the far shards entirely.
Sharded<LogForest<2>>& forest_index_clustered(size_t fanout) {
  static std::unique_ptr<Sharded<LogForest<2>>> cache[9];
  auto& slot = cache[fanout];
  if (!slot) {
    slot = std::make_unique<Sharded<LogForest<2>>>(Routing::kRange, fanout);
    primitives::Rng rng(0x5EED);
    std::vector<geom::Point2> pts(kIndexN);
    for (size_t i = 0; i < pts.size(); ++i) {
      double cx = 0.125 + 0.25 * static_cast<double>(i % 4);
      pts[i] = geom::Point2{{cx + (rng.next_double() - 0.5) * 0.05,
                             rng.next_double()}};
    }
    (void)slot->bulk_insert(pts);
  }
  return *slot;
}

void BM_PrunedKnnBatch(benchmark::State& state) {
  size_t fanout = static_cast<size_t>(state.range(0));
  auto& idx = forest_index_clustered(fanout);
  size_t q = static_cast<size_t>(state.range(1));
  primitives::Rng rng(0xB0B);
  std::vector<geom::Point2> pts(q);
  for (auto& p : pts) {
    double cx = 0.125 + 0.25 * static_cast<double>(rng.next_bounded(4));
    p = geom::Point2{{cx + (rng.next_double() - 0.5) * 0.05,
                      rng.next_double()}};
  }
  VisitCounter counter(idx);
  uint64_t queries0 = idx.planner_queries();
  uint64_t visits0 = idx.planner_shard_visits();
  for (auto _ : state) {
    auto r = idx.knn_batch(pts, 8);
    benchmark::DoNotOptimize(r.total());
  }
  counter.report(state);
  // shards_pruned: per query, how many of the fanout shards the running
  // k-th-candidate bound let the planner skip.
  double dq = static_cast<double>(idx.planner_queries() - queries0);
  if (dq > 0) {
    state.counters["shards_pruned"] =
        static_cast<double>(fanout) -
        static_cast<double>(idx.planner_shard_visits() - visits0) / dq;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_PrunedKnnBatch)->Apply(ShardedArgs)->UseRealTime();

// Epoch update throughput: each iteration is one serving epoch — stage
// `batch` fresh inserts plus the previous iteration's batch as erasures,
// then commit. The live size stays ~kCommitN, so iterations are comparable.
void BM_ShardedCommitInterval(benchmark::State& state) {
  size_t fanout = static_cast<size_t>(state.range(0));
  size_t batch = static_cast<size_t>(state.range(1));
  Sharded<DynamicIntervalTree> idx(fanout, 4);
  (void)idx.bulk_insert(bench::uniform_intervals(kCommitN, 99, 0.0005));
  uint32_t next_id = kCommitN;
  primitives::Rng rng(17);
  std::vector<Interval> prev;
  for (auto _ : state) {
    std::vector<Interval> ins(batch);
    for (auto& iv : ins) {
      double a = rng.next_double();
      iv = Interval{a, a + 0.0005, next_id++};
    }
    for (const Interval& iv : ins) idx.stage_insert(iv);
    for (const Interval& iv : prev) idx.stage_erase(iv);
    (void)idx.commit();
    prev = std::move(ins);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * 2 * batch));
}
BENCHMARK(BM_ShardedCommitInterval)
    ->Args({1, 4096})
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->UseRealTime();

void BM_ShardedCommitForest(benchmark::State& state) {
  size_t fanout = static_cast<size_t>(state.range(0));
  size_t batch = static_cast<size_t>(state.range(1));
  Sharded<LogForest<2>> idx(fanout);
  (void)idx.bulk_insert(bench::uniform_points(kCommitN, 23));
  primitives::Rng rng(29);
  std::vector<geom::Point2> prev;
  for (auto _ : state) {
    std::vector<geom::Point2> ins(batch);
    for (auto& p : ins) {
      p = geom::Point2{{rng.next_double(), rng.next_double()}};
    }
    for (const auto& p : ins) idx.stage_insert(p);
    for (const auto& p : prev) idx.stage_erase(p);
    (void)idx.commit();
    prev = std::move(ins);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * 2 * batch));
}
BENCHMARK(BM_ShardedCommitForest)
    ->Args({1, 4096})
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  weg::bench::banner(
      "Sharded serving layer (queries/sec and updates/sec vs fanout)",
      "Key-space sharding above the two-phase batch engine: shard-parallel "
      "broadcast (BM_Sharded*) vs range-routed planner (BM_Planned*, with "
      "shards_visited_per_query), offset-arithmetic merge, epoch-versioned "
      "bulk commits; fanout 1 is the unsharded baseline.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
