// Ablations of the design choices DESIGN.md calls out:
//  A1  k-d tree splitter rules (§6.3): median-cycling vs longest-dimension
//      vs surface-area heuristic, on clustered data where the heuristics
//      should pay off in query cost.
//  A2  WE-sort bucket-finishing cutoff (§4): the c3*log log n cutoff vs
//      tiny/huge cutoffs — postponed volume and write cost.
//  A3  Delaunay initial-batch size (§3.2): n/log^2 n (the paper's schedule)
//      vs 1 vs sqrt(n) — the initial round is what amortizes the non-write-
//      efficient startup.
#include <cmath>

#include "bench/common.h"
#include "src/delaunay/delaunay.h"
#include "src/core/prefix_doubling.h"
#include "src/kdtree/pbatched.h"
#include "src/sort/incremental_sort.h"

namespace weg {
namespace {

std::vector<geom::Point2> clustered_points(size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::Point2> pts(n);
  for (auto& p : pts) {
    double cx = double(rng.next_bounded(5)) * 0.2 + 0.02;
    double cy = double(rng.next_bounded(5)) * 0.2 + 0.02;
    p[0] = cx + rng.next_double() * 0.04;
    p[1] = cy + rng.next_double() * 0.16;  // anisotropic clusters
  }
  return pts;
}

void BM_A1_SplitRule(benchmark::State& state) {
  auto rule = static_cast<kdtree::SplitRule>(state.range(0));
  size_t n = 1 << 17;
  auto pts = clustered_points(n, 0x71);
  kdtree::BuildStats st{};
  kdtree::KdTree<2> tree;
  for (auto _ : state) {
    tree = kdtree::PBatchedBuilder<2>::build(pts, 0, 8, &st, rule);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["height"] = double(st.height);
  // Query cost: small boxes around cluster centers.
  kdtree::QueryStats qs;
  primitives::Rng rng(0x72);
  size_t hits = 0;
  for (int q = 0; q < 200; ++q) {
    geom::Box2 b;
    b.lo[0] = double(rng.next_bounded(5)) * 0.2 + 0.02;
    b.lo[1] = double(rng.next_bounded(5)) * 0.2 + 0.02;
    b.hi[0] = b.lo[0] + 0.02;
    b.hi[1] = b.lo[1] + 0.08;
    hits += tree.range_count(b, kdtree::QueryOptions{&qs});
  }
  benchmark::DoNotOptimize(hits);
  state.counters["query_nodes_avg"] = double(qs.nodes_visited) / 200.0;
}

void BM_A2_SortCutoff(benchmark::State& state) {
  size_t cutoff = size_t(state.range(0));
  size_t n = 1 << 17;
  primitives::Rng rng(0x73);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  sort::SortStats st;
  for (auto _ : state) {
    auto out = sort::incremental_sort_we(keys, &st, cutoff);
    benchmark::DoNotOptimize(out);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["postponed"] = double(st.postponed);
  state.counters["rounds"] = double(st.rounds);
}

void BM_A3_DelaunayInitialBatch(benchmark::State& state) {
  size_t n = 1 << 14;
  int mode = int(state.range(0));  // 0: paper schedule, 1: initial=1, 2: sqrt
  auto pts = bench::uniform_points(n, 0x74);
  auto grid = delaunay::quantize(pts);
  delaunay::DTStats st{};
  for (auto _ : state) {
    // The triangulate() driver uses the paper schedule; emulate the others
    // by pre-splitting: a tiny initial batch forces more doubling rounds.
    // (We re-run the driver with a truncated input for the initial segment:
    // cost-equivalent emulation via prefix_doubling_rounds is internal, so
    // here we simply compare the two driver modes plus the baseline.)
    delaunay::Mode m = mode == 0 ? delaunay::Mode::kWriteEfficient
                                 : delaunay::Mode::kBaseline;
    auto mesh = delaunay::triangulate(grid, m, &st);
    benchmark::DoNotOptimize(mesh);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["prefix_rounds"] = double(st.prefix_rounds);
}

BENCHMARK(BM_A1_SplitRule)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_A2_SortCutoff)
    ->Arg(2)
    ->Arg(0)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_A3_DelaunayInitialBatch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "ABLATIONS  |  design-choice sweeps (see DESIGN.md)",
      "A1: split rule 0=median-cycling 1=longest-dim 2=SAH on clustered data\n"
      "    (heuristics should lower query_nodes_avg at similar build cost).\n"
      "A2: bucket-finishing cutoff 2 / auto(c3 log log n) / 64 (tiny cutoff\n"
      "    postpones a large volume; huge cutoff deepens buckets).\n"
      "A3: prefix-doubling schedule (arg 0) vs single batch (arg 1 = the\n"
      "    baseline): the doubling schedule is what caps the writes.");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
