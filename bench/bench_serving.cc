// Serving-engine throughput and latency versus offered load: each iteration
// submits one open-loop wave of `offered` requests (mixed ~1:8 updates to
// queries, interleaved) against a live engine (src/serve/engine.h) and waits
// for every std::future to complete, polling readiness so per-request
// latency is measured at completion rather than in wait order. Rows sweep
// shard fanout (1/2/4/8) x offered load (64/256/1024); counters carry
//   p50_us / p95_us / p99_us  request latency percentiles over the run,
//   overlap_ratio             query batches served while a commit was in
//                             flight on the twin replica (the pipelining
//                             evidence: > 0 means reads did not stall on
//                             writes),
//   rejected_fraction         admission-control rejects / offered,
// and items_per_second is completed requests/sec. Engines are cached per
// fanout and started once — batcher + committer are scheduler-external root
// threads, and the per-process budget for those is bounded — so every row at
// one fanout reuses the same running pipeline. run_benches.sh records
// BENCH_serving.json plus a WEG_NUM_THREADS=1 baseline
// (BENCH_serving_serial.json): the serial row still pipelines (the engine
// threads survive), only the shard/batch parallelism inside each commit and
// query batch collapses.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "src/augtree/interval_tree.h"
#include "src/parallel/sharded.h"
#include "src/primitives/random.h"
#include "src/serve/engine.h"

namespace {

using namespace weg;
using augtree::DynamicIntervalTree;
using augtree::Interval;
using parallel::Routing;
using Clock = std::chrono::steady_clock;

using IntervalEngine = serve::Engine<DynamicIntervalTree>;

constexpr size_t kIndexN = size_t{1} << 15;

// One live engine per fanout, started once and reused by every offered-load
// row. `live` tracks records known committed, so each wave can erase as many
// records as it inserts and the index size stays ~kIndexN across iterations.
struct ServingRig {
  std::unique_ptr<IntervalEngine> engine;
  std::deque<Interval> live;
  uint32_t next_id = 0;
  primitives::Rng rng{101};
};

ServingRig& rig(size_t fanout) {
  static ServingRig cache[9];
  ServingRig& r = cache[fanout];
  if (!r.engine) {
    serve::Config cfg;
    cfg.max_batch = 256;
    cfg.max_delay_us = 200;
    r.engine = std::make_unique<IntervalEngine>(cfg, Routing::kRange, fanout,
                                                /*alpha=*/4);
    auto base = bench::uniform_intervals(kIndexN, 43, 0.0005);
    (void)r.engine->bulk_load(base);
    r.live.assign(base.begin(), base.end());
    r.next_id = static_cast<uint32_t>(kIndexN);
    r.engine->start();
  }
  return r;
}

void ServingArgs(benchmark::internal::Benchmark* b) {
  for (int fanout : {1, 2, 4, 8}) {
    for (int offered : {64, 256, 1024}) b->Args({fanout, offered});
  }
}

double percentile(std::vector<double>& lat, double p) {
  if (lat.empty()) return 0.0;
  size_t k = std::min(lat.size() - 1,
                      static_cast<size_t>(p * (double)(lat.size() - 1)));
  std::nth_element(lat.begin(), lat.begin() + (long)k, lat.end());
  return lat[k];
}

void BM_ServingMixedLoad(benchmark::State& state) {
  ServingRig& r = rig(static_cast<size_t>(state.range(0)));
  IntervalEngine& eng = *r.engine;
  size_t offered = static_cast<size_t>(state.range(1));

  serve::Stats before = eng.stats();
  std::vector<double> lat_us;
  uint64_t rejected = 0, completed = 0;

  for (auto _ : state) {
    // One open-loop wave: every 8th request is an update (alternating
    // insert-fresh / erase-oldest), the rest are stabbing queries. Nothing
    // waits until the whole wave is in flight.
    std::vector<std::future<Expected<IntervalEngine::QueryReply>>> qf;
    std::vector<std::future<Expected<uint64_t>>> uf;
    std::vector<Clock::time_point> qt, ut;
    std::vector<std::pair<bool, Interval>> urec;  // (is_insert, record)
    for (size_t i = 0; i < offered; ++i) {
      if (i % 8 == 7) {
        bool is_insert = (i / 8) % 2 == 0 || r.live.empty();
        Interval rec;
        if (is_insert) {
          double a = r.rng.next_double();
          rec = Interval{a, a + 0.0005, r.next_id++};
        } else {
          rec = r.live.front();
          r.live.pop_front();
        }
        urec.emplace_back(is_insert, rec);
        ut.push_back(Clock::now());
        uf.push_back(is_insert ? eng.submit_insert(rec)
                               : eng.submit_erase(rec));
      } else {
        qt.push_back(Clock::now());
        qf.push_back(eng.submit_query(r.rng.next_double()));
      }
    }
    // Poll for completions so each latency sample is taken when its own
    // future becomes ready, not when a blocking wait in index order
    // reaches it.
    std::vector<char> qdone(qf.size(), 0), udone(uf.size(), 0);
    size_t remaining = qf.size() + uf.size();
    while (remaining > 0) {
      bool progress = false;
      auto now = Clock::now();
      for (size_t i = 0; i < qf.size(); ++i) {
        if (qdone[i] || qf[i].wait_for(std::chrono::seconds(0)) !=
                            std::future_status::ready) {
          continue;
        }
        qdone[i] = 1;
        --remaining;
        progress = true;
        lat_us.push_back(
            std::chrono::duration<double, std::micro>(now - qt[i]).count());
      }
      for (size_t i = 0; i < uf.size(); ++i) {
        if (udone[i] || uf[i].wait_for(std::chrono::seconds(0)) !=
                            std::future_status::ready) {
          continue;
        }
        udone[i] = 1;
        --remaining;
        progress = true;
        lat_us.push_back(
            std::chrono::duration<double, std::micro>(now - ut[i]).count());
      }
      if (!progress) std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    for (auto& f : qf) {
      f.get().ok() ? ++completed : ++rejected;
    }
    for (size_t i = 0; i < uf.size(); ++i) {
      bool ok = uf[i].get().ok();
      ok ? ++completed : ++rejected;
      // Keep `live` exact: only committed inserts become erasable, and a
      // failed erase leaves its record live.
      if (urec[i].first && ok) r.live.push_back(urec[i].second);
      if (!urec[i].first && !ok) r.live.push_front(urec[i].second);
    }
  }

  serve::Stats after = eng.stats();
  uint64_t qb = after.query_batches - before.query_batches;
  uint64_t ob = after.overlap_batches - before.overlap_batches;
  state.counters["p50_us"] = percentile(lat_us, 0.50);
  state.counters["p95_us"] = percentile(lat_us, 0.95);
  state.counters["p99_us"] = percentile(lat_us, 0.99);
  state.counters["overlap_ratio"] = qb ? (double)ob / (double)qb : 0.0;
  state.counters["rejected_fraction"] =
      completed + rejected ? (double)rejected / (double)(completed + rejected)
                           : 0.0;
  state.counters["epochs_committed"] =
      (double)(after.epochs_committed - before.epochs_committed);
  state.SetItemsProcessed(static_cast<int64_t>(completed));
}
BENCHMARK(BM_ServingMixedLoad)->Apply(ServingArgs)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  weg::bench::banner(
      "Asynchronous serving engine (latency percentiles vs offered load)",
      "Open-loop mixed traffic through the pipelined engine: bounded "
      "admission queues, size/deadline batching, and double-buffered epoch "
      "commits overlapping query batches (overlap_ratio > 0 means reads "
      "did not stall on writes); fanout 1 is the single-shard baseline.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
