// Batched-query engine throughput: queries/sec vs batch size for 2D range
// reports and k-NN on a 2^18-point k-d tree and 1D stabbing on a 2^18
// interval tree. Each *_batch row runs the two-phase count+scan+report plan
// over one batch per iteration (items_per_second == queries/sec); the *_loop
// rows run the same queries as a serial per-query loop, so batch overhead /
// speedup is loop_time / batch_time at equal batch size. run_benches.sh also
// records a WEG_NUM_THREADS=1 baseline (BENCH_query_throughput_serial.json)
// for the parallel-speedup trajectory.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/common.h"
#include "src/augtree/interval_tree.h"
#include "src/kdtree/kdtree.h"
#include "src/primitives/random.h"

namespace {

using namespace weg;

constexpr size_t kIndexN = size_t{1} << 18;

const kdtree::KdTree2& kd_index() {
  static const kdtree::KdTree2 tree =
      kdtree::KdTree2::build_classic(bench::uniform_points(kIndexN, 42), 8);
  return tree;
}

const augtree::StaticIntervalTree& iv_index() {
  static const augtree::StaticIntervalTree tree =
      augtree::StaticIntervalTree::build_postsorted(
          bench::uniform_intervals(kIndexN, 43, 0.0005));
  return tree;
}

std::vector<geom::Box2> make_boxes(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::Box2> boxes(q);
  for (auto& b : boxes) {
    for (int d = 0; d < 2; ++d) {
      b.lo[d] = rng.next_double() * 0.98;
      b.hi[d] = b.lo[d] + 0.02;
    }
  }
  return boxes;
}

std::vector<double> make_stabs(size_t q, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<double> qs(q);
  for (double& x : qs) x = rng.next_double();
  return qs;
}

void BM_RangeReportBatch(benchmark::State& state) {
  const auto& tree = kd_index();
  size_t q = static_cast<size_t>(state.range(0));
  auto boxes = make_boxes(q, 7);
  for (auto _ : state) {
    auto r = tree.range_report_batch(boxes);
    benchmark::DoNotOptimize(r.total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_RangeReportBatch)->Arg(64)->Arg(1024)->Arg(16384)->UseRealTime();

void BM_RangeReportLoop(benchmark::State& state) {
  const auto& tree = kd_index();
  size_t q = static_cast<size_t>(state.range(0));
  auto boxes = make_boxes(q, 7);
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& b : boxes) total += tree.range_report(b).size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_RangeReportLoop)->Arg(1024)->UseRealTime();

void BM_StabBatch(benchmark::State& state) {
  const auto& tree = iv_index();
  size_t q = static_cast<size_t>(state.range(0));
  auto qs = make_stabs(q, 11);
  for (auto _ : state) {
    auto r = tree.stab_batch(qs);
    benchmark::DoNotOptimize(r.total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_StabBatch)->Arg(64)->Arg(1024)->Arg(16384)->UseRealTime();

void BM_StabLoop(benchmark::State& state) {
  const auto& tree = iv_index();
  size_t q = static_cast<size_t>(state.range(0));
  auto qs = make_stabs(q, 11);
  for (auto _ : state) {
    size_t total = 0;
    for (double x : qs) total += tree.stab(x).size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_StabLoop)->Arg(1024)->UseRealTime();

// Mixed-selectivity count boxes: one in eight covers the whole index, the
// rest are the usual 2% windows — the wide ones exercise the
// covered-subtree fast path (answered from subtree counts in O(log n)
// instead of scanning O(n) points).
std::vector<geom::Box2> make_count_boxes(size_t q, uint64_t seed) {
  auto boxes = make_boxes(q, seed);
  for (size_t i = 0; i < boxes.size(); i += 8) {
    boxes[i].lo[0] = boxes[i].lo[1] = -1.0;
    boxes[i].hi[0] = boxes[i].hi[1] = 2.0;
  }
  return boxes;
}

void BM_CountBatch(benchmark::State& state) {
  const auto& tree = kd_index();
  size_t q = static_cast<size_t>(state.range(0));
  auto boxes = make_count_boxes(q, 7);
  for (auto _ : state) {
    auto r = tree.range_count_batch(boxes);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
  // nodes_skipped: extra nodes the same batch visits with the fast path
  // killed (one untimed serial stats pass per setting).
  kdtree::QueryStats on, off;
  kdtree::QueryOptions opt_on{&on};
  kdtree::QueryOptions opt_off{&off};
  opt_off.count_fast_path = false;
  for (const auto& b : boxes) {
    tree.range_count(b, opt_on);
    tree.range_count(b, opt_off);
  }
  state.counters["nodes_skipped"] =
      static_cast<double>(off.nodes_visited - on.nodes_visited);
  state.counters["covered_subtrees"] =
      static_cast<double>(on.covered_subtrees);
}
BENCHMARK(BM_CountBatch)->Arg(64)->Arg(1024)->Arg(16384)->UseRealTime();

void BM_CountLoop(benchmark::State& state) {
  const auto& tree = kd_index();
  size_t q = static_cast<size_t>(state.range(0));
  auto boxes = make_count_boxes(q, 7);
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& b : boxes) total += tree.range_count(b);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_CountLoop)->Arg(1024)->UseRealTime();

void BM_KnnBatch(benchmark::State& state) {
  const auto& tree = kd_index();
  size_t q = static_cast<size_t>(state.range(0));
  auto pts = bench::uniform_points(q, 13);
  for (auto _ : state) {
    auto r = tree.knn_batch(pts, 8);
    benchmark::DoNotOptimize(r.total());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_KnnBatch)->Arg(64)->Arg(1024)->Arg(16384)->UseRealTime();

void BM_KnnLoop(benchmark::State& state) {
  const auto& tree = kd_index();
  size_t q = static_cast<size_t>(state.range(0));
  auto pts = bench::uniform_points(q, 13);
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& p : pts) total += tree.knn(p, 8).size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * q));
}
BENCHMARK(BM_KnnLoop)->Arg(1024)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  weg::bench::banner(
      "Batched query throughput (queries/sec vs batch size)",
      "Two-phase batch engine (count pass + exclusive scan + report pass "
      "into pre-claimed slices): every result written exactly once; "
      "read/write totals identical at every worker count.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
