// Experiment THM-7.1 (Theorem 7.1) + Table 1 construction rows: interval
// tree and priority search tree construction with O(n) writes after a
// write-efficient sort (post-sorted construction) versus the classic
// O(n log n)-write recursions; plus the range tree construction comparison
// (classic O(n log n) writes vs α-labeled O(n log_α n)).
#include "bench/common.h"
#include "src/augtree/interval_tree.h"
#include "src/augtree/priority_tree.h"
#include "src/augtree/range_tree.h"

namespace weg {
namespace {

void BM_IntervalClassic(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto ivs = bench::uniform_intervals(n, 0x17 + n);
  augtree::StaticIntervalTree::Stats st{};
  for (auto _ : state) {
    auto t = augtree::StaticIntervalTree::build_classic(ivs, &st);
    benchmark::DoNotOptimize(t);
  }
  bench::report_cost(state, st.cost, double(n));
}

void BM_IntervalPostsorted(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto ivs = bench::uniform_intervals(n, 0x17 + n);
  augtree::StaticIntervalTree::Stats st{};
  for (auto _ : state) {
    auto t = augtree::StaticIntervalTree::build_postsorted(ivs, &st);
    benchmark::DoNotOptimize(t);
  }
  bench::report_cost(state, st.cost, double(n));
}

void BM_PriorityClassic(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto pts = bench::uniform_ppoints(n, 0x19 + n);
  augtree::StaticPriorityTree::Stats st{};
  for (auto _ : state) {
    auto t = augtree::StaticPriorityTree::build_classic(pts, &st);
    benchmark::DoNotOptimize(t);
  }
  bench::report_cost(state, st.cost, double(n));
}

void BM_PriorityPostsorted(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto pts = bench::uniform_ppoints(n, 0x19 + n);
  augtree::StaticPriorityTree::Stats st{};
  for (auto _ : state) {
    auto t = augtree::StaticPriorityTree::build_postsorted(pts, &st);
    benchmark::DoNotOptimize(t);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["smallmem_bases"] = double(st.smallmem_base_cases);
}

void BM_RangeClassic(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto pts = bench::uniform_ppoints(n, 0x1b + n);
  augtree::StaticRangeTree::Stats st{};
  for (auto _ : state) {
    auto t = augtree::StaticRangeTree::build(pts, &st);
    benchmark::DoNotOptimize(t);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["inner_entries_per_pt"] = double(st.inner_entries) / double(n);
}

void BM_RangeAlpha(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  uint64_t alpha = uint64_t(state.range(1));
  auto pts = bench::uniform_ppoints(n, 0x1b + n);
  asym::Counts cost;
  size_t entries = 0;
  for (auto _ : state) {
    auto t = augtree::AlphaRangeTree::build(pts, alpha, &cost);
    entries = t.inner_entries();
    benchmark::DoNotOptimize(t);
  }
  bench::report_cost(state, cost, double(n));
  state.counters["inner_entries_per_pt"] = double(entries) / double(n);
}

// Sizes reach 2^20 (~10^6) so the parallel construction paths (sequential
// cutoff ~2k) dominate; UseRealTime records wall clock, which is the number
// that shows the work-stealing speedup (cpu_time sums across workers).
BENCHMARK(BM_IntervalClassic)
    ->RangeMultiplier(4)
    ->Range(1 << 13, 1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();
BENCHMARK(BM_IntervalPostsorted)
    ->RangeMultiplier(4)
    ->Range(1 << 13, 1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();
BENCHMARK(BM_PriorityClassic)
    ->RangeMultiplier(4)
    ->Range(1 << 13, 1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();
BENCHMARK(BM_PriorityPostsorted)
    ->RangeMultiplier(4)
    ->Range(1 << 13, 1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();
BENCHMARK(BM_RangeClassic)
    ->Arg(1 << 13)
    ->Arg(1 << 15)
    ->Arg(1 << 17)
    ->Arg(1 << 19)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();
BENCHMARK(BM_RangeAlpha)
    ->Args({1 << 15, 2})
    ->Args({1 << 15, 4})
    ->Args({1 << 15, 8})
    ->Args({1 << 15, 16})
    ->Args({1 << 17, 8})
    ->Args({1 << 19, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "THM-7.1 + Table 1 construction rows  |  augmented-tree construction",
      "Counters are per element. Claims: post-sorted interval/priority tree\n"
      "writes stay ~constant per element vs classic growing with log n; the\n"
      "alpha range tree's writes and inner_entries_per_pt shrink as alpha\n"
      "grows (n log_alpha n augmentation vs n log n).");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
