// Experiment T1-priority (Table 1, priority search tree rows): the α
// trade-off for dynamic priority search trees under mixed insert / 3-sided
// query workloads.
#include "bench/common.h"
#include "src/augtree/priority_tree.h"

namespace weg {
namespace {

void BM_PriorityMix(benchmark::State& state) {
  uint64_t alpha = uint64_t(state.range(0));
  double update_frac = double(state.range(1)) / 100.0;
  size_t n = 1 << 15, ops = 4000;
  asym::Counts upd, qry;
  for (auto _ : state) {
    auto base = bench::uniform_ppoints(n, 0x35);
    augtree::DynamicPriorityTree t(alpha);
    for (auto& p : base) t.insert(p);
    primitives::Rng rng(0x36);
    uint32_t next_id = uint32_t(n);
    size_t k = 0;
    upd = asym::Counts{};
    qry = asym::Counts{};
    for (size_t op = 0; op < ops; ++op) {
      if (rng.next_double() < update_frac) {
        asym::Region r;
        t.insert(augtree::PPoint{rng.next_double(), rng.next_double(),
                                 next_id++});
        upd = upd + r.delta();
      } else {
        asym::Region r;
        double xl = rng.next_double() * 0.8;
        k += t.query_count(xl, xl + 0.1, rng.next_double());
        qry = qry + r.delta();
      }
    }
    benchmark::DoNotOptimize(k);
  }
  asym::Counts total = upd + qry;
  bench::report_cost(state, total, 4000.0);
  state.counters["upd_writes"] =
      double(upd.writes) / (4000.0 * update_frac + 1);
  state.counters["upd_reads"] = double(upd.reads) / (4000.0 * update_frac + 1);
}

BENCHMARK(BM_PriorityMix)
    ->ArgsProduct({{2, 4, 8, 16, 32}, {10, 50, 90}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "T1-priority  |  dynamic priority search tree alpha trade-off (Table 1)",
      "Counters are per operation (mixed inserts and 3-sided query counts\n"
      "over n = 2^15 points). Claims: update writes shrink with alpha\n"
      "(O((omega+alpha) log_alpha n) update bound), reads grow with alpha;\n"
      "work_w10/work_w40 expose the omega-dependent optimum.");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
