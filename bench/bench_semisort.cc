// Experiment SEMISORT (Section 3 black box [34]): sample-based heavy/light
// semisort vs the pre-sampling hash-bucket semisort, across the distribution
// matrix (uniform / Zipf(1.0) / all-equal) at 2^16..2^24 plus a
// planner-shaped small-key-universe row (64 distinct keys, the shard-bitmask
// workload of the query planner). The claims: the sampled plan is never
// slower on uniform keys and wins big on skew, because heavy keys get
// dedicated buckets (no serial O(g log g) local sort of a giant group) and
// the offset scan is parallel instead of serial over (buckets x blocks).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench/common.h"
#include "src/primitives/semisort.h"

namespace weg {
namespace {

// The seed's semisort, vendored verbatim (modulo namespace) from
// src/primitives/semisort.h as of the PR that precedes the sampling plan, so
// the old-vs-new rows compare real code, not a strawman: serial column-major
// offset scan, hash buckets capped at 2^16, serial per-bucket local sorts,
// serial group-boundary emission.
namespace legacy {

template <typename T, typename KeyFn>
std::vector<size_t> counting_sort(std::vector<T>& records, size_t num_buckets,
                                  KeyFn key) {
  size_t n = records.size();
  constexpr size_t kBlock = 1 << 14;
  size_t nb = (n + kBlock - 1) / kBlock;
  if (nb == 0) nb = 1;
  asym::count_read(n);

  std::vector<size_t> hist(nb * num_buckets, 0);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlock, hi = std::min(n, lo + kBlock);
        size_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) ++h[key(records[i])];
      },
      1);

  std::vector<size_t> offsets(num_buckets + 1, 0);
  size_t total = 0;
  for (size_t k = 0; k < num_buckets; ++k) {
    offsets[k] = total;
    for (size_t b = 0; b < nb; ++b) {
      size_t c = hist[b * num_buckets + k];
      hist[b * num_buckets + k] = total;
      total += c;
    }
  }
  offsets[num_buckets] = total;
  asym::count_write(num_buckets);

  std::vector<T> out(n);
  asym::count_write(n);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        size_t lo = b * kBlock, hi = std::min(n, lo + kBlock);
        size_t* h = hist.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) out[h[key(records[i])]++] = records[i];
      },
      1);
  records.swap(out);
  return offsets;
}

template <typename T, typename KeyFn>
std::vector<size_t> semisort_by(std::vector<T>& records, KeyFn key) {
  size_t n = records.size();
  if (n == 0) return {0};
  size_t buckets = 1;
  while (buckets < n / 4 + 16 && buckets < (1u << 16)) buckets <<= 1;
  auto hash64 = [](uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  };
  auto offsets = counting_sort(records, buckets, [&](const T& r) {
    return static_cast<size_t>(hash64(static_cast<uint64_t>(key(r))) &
                               (buckets - 1));
  });
  std::vector<size_t> group_starts;
  group_starts.reserve(n / 4 + 4);
  for (size_t b = 0; b < buckets; ++b) {
    size_t lo = offsets[b], hi = offsets[b + 1];
    if (lo == hi) continue;
    std::sort(records.begin() + static_cast<ptrdiff_t>(lo),
              records.begin() + static_cast<ptrdiff_t>(hi),
              [&](const T& x, const T& y) { return key(x) < key(y); });
  }
  asym::count_read(n);
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || key(records[i]) != key(records[i - 1])) {
      group_starts.push_back(i);
    }
  }
  group_starts.push_back(n);
  asym::count_write(group_starts.size());
  return group_starts;
}

}  // namespace legacy

enum class Dist { kUniform, kZipf, kAllEqual, kPlannerKeys };

std::vector<uint64_t> workload(Dist d, size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<uint64_t> v(n);
  switch (d) {
    case Dist::kUniform:
      for (auto& x : v) x = rng.next();
      break;
    case Dist::kZipf: {
      // Universe capped at 2^20 so the CDF table setup stays out of the
      // measured region's noise floor at 2^24.
      primitives::ZipfDistribution zipf(std::min<size_t>(n, 1 << 20), 1.0);
      for (auto& x : v) x = zipf(rng);
      break;
    }
    case Dist::kAllEqual:
      std::fill(v.begin(), v.end(), 0xFEEDULL);
      break;
    case Dist::kPlannerKeys:
      // The shard-pruning planner semisorts queries by target-shard bitmask:
      // a tiny key universe where every key is heavy.
      for (auto& x : v) x = rng.next_bounded(64);
      break;
  }
  return v;
}

template <Dist D>
void BM_Legacy(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto data = workload(D, n, 0x5E31 + n);
  asym::Counts cost;
  size_t groups = 0;
  for (auto _ : state) {
    auto copy = data;
    asym::Region r;
    auto starts = legacy::semisort_by(copy, [](uint64_t x) { return x; });
    benchmark::DoNotOptimize(copy);
    cost = r.delta();
    groups = starts.size() - 1;
  }
  bench::report_cost(state, cost, double(n));
  state.counters["groups"] = double(groups);
}

template <Dist D>
void BM_Sampled(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto data = workload(D, n, 0x5E31 + n);
  asym::Counts cost;
  primitives::SemisortStats st;
  for (auto _ : state) {
    auto copy = data;
    asym::Region r;
    auto starts =
        primitives::semisort_by(copy, [](uint64_t x) { return x; }, &st);
    benchmark::DoNotOptimize(copy);
    benchmark::DoNotOptimize(starts);
    cost = r.delta();
  }
  bench::report_cost(state, cost, double(n));
  state.counters["groups"] = double(st.groups);
  state.counters["heavy_keys"] = double(st.heavy_keys);
  state.counters["heavy_frac"] = st.n ? double(st.heavy_records) / st.n : 0;
}

#define SEMISORT_PAIR(NAME, DIST, RANGE_LO, RANGE_HI)          \
  BENCHMARK(BM_Legacy<DIST>)                                   \
      ->Name("BM_LegacySemisort" NAME)                         \
      ->RangeMultiplier(16)                                    \
      ->Range(RANGE_LO, RANGE_HI)                              \
      ->Unit(benchmark::kMillisecond)                          \
      ->Iterations(1);                                         \
  BENCHMARK(BM_Sampled<DIST>)                                  \
      ->Name("BM_SampledSemisort" NAME)                        \
      ->RangeMultiplier(16)                                    \
      ->Range(RANGE_LO, RANGE_HI)                              \
      ->Unit(benchmark::kMillisecond)                          \
      ->Iterations(1)

SEMISORT_PAIR("Uniform", Dist::kUniform, 1 << 16, 1 << 24);
SEMISORT_PAIR("Zipf", Dist::kZipf, 1 << 16, 1 << 24);
SEMISORT_PAIR("AllEqual", Dist::kAllEqual, 1 << 16, 1 << 24);
// Planner-shaped row: one size is enough — the point is the tiny key
// universe (64 shard masks), not the scaling curve.
SEMISORT_PAIR("PlannerKeys", Dist::kPlannerKeys, 1 << 16, 1 << 16);

#undef SEMISORT_PAIR

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "SEMISORT  |  sample-based heavy/light semisort (Section 3 black box)",
      "Counters are per record. Claim: the sampled plan matches the legacy\n"
      "hash-bucket semisort on uniform keys and beats it on skewed keys\n"
      "(Zipf / all-equal / planner bitmasks), where heavy keys get dedicated\n"
      "buckets and single-key buckets skip their local sort.");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
