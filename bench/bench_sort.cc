// Experiment THM-4.1 (Theorem 4.1): write-efficient incremental comparison
// sort. Classic parallel BST insertion performs Θ(n log n) large-memory
// writes; the prefix-doubling + DAG-tracing variant performs O(n). The
// per-key write curves should be: classic growing with log n, WE flat.
#include "bench/common.h"
#include "src/primitives/sort.h"
#include "src/sort/incremental_sort.h"

namespace weg {
namespace {

std::vector<uint64_t> keys_for(size_t n) {
  primitives::Rng rng(0xabc + n);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

void BM_SortClassicBST(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto keys = keys_for(n);
  asym::Counts cost;
  for (auto _ : state) {
    sort::SortStats st;
    auto out = sort::incremental_sort_classic(keys, &st);
    benchmark::DoNotOptimize(out);
    cost = st.cost;
  }
  bench::report_cost(state, cost, double(n));
}

void BM_SortWriteEfficient(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto keys = keys_for(n);
  asym::Counts cost;
  for (auto _ : state) {
    sort::SortStats st;
    auto out = sort::incremental_sort_we(keys, &st);
    benchmark::DoNotOptimize(out);
    cost = st.cost;
  }
  bench::report_cost(state, cost, double(n));
}

void BM_SortMergesort(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto keys = keys_for(n);
  asym::Counts cost;
  for (auto _ : state) {
    auto copy = keys;
    asym::Region r;
    primitives::sort_inplace(copy);
    benchmark::DoNotOptimize(copy);
    cost = r.delta();
  }
  bench::report_cost(state, cost, double(n));
}

BENCHMARK(BM_SortClassicBST)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SortWriteEfficient)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SortMergesort)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "THM-4.1  |  incremental comparison sort (Section 4, Theorem 4.1)",
      "Counters are per key. Claim: classic BST-insertion writes grow with\n"
      "log n while the write-efficient variant stays ~constant per key; at\n"
      "omega = 10..40 the WE variant's total work wins for large n.");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
