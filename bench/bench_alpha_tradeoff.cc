// Experiment THM-7.3/7.4 + FIG-3: the α-labeling machinery itself.
//  * Theorem 7.3/7.4: amortized update work O((ω + α) log_α n) — the sweep
//    prints the measured per-update work as a function of α and ω and the
//    predicted optimum α* = min(2 + ω/r, ω).
//  * Figure 3: structural bounds under adversarial (sorted-order, left-
//    spine) insertions — the critical-node count per path stays O(log_α n)
//    and the path length O(α log_α n) (Corollaries 7.1/7.2).
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "src/augtree/interval_tree.h"

namespace weg {
namespace {

void BM_UpdateWorkVsAlphaOmega(benchmark::State& state) {
  uint64_t alpha = uint64_t(state.range(0));
  size_t n = 1 << 15;
  asym::Counts upd;
  for (auto _ : state) {
    auto base = bench::uniform_intervals(n, 0x41);
    augtree::DynamicIntervalTree t(alpha);
    for (auto& iv : base) t.insert(iv);
    primitives::Rng rng(0x42);
    asym::Region r;
    for (uint32_t i = 0; i < 3000; ++i) {
      double a = rng.next_double();
      t.insert(augtree::Interval{a, a + 0.05, uint32_t(n) + i});
    }
    upd = r.delta();
  }
  bench::report_cost(state, upd, 3000.0);
}

// FIG-3: adversarial sorted-order insertions (every insert extends the left
// spine); measure the path statistics the lemmas bound.
void BM_Fig3AdversarialSpine(benchmark::State& state) {
  uint64_t alpha = uint64_t(state.range(0));
  size_t n = 20000;
  size_t height = 0, crit = 0, rebuilds = 0;
  for (auto _ : state) {
    augtree::DynamicIntervalTree t(alpha);
    for (uint32_t i = 0; i < n; ++i) {
      // Decreasing left endpoints: the new endpoint keys always enter at the
      // leftmost leaf, the Figure 3 scenario.
      double a = 1.0 - double(i) / double(n + 1);
      t.insert(augtree::Interval{a, a + 0.5 / double(n), i});
    }
    height = t.height();
    crit = t.critical_on_path_max();
    rebuilds = t.rebuilds();
  }
  double la = std::log(double(2 * n)) / std::log(double(alpha));
  state.counters["height"] = double(height);
  state.counters["crit_per_path"] = double(crit);
  state.counters["bound_4a2_logan"] = double(4 * alpha + 2) * la;
  state.counters["rebuilds"] = double(rebuilds);
}

BENCHMARK(BM_UpdateWorkVsAlphaOmega)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Fig3AdversarialSpine)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "THM-7.3/7.4 + FIG-3  |  alpha-labeling trade-off and invariants",
      "Claims: per-update writes fall ~1/log(alpha) and reads rise ~alpha,\n"
      "so work_w1 favors small alpha and work_w40 favors larger alpha\n"
      "(optimum near alpha* = min(2 + omega/r, omega)); under adversarial\n"
      "left-spine insertion the measured height stays below the\n"
      "(4*alpha+2)*log_alpha(n) bound of Corollaries 7.1/7.2.");
  // Print the predicted optima table for reference.
  std::printf("predicted alpha* = min(2 + omega/r, omega):\n");
  for (double omega : {5.0, 10.0, 40.0}) {
    std::printf("  omega=%4.0f:", omega);
    for (double rr : {0.1, 1.0, 10.0}) {
      std::printf("  r=%-4g -> %4.1f", rr, std::min(2 + omega / rr, omega));
    }
    std::printf("\n");
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
