// Shared benchmark helpers: workload generators and asymmetric-cost
// reporting. Every bench binary prints which paper artifact (table/figure/
// theorem) it regenerates, then reports google-benchmark rows whose custom
// counters carry the measured large-memory reads/writes and the Asymmetric
// NP work at several write costs ω (work = reads + ω * writes).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "src/asym/counters.h"
#include "src/augtree/interval.h"
#include "src/augtree/priority_tree.h"
#include "src/geom/point.h"
#include "src/primitives/random.h"

namespace weg::bench {

inline void report_cost(benchmark::State& state, const asym::Counts& c,
                        double per = 1.0) {
  state.counters["reads"] = static_cast<double>(c.reads) / per;
  state.counters["writes"] = static_cast<double>(c.writes) / per;
  state.counters["work_w1"] = c.work(1) / per;
  state.counters["work_w10"] = c.work(10) / per;
  state.counters["work_w40"] = c.work(40) / per;
}

inline std::vector<geom::Point2> uniform_points(size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<geom::Point2> pts(n);
  for (auto& p : pts) {
    p[0] = rng.next_double();
    p[1] = rng.next_double();
  }
  return pts;
}

inline std::vector<augtree::PPoint> uniform_ppoints(size_t n, uint64_t seed) {
  primitives::Rng rng(seed);
  std::vector<augtree::PPoint> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i] = augtree::PPoint{rng.next_double(), rng.next_double(),
                             static_cast<uint32_t>(i)};
  }
  return pts;
}

inline std::vector<augtree::Interval> uniform_intervals(size_t n,
                                                        uint64_t seed,
                                                        double max_len = 0.1) {
  primitives::Rng rng(seed);
  std::vector<augtree::Interval> ivs(n);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.next_double();
    ivs[i] = augtree::Interval{a, a + rng.next_double() * max_len,
                               static_cast<uint32_t>(i)};
  }
  return ivs;
}

inline void banner(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

}  // namespace weg::bench
