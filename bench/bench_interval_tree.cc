// Experiment T1-interval (Table 1, interval tree rows): the α trade-off for
// dynamic interval trees. Updates write O(log_α n) locations (vs O(log n)
// classically, approximated here by α = 2) at the cost of O(α log_α n) reads
// per query/update. With an update:query ratio r, total work is minimized
// near α* = min(2 + ω/r, ω) — the sweep regenerates that curve.
#include <cstdio>

#include "bench/common.h"
#include "src/augtree/interval_tree.h"

namespace weg {
namespace {

struct MixCost {
  asym::Counts updates;
  asym::Counts queries;
};

MixCost run_mix(uint64_t alpha, size_t n, size_t ops, double update_frac,
                uint64_t seed) {
  auto base = bench::uniform_intervals(n, seed);
  augtree::DynamicIntervalTree t(alpha);
  for (auto& iv : base) t.insert(iv);
  primitives::Rng rng(seed + 1);
  MixCost out;
  uint32_t next_id = uint32_t(n);
  size_t k = 0;
  for (size_t op = 0; op < ops; ++op) {
    if (rng.next_double() < update_frac) {
      asym::Region r;
      double a = rng.next_double();
      t.insert(augtree::Interval{a, a + rng.next_double() * 0.1, next_id++});
      out.updates = out.updates + r.delta();
    } else {
      asym::Region r;
      k += t.stab_count(rng.next_double());
      out.queries = out.queries + r.delta();
    }
  }
  benchmark::DoNotOptimize(k);
  return out;
}

void BM_IntervalMix(benchmark::State& state) {
  uint64_t alpha = uint64_t(state.range(0));
  // update percentage in {10, 50, 90}
  double update_frac = double(state.range(1)) / 100.0;
  size_t n = 1 << 15, ops = 4000;
  MixCost mc;
  for (auto _ : state) {
    mc = run_mix(alpha, n, ops, update_frac, 0x33);
  }
  asym::Counts total = mc.updates + mc.queries;
  bench::report_cost(state, total, double(ops));
  state.counters["upd_writes"] =
      double(mc.updates.writes) / (double(ops) * update_frac + 1);
  state.counters["upd_reads"] =
      double(mc.updates.reads) / (double(ops) * update_frac + 1);
}

BENCHMARK(BM_IntervalMix)
    ->ArgsProduct({{2, 4, 8, 16, 32}, {10, 50, 90}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "T1-interval  |  dynamic interval tree alpha trade-off (Table 1)",
      "Counters are per operation on a mixed insert/stab-count workload over\n"
      "n = 2^15 intervals. Claims: upd_writes shrinks ~1/log(alpha) as alpha\n"
      "grows while reads grow ~alpha; for a given omega and update fraction\n"
      "the total work_w* columns show a sweet spot near alpha* =\n"
      "min(2 + omega/r, omega).");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
