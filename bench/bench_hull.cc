// Experiment §2.2: planar convex hull. After a write-efficient sort,
// Graham's scan costs O(n) writes; the classic pipeline pays Θ(n log n)
// writes in the sort.
#include "bench/common.h"
#include "src/hull/hull.h"

namespace weg {
namespace {

void run(benchmark::State& state, hull::SortMode mode, bool circle) {
  size_t n = size_t(state.range(0));
  std::vector<geom::Point2> pts;
  if (circle) {
    pts.resize(n);
    primitives::Rng rng(0x61);
    for (auto& p : pts) {
      double t = rng.next_double() * 6.283185307179586;
      p[0] = std::cos(t);
      p[1] = std::sin(t);
    }
  } else {
    pts = bench::uniform_points(n, 0x62);
  }
  hull::HullStats st{};
  for (auto _ : state) {
    auto h = hull::convex_hull(pts, mode, &st);
    benchmark::DoNotOptimize(h);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["hull_size"] = double(st.hull_size);
}

void BM_HullClassicUniform(benchmark::State& state) {
  run(state, hull::SortMode::kClassic, false);
}
void BM_HullWEUniform(benchmark::State& state) {
  run(state, hull::SortMode::kWriteEfficient, false);
}
void BM_HullClassicCircle(benchmark::State& state) {
  run(state, hull::SortMode::kClassic, true);
}
void BM_HullWECircle(benchmark::State& state) {
  run(state, hull::SortMode::kWriteEfficient, true);
}

BENCHMARK(BM_HullClassicUniform)
    ->RangeMultiplier(8)
    ->Range(1 << 13, 1 << 19)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_HullWEUniform)
    ->RangeMultiplier(8)
    ->Range(1 << 13, 1 << 19)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_HullClassicCircle)
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_HullWECircle)
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "EXP §2.2  |  planar convex hull",
      "Counters are per point. Claim: the write-efficient pipeline's writes\n"
      "stay ~constant per point while the classic pipeline's grow with\n"
      "log n; both agree on hull_size (uniform: O(log n) hull; circle: all\n"
      "points on the hull).");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
