#!/usr/bin/env bash
# Records the repo's perf trajectory: runs the benchmark binaries with
# --benchmark_out JSON and writes BENCH_<name>.json files at the repo root
# (committed so every PR's numbers are comparable). Benches with a parallel
# code path also record a serial baseline (WEG_NUM_THREADS=1) next to them as
# BENCH_<name>_serial.json, so speedup = serial real_time / parallel
# real_time can be computed per benchmark row without rebuilding anything.
# All produced files are written to temporaries and moved into place
# together, so an interrupted run never leaves a mixed-version trajectory.
#
# Usage:  bench/run_benches.sh [--filter <regex>] [--benchmark-arg <arg>]
#                              [build-dir]
#   --filter <regex>  only run benches whose name matches; the other BENCH
#                     files are left untouched. Registered benches (--help
#                     prints this list from the live registry):
#   --benchmark-arg <arg>
#                     extra flag passed through to every bench binary
#                     (repeatable; e.g. --benchmark-arg
#                     '--benchmark_filter=/(64|256)(/|$)' for the CI
#                     bench-smoke job's small-size rows).
#   build-dir         defaults to build/release
#
# Exits non-zero if any requested bench binary is missing (a silently
# skipped bench would otherwise read as "no regression" in CI).
set -euo pipefail
cd "$(dirname "$0")/.."

# name : binary : parallel (yes records an extra WEG_NUM_THREADS=1 baseline)
# Declared before arg parsing so --help can list every registered bench from
# the registry itself instead of a hand-maintained (and historically stale)
# enumeration in the header comment.
BENCHES=(
  "augtree:bench_augtree_construction:yes"
  "sort:bench_sort:no"
  "semisort:bench_semisort:yes"
  "hull:bench_hull:yes"
  "delaunay:bench_delaunay:yes"
  "kdtree_dynamic:bench_kdtree_dynamic:yes"
  "query_throughput:bench_query_throughput:yes"
  "sharded:bench_sharded:yes"
  "alpha_tradeoff:bench_alpha_tradeoff:no"
  "serving:bench_serving:yes"
)

FILTER=""
BUILD="build/release"
BENCH_ARGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --filter)
      [[ $# -ge 2 ]] || { echo "--filter needs an argument" >&2; exit 2; }
      FILTER="$2"
      shift 2
      ;;
    --filter=*)
      FILTER="${1#--filter=}"
      shift
      ;;
    --benchmark-arg)
      [[ $# -ge 2 ]] || { echo "--benchmark-arg needs an argument" >&2; exit 2; }
      BENCH_ARGS+=("$2")
      shift 2
      ;;
    --benchmark-arg=*)
      BENCH_ARGS+=("${1#--benchmark-arg=}")
      shift
      ;;
    -h|--help)
      # Print the whole header comment block (everything between the shebang
      # and the first non-comment line), then the bench registry itself so
      # the list can never go stale relative to the BENCHES array.
      awk 'NR == 1 { next } /^#/ { sub(/^# ?/, ""); print; next } { exit }' \
        "$0"
      for entry in "${BENCHES[@]}"; do
        name="${entry%%:*}"
        rest="${entry#*:}"
        bin="${rest%%:*}"
        par="${rest#*:}"
        extra=""
        [[ "$par" == "yes" ]] && extra=" (+ serial baseline)"
        printf '  %-18s %s%s\n' "$name" "$bin" "$extra"
      done
      exit 0
      ;;
    *)
      BUILD="$1"
      shift
      ;;
  esac
done

selected=()
for entry in "${BENCHES[@]}"; do
  name="${entry%%:*}"
  if [[ -z "$FILTER" ]] || [[ "$name" =~ $FILTER ]]; then
    selected+=("$entry")
  fi
done
if [[ ${#selected[@]} -eq 0 ]]; then
  echo "no benches match --filter '$FILTER'" >&2
  exit 2
fi

missing=0
for entry in "${selected[@]}"; do
  bin="$(cut -d: -f2 <<<"$entry")"
  if [[ ! -x "$BUILD/bench/$bin" ]]; then
    echo "missing bench binary: $BUILD/bench/$bin" >&2
    missing=1
  fi
done
if [[ $missing -ne 0 ]]; then
  echo "build them first:" >&2
  echo "  cmake --preset release && cmake --build --preset release -j" >&2
  exit 1
fi

tmp=$(mktemp -d "$BUILD/bench_json.XXXXXX")
trap 'rm -rf "$tmp"' EXIT

produced=()
for entry in "${selected[@]}"; do
  name="$(cut -d: -f1 <<<"$entry")"
  bin="$(cut -d: -f2 <<<"$entry")"
  par="$(cut -d: -f3 <<<"$entry")"
  echo "== $name (default threads: ${WEG_NUM_THREADS:-auto}) =="
  "$BUILD/bench/$bin" \
    --benchmark_out="$tmp/BENCH_$name.json" --benchmark_out_format=json \
    ${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}
  produced+=("BENCH_$name.json")
  if [[ "$par" == "yes" ]]; then
    if [[ "${WEG_NUM_THREADS:-}" == "1" ]]; then
      # The main run above was already serial; reuse it so the baseline can
      # never go stale relative to BENCH_$name.json.
      cp "$tmp/BENCH_$name.json" "$tmp/BENCH_${name}_serial.json"
    else
      echo "== $name (serial baseline, WEG_NUM_THREADS=1) =="
      WEG_NUM_THREADS=1 "$BUILD/bench/$bin" \
        --benchmark_out="$tmp/BENCH_${name}_serial.json" \
        --benchmark_out_format=json \
        ${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"}
    fi
    produced+=("BENCH_${name}_serial.json")
  fi
done

for f in "${produced[@]}"; do
  mv "$tmp/$f" .
done
echo "wrote ${produced[*]}"
