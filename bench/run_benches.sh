#!/usr/bin/env bash
# Records the repo's perf trajectory: runs the augmented-tree construction
# and sort benchmarks with --benchmark_out JSON and writes BENCH_augtree.json
# / BENCH_sort.json at the repo root (committed so every PR's numbers are
# comparable). A serial baseline (WEG_NUM_THREADS=1) lands next to them as
# BENCH_augtree_serial.json so speedup = serial real_time / parallel
# real_time can be computed per benchmark row without rebuilding anything.
# All three files are written to temporaries and moved into place together,
# so an interrupted run never leaves a mixed-version trajectory.
#
# Usage:  bench/run_benches.sh [build-dir]     (default: build/release)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD=${1:-build/release}

if [[ ! -x "$BUILD/bench/bench_augtree_construction" ]]; then
  echo "bench binaries not found under $BUILD/bench — build them first:" >&2
  echo "  cmake --preset release && cmake --build --preset release -j" >&2
  exit 1
fi

tmp=$(mktemp -d "$BUILD/bench_json.XXXXXX")
trap 'rm -rf "$tmp"' EXIT

echo "== augtree construction (default threads: ${WEG_NUM_THREADS:-auto}) =="
"$BUILD/bench/bench_augtree_construction" \
  --benchmark_out="$tmp/BENCH_augtree.json" --benchmark_out_format=json

echo "== sort =="
"$BUILD/bench/bench_sort" \
  --benchmark_out="$tmp/BENCH_sort.json" --benchmark_out_format=json

if [[ "${WEG_NUM_THREADS:-}" == "1" ]]; then
  # The main run above was already serial; reuse it so the baseline can
  # never go stale relative to BENCH_augtree.json.
  cp "$tmp/BENCH_augtree.json" "$tmp/BENCH_augtree_serial.json"
else
  echo "== augtree construction (serial baseline, WEG_NUM_THREADS=1) =="
  WEG_NUM_THREADS=1 "$BUILD/bench/bench_augtree_construction" \
    --benchmark_out="$tmp/BENCH_augtree_serial.json" --benchmark_out_format=json
fi

mv "$tmp/BENCH_augtree.json" "$tmp/BENCH_sort.json" \
   "$tmp/BENCH_augtree_serial.json" .
echo "wrote BENCH_augtree.json, BENCH_sort.json, BENCH_augtree_serial.json"
