// Experiment THM-5.1 + FIG-1 (Theorem 5.1, Lemma 5.1, Figure 1): planar
// Delaunay triangulation. Baseline = Algorithm 2 (points move through the
// encroached sets, Θ(n log n) writes); WE = prefix doubling + DAG tracing
// (O(n) writes). FIG-1 series: measured average visited history nodes |R|
// (grows ~log n) and cavity size |S| (~6, constant) per point.
#include "bench/common.h"
#include "src/delaunay/delaunay.h"

namespace weg {
namespace {

void run_mode(benchmark::State& state, delaunay::Mode mode) {
  size_t n = size_t(state.range(0));
  auto pts = bench::uniform_points(n, 0x9d + n);
  delaunay::DTStats st{};
  for (auto _ : state) {
    auto mesh = delaunay::triangulate(pts, mode, &st);
    benchmark::DoNotOptimize(mesh);
  }
  bench::report_cost(state, st.cost, double(n));
  state.counters["hist_steps_per_pt"] =
      double(st.history_steps) / double(st.points_inserted);  // |R| proxy
  state.counters["cavity_per_pt"] =
      double(st.cavity_triangles) / double(st.points_inserted);  // |S| proxy
  state.counters["sub_rounds"] = double(st.sub_rounds);
}

void BM_DelaunayBaseline(benchmark::State& state) {
  run_mode(state, delaunay::Mode::kBaseline);
}
void BM_DelaunayWriteEfficient(benchmark::State& state) {
  run_mode(state, delaunay::Mode::kWriteEfficient);
}

BENCHMARK(BM_DelaunayBaseline)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_DelaunayWriteEfficient)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace weg

int main(int argc, char** argv) {
  weg::bench::banner(
      "THM-5.1 + FIG-1  |  planar Delaunay triangulation (Section 5)",
      "Counters are per point. Claim: baseline writes/pt grow with log n;\n"
      "WE writes/pt stay ~constant. FIG-1 series: hist_steps_per_pt ~ log n\n"
      "(|R|), cavity_per_pt ~ 6 (|S|), for the write-efficient variant.");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
