#!/usr/bin/env python3
"""Compare fresh BENCH_*.json files against committed baselines.

Usage: compare_bench.py [--threshold 0.25] <baseline_dir> <fresh_dir>

Walks every BENCH_*.json present in *both* directories, matches benchmark
rows by name, and fails (exit 1) if any row's real_time regressed by more
than the threshold. Rows only present on one side are reported but never
fail the check (new benches have no baseline yet; retired ones have no fresh
number). Single-core CI runners are noisy, so the default threshold is the
generous 25% the CI bench job uses — this is a tripwire for serious
regressions, not a microbenchmark harness.
"""

import argparse
import glob
import json
import os
import sys


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        rows[b["name"]] = float(b["real_time"])
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="maximum allowed relative real_time growth")
    ap.add_argument("baseline_dir")
    ap.add_argument("fresh_dir")
    args = ap.parse_args()

    baseline_files = {os.path.basename(p)
                      for p in glob.glob(os.path.join(args.baseline_dir,
                                                      "BENCH_*.json"))}
    fresh_files = {os.path.basename(p)
                   for p in glob.glob(os.path.join(args.fresh_dir,
                                                   "BENCH_*.json"))}
    common = sorted(baseline_files & fresh_files)
    for name in sorted(baseline_files - fresh_files):
        print(f"note: {name} has no fresh run (skipped)")
    for name in sorted(fresh_files - baseline_files):
        print(f"note: {name} has no committed baseline (skipped)")
    if not common:
        print("error: no BENCH files to compare", file=sys.stderr)
        return 2

    regressions = []
    compared = 0
    for fname in common:
        base = load_rows(os.path.join(args.baseline_dir, fname))
        fresh = load_rows(os.path.join(args.fresh_dir, fname))
        for bench in sorted(base.keys() | fresh.keys()):
            if bench not in base:
                print(f"note: {fname}:{bench} is new (no baseline)")
                continue
            if bench not in fresh:
                print(f"note: {fname}:{bench} missing from fresh run")
                continue
            compared += 1
            b, f = base[bench], fresh[bench]
            ratio = f / b if b > 0 else float("inf")
            status = "ok"
            if ratio > 1.0 + args.threshold:
                status = "REGRESSION"
                regressions.append((fname, bench, b, f, ratio))
            print(f"{status:>10}  {fname}:{bench}  "
                  f"baseline={b:.3g}ns fresh={f:.3g}ns ratio={ratio:.2f}")

    print(f"\ncompared {compared} benchmark rows "
          f"across {len(common)} files; {len(regressions)} regression(s) "
          f"beyond +{args.threshold:.0%}")
    if regressions:
        for fname, bench, b, f, ratio in regressions:
            print(f"  {fname}:{bench}: {b:.3g}ns -> {f:.3g}ns "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
